#!/usr/bin/env python
"""Metric-glossary lint: every emitted metric name must be documented.

Usage::

    python tools/check_metrics.py              # lint, exit 1 on problems
    python tools/check_metrics.py --table      # print the markdown table
    python tools/check_metrics.py --write-glossary README.md

The observability layer's contract is that every metric name appearing
in the instrumented source has a one-line description in
:data:`repro.observability.metrics.METRIC_GLOSSARY` — that description
becomes the ``HELP`` line of the OpenMetrics exposition and the row in
the README's glossary table.  This lint keeps the contract honest in
both directions:

- a metric name used in ``src/repro`` but missing from the glossary is
  an *undocumented* metric (the exposition would ship without HELP);
- a glossary entry whose name never appears in the source is *stale*
  (documentation for a metric nothing emits).

Metric names are found by scanning string literals that look like
dotted metric identifiers under the known namespaces
(:data:`METRIC_NAMESPACES`); the glossary's own defining module is
excluded from the scan so definitions don't count as uses.

``--write-glossary FILE`` regenerates the markdown table between the
``<!-- metric-glossary:begin -->`` / ``<!-- metric-glossary:end -->``
markers in FILE (the README), failing if the markers are absent.  The
test suite imports :func:`scan_metric_names` and :func:`lint` and also
asserts the committed README table is current.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: top-level namespaces the registry's metric names live under
METRIC_NAMESPACES = ("sim", "device", "mpi", "resilience", "checkpoint", "svc")

#: begin/end markers the README glossary table sits between
GLOSSARY_BEGIN = "<!-- metric-glossary:begin -->"
GLOSSARY_END = "<!-- metric-glossary:end -->"

_METRIC_LITERAL = re.compile(
    r"""["'](%s)\.[a-z0-9_]+(?:\.[a-z0-9_]+)*["']""" % "|".join(METRIC_NAMESPACES)
)


def _glossary() -> dict[str, str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.observability.metrics import METRIC_GLOSSARY

    return METRIC_GLOSSARY


def scan_metric_names(root: Path = SRC_ROOT) -> dict[str, list[str]]:
    """Metric-name string literals in the source tree.

    Returns ``{name: [file:line, ...]}``.  The glossary's defining
    module is excluded so the definitions themselves don't register as
    uses.
    """
    uses: dict[str, list[str]] = {}
    for path in sorted(root.rglob("*.py")):
        if path.name == "metrics.py" and path.parent.name == "observability":
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for match in _METRIC_LITERAL.finditer(line):
                name = match.group(0).strip("\"'")
                uses.setdefault(name, []).append(
                    f"{path.relative_to(REPO_ROOT)}:{lineno}"
                )
    return uses


def lint(glossary: dict[str, str] | None = None) -> list[str]:
    """Problems with the glossary/source correspondence (empty = clean)."""
    glossary = _glossary() if glossary is None else glossary
    uses = scan_metric_names()
    problems: list[str] = []
    for name in sorted(set(uses) - set(glossary)):
        problems.append(
            f"undocumented metric {name!r} (used at {uses[name][0]}) "
            "-- add it to METRIC_GLOSSARY"
        )
    for name in sorted(set(glossary) - set(uses)):
        problems.append(
            f"stale glossary entry {name!r}: no source emits it"
        )
    return problems


def glossary_table(glossary: dict[str, str] | None = None) -> str:
    """The glossary as a markdown table (sorted by name)."""
    glossary = _glossary() if glossary is None else glossary
    lines = ["| metric | description |", "| --- | --- |"]
    for name in sorted(glossary):
        lines.append(f"| `{name}` | {glossary[name]} |")
    return "\n".join(lines)


def write_glossary(path: str | Path, glossary: dict[str, str] | None = None) -> bool:
    """Replace the marked README section with the current table.

    Returns True when the file changed.  Raises ``ValueError`` when the
    markers are missing (the section must exist to be maintained).
    """
    path = Path(path)
    text = path.read_text()
    begin = text.find(GLOSSARY_BEGIN)
    end = text.find(GLOSSARY_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(
            f"{path}: needs '{GLOSSARY_BEGIN}' and '{GLOSSARY_END}' markers"
        )
    head = text[: begin + len(GLOSSARY_BEGIN)]
    tail = text[end:]
    updated = f"{head}\n{glossary_table(glossary)}\n{tail}"
    if updated == text:
        return False
    path.write_text(updated)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="check_metrics.py", description="metric glossary lint"
    )
    parser.add_argument(
        "--table", action="store_true", help="print the markdown glossary table"
    )
    parser.add_argument(
        "--write-glossary",
        metavar="FILE",
        help="rewrite the glossary table between the markers in FILE",
    )
    args = parser.parse_args(argv)

    if args.table:
        print(glossary_table())
        return 0
    if args.write_glossary:
        try:
            changed = write_glossary(args.write_glossary)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"{args.write_glossary}: "
            + ("glossary table updated" if changed else "already current")
        )
        return 0

    problems = lint()
    if problems:
        for problem in problems:
            print(problem)
        return 1
    glossary = _glossary()
    print(f"metric glossary OK ({len(glossary)} documented metrics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
