#!/usr/bin/env python
"""Smoke-test the simulation service end to end from the command line.

Usage::

    python tools/service_smoke.py [--events-out events.jsonl] [--jobs 6]

Starts a ``repro serve`` process on a private unix socket, submits a
batch of jobs with deliberate duplicates through the wire client,
then asserts the service-level invariants a deployment cares about:

- every request completes with products;
- duplicates are served by coalescing or the result cache — at least
  one cache hit is observed for the repeated spec;
- the ``shutdown`` op drains cleanly and the server process exits 0;
- the live events log (when requested) passes the schema validator
  in :mod:`tools.check_trace` — header first, terminal metrics
  snapshot last.

Exit status 0 when every invariant holds, 1 otherwise.  This is the
CI ``service-smoke`` job in miniature, runnable locally.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# runnable both as a repo script (repro importable via src/) and from
# an installed environment
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import check_trace  # noqa: E402 — sibling tool
from repro.service import request, submit_job  # noqa: E402


def _wait_for_socket(socket_path: Path, proc: subprocess.Popen, budget: float) -> None:
    deadline = time.monotonic() + budget
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"FAIL: serve exited early with {proc.returncode}")
        if socket_path.exists():
            try:
                request(socket_path, {"op": "ping"}, timeout=5)
                return
            except OSError:
                pass
        time.sleep(0.1)
    raise SystemExit(f"FAIL: no socket at {socket_path} after {budget:.0f}s")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=6, help="submissions (>=2)")
    parser.add_argument("--n", type=int, default=4, help="particles per side")
    parser.add_argument("--steps", type=int, default=1, help="steps per job")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--events-out", default=None, help="events JSONL to validate")
    parser.add_argument("--startup-budget", type=float, default=30.0)
    args = parser.parse_args(argv)
    if args.jobs < 2:
        parser.error("--jobs must be >= 2 to exercise duplicates")

    workdir = Path(tempfile.mkdtemp(prefix="repro-service-smoke-"))
    socket_path = workdir / "repro.sock"
    events = Path(args.events_out) if args.events_out else workdir / "events.jsonl"

    serve_cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--socket",
        str(socket_path),
        "--workers",
        str(args.workers),
        "--checkpoint-dir",
        str(workdir / "ckpts"),
        "--events-out",
        str(events),
    ]
    print(f"-- starting: {' '.join(serve_cmd)}")
    proc = subprocess.Popen(serve_cmd)
    failures: list[str] = []
    try:
        _wait_for_socket(socket_path, proc, args.startup_budget)
        print(f"-- serving on {socket_path}")

        # half the batch shares one spec (the duplicates), the rest
        # are distinct seeds — both dedup paths get exercised
        specs = []
        for i in range(args.jobs):
            seed = 7 if i % 2 == 0 else 1000 + i
            specs.append({"n_per_side": args.n, "n_steps": args.steps, "seed": seed})

        completed = 0
        for i, spec in enumerate(specs):
            final = list(submit_job(socket_path, spec, timeout=300))[-1]
            if final.get("ok") and final.get("state") == "completed":
                completed += 1
                cached = final["result"].get("from_cache", False)
                print(f"   job {final['job_id']}: seed={spec['seed']} cached={cached}")
            else:
                failures.append(f"submission {i} failed: {final}")

        stats = request(socket_path, {"op": "stats"}, timeout=30)["stats"]
        counters = stats["counters"]
        hits = counters.get("svc.cache.hits", 0)
        coalesced = counters.get("svc.jobs.coalesced", 0)
        print(
            f"-- {completed}/{args.jobs} completed, "
            f"cache hits={hits}, coalesced={coalesced}, "
            f"cache bytes={stats['cache']['bytes']}"
        )
        if completed != args.jobs:
            failures.append(f"only {completed}/{args.jobs} submissions completed")
        if hits + coalesced < 1:
            failures.append("duplicate specs produced no cache hit or coalescing")

        request(socket_path, {"op": "shutdown"}, timeout=30)
        proc.wait(timeout=60)
        if proc.returncode != 0:
            failures.append(f"serve exited {proc.returncode} after shutdown")
        else:
            print("-- clean shutdown")
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()

    if not events.exists():
        failures.append(f"no events log at {events}")
    else:
        problems = check_trace.validate_file(events)
        if problems:
            failures.extend(f"events log: {p}" for p in problems)
        else:
            n_lines = len(events.read_text().splitlines())
            print(f"-- events log OK ({n_lines} records, schema valid)")

    if failures:
        print("FAIL:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("OK: service smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
