#!/usr/bin/env python
"""Validate a Chrome-trace/Perfetto JSON file written by the repro
observability layer.

Usage::

    python tools/check_trace.py trace.json [trace2.json ...]

Checks, per file:

- the document is valid JSON with a ``traceEvents`` list and a
  ``displayTimeUnit`` of ``ms`` or ``ns``;
- every event has a ``ph`` in the supported set (``X``, ``i``, ``M``),
  a string ``name``, and integer ``pid``/``tid``;
- complete (``X``) events carry numeric non-negative ``ts`` and
  ``dur`` microsecond fields;
- instant (``i``) events carry numeric non-negative ``ts`` and a
  scope ``s``;
- metadata (``M``) events are well-formed ``process_name`` /
  ``thread_name`` entries;
- counter (``C``) events — Perfetto counter tracks, emitted for the
  health series — carry numeric non-negative ``ts`` and a numeric
  ``args.value``;
- ``args``, when present, is a JSON object;
- resilience/degradation instants (``shrink``, ``buddy-restore``,
  ``degrade``, ``retry``) carry the args the degradation ladder
  promises (see :data:`RESILIENCE_INSTANT_ARGS`), so dashboards can
  rely on them;
- health ``alert`` instants carry the detector/series/severity args
  the escalation path promises (see :data:`HEALTH_INSTANT_ARGS`).

Exit status is 0 when every file passes and 1 otherwise; problems are
printed one per line as ``file: event #n: message``.  The module is
importable (used by the test suite): :func:`validate_events` checks a
decoded document and returns the list of problems, and
:func:`validate_file` wraps it with file I/O and JSON decoding.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SUPPORTED_PHASES = ("X", "i", "M", "C")
METADATA_NAMES = ("process_name", "thread_name", "process_sort_index")

#: required args keys for the degradation-ladder instant events
RESILIENCE_INSTANT_ARGS = {
    "shrink": ("dead_ranks", "survivors"),
    "buddy-restore": ("rank", "owner"),
    "degrade": ("action", "step"),
    "retry": ("attempt",),
}

#: required args keys for the health-monitor instant events
HEALTH_INSTANT_ARGS = {
    "alert": ("series", "step", "severity", "detector"),
}


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_events(document) -> list[str]:
    """Schema-check a decoded trace document; return problems found."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document: top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document: missing 'traceEvents' list"]
    unit = document.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        problems.append(f"document: displayTimeUnit must be 'ms' or 'ns', got {unit!r}")

    for i, event in enumerate(events):
        where = f"event #{i}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in SUPPORTED_PHASES:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty 'name'")
        if not _is_int(event.get("pid")):
            problems.append(f"{where}: 'pid' must be an integer")
        if not _is_int(event.get("tid")):
            problems.append(f"{where}: 'tid' must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")

        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not _is_number(value):
                    problems.append(f"{where}: 'X' event needs numeric {key!r}")
                elif value < 0:
                    problems.append(f"{where}: {key!r} must be >= 0, got {value}")
        elif ph == "i":
            ts = event.get("ts")
            if not _is_number(ts):
                problems.append(f"{where}: 'i' event needs numeric 'ts'")
            elif ts < 0:
                problems.append(f"{where}: 'ts' must be >= 0, got {ts}")
            if event.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: 'i' event needs scope 's' in t/p/g")
            required = RESILIENCE_INSTANT_ARGS.get(name) or HEALTH_INSTANT_ARGS.get(
                name
            )
            if required is not None:
                present = args if isinstance(args, dict) else {}
                for key in required:
                    if key not in present:
                        problems.append(
                            f"{where}: {name!r} instant needs args.{key}"
                        )
        elif ph == "C":
            ts = event.get("ts")
            if not _is_number(ts):
                problems.append(f"{where}: 'C' event needs numeric 'ts'")
            elif ts < 0:
                problems.append(f"{where}: 'ts' must be >= 0, got {ts}")
            if not isinstance(args, dict) or not _is_number(args.get("value")):
                problems.append(f"{where}: 'C' event needs numeric args.value")
        else:  # "M"
            if name not in METADATA_NAMES:
                problems.append(f"{where}: unknown metadata event {name!r}")
            elif name in ("process_name", "thread_name") and (
                not isinstance(args, dict) or "name" not in args
            ):
                problems.append(f"{where}: metadata event needs args.name")
    return problems


def validate_file(path: str | Path) -> list[str]:
    """Validate one trace file; return the list of problems found."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"cannot read: {exc}"]
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_events(document)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: check_trace.py TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2
    failed = False
    for name in argv:
        problems = validate_file(name)
        if problems:
            failed = True
            for problem in problems:
                print(f"{name}: {problem}")
        else:
            n = len(json.loads(Path(name).read_text())["traceEvents"])
            print(f"{name}: OK ({n} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
