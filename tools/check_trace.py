#!/usr/bin/env python
"""Validate a Chrome-trace/Perfetto JSON file — or a JSONL telemetry
event log — written by the repro observability layer.

Usage::

    python tools/check_trace.py trace.json [events.jsonl ...]

The format is auto-detected: a file whose first line is a JSON object
with a ``kind`` field is checked as an event log (the
``write_event_log`` / ``repro serve --events-out`` JSONL schema — see
:data:`EVENT_LOG_KINDS` and :func:`validate_event_log`); anything else
is checked as a Chrome trace.

Chrome-trace checks, per file:

- the document is valid JSON with a ``traceEvents`` list and a
  ``displayTimeUnit`` of ``ms`` or ``ns``;
- every event has a ``ph`` in the supported set (``X``, ``i``, ``M``),
  a string ``name``, and integer ``pid``/``tid``;
- complete (``X``) events carry numeric non-negative ``ts`` and
  ``dur`` microsecond fields;
- instant (``i``) events carry numeric non-negative ``ts`` and a
  scope ``s``;
- metadata (``M``) events are well-formed ``process_name`` /
  ``thread_name`` entries;
- counter (``C``) events — Perfetto counter tracks, emitted for the
  health series — carry numeric non-negative ``ts`` and a numeric
  ``args.value``;
- ``args``, when present, is a JSON object;
- resilience/degradation instants (``shrink``, ``buddy-restore``,
  ``degrade``, ``retry``) carry the args the degradation ladder
  promises (see :data:`RESILIENCE_INSTANT_ARGS`), so dashboards can
  rely on them;
- health ``alert`` instants carry the detector/series/severity args
  the escalation path promises (see :data:`HEALTH_INSTANT_ARGS`).

Exit status is 0 when every file passes and 1 otherwise; problems are
printed one per line as ``file: event #n: message``.  The module is
importable (used by the test suite): :func:`validate_events` checks a
decoded document and returns the list of problems, and
:func:`validate_file` wraps it with file I/O and JSON decoding.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SUPPORTED_PHASES = ("X", "i", "M", "C")
METADATA_NAMES = ("process_name", "thread_name", "process_sort_index")

#: required args keys for the degradation-ladder instant events
RESILIENCE_INSTANT_ARGS = {
    "shrink": ("dead_ranks", "survivors"),
    "buddy-restore": ("rank", "owner"),
    "degrade": ("action", "step"),
    "retry": ("attempt",),
}

#: required args keys for the health-monitor instant events
HEALTH_INSTANT_ARGS = {
    "alert": ("series", "step", "severity", "detector"),
}


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_events(document) -> list[str]:
    """Schema-check a decoded trace document; return problems found."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["document: top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document: missing 'traceEvents' list"]
    unit = document.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        problems.append(f"document: displayTimeUnit must be 'ms' or 'ns', got {unit!r}")

    for i, event in enumerate(events):
        where = f"event #{i}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in SUPPORTED_PHASES:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing or empty 'name'")
        if not _is_int(event.get("pid")):
            problems.append(f"{where}: 'pid' must be an integer")
        if not _is_int(event.get("tid")):
            problems.append(f"{where}: 'tid' must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")

        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not _is_number(value):
                    problems.append(f"{where}: 'X' event needs numeric {key!r}")
                elif value < 0:
                    problems.append(f"{where}: {key!r} must be >= 0, got {value}")
        elif ph == "i":
            ts = event.get("ts")
            if not _is_number(ts):
                problems.append(f"{where}: 'i' event needs numeric 'ts'")
            elif ts < 0:
                problems.append(f"{where}: 'ts' must be >= 0, got {ts}")
            if event.get("s") not in ("t", "p", "g"):
                problems.append(f"{where}: 'i' event needs scope 's' in t/p/g")
            required = RESILIENCE_INSTANT_ARGS.get(name) or HEALTH_INSTANT_ARGS.get(
                name
            )
            if required is not None:
                present = args if isinstance(args, dict) else {}
                for key in required:
                    if key not in present:
                        problems.append(
                            f"{where}: {name!r} instant needs args.{key}"
                        )
        elif ph == "C":
            ts = event.get("ts")
            if not _is_number(ts):
                problems.append(f"{where}: 'C' event needs numeric 'ts'")
            elif ts < 0:
                problems.append(f"{where}: 'ts' must be >= 0, got {ts}")
            if not isinstance(args, dict) or not _is_number(args.get("value")):
                problems.append(f"{where}: 'C' event needs numeric args.value")
        else:  # "M"
            if name not in METADATA_NAMES:
                problems.append(f"{where}: unknown metadata event {name!r}")
            elif name in ("process_name", "thread_name") and (
                not isinstance(args, dict) or "name" not in args
            ):
                problems.append(f"{where}: metadata event needs args.name")
    return problems


#: record kinds of the JSONL event-log schema, with their required
#: (field, predicate) pairs
EVENT_LOG_KINDS = {
    "header": (("version", _is_int),),
    "series": (
        ("name", lambda v: isinstance(v, str) and v),
        ("step", _is_int),
        ("value", _is_number),
    ),
    "alert": (),
    "instant": (
        ("name", lambda v: isinstance(v, str) and v),
        ("ts", _is_number),
    ),
    "counter": (
        ("name", lambda v: isinstance(v, str) and v),
        ("ts", _is_number),
        ("value", _is_number),
    ),
    "span": (
        ("name", lambda v: isinstance(v, str) and v),
        ("start", _is_number),
        ("duration", _is_number),
    ),
    "profile": (("kernel", lambda v: isinstance(v, str) and v),),
    "metrics": (("snapshot", lambda v: isinstance(v, dict)),),
}


def validate_event_log(records) -> list[str]:
    """Schema-check decoded JSONL event-log records; return problems.

    Beyond per-record field checks, the log's framing is enforced: the
    first record must be the ``header``, and a ``metrics`` snapshot —
    the terminal record a live follower stops at — must be last.
    """
    problems: list[str] = []
    records = list(records)
    if not records:
        return ["event log: empty"]
    saw_metrics_at: int | None = None
    for i, record in enumerate(records):
        where = f"record #{i}"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        kind = record.get("kind")
        if kind not in EVENT_LOG_KINDS:
            problems.append(f"{where}: unknown kind {kind!r}")
            continue
        if i == 0 and kind != "header":
            problems.append(f"{where}: first record must be the header, got {kind!r}")
        if i > 0 and kind == "header":
            problems.append(f"{where}: duplicate header")
        for fld, predicate in EVENT_LOG_KINDS[kind]:
            if not predicate(record.get(fld)):
                problems.append(f"{where}: {kind!r} record needs valid {fld!r}")
        args = record.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
        if saw_metrics_at is not None:
            problems.append(
                f"{where}: record after the terminal 'metrics' snapshot "
                f"(#{saw_metrics_at})"
            )
            saw_metrics_at = None  # report once per offender
        if kind == "metrics":
            saw_metrics_at = i
    return problems


def _decode_event_log(text: str) -> list | None:
    """The decoded records if ``text`` looks like a JSONL event log."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return None
    try:
        first = json.loads(lines[0])
    except json.JSONDecodeError:
        return None
    if not isinstance(first, dict) or "kind" not in first:
        return None
    records = []
    for line in lines:
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            records.append({"kind": f"<unparseable: {exc}>"})
    return records


def validate_file(path: str | Path) -> list[str]:
    """Validate one trace or event-log file; return problems found."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"cannot read: {exc}"]
    records = _decode_event_log(text)
    if records is not None:
        return validate_event_log(records)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        return [f"not valid JSON: {exc}"]
    return validate_events(document)


def _count_events(path: str) -> int:
    text = Path(path).read_text()
    records = _decode_event_log(text)
    if records is not None:
        return len(records)
    return len(json.loads(text)["traceEvents"])


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(
            "usage: check_trace.py TRACE.json [EVENTS.jsonl ...]", file=sys.stderr
        )
        return 2
    failed = False
    for name in argv:
        problems = validate_file(name)
        if problems:
            failed = True
            for problem in problems:
                print(f"{name}: {problem}")
        else:
            print(f"{name}: OK ({_count_events(name)} events)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
