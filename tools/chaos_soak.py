#!/usr/bin/env python
"""Chaos-soak the resilience stack from the command line.

Usage::

    python tools/chaos_soak.py --runs 30 --seed 0 [--policy shrink]

Runs N seeded random fault plans through the fault-tolerant runner
(see :mod:`repro.resilience.chaos`) and asserts the termination
invariant: every run completes with physics matching the fault-free
reference, or aborts cleanly with a coherent attempt history — never
hangs, never silently diverges.  Exit status 0 when the invariant
holds for every run, 1 otherwise.

A SIGALRM watchdog (``--watchdog`` seconds, whole-soak budget) guards
the "never hangs" half when run standalone; under pytest the suite's
own per-test watchdog plays that role instead.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path

# runnable both as a repo script (repro importable via src/) and from
# an installed environment
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.resilience.chaos import soak  # noqa: E402
from repro.resilience.degrade import NAMED_LADDERS  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=30, help="number of fault plans")
    parser.add_argument("--seed", type=int, default=0, help="base seed (run i uses seed+i)")
    parser.add_argument(
        "--policy",
        default="shrink",
        choices=sorted(NAMED_LADDERS),
        help="degradation ladder to soak (default: shrink)",
    )
    parser.add_argument(
        "--ranks", type=int, default=3, help="simulated MPI world size per run"
    )
    parser.add_argument("--steps", type=int, default=2, help="simulation steps per run")
    parser.add_argument(
        "--timeout", type=float, default=0.75, help="collective timeout (seconds)"
    )
    parser.add_argument(
        "--watchdog",
        type=float,
        default=900.0,
        help="whole-soak SIGALRM budget in seconds (0 disables)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary"
    )
    args = parser.parse_args(argv)
    if args.runs < 1:
        print("error: --runs must be >= 1")
        return 2
    if args.ranks < 1:
        print("error: --ranks must be >= 1")
        return 2
    if args.timeout <= 0:
        print("error: --timeout must be positive")
        return 2

    use_watchdog = (
        args.watchdog > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_watchdog:

        def _expired(signum, frame):
            raise TimeoutError(
                f"chaos soak exceeded its {args.watchdog:.0f}s watchdog "
                "budget (hung run = invariant violated)"
            )

        signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, args.watchdog)
    try:
        report = soak(
            args.runs,
            base_seed=args.seed,
            degrade_policy=args.policy,
            world_size=args.ranks,
            n_steps=args.steps,
            timeout=args.timeout,
            echo=None if args.quiet else print,
        )
    finally:
        if use_watchdog:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
    print(
        f"chaos soak: {len(report.outcomes)} run(s), "
        f"{report.n_completed} completed ({report.n_degraded} degraded), "
        f"{report.n_aborted} cleanly aborted -> invariant "
        f"{'HELD' if report.invariant_ok else 'VIOLATED'}"
    )
    return 0 if report.invariant_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
