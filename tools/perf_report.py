#!/usr/bin/env python
"""Performance observatory: report and gate on benchmark trajectories.

Usage::

    python tools/perf_report.py BENCH_pairs.json [BENCH_other.json ...]
    python tools/perf_report.py --band 1.5 --json BENCH_pairs.json
    python tools/perf_report.py --profile events.jsonl BENCH_pairs.json

Each ``BENCH_*.json`` file is a benchmark *trajectory* as written by
the perf suite under ``benchmarks/``: a ``runs`` list whose first
record is the committed baseline and whose last record is the current
measurement.  For every shared numeric metric the report shows
baseline, current, and the current/baseline ratio, and *gates*: a
metric that moved in its bad direction by more than ``--band`` (a
multiplicative factor, default 2.0) is a regression and the exit
status is 1.  CI runs this after the perf benchmarks so a slow commit
fails loudly instead of silently rewriting the trajectory.

Which direction is "bad" is inferred from the metric name — rates
(``*_per_sec``, ``*_rate``, ``*speedup*``, ``*throughput*``) must not
fall, times (``*seconds*``, ``*_time``, ``*_ns``, ``*latency*``) must
not rise; anything else is reported but never gated (counters like
``n_pairs`` are workload descriptors, not performance).

``--profile`` additionally ingests a JSONL event log (see
``repro.observability.export``) and prints the hottest kernels from
its ``profile`` records, so one CI artifact answers both "did we get
slower" and "where does the time go".  The module is importable: the
test suite drives :func:`analyze_trajectory` and :func:`main`
directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

#: substrings that mark a metric where LOWER is worse (rates)
HIGHER_IS_BETTER = ("per_sec", "_rate", "speedup", "throughput", "pairs_sec")
#: substrings that mark a metric where HIGHER is worse (durations)
LOWER_IS_BETTER = ("seconds", "_time", "_ns", "_ms", "latency", "duration")

#: default multiplicative regression band
DEFAULT_BAND = 2.0


def metric_direction(name: str) -> str:
    """``up`` (higher is better), ``down`` (lower is better), or
    ``none`` (informational only) for a metric name."""
    lowered = name.lower()
    if any(tag in lowered for tag in HIGHER_IS_BETTER):
        return "up"
    if any(tag in lowered for tag in LOWER_IS_BETTER):
        return "down"
    return "none"


@dataclass(frozen=True)
class MetricReport:
    """One metric's baseline-vs-current verdict."""

    benchmark: str
    metric: str
    direction: str
    baseline: float
    current: float
    #: how many times *worse* the current value is (1.0 = unchanged,
    #: <1.0 = improved); always NaN-safe, inf when baseline degenerate
    worse_factor: float
    regressed: bool

    def describe(self) -> str:
        arrow = {"up": "↑ better", "down": "↓ better", "none": "info"}[self.direction]
        status = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.benchmark}/{self.metric} [{arrow}] "
            f"baseline={self.baseline:.4g} current={self.current:.4g} "
            f"worse×{self.worse_factor:.2f} {status}"
        )


def _worse_factor(direction: str, baseline: float, current: float) -> float:
    """How many times worse ``current`` is than ``baseline`` in the
    metric's bad direction (values <= 1 mean no worse)."""
    if baseline <= 0 or current <= 0:
        return float("inf") if baseline != current else 1.0
    if direction == "up":  # rate fell -> worse
        return baseline / current
    if direction == "down":  # time rose -> worse
        return current / baseline
    return 1.0


def analyze_trajectory(
    document: dict, band: float = DEFAULT_BAND
) -> list[MetricReport]:
    """Compare a trajectory's last run against its first.

    Only metrics present and numeric in *both* records are compared;
    a trajectory with fewer than two runs yields no reports (nothing
    to regress against).
    """
    runs = document.get("runs") or []
    if len(runs) < 2:
        return []
    name = document.get("benchmark", "?")
    baseline, current = runs[0], runs[-1]
    reports: list[MetricReport] = []
    for metric in sorted(set(baseline) & set(current)):
        b, c = baseline[metric], current[metric]
        if isinstance(b, bool) or isinstance(c, bool):
            continue
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        direction = metric_direction(metric)
        worse = _worse_factor(direction, float(b), float(c))
        reports.append(
            MetricReport(
                benchmark=name,
                metric=metric,
                direction=direction,
                baseline=float(b),
                current=float(c),
                worse_factor=worse,
                regressed=direction != "none" and worse > band,
            )
        )
    return reports


def load_trajectory(path: str | Path) -> dict:
    document = json.loads(Path(path).read_text())
    if not isinstance(document, dict) or not isinstance(document.get("runs"), list):
        raise ValueError(f"{path}: not a benchmark trajectory (needs a 'runs' list)")
    return document


def profile_summary(events_path: str | Path, top: int = 8) -> list[str]:
    """The hottest kernels from an event log's ``profile`` records."""
    from repro.observability.export import read_events

    rows = [e for e in read_events(events_path) if e.get("kind") == "profile"]
    rows.sort(key=lambda r: -float(r.get("seconds", 0.0)))
    lines = [f"hottest kernels ({events_path}):"]
    if not rows:
        lines.append("  (no profile records)")
        return lines
    for row in rows[:top]:
        lines.append(
            f"  {row.get('kernel', '?'):>10s} {row.get('device', '?'):>12.12s} "
            f"{float(row.get('seconds', 0.0)):.4g}s "
            f"calls={row.get('calls', 0)} bound={row.get('bound', '?')}"
        )
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf_report.py", description="benchmark trajectory regression gate"
    )
    parser.add_argument("trajectories", nargs="+", help="BENCH_*.json files")
    parser.add_argument(
        "--band",
        type=float,
        default=DEFAULT_BAND,
        help="regression band: fail when a gated metric is more than "
        "this factor worse than baseline (default %(default)s)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--profile",
        metavar="EVENTS.jsonl",
        help="also summarize kernel profile records from an event log",
    )
    args = parser.parse_args(argv)
    if args.band <= 0:
        parser.error("--band must be positive")

    reports: list[MetricReport] = []
    for path in args.trajectories:
        try:
            document = load_trajectory(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        found = analyze_trajectory(document, band=args.band)
        if not found:
            print(f"{path}: fewer than two runs; nothing to gate")
        reports.extend(found)

    regressions = [r for r in reports if r.regressed]
    if args.json:
        print(
            json.dumps(
                {
                    "band": args.band,
                    "metrics": [asdict(r) for r in reports],
                    "regressions": len(regressions),
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        for report in reports:
            print(report.describe())
        print(
            f"{len(reports)} metric(s) compared, "
            f"{len(regressions)} regression(s) beyond {args.band}x"
        )
    if args.profile:
        for line in profile_summary(args.profile):
            print(line)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
