"""Scheduler semantics: quotas, fair share, coalescing, preemption.

These tests drive :class:`JobScheduler` directly — playing the worker
pool by calling :meth:`next_job` / :meth:`task_done` by hand — so each
ordering claim is deterministic, with no real simulation in the loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.jobs import JobResult, JobSpec, JobState, SubmissionError
from repro.service.scheduler import JobScheduler, QuotaExceeded, TenantQuota


def run(coro):
    return asyncio.run(coro)


def _finish(scheduler, job, payload=None):
    job.finish(
        JobResult(spec_hash=job.spec_hash, products=payload or {}, steps_completed=0)
    )
    scheduler.task_done(job)


class TestQuota:
    def test_quota_exhaustion_raises_typed_error(self):
        async def main():
            sched = JobScheduler(TenantQuota(max_active=2))
            await sched.submit(JobSpec(seed=1))
            await sched.submit(JobSpec(seed=2))
            with pytest.raises(QuotaExceeded) as info:
                await sched.submit(JobSpec(seed=3))
            assert info.value.tenant == "default"
            assert info.value.limit == 2
            assert info.value.active == 2

        run(main())

    def test_quota_is_per_tenant(self):
        async def main():
            sched = JobScheduler(TenantQuota(max_active=1))
            await sched.submit(JobSpec(seed=1), tenant="a")
            await sched.submit(JobSpec(seed=2), tenant="b")  # own budget
            with pytest.raises(QuotaExceeded):
                await sched.submit(JobSpec(seed=3), tenant="a")

        run(main())

    def test_completion_releases_quota(self):
        async def main():
            sched = JobScheduler(TenantQuota(max_active=1))
            await sched.submit(JobSpec(seed=1))
            job = await sched.next_job()
            _finish(sched, job)
            await sched.submit(JobSpec(seed=2))  # does not raise

        run(main())

    def test_coalesced_duplicates_do_not_consume_quota(self):
        async def main():
            sched = JobScheduler(TenantQuota(max_active=1))
            spec = JobSpec(seed=1)
            await sched.submit(spec)
            for _ in range(5):  # all duplicates ride the leader
                await sched.submit(spec)

        run(main())

    def test_invalid_spec_rejected_before_quota_charge(self):
        async def main():
            sched = JobScheduler(TenantQuota(max_active=1))
            with pytest.raises(SubmissionError):
                await sched.submit(JobSpec(n_steps=0))
            await sched.submit(JobSpec(seed=1))  # budget untouched

        run(main())


class TestCoalescing:
    def test_duplicates_all_receive_the_shared_result(self):
        async def main():
            sched = JobScheduler()
            spec = JobSpec(seed=42)
            leader = await sched.submit(spec)
            followers = [await sched.submit(spec) for _ in range(3)]
            for f in followers:
                assert f.state is JobState.COALESCED
                assert f.leader is leader
            granted = await sched.next_job()
            assert granted is leader
            _finish(sched, granted, {"answer": 42})
            results = await asyncio.gather(
                leader.future, *(f.future for f in followers)
            )
            assert all(r.products == {"answer": 42} for r in results)
            assert sched.depth == 0  # followers never queued

        run(main())

    def test_leader_failure_propagates_to_followers(self):
        async def main():
            sched = JobScheduler()
            spec = JobSpec(seed=43)
            leader = await sched.submit(spec)
            follower = await sched.submit(spec)
            granted = await sched.next_job()
            granted.fail(RuntimeError("exploded"))
            sched.task_done(granted)
            with pytest.raises(RuntimeError):
                await follower.future

        run(main())

    def test_different_specs_do_not_coalesce(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(JobSpec(seed=1))
            j2 = await sched.submit(JobSpec(seed=2))
            assert j2.state is JobState.QUEUED
            assert sched.depth == 2

        run(main())


class TestOrdering:
    def test_fair_share_interleaves_tenants(self):
        async def main():
            sched = JobScheduler()
            for i in range(4):
                await sched.submit(JobSpec(seed=i), tenant="burst")
            for i in range(2):
                await sched.submit(JobSpec(seed=100 + i), tenant="late")
            order = []
            for _ in range(6):
                job = await sched.next_job()
                order.append(job.tenant)
                _finish(sched, job)
            # the late tenant's pair does not wait behind the burst
            assert order == ["burst", "late", "burst", "late", "burst", "burst"]

        run(main())

    def test_priority_class_beats_share(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(JobSpec(seed=1), priority=5)
            urgent = await sched.submit(JobSpec(seed=2), priority=0)
            assert (await sched.next_job()) is urgent

        run(main())

    def test_earlier_deadline_wins_within_a_class(self):
        async def main():
            sched = JobScheduler()
            relaxed = await sched.submit(JobSpec(seed=1), tenant="a", deadline=100.0)
            tight = await sched.submit(JobSpec(seed=2), tenant="b", deadline=5.0)
            assert (await sched.next_job()) is tight
            assert (await sched.next_job()) is relaxed

        run(main())


class TestPreemption:
    def test_urgent_arrival_requests_preemption(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(JobSpec(seed=1), priority=5)
            victim = await sched.next_job()  # the only worker is now busy
            assert not victim.preempt_requested
            await sched.submit(JobSpec(seed=2), priority=0)
            assert victim.preempt_requested

        run(main())

    def test_equal_urgency_does_not_preempt(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(JobSpec(seed=1), priority=1)
            victim = await sched.next_job()
            await sched.submit(JobSpec(seed=2), priority=1)
            assert not victim.preempt_requested

        run(main())

    def test_idle_worker_suppresses_preemption(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(JobSpec(seed=1), priority=5)
            victim = await sched.next_job()
            waiter = asyncio.create_task(sched.next_job())
            await asyncio.sleep(0)  # park the second worker
            urgent = await sched.submit(JobSpec(seed=2), priority=0)
            granted = await waiter
            assert granted is urgent  # the idle worker takes it instead
            assert not victim.preempt_requested

        run(main())

    def test_faulted_jobs_are_not_preemptible(self):
        async def main():
            sched = JobScheduler()
            await sched.submit(
                JobSpec(seed=1, faults="kill:rank=1,step=1", ranks=4), priority=5
            )
            victim = await sched.next_job()
            await sched.submit(JobSpec(seed=2), priority=0)
            assert not victim.preempt_requested

        run(main())

    def test_requeued_job_keeps_original_ordering_key(self):
        async def main():
            sched = JobScheduler()
            first = await sched.submit(JobSpec(seed=1), priority=1)
            job = await sched.next_job()
            assert job is first
            sched.requeue(job)
            await asyncio.sleep(0)  # let the requeue task push
            await sched.submit(JobSpec(seed=2), priority=1)
            assert (await sched.next_job()) is first  # still ahead (FIFO seq)
            assert first.preemptions == 1
            assert first.state is JobState.RUNNING

        run(main())


class TestShutdown:
    def test_close_wakes_parked_workers_with_none(self):
        async def main():
            sched = JobScheduler()
            waiter = asyncio.create_task(sched.next_job())
            await asyncio.sleep(0)
            await sched.close()
            assert await waiter is None
            with pytest.raises(Exception):
                await sched.submit(JobSpec(seed=1))

        run(main())
