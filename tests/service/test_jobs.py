"""Job spec validation, canonicalisation, and lifecycle records."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.service.jobs import (
    Job,
    JobResult,
    JobSpec,
    JobState,
    SubmissionError,
)


class TestSpecValidation:
    def test_default_spec_is_valid(self):
        JobSpec().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scenario": "warp-drive"},
            {"n_per_side": 1},
            {"n_per_side": 65},
            {"n_steps": 0},
            {"ranks": 0},
            {"products": ()},
            {"products": ("diagnostics", "tarot_reading")},
            {"degrade_policy": "panic"},
        ],
    )
    def test_malformed_specs_raise_typed_error(self, kwargs):
        with pytest.raises(SubmissionError):
            JobSpec(**kwargs).validate()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SubmissionError):
            JobSpec.from_dict({"n_per_side": 4, "gpu_count": 9})

    def test_from_dict_roundtrips_as_dict(self):
        spec = JobSpec(n_per_side=5, products=("trace", "diagnostics"))
        assert JobSpec.from_dict(spec.as_dict()) == spec

    def test_products_canonical_order(self):
        spec = JobSpec(products=("trace", "halo_catalog", "diagnostics"))
        assert spec.products == ("diagnostics", "halo_catalog", "trace")

    def test_duplicate_products_collapse(self):
        spec = JobSpec(products=("diagnostics", "diagnostics"))
        assert spec.products == ("diagnostics",)


class TestContentHash:
    def test_equal_specs_share_a_hash(self):
        assert JobSpec(n_per_side=5).content_hash() == JobSpec(
            n_per_side=5
        ).content_hash()

    def test_every_field_is_load_bearing(self):
        base = JobSpec()
        for changed in (
            JobSpec(n_per_side=7),
            JobSpec(n_steps=3),
            JobSpec(seed=1),
            JobSpec(backend="jit"),
            JobSpec(products=("diagnostics", "trace")),
            JobSpec(faults="kill:rank=1,step=1"),
            JobSpec(ranks=4),
            JobSpec(degrade_policy="shrink"),
        ):
            assert changed.content_hash() != base.content_hash()

    def test_short_hash_prefixes_full(self):
        spec = JobSpec()
        assert spec.content_hash().startswith(spec.short_hash())


class TestJobLifecycle:
    def test_finish_resolves_future_and_closes_stream(self):
        async def run():
            job = Job(JobSpec(), job_id=1)
            queue = job.subscribe()
            job.publish({"step": 0})
            result = JobResult(
                spec_hash=job.spec_hash, products={}, steps_completed=1
            )
            job.finish(result)
            assert job.state is JobState.COMPLETED
            assert await job.future is result
            assert queue.get_nowait() == {"step": 0}
            assert queue.get_nowait() is None  # end-of-stream sentinel

        asyncio.run(run())

    def test_fail_sets_typed_exception(self):
        async def run():
            job = Job(JobSpec(), job_id=2)
            job.fail(SubmissionError("boom"))
            assert job.state is JobState.FAILED
            with pytest.raises(SubmissionError):
                await job.future
            assert job.error == "boom"

        asyncio.run(run())

    def test_describe_is_json_compatible(self):
        async def run():
            import json

            job = Job(JobSpec(), job_id=3, tenant="acme", priority=2)
            json.dumps(job.describe())

        asyncio.run(run())


class TestJobResult:
    def test_as_dict_flattens_numpy(self):
        result = JobResult(
            spec_hash="x",
            products={"diagnostics": {"a": np.array([0.1, 0.2])}},
            steps_completed=2,
        )
        wire = result.as_dict()
        assert wire["products"]["diagnostics"]["a"] == [0.1, 0.2]
        import json

        json.dumps(wire)
