"""Wire protocol tests: a real unix-socket server, a real sync client.

The server runs in a daemon thread with its own event loop — exactly
how ``repro serve`` hosts it — and the tests talk to it through the
same blocking-socket client functions the CLI uses.
"""

from __future__ import annotations

import asyncio
import threading
import warnings

import pytest

from repro.hacc.sph.pairs import CutoffTruncationWarning
from repro.service import (
    ServiceAPI,
    ServiceConfig,
    ServiceError,
    SimulationService,
    request,
    submit_job,
)

SPEC = {"n_per_side": 4, "n_steps": 1}


@pytest.fixture()
def server(tmp_path):
    """A live service API on a tmp socket; yields the socket path."""
    socket_path = tmp_path / "repro.sock"
    ready = threading.Event()
    failure = []

    def host():
        async def main():
            service = SimulationService(
                ServiceConfig(workers=1, checkpoint_dir=str(tmp_path / "ckpt"))
            )
            api = ServiceAPI(service, socket_path)
            await api.start()
            ready.set()
            await api.serve_until_shutdown()

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CutoffTruncationWarning)
            try:
                asyncio.run(main())
            except Exception as exc:  # pragma: no cover
                failure.append(exc)
                ready.set()

    thread = threading.Thread(target=host, daemon=True)
    thread.start()
    assert ready.wait(10), "server never came up"
    if failure:  # pragma: no cover
        raise failure[0]
    yield socket_path
    if socket_path.exists():
        request(socket_path, {"op": "shutdown"})
    thread.join(timeout=30)
    assert not thread.is_alive(), "server thread did not exit after shutdown"


class TestProtocol:
    def test_ping_reports_protocol_version(self, server):
        response = request(server, {"op": "ping"})
        assert response == {"ok": True, "version": 1}

    def test_unknown_op_is_a_typed_error(self, server):
        response = request(server, {"op": "teleport"})
        assert response["ok"] is False
        assert response["error"]["type"] == "SubmissionError"

    def test_garbage_line_is_a_typed_error_not_a_hangup(self, server):
        import json
        import socket as socketlib

        with socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(str(server))
            sock.sendall(b"this is not json\n")
            sock.sendall(json.dumps({"op": "ping"}).encode() + b"\n")
            data = b""
            while data.count(b"\n") < 2:
                data += sock.recv(65536)
        first, second = [json.loads(l) for l in data.splitlines()[:2]]
        assert first["ok"] is False
        assert second == {"ok": True, "version": 1}

    def test_malformed_spec_returns_submission_error(self, server):
        lines = list(submit_job(server, {"n_per_side": 4, "warp": 9}))
        assert lines[-1]["ok"] is False
        assert lines[-1]["error"]["type"] == "SubmissionError"


class TestSubmitRoundTrip:
    def test_stream_submit_yields_ack_events_result(self, server):
        lines = list(submit_job(server, dict(SPEC, seed=31), stream=True))
        assert lines[0]["ok"] and "spec_hash" in lines[0]  # ack
        events = [l["event"] for l in lines if "event" in l]
        assert [e["step"] for e in events] == [0]
        final = lines[-1]
        assert final["state"] == "completed"
        assert "diagnostics" in final["result"]["products"]

    def test_duplicate_submission_is_served_from_cache(self, server):
        first = list(submit_job(server, dict(SPEC, seed=32)))[-1]
        assert first["result"]["from_cache"] is False
        second = list(submit_job(server, dict(SPEC, seed=32)))[-1]
        assert second["result"]["from_cache"] is True
        assert (
            second["result"]["products"]["diagnostics"]
            == first["result"]["products"]["diagnostics"]
        )

    def test_no_wait_submit_acks_then_jobs_op_sees_it(self, server):
        ack = request(server, {"op": "submit", "spec": dict(SPEC, seed=33), "wait": False})
        assert ack["ok"] and "job_id" in ack
        listing = request(server, {"op": "jobs"})
        assert any(j["job_id"] == ack["job_id"] for j in listing["jobs"])

    def test_stats_op_reports_cache_and_queue(self, server):
        list(submit_job(server, dict(SPEC, seed=34)))
        stats = request(server, {"op": "stats"})["stats"]
        states = [j["state"] for j in stats["jobs"]]
        assert states.count("completed") >= 1
        assert "cache" in stats and "queue_depth" in stats
        assert stats["counters"]["svc.jobs.submitted"] >= 1


class TestClientErrors:
    def test_request_against_missing_socket_raises(self, tmp_path):
        with pytest.raises(OSError):
            request(tmp_path / "nope.sock", {"op": "ping"}, timeout=1)

    def test_service_error_is_an_exception_type(self):
        assert issubclass(ServiceError, Exception)
