"""Content-addressed LRU cache semantics and accounting."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.observability.metrics import MetricsRegistry
from repro.service.cache import ContentCache, payload_nbytes


class TestPayloadSize:
    def test_numpy_reports_nbytes(self):
        arr = np.zeros(100, dtype=np.float64)
        assert payload_nbytes(arr) == 800

    def test_nested_dict_sums_members(self):
        payload = {"a": np.zeros(10), "b": np.zeros(10)}
        assert payload_nbytes(payload) >= 160


class TestLru:
    def test_get_put_roundtrip(self):
        cache = ContentCache(capacity_bytes=1024)
        assert cache.get("result:x") is None
        cache.put("result:x", {"v": 1}, nbytes=10)
        assert cache.get("result:x") == {"v": 1}
        assert "result:x" in cache

    def test_eviction_is_least_recently_used(self):
        cache = ContentCache(capacity_bytes=100)
        cache.put("a", 1, nbytes=40)
        cache.put("b", 2, nbytes=40)
        cache.get("a")  # refresh a; b becomes the LRU victim
        cache.put("c", 3, nbytes=40)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats().evictions == 1

    def test_oversized_entry_is_refused_not_destructive(self):
        cache = ContentCache(capacity_bytes=100)
        cache.put("keep", 1, nbytes=50)
        assert cache.put("huge", 2, nbytes=101) is False
        assert "keep" in cache
        assert "huge" not in cache
        assert cache.stats().refused == 1

    def test_replacing_a_key_reclaims_its_bytes(self):
        cache = ContentCache(capacity_bytes=100)
        cache.put("k", 1, nbytes=60)
        cache.put("k", 2, nbytes=60)
        assert cache.stats().bytes == 60
        assert len(cache) == 1

    def test_peek_does_not_refresh_recency_or_count(self):
        cache = ContentCache(capacity_bytes=80)
        cache.put("a", 1, nbytes=40)
        cache.put("b", 2, nbytes=40)
        cache.peek("a")  # no recency bump: a stays the LRU victim
        cache.put("c", 3, nbytes=40)
        assert "a" not in cache
        stats = cache.stats()
        assert stats.hits == 0 and stats.misses == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ContentCache(capacity_bytes=0)


class TestMetricsAndStats:
    def test_hit_miss_counters_land_on_registry(self):
        metrics = MetricsRegistry()
        cache = ContentCache(capacity_bytes=1024, metrics=metrics)
        cache.get("missing")
        cache.put("k", 1, nbytes=8)
        cache.get("k")
        snap = metrics.snapshot()
        assert snap["counters"]["svc.cache.misses"] == 1
        assert snap["counters"]["svc.cache.hits"] == 1
        assert snap["gauges"]["svc.cache.bytes"] == 8

    def test_stats_by_namespace(self):
        cache = ContentCache(capacity_bytes=1024)
        cache.put("result:a", 1, nbytes=1)
        cache.put("result:b", 1, nbytes=1)
        cache.put("ic:c", 1, nbytes=1)
        stats = cache.stats()
        assert stats.by_namespace == {"result": 2, "ic": 1}
        assert stats.hit_rate == 0.0

    def test_get_or_create_runs_factory_once_per_residency(self):
        cache = ContentCache(capacity_bytes=1024)
        calls = []

        def factory():
            calls.append(1)
            return "value"

        assert cache.get_or_create("k", factory) == "value"
        assert cache.get_or_create("k", factory) == "value"
        assert len(calls) == 1


class TestThreadSafety:
    def test_concurrent_put_get_does_not_corrupt(self):
        cache = ContentCache(capacity_bytes=10_000)
        errors = []

        def worker(wid):
            try:
                for i in range(200):
                    cache.put(f"k{wid}:{i % 20}", i, nbytes=40)
                    cache.get(f"k{wid}:{(i + 7) % 20}")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats.bytes <= 10_000
        assert stats.entries == len(cache)
