"""End-to-end service tests: the whole submit → schedule → execute →
cache path, against the real simulation driver.

The specs here are tiny (n_per_side 4-6, 1-3 steps) so the suite stays
fast, but nothing is mocked: products come from real driver runs,
preemption writes a real checkpoint, and the fault scenario goes
through the real resilience runner.
"""

from __future__ import annotations

import asyncio
import warnings

import numpy as np
import pytest

from repro.hacc.sph.pairs import CutoffTruncationWarning
from repro.service import (
    JobSpec,
    JobState,
    QuotaExceeded,
    ServiceConfig,
    SimulationService,
    SubmissionError,
    TenantQuota,
)

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.hacc.sph.pairs.CutoffTruncationWarning"
)

#: tiny but real: 2x4^3 particles, one step
TINY = JobSpec(n_per_side=4, n_steps=1)


def run(coro):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", CutoffTruncationWarning)
        return asyncio.run(coro)


async def _with_service(body, config=None):
    service = SimulationService(config or ServiceConfig(workers=2))
    await service.start()
    try:
        return await body(service)
    finally:
        await service.shutdown()


class TestConcurrentSubmissions:
    def test_duplicates_complete_once_and_share_products(self, tmp_path):
        async def body(service):
            distinct = [
                JobSpec(n_per_side=4, n_steps=1, seed=seed) for seed in (1, 2)
            ]
            # 6 submissions over 2 distinct specs: 2 executions max
            jobs = []
            for spec in distinct * 3:
                jobs.append(await service.submit(spec))
            results = await asyncio.gather(*(j.future for j in jobs))
            for job, result in zip(jobs, results):
                assert job.state is JobState.COMPLETED
                assert result.steps_completed == 1
                assert "diagnostics" in result.products
            # every duplicate either coalesced in flight or hit the cache
            counters = service.metrics.snapshot()["counters"]
            executed = counters["svc.jobs.submitted"] - (
                counters.get("svc.jobs.coalesced", 0)
                + counters.get("svc.cache.hits", 0)
            )
            assert executed <= len(distinct)
            # duplicates of one spec see identical numbers
            a = [r for j, r in zip(jobs, results) if j.spec.seed == 1]
            for other in a[1:]:
                np.testing.assert_array_equal(
                    a[0].products["diagnostics"]["kinetic_energy"],
                    other.products["diagnostics"]["kinetic_energy"],
                )

        run(
            _with_service(
                body,
                ServiceConfig(workers=2, checkpoint_dir=str(tmp_path)),
            )
        )

    def test_completed_spec_resubmission_is_a_cache_hit(self):
        async def body(service):
            first = await (await service.submit(TINY)).future
            assert not first.from_cache
            again = await (await service.submit(TINY)).future
            assert again.from_cache
            assert service.cache.stats().hits >= 1
            np.testing.assert_array_equal(
                first.products["diagnostics"]["kinetic_energy"],
                again.products["diagnostics"]["kinetic_energy"],
            )

        run(_with_service(body))

    def test_all_products_compute(self):
        async def body(service):
            spec = JobSpec(
                n_per_side=4,
                n_steps=1,
                products=("diagnostics", "power_spectrum", "halo_catalog", "trace"),
            )
            result = await (await service.submit(spec)).future
            assert set(result.products) == {
                "diagnostics",
                "power_spectrum",
                "halo_catalog",
                "trace",
            }
            assert len(result.products["power_spectrum"]["k"]) > 0
            assert result.products["trace"]["launches"] > 0
            assert result.products["halo_catalog"]["n_halos"] >= 0

        run(_with_service(body))

    def test_subscribers_stream_per_step_events(self):
        async def body(service):
            job = await service.submit(JobSpec(n_per_side=4, n_steps=2, seed=9))
            queue = job.subscribe()
            await job.future
            events = []
            while True:
                event = queue.get_nowait()
                if event is None:
                    break
                events.append(event)
            assert [e["step"] for e in events] == [0, 1]
            assert all("kinetic_energy" in e for e in events)

        run(_with_service(body))


class TestPreemption:
    def test_preempted_job_resumes_bit_identically(self, tmp_path):
        spec = JobSpec(n_per_side=6, n_steps=3, seed=5)

        async def preempted(service):
            job = await service.submit(spec)
            # wait until the worker is actually stepping, then preempt
            for _ in range(2000):
                if job.state is JobState.RUNNING and service.scheduler.preempt(job):
                    break
                await asyncio.sleep(0.005)
            else:  # pragma: no cover
                pytest.fail("job never became preemptible")
            result = await job.future
            assert job.preemptions >= 1
            assert job.checkpoint_path is not None
            counters = service.metrics.snapshot()["counters"]
            assert counters["svc.jobs.preempted"] >= 1
            assert counters["svc.jobs.resumed"] >= 1
            return result

        async def clean(service):
            return await (await service.submit(spec)).future

        bumpy = run(
            _with_service(
                preempted,
                ServiceConfig(workers=1, checkpoint_dir=str(tmp_path / "a")),
            )
        )
        smooth = run(
            _with_service(
                clean, ServiceConfig(workers=1, checkpoint_dir=str(tmp_path / "b"))
            )
        )
        assert bumpy.steps_completed == smooth.steps_completed == 3
        for fld in ("kinetic_energy", "thermal_energy", "max_density_contrast"):
            np.testing.assert_array_equal(
                bumpy.products["diagnostics"][fld],
                smooth.products["diagnostics"][fld],
            )


@pytest.mark.faults
class TestFaultedJobs:
    def test_injected_fault_degrades_without_failing_the_request(self):
        async def body(service):
            spec = JobSpec(
                n_per_side=4,
                n_steps=2,
                faults="kill:rank=1,step=1",
                ranks=4,
                degrade_policy="restart",
            )
            result = await (await service.submit(spec)).future
            assert result.steps_completed == 2
            assert result.attempts >= 2  # the kill cost one attempt
            assert result.degraded
            counters = service.metrics.snapshot()["counters"]
            assert counters.get("svc.jobs.failed", 0) == 0

        run(_with_service(body))


class TestAdmission:
    def test_quota_rejection_is_typed(self):
        async def body(service):
            await service.submit(JobSpec(n_per_side=4, n_steps=2, seed=1))
            with pytest.raises(QuotaExceeded):
                await service.submit(JobSpec(n_per_side=4, n_steps=2, seed=2))

        run(
            _with_service(
                body, ServiceConfig(workers=1, quota=TenantQuota(max_active=1))
            )
        )

    def test_unknown_backend_rejected_at_submit(self):
        async def body(service):
            with pytest.raises(SubmissionError):
                await service.submit(JobSpec(backend="quantum"))

        run(_with_service(body))

    def test_malformed_wire_spec_rejected(self):
        async def body(service):
            with pytest.raises(SubmissionError):
                await service.submit({"n_per_side": 4, "warp": 9})

        run(_with_service(body))


class TestEventLog:
    def test_live_event_log_is_schema_valid(self, tmp_path):
        import sys

        sys.path.insert(0, "tools")
        try:
            import check_trace
        finally:
            sys.path.pop(0)

        path = tmp_path / "events.jsonl"

        async def body(service):
            await (await service.submit(TINY)).future
            await (await service.submit(TINY)).future  # a cache hit event

        run(
            _with_service(
                body, ServiceConfig(workers=1, events_out=str(path))
            )
        )
        assert path.exists()
        assert check_trace.validate_file(path) == []
        kinds = [
            __import__("json").loads(line)["kind"]
            for line in path.read_text().splitlines()
        ]
        assert kinds[0] == "header"
        assert kinds[-1] == "metrics"
        names = path.read_text()
        assert "job-submitted" in names
        assert "job-cache-hit" in names
