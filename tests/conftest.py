"""Shared fixtures for the test suite.

The expensive fixtures (the reference physics run and the generated
codebase model) are session-scoped: the physics runs once and every
pricing/metric test reuses its workload trace.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.hacc.ic import ICConfig, zeldovich_ics
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

#: per-test watchdog budget (seconds); override per test with
#: ``@pytest.mark.timeout(seconds)``.  Generous enough for the
#: session-scoped physics fixtures, tight enough that a regressed
#: collective deadlock fails the suite instead of hanging it.
DEFAULT_TEST_TIMEOUT = 300.0


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "faults: fault-injection / resilience scenario tests"
    )
    config.addinivalue_line(
        "markers",
        "timeout(seconds): per-test watchdog budget (stdlib SIGALRM based; "
        f"default {DEFAULT_TEST_TIMEOUT:.0f}s)",
    )
    config.addinivalue_line(
        "markers", "observability: tracing / metrics / profiling tests"
    )


@pytest.fixture(autouse=True)
def _test_watchdog(request):
    """Stdlib deadlock watchdog: any test (e.g. one that regresses a
    collective into a deadlock) is killed by SIGALRM after its budget
    instead of hanging the whole suite.

    CPython delivers signals on the main thread and its lock/join
    waits are signal-interruptible, so this fires even while the test
    is blocked joining deadlocked rank threads.  No-op on platforms
    without ``SIGALRM`` or when pytest runs off the main thread.
    """
    if not hasattr(signal, "SIGALRM") or (
        threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    marker = request.node.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded its {seconds:.0f}s watchdog budget "
            "(deadlocked collective?)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def reference_driver():
    """A completed small reference run (2x 8^3 particles, 5 steps)."""
    driver = AdiabaticDriver(SimulationConfig(n_per_side=8, pm_mesh=8))
    driver.run()
    return driver


@pytest.fixture(scope="session")
def reference_trace(reference_driver):
    """The workload trace of the reference run."""
    return reference_driver.trace


@pytest.fixture(scope="session")
def small_particles():
    """A small two-species particle set (2x 6^3) at z=200."""
    return zeldovich_ics(ICConfig(n_per_side=6, box=177.0 * 6 / 512, seed=7))


@pytest.fixture(scope="session")
def codebase_model(tmp_path_factory):
    """The generated CRK-HACC codebase model and its analysis."""
    from repro.core.codebase import analyze_model, generate_codebase

    root = tmp_path_factory.mktemp("crkhacc") / "src"
    generate_codebase(root)
    return analyze_model(root)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
