"""Shared fixtures for the test suite.

The expensive fixtures (the reference physics run and the generated
codebase model) are session-scoped: the physics runs once and every
pricing/metric test reuses its workload trace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hacc.ic import ICConfig, zeldovich_ics
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig


@pytest.fixture(scope="session")
def reference_driver():
    """A completed small reference run (2x 8^3 particles, 5 steps)."""
    driver = AdiabaticDriver(SimulationConfig(n_per_side=8, pm_mesh=8))
    driver.run()
    return driver


@pytest.fixture(scope="session")
def reference_trace(reference_driver):
    """The workload trace of the reference run."""
    return reference_driver.trace


@pytest.fixture(scope="session")
def small_particles():
    """A small two-species particle set (2x 6^3) at z=200."""
    return zeldovich_ics(ICConfig(n_per_side=6, box=177.0 * 6 / 512, seed=7))


@pytest.fixture(scope="session")
def codebase_model(tmp_path_factory):
    """The generated CRK-HACC codebase model and its analysis."""
    from repro.core.codebase import analyze_model, generate_codebase

    root = tmp_path_factory.mktemp("crkhacc") / "src"
    generate_codebase(root)
    return analyze_model(root)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
