"""Tests for the CRK-HACC-style launch wrapper (Section 4.2)."""

import numpy as np
import pytest

from repro.proglang.launch import KernelFunctionObject, LaunchWrapper, LocalAccessor


class DoubleKernel(KernelFunctionObject):
    NAME = "double"
    LOCAL_MEM_WORDS = 1

    def __call__(self, x):
        return 2 * np.asarray(x)


class ExchangeKernel(KernelFunctionObject):
    NAME = "exchange"
    LOCAL_MEM_WORDS = 4

    def __call__(self, values, src, via="select"):
        if via == "select":
            return self.exchange_select(values, src)
        if via == "memory":
            return self.exchange_local_memory(values, src)
        return self.exchange_butterfly(values, src)


@pytest.fixture
def wrapper():
    w = LaunchWrapper(workgroup_size=128)
    w.register(DoubleKernel)
    w.register(ExchangeKernel)
    return w


class TestRegistry:
    def test_by_name_membership(self, wrapper):
        assert "double" in wrapper
        assert "exchange" in wrapper
        assert "missing" not in wrapper

    def test_duplicate_registration_rejected(self, wrapper):
        with pytest.raises(ValueError):
            wrapper.register(DoubleKernel)

    def test_non_kernel_class_rejected(self, wrapper):
        with pytest.raises(TypeError):
            wrapper.register(object)

    def test_unknown_name_raises(self, wrapper):
        with pytest.raises(KeyError):
            wrapper.construct("missing")

    def test_iteration_sorted(self, wrapper):
        assert list(wrapper) == ["double", "exchange"]


class TestLocalAccessorSizing:
    def test_sized_by_largest_object_times_workgroup(self, wrapper):
        # Section 5.3.1's sizing rule
        acc = wrapper.local_accessor_for(ExchangeKernel)
        assert acc.nbytes == 4 * 4 * 128

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LocalAccessor(-1)

    def test_scratch_reuse_and_reshape(self):
        acc = LocalAccessor(64)
        a = acc.scratch("x", (4,))
        b = acc.scratch("x", (4,))
        assert a is b
        c = acc.scratch("x", (8,))
        assert c.shape == (8,)


class TestLaunching:
    def test_parallel_for_invokes_by_name(self, wrapper):
        out = wrapper.parallel_for("double", [1, 2, 3])
        assert np.array_equal(out, [2, 4, 6])

    def test_exchange_variants_agree(self, wrapper):
        # Section 5.3.1: the local-memory exchange behaves identically
        # to select_from_group -- the one-line macro swap
        values = np.arange(16.0)
        src = np.arange(16)[::-1].copy()
        via_select = wrapper.parallel_for("exchange", values, src, "select")
        via_memory = wrapper.parallel_for("exchange", values, src, "memory")
        assert np.array_equal(via_select, via_memory)

    def test_butterfly_exchange_method(self, wrapper):
        values = np.arange(16.0)
        out = wrapper.parallel_for("exchange", values, 2, "butterfly")
        from repro.proglang.intrinsics import butterfly_partner

        assert np.array_equal(out, values[butterfly_partner(16, 2)])

    def test_base_call_operator_abstract(self):
        with pytest.raises(NotImplementedError):
            KernelFunctionObject()(1)
