"""Tests for programming-model availability (the PP=0 mechanism)."""

import pytest

from repro.machine.registry import AURORA, FRONTIER, POLARIS
from repro.proglang.model import (
    CompileError,
    ProgrammingModel,
    available_models,
    default_fast_math,
    is_available,
    require_available,
)


class TestAvailabilityMatrix:
    def test_cuda_targets_only_nvidia(self):
        assert is_available(ProgrammingModel.CUDA, POLARIS)
        assert not is_available(ProgrammingModel.CUDA, AURORA)
        assert not is_available(ProgrammingModel.CUDA, FRONTIER)

    def test_hip_targets_nvidia_and_amd(self):
        assert is_available(ProgrammingModel.HIP, POLARIS)
        assert is_available(ProgrammingModel.HIP, FRONTIER)
        assert not is_available(ProgrammingModel.HIP, AURORA)

    def test_sycl_targets_everything(self):
        for dev in (AURORA, POLARIS, FRONTIER):
            assert is_available(ProgrammingModel.SYCL, dev)

    def test_visa_targets_only_intel(self):
        assert is_available(ProgrammingModel.SYCL_VISA, AURORA)
        assert not is_available(ProgrammingModel.SYCL_VISA, POLARIS)
        assert not is_available(ProgrammingModel.SYCL_VISA, FRONTIER)

    def test_available_models_lists(self):
        assert ProgrammingModel.SYCL in available_models(AURORA)
        assert ProgrammingModel.CUDA not in available_models(FRONTIER)


class TestFastMathDefaults:
    """Section 4.4: DPC++ defaults to fast math; nvcc/hipcc do not."""

    def test_sycl_defaults_fast(self):
        assert default_fast_math(ProgrammingModel.SYCL)
        assert default_fast_math(ProgrammingModel.SYCL_VISA)

    def test_cuda_hip_default_precise(self):
        assert not default_fast_math(ProgrammingModel.CUDA)
        assert not default_fast_math(ProgrammingModel.HIP)


class TestRequireAvailable:
    def test_passes_when_available(self):
        require_available(ProgrammingModel.SYCL, FRONTIER)

    def test_raises_compile_error(self):
        with pytest.raises(CompileError):
            require_available(ProgrammingModel.CUDA, AURORA)
        with pytest.raises(CompileError):
            require_available(ProgrammingModel.SYCL_VISA, FRONTIER)
