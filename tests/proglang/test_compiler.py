"""Tests for the virtual compiler."""

import pytest

from repro.machine.cost_model import InstructionProfile
from repro.machine.device import GRFMode
from repro.machine.executor import DeviceExecutor
from repro.machine.registry import AURORA, FRONTIER, POLARIS
from repro.proglang.compiler import CompileOptions, Compiler
from repro.proglang.kernel_ir import KernelDefinition
from repro.proglang.model import CompileError, ProgrammingModel


class ToyKernel(KernelDefinition):
    name = "toy"

    def __init__(self, required_subgroup_size=None):
        self.required_subgroup_size = required_subgroup_size

    def profile(self, device, *, subgroup_size, fast_math):
        return InstructionProfile(fma=10.0, registers_needed=32)


class TestCompilerConstruction:
    def test_unavailable_model_rejected_at_construction(self):
        with pytest.raises(CompileError):
            Compiler(AURORA, ProgrammingModel.CUDA)

    def test_available_model_accepted(self):
        Compiler(POLARIS, ProgrammingModel.CUDA)
        Compiler(AURORA, ProgrammingModel.SYCL_VISA)


class TestSubgroupResolution:
    def test_defaults_to_device_native(self):
        k = Compiler(FRONTIER, ProgrammingModel.SYCL).compile(ToyKernel())
        assert k.subgroup_size == 64

    def test_option_overrides(self):
        k = Compiler(AURORA, ProgrammingModel.SYCL).compile(
            ToyKernel(), CompileOptions(subgroup_size=16)
        )
        assert k.subgroup_size == 16

    def test_kernel_requirement_wins(self):
        # [[sycl::reqd_sub_group_size(S)]] (Section 4.3)
        k = Compiler(AURORA, ProgrammingModel.SYCL).compile(
            ToyKernel(required_subgroup_size=16)
        )
        assert k.subgroup_size == 16

    def test_conflicting_requirement_raises(self):
        with pytest.raises(CompileError):
            Compiler(AURORA, ProgrammingModel.SYCL).compile(
                ToyKernel(required_subgroup_size=16),
                CompileOptions(subgroup_size=32),
            )

    def test_unsupported_size_raises(self):
        with pytest.raises(CompileError):
            Compiler(POLARIS, ProgrammingModel.SYCL).compile(
                ToyKernel(), CompileOptions(subgroup_size=16)
            )


class TestFastMathResolution:
    def test_model_defaults_apply(self):
        sycl = Compiler(POLARIS, ProgrammingModel.SYCL).compile(ToyKernel())
        cuda = Compiler(POLARIS, ProgrammingModel.CUDA).compile(ToyKernel())
        assert sycl.fast_math and not cuda.fast_math

    def test_explicit_flag_overrides(self):
        cuda = Compiler(POLARIS, ProgrammingModel.CUDA).compile(
            ToyKernel(), CompileOptions(fast_math=True)
        )
        assert cuda.fast_math


class TestGRFMode:
    def test_large_grf_only_on_intel(self):
        Compiler(AURORA, ProgrammingModel.SYCL).compile(
            ToyKernel(), CompileOptions(grf_mode=GRFMode.LARGE)
        )
        with pytest.raises(CompileError):
            Compiler(FRONTIER, ProgrammingModel.SYCL).compile(
                ToyKernel(), CompileOptions(grf_mode=GRFMode.LARGE)
            )


class TestSubmission:
    def test_submit_records_on_executor(self):
        compiled = Compiler(FRONTIER, ProgrammingModel.SYCL).compile(ToyKernel())
        ex = DeviceExecutor(FRONTIER)
        compiled.submit(ex, 4096)
        assert ex.calls_by_kernel() == {"toy": 1}

    def test_wrong_executor_rejected(self):
        compiled = Compiler(FRONTIER, ProgrammingModel.SYCL).compile(ToyKernel())
        with pytest.raises(CompileError):
            compiled.submit(DeviceExecutor(POLARIS), 4096)

    def test_compile_all_keys_by_name(self):
        compiler = Compiler(POLARIS, ProgrammingModel.SYCL)
        out = compiler.compile_all([ToyKernel()])
        assert set(out) == {"toy"}
