"""Tests for the SYCL 2020 group-algorithm intrinsics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.proglang import intrinsics as I


@pytest.fixture
def lanes():
    return np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])


class TestScans:
    def test_inclusive_sum(self, lanes):
        out = I.inclusive_scan_over_group(lanes)
        assert np.array_equal(out, np.cumsum(lanes))

    def test_exclusive_sum_shifts_by_one(self, lanes):
        inc = I.inclusive_scan_over_group(lanes)
        exc = I.exclusive_scan_over_group(lanes)
        assert exc[0] == 0.0
        assert np.array_equal(exc[1:], inc[:-1])

    def test_exclusive_custom_identity(self, lanes):
        exc = I.exclusive_scan_over_group(lanes, identity=7.0)
        assert exc[0] == 7.0

    def test_max_scan_monotone(self, lanes):
        out = I.inclusive_scan_over_group(lanes, op="max")
        assert np.all(np.diff(out) >= 0)

    def test_unknown_op(self, lanes):
        with pytest.raises(ValueError):
            I.inclusive_scan_over_group(lanes, op="prod")


class TestPredicates:
    def test_any_all_none(self):
        pred = np.array([False, False, True, False])
        assert np.all(I.any_of_group(pred))
        assert not np.any(I.all_of_group(pred))
        assert not np.any(I.none_of_group(pred))

    def test_all_false(self):
        pred = np.zeros(8, dtype=bool)
        assert not np.any(I.any_of_group(pred))
        assert np.all(I.none_of_group(pred))

    def test_uniform_result_across_lanes(self):
        pred = np.array([True, False, False, False])
        for fn in (I.any_of_group, I.all_of_group, I.none_of_group):
            out = fn(pred)
            assert len(set(out.tolist())) == 1


class TestShifts:
    def test_shift_left_reads_higher_lanes(self, lanes):
        out = I.shift_group_left(lanes, 2)
        assert np.array_equal(out[:6], lanes[2:])
        assert np.all(out[6:] == 0.0)

    def test_shift_right_reads_lower_lanes(self, lanes):
        out = I.shift_group_right(lanes, 3, fill=-1.0)
        assert np.array_equal(out[3:], lanes[:5])
        assert np.all(out[:3] == -1.0)

    def test_shift_roundtrip_interior(self, lanes):
        back = I.shift_group_right(I.shift_group_left(lanes, 1), 1)
        assert np.array_equal(back[1:], lanes[1:])

    def test_delta_bounds(self, lanes):
        with pytest.raises(ValueError):
            I.shift_group_left(lanes, 9)
        with pytest.raises(ValueError):
            I.shift_group_right(lanes, -1)

    def test_full_shift_all_fill(self, lanes):
        assert np.all(I.shift_group_left(lanes, 8, fill=5.0) == 5.0)


class TestPermuteByXor:
    def test_alias_of_shuffle_xor(self, lanes):
        assert np.array_equal(
            I.permute_group_by_xor(lanes, 5), I.shuffle_xor(lanes, 5)
        )


class TestScanProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.sampled_from([4, 8, 16, 32]),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_scan_last_element_is_reduction(self, values):
        scan = I.inclusive_scan_over_group(values)
        total = I.reduce_over_group(values)[0]
        assert scan[-1] == pytest.approx(total, rel=1e-9, abs=1e-9)

    @given(
        hnp.arrays(
            np.float64,
            st.sampled_from([4, 8, 16]),
            elements=st.floats(0.0, 100.0, allow_nan=False),
        ),
        st.integers(0, 16),
    )
    def test_shift_preserves_interior_values(self, values, delta):
        if delta > len(values):
            return
        out = I.shift_group_left(values, delta)
        kept = len(values) - delta
        assert np.array_equal(out[:kept], values[delta:])
