"""Tests for the functional sub-group intrinsics."""

import numpy as np
import pytest

from repro.proglang import intrinsics as I


@pytest.fixture
def lanes32():
    return np.arange(32, dtype=float)


class TestSelectFromGroup:
    def test_identity_gather(self, lanes32):
        assert np.array_equal(I.select_from_group(lanes32, np.arange(32)), lanes32)

    def test_uniform_gather_is_broadcast(self, lanes32):
        out = I.select_from_group(lanes32, 7)
        assert np.all(out == 7.0)

    def test_batched_leading_axes(self):
        x = np.arange(64, dtype=float).reshape(2, 32)
        out = I.select_from_group(x, np.zeros(32, dtype=int))
        assert np.all(out[0] == 0.0)
        assert np.all(out[1] == 32.0)

    def test_out_of_range_lane_raises(self, lanes32):
        with pytest.raises(IndexError):
            I.select_from_group(lanes32, 32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            I.select_from_group(np.arange(12.0), 0)


class TestShuffleXor:
    def test_is_involution(self, lanes32):
        for mask in (1, 5, 16, 31):
            assert np.array_equal(
                I.shuffle_xor(I.shuffle_xor(lanes32, mask), mask), lanes32
            )

    def test_values_swap_between_partner_lanes(self, lanes32):
        out = I.shuffle_xor(lanes32, 16)
        assert out[0] == 16.0
        assert out[16] == 0.0

    def test_mask_zero_is_identity(self, lanes32):
        assert np.array_equal(I.shuffle_xor(lanes32, 0), lanes32)

    def test_bad_mask_raises(self, lanes32):
        with pytest.raises(ValueError):
            I.shuffle_xor(lanes32, 32)


class TestGroupBroadcast:
    def test_all_lanes_get_source_value(self, lanes32):
        assert np.all(I.group_broadcast(lanes32, 5) == 5.0)

    def test_bad_lane_raises(self, lanes32):
        with pytest.raises(ValueError):
            I.group_broadcast(lanes32, -1)


class TestReduceOverGroup:
    def test_sum(self, lanes32):
        assert np.all(I.reduce_over_group(lanes32, "sum") == lanes32.sum())

    def test_min_max(self, lanes32):
        assert np.all(I.reduce_over_group(lanes32, "min") == 0.0)
        assert np.all(I.reduce_over_group(lanes32, "max") == 31.0)

    def test_unknown_op(self, lanes32):
        with pytest.raises(ValueError):
            I.reduce_over_group(lanes32, "prod")


class TestButterfly:
    @pytest.mark.parametrize("size", [4, 8, 16, 32, 64])
    @pytest.mark.parametrize("step", [0, 1, 3, 7])
    def test_partner_crosses_halves_and_is_involution(self, size, step):
        p = I.butterfly_partner(size, step)
        half = size // 2
        lanes = np.arange(size)
        assert np.all((lanes < half) != (p < half))
        assert np.array_equal(p[p], lanes)

    def test_all_steps_cover_all_cross_pairs(self):
        # over S/2 steps every lower lane meets every upper lane once
        size, half = 32, 16
        seen = set()
        for step in range(half):
            p = I.butterfly_partner(size, step)
            for lane in range(half):
                seen.add((lane, int(p[lane])))
        assert len(seen) == half * half

    def test_exchange_matches_partner_gather(self):
        x = np.arange(32, dtype=float)
        p = I.butterfly_partner(32, 3)
        assert np.array_equal(I.butterfly_exchange(x, 3), x[p])

    def test_xor_partner_coverage(self):
        # XOR masks [16, 32) also pair every lower with every upper lane
        size, half = 32, 16
        seen = set()
        for step in range(half):
            p = I.xor_partner(size, half + step)
            for lane in range(half):
                seen.add((lane, int(p[lane])))
        assert len(seen) == half * half
