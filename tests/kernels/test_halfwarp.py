"""Tests for the half-warp algorithm (Figures 3 and 4)."""

import numpy as np
import pytest

from repro.kernels.halfwarp import (
    HalfWarpResult,
    density_pair_function,
    gravity_pair_function,
    reference_all_pairs,
    run_halfwarp,
)
from repro.kernels.variants import ALL_VARIANTS, variant_by_name


@pytest.fixture
def leaf_payloads(rng):
    """Two leaves of 16 particles with (x, y, z, m) payloads."""
    a = rng.random((4, 16))
    b = rng.random((4, 16)) + 0.5
    return a, b


class TestReference:
    def test_reference_counts_all_cross_pairs(self, leaf_payloads):
        a, b = leaf_payloads
        count_fn = lambda own, other: np.ones(own.shape[-1])
        ref = reference_all_pairs(a, b, count_fn)
        # every particle interacts with all 16 of the other leaf
        assert np.all(ref.leaf_a == 16)
        assert np.all(ref.leaf_b == 16)


class TestSchedules:
    @pytest.mark.parametrize("schedule", ["xor", "butterfly"])
    def test_gravity_matches_reference(self, leaf_payloads, schedule):
        a, b = leaf_payloads
        fn = gravity_pair_function(0.05)
        ref = reference_all_pairs(a, b, fn)
        res = run_halfwarp(a, b, fn, variant_by_name("select"), schedule=schedule)
        assert np.allclose(res.leaf_a, ref.leaf_a)
        assert np.allclose(res.leaf_b, ref.leaf_b)

    def test_density_matches_reference(self, leaf_payloads):
        a, b = leaf_payloads
        fn = density_pair_function(h=0.8)
        ref = reference_all_pairs(a, b, fn)
        res = run_halfwarp(a, b, fn, variant_by_name("select"))
        assert np.allclose(res.leaf_a, ref.leaf_a)
        assert np.allclose(res.leaf_b, ref.leaf_b)

    def test_unknown_schedule_rejected(self, leaf_payloads):
        a, b = leaf_payloads
        with pytest.raises(ValueError):
            run_halfwarp(a, b, gravity_pair_function(0.1), variant_by_name("select"), schedule="ring")


class TestVariantEquivalence:
    """Section 5.3: every variant computes identical physics (the
    one-line-macro interchangeability)."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_variant_matches_reference(self, leaf_payloads, variant):
        a, b = leaf_payloads
        fn = gravity_pair_function(0.05)
        ref = reference_all_pairs(a, b, fn)
        res = run_halfwarp(a, b, fn, variant)
        assert np.allclose(res.leaf_a, ref.leaf_a)
        assert np.allclose(res.leaf_b, ref.leaf_b)

    def test_all_variants_bitwise_consistent_physics(self, leaf_payloads):
        a, b = leaf_payloads
        fn = density_pair_function(h=1.0)
        results = [run_halfwarp(a, b, fn, v) for v in ALL_VARIANTS]
        for res in results[1:]:
            assert np.allclose(res.leaf_a, results[0].leaf_a, rtol=1e-12)
            assert np.allclose(res.leaf_b, results[0].leaf_b, rtol=1e-12)


class TestPairSymmetry:
    def test_symmetric_pair_function_gives_symmetric_totals(self, rng):
        # a symmetric contribution f(i,j) = f(j,i): both leaves must
        # accumulate the same total (the invariant of Figure 4)
        a = rng.random((3, 8))
        b = rng.random((3, 8))

        def sym(own, other):
            return np.sum((own - other) ** 2, axis=0)

        res = run_halfwarp(a, b, sym, variant_by_name("select"))
        assert res.leaf_a.sum() == pytest.approx(res.leaf_b.sum())

    def test_schedule_checks_cross_leaf_invariant(self, rng):
        # corrupting the schedule is caught by the invariant checks
        from repro.kernels import halfwarp as hw

        with pytest.raises(AssertionError):
            hw._check_cross_leaf(np.arange(32), 16)  # identity: no crossing


class TestInputValidation:
    def test_mismatched_payloads_rejected(self, rng):
        with pytest.raises(ValueError):
            run_halfwarp(
                rng.random((4, 16)),
                rng.random((4, 8)),
                gravity_pair_function(0.1),
                variant_by_name("select"),
            )

    def test_non_power_of_two_leaf_rejected(self, rng):
        with pytest.raises(ValueError):
            run_halfwarp(
                rng.random((4, 12)),
                rng.random((4, 12)),
                gravity_pair_function(0.1),
                variant_by_name("select"),
            )
