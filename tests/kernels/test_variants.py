"""Tests for the variant layer (cost contributions + device rules)."""

import numpy as np
import pytest

from repro.kernels.specs import KERNEL_SPECS
from repro.kernels.variants import ALL_VARIANTS, Variant, variant_by_name
from repro.machine.device import GRFMode
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestLookup:
    def test_by_short_name(self):
        assert variant_by_name("select").name == "select"
        assert variant_by_name("memory_object").name == "memory_object"

    def test_by_paper_label(self):
        assert variant_by_name("Memory, 32-bit").name == "memory32"
        assert variant_by_name("vISA").name == "visa"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            variant_by_name("simd-magic")

    def test_paper_presentation_order(self):
        assert [v.name for v in ALL_VARIANTS] == [
            "select",
            "memory32",
            "memory_object",
            "broadcast",
            "visa",
        ]


class TestSupportMatrix:
    def test_visa_intel_only(self):
        visa = variant_by_name("visa")
        assert visa.supported(AURORA)
        assert not visa.supported(POLARIS)
        assert not visa.supported(FRONTIER)

    def test_others_supported_everywhere(self):
        for v in ALL_VARIANTS:
            if v.name == "visa":
                continue
            for dev in (AURORA, POLARIS, FRONTIER):
                assert v.supported(dev), (v.name, dev.name)


class TestSubgroupChoices:
    def test_broadcast_uses_16_on_intel(self):
        # Section 5.3.2: register pressure
        b = variant_by_name("broadcast")
        spec = KERNEL_SPECS["acceleration"]
        assert b.subgroup_size(AURORA, spec) == 16
        assert b.subgroup_size(POLARIS, spec) == 32
        assert b.subgroup_size(FRONTIER, spec) == 64

    def test_other_variants_use_device_default(self):
        spec = KERNEL_SPECS["geometry"]
        for v in ALL_VARIANTS:
            if v.name == "broadcast":
                continue
            assert v.subgroup_size(FRONTIER, spec) == 64

    def test_large_grf_selected_on_intel(self):
        # "Almost all results in this paper use 256 registers"
        for v in ALL_VARIANTS:
            assert v.grf_mode(AURORA) is GRFMode.LARGE
            assert v.grf_mode(POLARIS) is GRFMode.SMALL


class TestProfileContributions:
    def test_select_moves_payload_through_shuffles(self):
        spec = KERNEL_SPECS["acceleration"]
        pf = variant_by_name("select").profile_fields(spec, POLARIS, 32)
        assert pf.shuffles == spec.payload_words
        assert pf.broadcasts == 0
        assert pf.lm_exchanges_32bit == 0

    def test_memory32_one_roundtrip_per_word(self):
        spec = KERNEL_SPECS["extras"]
        pf = variant_by_name("memory32").profile_fields(spec, POLARIS, 32)
        assert pf.lm_exchanges_32bit == spec.payload_words
        assert pf.local_mem_bytes_per_workgroup > 0

    def test_memory_object_single_object(self):
        spec = KERNEL_SPECS["extras"]
        pf = variant_by_name("memory_object").profile_fields(spec, POLARIS, 32)
        assert pf.lm_exchange_objects == 1.0
        assert pf.lm_object_words == spec.payload_words

    def test_broadcast_trades_flops_for_atomics(self):
        spec = KERNEL_SPECS["energy"]
        pf = variant_by_name("broadcast").profile_fields(spec, POLARIS, 32)
        assert pf.flop_factor > 1.0
        assert pf.atomic_factor < 1.0
        assert pf.broadcasts == spec.payload_words

    def test_visa_raises_off_intel(self):
        spec = KERNEL_SPECS["geometry"]
        with pytest.raises(RuntimeError):
            variant_by_name("visa").profile_fields(spec, POLARIS, 32)


class TestEffectiveRegisters:
    """Uniform state is stored once per thread on SIMD register files."""

    def test_scalar_regfile_pays_full_price(self):
        assert Variant.effective_registers(300, 90, POLARIS, 32) == 300
        assert Variant.effective_registers(300, 90, FRONTIER, 64) == 300

    def test_simd_regfile_shares_uniform_state(self):
        # 300 total, 90 uniform at sub-group 16: 210 + ceil(90/16) = 216
        assert Variant.effective_registers(300, 90, AURORA, 16) == 216

    def test_uniform_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            Variant.effective_registers(50, 60, AURORA, 16)

    def test_broadcast_fits_on_aurora_but_spills_on_a100(self):
        # the paper's central register story, as data
        spec = KERNEL_SPECS["acceleration"]
        b = variant_by_name("broadcast")
        pf_aurora = b.profile_fields(spec, AURORA, 16)
        pf_polaris = b.profile_fields(spec, POLARIS, 32)
        budget_aurora = AURORA.registers_per_workitem(16, GRFMode.LARGE)
        assert pf_aurora.registers <= budget_aurora
        assert pf_polaris.registers > POLARIS.max_regs_per_workitem


class TestFunctionalExchanges:
    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_exchange_equals_gather(self, variant, rng):
        values = rng.random(16)
        partner = rng.permutation(16)
        out = variant.exchange(values, partner, {})
        assert np.allclose(out, values[partner])
