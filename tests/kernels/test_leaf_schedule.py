"""Tests for leaf-pair scheduling and lane-level execution."""

import numpy as np
import pytest

from repro.hacc.tree import RCBTree
from repro.kernels.leaf_schedule import (
    build_schedule,
    execute_schedule,
    schedule_statistics,
)
from repro.kernels.variants import ALL_VARIANTS, variant_by_name


@pytest.fixture
def cluster(rng):
    """A compact particle cluster (every leaf pair within cutoff).

    128 = 2^7 particles so the median-splitting RCB tree produces
    exactly full 16-particle leaves.
    """
    pos = rng.uniform(0, 2.0, (128, 3))
    return pos


@pytest.fixture
def tree(cluster):
    return RCBTree.build(cluster, leaf_size=16)


class TestBuildSchedule:
    def test_instance_counts_match_figure4_formula(self, tree):
        # 128 particles -> 8 leaves of 16 at sub-group 32: every leaf
        # pair is exactly one instance
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        n = tree.n_leaves
        assert schedule.n_instances == n * (n + 1) // 2

    def test_smaller_subgroups_tile_leaves(self, tree):
        s32 = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        s16 = build_schedule(tree, cutoff=5.0, subgroup_size=16)
        # half of 16 is 8: each 16-particle leaf splits into 2 chunks,
        # so every pair becomes 4 instances
        assert s16.n_instances == 4 * s32.n_instances

    def test_full_leaves_full_lane_efficiency(self, tree):
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        assert schedule.lane_efficiency == 1.0

    def test_partial_leaves_padded(self, rng):
        pos = rng.uniform(0, 1.0, (20, 3))  # not a multiple of 16
        tree = RCBTree.build(pos, leaf_size=16)
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        assert 0 < schedule.lane_efficiency < 1.0

    def test_bad_subgroup_rejected(self, tree):
        with pytest.raises(ValueError):
            build_schedule(tree, cutoff=5.0, subgroup_size=24)


class TestExecuteSchedule:
    def _brute_force(self, pos, fn_scalar):
        n = len(pos)
        out = np.zeros(n)
        for i in range(n):
            for j in range(n):
                if i != j:
                    out[i] += fn_scalar(pos[i], pos[j])
        return out

    def test_matches_brute_force_all_pairs(self, cluster, tree):
        # compact cluster + generous cutoff: the schedule covers every
        # (i, j) pair exactly once per direction
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        fields = cluster.T.copy()  # (3, n)

        def pair_fn(own, other):
            d = own - other
            return 1.0 / (np.einsum("fl,fl->l", d, d) + 0.01)

        result = execute_schedule(
            schedule, fields, pair_fn, variant_by_name("select")
        )
        expected = self._brute_force(
            cluster, lambda a, b: 1.0 / (np.dot(a - b, a - b) + 0.01)
        )
        assert np.allclose(result, expected, rtol=1e-10)

    @pytest.mark.parametrize("variant", ALL_VARIANTS, ids=lambda v: v.name)
    def test_all_variants_agree(self, cluster, tree, variant):
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        fields = cluster.T.copy()

        def pair_fn(own, other):
            d = own - other
            return np.sqrt(np.einsum("fl,fl->l", d, d) + 1e-6)

        baseline = execute_schedule(
            schedule, fields, pair_fn, variant_by_name("select")
        )
        result = execute_schedule(schedule, fields, pair_fn, variant)
        assert np.allclose(result, baseline, rtol=1e-12)

    def test_padded_lanes_do_not_contribute(self, rng):
        pos = rng.uniform(0, 1.0, (20, 3))
        tree = RCBTree.build(pos, leaf_size=16)
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        fields = pos.T.copy()

        def count_fn(own, other):
            return np.ones(own.shape[-1])

        counts = execute_schedule(
            schedule, fields, count_fn, variant_by_name("select")
        )
        # each particle interacts with the other 19 exactly once
        assert np.allclose(counts, 19.0)

    def test_self_interactions_masked(self, rng):
        pos = rng.uniform(0, 1.0, (16, 3))  # a single self-paired leaf
        tree = RCBTree.build(pos, leaf_size=16)
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)

        def blowup_fn(own, other):
            d = own - other
            return 1.0 / np.maximum(np.einsum("fl,fl->l", d, d), 1e-300)

        result = execute_schedule(
            schedule, pos.T.copy(), blowup_fn, variant_by_name("select")
        )
        assert np.all(np.isfinite(result))  # r=0 self terms never hit


class TestStatistics:
    def test_interaction_accounting(self, cluster, tree):
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        stats = schedule_statistics(schedule, len(cluster))
        # directed-pair count: schedule covers each unordered pair once,
        # accumulating both sides -> n*(n-1)/2 evaluations... per the
        # scheduled count convention (both lanes advance per pair)
        assert stats["interactions_scheduled"] == schedule.interactions_scheduled()
        assert stats["lane_efficiency"] == 1.0
        assert stats["interactions_per_particle"] > 0

    def test_counts_align_with_execution(self, cluster, tree):
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)

        def count_fn(own, other):
            return np.ones(own.shape[-1])

        counts = execute_schedule(
            schedule, cluster.T.copy(), count_fn, variant_by_name("select")
        )
        # accumulation events equal the schedule's own accounting
        assert counts.sum() == pytest.approx(schedule.interactions_scheduled())

    def test_bad_particle_count(self, tree):
        schedule = build_schedule(tree, cutoff=5.0, subgroup_size=32)
        with pytest.raises(ValueError):
            schedule_statistics(schedule, 0)
