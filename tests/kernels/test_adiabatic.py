"""Tests for trace pricing (the physics -> performance bridge)."""

import pytest

from repro.hacc.timestep import WorkloadTrace
from repro.kernels.adiabatic import (
    AdiabaticKernelDefinition,
    TracePricer,
    best_variant_map,
    compiler_variability,
    price_trace,
)
from repro.kernels.specs import KERNEL_SPECS
from repro.kernels.variants import ALL_VARIANTS, variant_by_name
from repro.machine.registry import AURORA, FRONTIER, POLARIS
from repro.proglang.model import CompileError, ProgrammingModel


@pytest.fixture
def tiny_trace():
    t = WorkloadTrace()
    for timer in ("upGeo", "upCor", "upBarEx", "upBarAc", "upBarDu"):
        t.record(timer, 4096, 64.0)
    t.record("upGravSR", 8192, 200.0)
    return t


class TestDefinitionProfiles:
    def test_profile_scales_with_interactions(self):
        spec = KERNEL_SPECS["geometry"]
        v = variant_by_name("select")
        p1 = AdiabaticKernelDefinition(spec, v, 32.0).profile(
            POLARIS, subgroup_size=32, fast_math=True
        )
        p2 = AdiabaticKernelDefinition(spec, v, 64.0).profile(
            POLARIS, subgroup_size=32, fast_math=True
        )
        assert p2.fma == pytest.approx(2 * p1.fma)
        assert p2.shuffles == pytest.approx(2 * p1.shuffles)

    def test_atomics_follow_commit_interval(self):
        spec = KERNEL_SPECS["acceleration"]  # atomic_interval = 2
        v = variant_by_name("select")
        p = AdiabaticKernelDefinition(spec, v, 64.0).profile(
            POLARIS, subgroup_size=32, fast_math=True
        )
        assert p.atomic_adds == pytest.approx(spec.output_words * 64.0 / 2.0)

    def test_gravity_exchanges_amortised(self):
        spec = KERNEL_SPECS["gravity"]
        v = variant_by_name("select")
        p = AdiabaticKernelDefinition(spec, v, 160.0).profile(
            POLARIS, subgroup_size=32, fast_math=True
        )
        assert p.shuffles == pytest.approx(spec.payload_words * 160.0 / 16.0)


class TestTracePricer:
    def test_reports_every_timer(self, tiny_trace):
        report = price_trace(tiny_trace, FRONTIER, ProgrammingModel.SYCL, "select")
        assert set(report.seconds_by_timer) == {
            "upGeo",
            "upCor",
            "upBarEx",
            "upBarAc",
            "upBarDu",
            "upGravSR",
        }
        assert report.total_seconds > 0

    def test_hotspot_seconds_excludes_gravity(self, tiny_trace):
        report = price_trace(tiny_trace, FRONTIER, ProgrammingModel.SYCL, "select")
        assert report.hotspot_seconds() < report.total_seconds

    def test_visa_pricing_raises_off_intel(self, tiny_trace):
        with pytest.raises(CompileError):
            price_trace(tiny_trace, POLARIS, ProgrammingModel.SYCL, "visa")

    def test_unavailable_model_raises(self, tiny_trace):
        with pytest.raises(CompileError):
            TracePricer(AURORA, ProgrammingModel.CUDA, "select")

    def test_per_kernel_variant_mapping(self, tiny_trace):
        mapping = {name: variant_by_name("select") for name in KERNEL_SPECS}
        mapping["acceleration"] = variant_by_name("broadcast")
        report = price_trace(tiny_trace, AURORA, ProgrammingModel.SYCL, mapping)
        assert report.total_seconds > 0

    def test_incomplete_mapping_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            TracePricer(
                AURORA,
                ProgrammingModel.SYCL,
                {"geometry": variant_by_name("select")},
            )

    def test_fast_math_override_speeds_cuda(self, tiny_trace):
        slow = price_trace(tiny_trace, POLARIS, ProgrammingModel.CUDA, "select")
        fast = price_trace(
            tiny_trace, POLARIS, ProgrammingModel.CUDA, "select", fast_math=True
        )
        assert fast.total_seconds < slow.total_seconds

    def test_unknown_timer_rejected(self):
        t = WorkloadTrace()
        t.record("upMystery", 100, 10.0)
        with pytest.raises(KeyError):
            price_trace(t, FRONTIER, ProgrammingModel.SYCL, "select")


class TestBestVariantMap:
    def test_select_everywhere_on_polaris(self, tiny_trace):
        best = best_variant_map(tiny_trace, POLARIS, ProgrammingModel.SYCL)
        assert all(v.name == "select" for v in best.values())

    def test_aurora_mixes_variants(self, tiny_trace):
        best = best_variant_map(tiny_trace, AURORA, ProgrammingModel.SYCL)
        names = {v.name for v in best.values()}
        assert "select" not in names  # select is never best on Aurora
        assert len(names) >= 2  # no single best variant (Section 5.4)

    def test_best_beats_or_ties_every_single_variant(self, tiny_trace):
        best = best_variant_map(tiny_trace, AURORA, ProgrammingModel.SYCL)
        t_best = price_trace(
            tiny_trace, AURORA, ProgrammingModel.SYCL, best
        ).total_seconds
        for v in ALL_VARIANTS:
            if not v.supported(AURORA):
                continue
            t_single = price_trace(
                tiny_trace, AURORA, ProgrammingModel.SYCL, v
            ).total_seconds
            assert t_best <= t_single * (1 + 1e-12)


class TestCompilerVariability:
    def test_sycl_is_the_baseline(self):
        assert compiler_variability(ProgrammingModel.SYCL, "geometry") == 1.0

    def test_cuda_factor_small_and_deterministic(self):
        f1 = compiler_variability(ProgrammingModel.CUDA, "geometry")
        f2 = compiler_variability(ProgrammingModel.CUDA, "geometry")
        assert f1 == f2
        assert 0.97 < f1 < 1.05

    def test_kernels_differ(self):
        # "some kernels are slightly faster and some are slightly slower"
        factors = {
            compiler_variability(ProgrammingModel.CUDA, k) for k in KERNEL_SPECS
        }
        assert len(factors) == len(KERNEL_SPECS)
