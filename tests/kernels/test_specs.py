"""Tests for the kernel workload characterizations."""

import pytest

from repro.hacc.timestep import GRAVITY_KERNEL, TIMER_NAMES
from repro.kernels.specs import (
    HOTSPOT_KERNELS,
    HOTSPOT_TIMERS,
    KERNEL_SPECS,
    TIMER_TO_KERNEL,
)


class TestCoverage:
    def test_five_hotspots_plus_gravity(self):
        assert set(KERNEL_SPECS) == set(HOTSPOT_KERNELS) | {"gravity"}

    def test_every_driver_timer_maps_to_a_spec(self):
        for timer in TIMER_NAMES + (GRAVITY_KERNEL,):
            assert timer in TIMER_TO_KERNEL, timer

    def test_acceleration_and_energy_have_two_timers(self):
        # "Some of CRK-HACC's kernels are called more than once in a
        # single timestep" (Section 5.4)
        assert KERNEL_SPECS["acceleration"].timers == ("upBarAc", "upBarAcF")
        assert KERNEL_SPECS["energy"].timers == ("upBarDu", "upBarDuF")

    def test_hotspot_timers_are_the_figure_axes(self):
        assert HOTSPOT_TIMERS == (
            "upGeo",
            "upCor",
            "upBarEx",
            "upBarAc",
            "upBarAcF",
            "upBarDu",
            "upBarDuF",
        )


class TestPhysicalConsistency:
    """The characterizations must be consistent with the physics."""

    def test_all_counts_positive(self):
        for spec in KERNEL_SPECS.values():
            assert spec.fma_per_pair > 0
            assert spec.payload_words > 0
            assert spec.output_words > 0
            assert spec.registers_halfwarp > 0

    def test_acceleration_has_largest_payload(self):
        # it reads the full pair state (position, h, V, v, P, rho, cs, m)
        accel = KERNEL_SPECS["acceleration"]
        assert accel.payload_words == max(
            s.payload_words for s in KERNEL_SPECS.values()
        )

    def test_extras_commits_most_outputs(self):
        # rho + grad rho(3) + grad v(9) + grad P(3)
        assert KERNEL_SPECS["extras"].output_words == 16

    def test_register_heavy_kernels(self):
        # Section 5.4 calls Energy and Acceleration "register heavy"
        heavy = {"acceleration", "energy"}
        threshold = KERNEL_SPECS["geometry"].registers_halfwarp
        for name in heavy:
            assert KERNEL_SPECS[name].registers_halfwarp > 2 * threshold

    def test_broadcast_roughly_doubles_registers(self):
        # both particles live per work-item (Section 5.3.2)
        for spec in KERNEL_SPECS.values():
            assert spec.registers_broadcast > 1.8 * spec.registers_halfwarp

    def test_broadcast_reduces_atomics_and_inflates_flops(self):
        for spec in KERNEL_SPECS.values():
            assert spec.broadcast_atomic_factor < 1.0
            assert spec.broadcast_flop_factor > 1.0

    def test_atomic_heavy_kernels_commit_frequently(self):
        # acceleration/energy commit partial sums every few iterations
        assert KERNEL_SPECS["acceleration"].atomic_interval < 4
        assert KERNEL_SPECS["energy"].atomic_interval < 4
        assert KERNEL_SPECS["geometry"].atomic_interval >= 8

    def test_only_force_kernels_do_minmax_reductions(self):
        for name, spec in KERNEL_SPECS.items():
            if name in ("acceleration", "energy"):
                assert spec.minmax_per_particle > 0
            else:
                assert spec.minmax_per_particle == 0

    def test_uniform_registers_bounded_by_total(self):
        for spec in KERNEL_SPECS.values():
            assert spec.uniform_registers_halfwarp < spec.registers_halfwarp
            assert spec.uniform_registers_broadcast < spec.registers_broadcast

    def test_gravity_amortises_exchanges(self):
        # the j-block is loaded once per leaf-pair instance
        assert KERNEL_SPECS["gravity"].exchange_interval == 16.0
        for name in HOTSPOT_KERNELS:
            assert KERNEL_SPECS[name].exchange_interval == 1.0

    def test_flops_trace_to_kernel_math(self):
        from repro.hacc.sph.kernels_math import (
            GRADW_FLOPS_PER_PAIR,
            W_FLOPS_PER_PAIR,
        )

        # geometry evaluates one W per pair; acceleration evaluates two
        # corrected gradients -- the specs must reflect that ordering
        geo = KERNEL_SPECS["geometry"].fma_per_pair
        accel = KERNEL_SPECS["acceleration"].fma_per_pair
        assert accel > geo
        assert geo >= W_FLOPS_PER_PAIR / 2
        assert accel >= GRADW_FLOPS_PER_PAIR
