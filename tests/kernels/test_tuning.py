"""Tests for the per-kernel auto-tuner (the paper's declared future work)."""

import pytest

from repro.kernels.tuning import autotune, tuning_table
from repro.machine.registry import AURORA, FRONTIER, POLARIS


@pytest.fixture(scope="module")
def tuned(reference_trace):
    return {
        dev.system: autotune(reference_trace, dev)
        for dev in (AURORA, POLARIS, FRONTIER)
    }


class TestAutotune:
    def test_covers_every_kernel_in_trace(self, tuned, reference_trace):
        from repro.kernels.specs import TIMER_TO_KERNEL

        expected = {TIMER_TO_KERNEL[i.name] for i in reference_trace.invocations}
        for result in tuned.values():
            assert set(result.configs) == expected

    def test_only_legal_configurations_selected(self, tuned):
        for system, result in tuned.items():
            from repro.machine.registry import device_by_name

            device = device_by_name(system)
            for config in result.configs.values():
                assert config.variant.supported(device)
                assert config.subgroup_size in device.subgroup_sizes
                if not device.supports_large_grf:
                    assert config.grf_mode.value == "small"

    def test_tuned_never_slower_than_baseline(self, tuned):
        for result in tuned.values():
            assert result.speedup >= 1.0 - 1e-12

    def test_aurora_gains_most(self, tuned):
        # the out-of-box configuration (Select, sub-group 32) is worst
        # on Aurora, so tuning buys the most there
        assert tuned["Aurora"].speedup > tuned["Polaris"].speedup
        assert tuned["Aurora"].speedup > tuned["Frontier"].speedup
        assert tuned["Aurora"].speedup > 2.0

    def test_polaris_tuner_keeps_select(self, tuned):
        for config in tuned["Polaris"].configs.values():
            assert config.variant.name == "select"

    def test_visa_never_selected_off_intel(self, tuned):
        for system in ("Polaris", "Frontier"):
            for config in tuned[system].configs.values():
                assert config.variant.name != "visa"

    def test_aurora_tuner_mixes_variants(self, tuned):
        names = {c.variant.name for c in tuned["Aurora"].configs.values()}
        assert len(names) >= 2

    def test_tuned_at_least_matches_default_config_search(
        self, tuned, reference_trace
    ):
        # the tuner's space is a superset of best_variant_map's
        from repro.kernels.adiabatic import best_variant_map, price_trace
        from repro.proglang.model import ProgrammingModel

        best = best_variant_map(reference_trace, AURORA, ProgrammingModel.SYCL)
        fixed = price_trace(
            reference_trace, AURORA, ProgrammingModel.SYCL, best
        ).total_seconds
        assert tuned["Aurora"].tuned_seconds <= fixed * (1 + 1e-9)


class TestReport:
    def test_table_renders(self, tuned):
        text = tuning_table(tuned["Aurora"])
        assert "Auto-tuning on Aurora" in text
        assert "sub-group" in text

    def test_bad_trace_rejected(self):
        from repro.hacc.timestep import WorkloadTrace

        trace = WorkloadTrace()
        trace.record("upBogus", 10, 5.0)
        with pytest.raises(KeyError):
            autotune(trace, AURORA)
