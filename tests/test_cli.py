"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(sub.choices) == {
            "simulate",
            "price",
            "tune",
            "migrate",
            "report",
            "figures",
            "export",
            "validate",
            "roofline",
            "trace",
            "profile",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate_tiny(self, capsys):
        assert main(["simulate", "-n", "4", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "kernel launches recorded" in out

    def test_price_reports_timers(self, capsys):
        assert main(["price", "Frontier", "--variant", "memory_object"]) == 0
        out = capsys.readouterr().out
        assert "upGeo" in out
        assert "total" in out

    def test_price_unsupported_combination_fails(self, capsys):
        assert main(["price", "Polaris", "--variant", "visa"]) == 1
        assert "does not compile" in capsys.readouterr().err

    def test_price_cuda_on_aurora_fails(self, capsys):
        assert main(["price", "Aurora", "--model", "cuda"]) == 1

    def test_tune(self, capsys):
        assert main(["tune", "Aurora"]) == 0
        out = capsys.readouterr().out
        assert "Auto-tuning on Aurora" in out

    def test_migrate(self, capsys):
        assert main(["migrate"]) == 0
        out = capsys.readouterr().out
        assert "geometry" in out
        assert "inflation" in out

    def test_export(self, tmp_path, capsys):
        target = tmp_path / "artifacts.json"
        assert main(["export", "-o", str(target)]) == 0
        import json

        document = json.loads(target.read_text())
        assert document["schema_version"] == 1

    def test_validate_healthy_run(self, capsys):
        assert main(["validate", "-n", "6", "--steps", "1"]) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "Frontier"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# CRK-HACC SYCL performance-portability reproduction" in text
        assert "Figure 12" in text
        assert "Table 2" in text
