"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions if a.dest == "command"
        )
        assert set(sub.choices) == {
            "simulate",
            "price",
            "tune",
            "migrate",
            "report",
            "figures",
            "export",
            "validate",
            "roofline",
            "trace",
            "profile",
            "dashboard",
            "serve",
            "submit",
            "jobs",
        }

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_simulate_tiny(self, capsys):
        assert main(["simulate", "-n", "4", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "kernel launches recorded" in out

    def test_price_reports_timers(self, capsys):
        assert main(["price", "Frontier", "--variant", "memory_object"]) == 0
        out = capsys.readouterr().out
        assert "upGeo" in out
        assert "total" in out

    def test_price_unsupported_combination_fails(self, capsys):
        assert main(["price", "Polaris", "--variant", "visa"]) == 1
        assert "does not compile" in capsys.readouterr().err

    def test_price_cuda_on_aurora_fails(self, capsys):
        assert main(["price", "Aurora", "--model", "cuda"]) == 1

    def test_tune(self, capsys):
        assert main(["tune", "Aurora"]) == 0
        out = capsys.readouterr().out
        assert "Auto-tuning on Aurora" in out

    def test_migrate(self, capsys):
        assert main(["migrate"]) == 0
        out = capsys.readouterr().out
        assert "geometry" in out
        assert "inflation" in out

    def test_export(self, tmp_path, capsys):
        target = tmp_path / "artifacts.json"
        assert main(["export", "-o", str(target)]) == 0
        import json

        document = json.loads(target.read_text())
        assert document["schema_version"] == 1

    def test_validate_healthy_run(self, capsys):
        assert main(["validate", "-n", "6", "--steps", "1"]) == 0
        assert "validation: OK" in capsys.readouterr().out

    def test_roofline(self, capsys):
        assert main(["roofline", "Frontier"]) == 0
        out = capsys.readouterr().out
        assert "ridge" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "-o", str(target)]) == 0
        text = target.read_text()
        assert "# CRK-HACC SYCL performance-portability reproduction" in text
        assert "Figure 12" in text
        assert "Table 2" in text


class TestBackendFlag:
    @pytest.fixture(autouse=True)
    def _restore_backend(self):
        from repro import xp

        previous = xp._active
        yield
        xp._active = previous

    def test_simulate_reports_default_backend(self, capsys):
        assert main(["simulate", "-n", "4", "--steps", "1"]) == 0
        assert "array backend: numpy" in capsys.readouterr().out

    def test_simulate_selects_backend(self, capsys):
        assert main(
            ["simulate", "-n", "4", "--steps", "1", "--backend", "blocked"]
        ) == 0
        assert "array backend: blocked" in capsys.readouterr().out

    def test_simulate_unknown_backend_is_usage_error(self, capsys):
        assert main(["simulate", "--backend", "no-such"]) == 2
        assert "unknown backend" in capsys.readouterr().out

    def test_simulate_unavailable_backend_falls_back(self, capsys, monkeypatch):
        from repro import xp

        spec = xp._BackendSpec(
            "ghost", "repro.xp.ghost", "GhostBackend", "not_an_importable_module"
        )
        xp._register_spec(spec)
        try:
            code = main(
                ["simulate", "-n", "4", "--steps", "1", "--backend", "ghost"]
            )
            out = capsys.readouterr().out
            assert code == 0
            assert "warning:" in out
            assert "array backend: numpy" in out
        finally:
            del xp._REGISTRY["ghost"]

    def test_trace_accepts_backend(self, tmp_path, capsys):
        assert main(
            [
                "trace", "-n", "4", "--steps", "1",
                "--backend", "blocked",
                "-o", str(tmp_path / "t.json"),
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        ) == 0
        assert "array backend: blocked" in capsys.readouterr().out


class TestDegradationFlags:
    def test_degrade_policy_choices_enforced(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--degrade-policy", "catch-fire"]
            )

    def test_degrade_policy_default_is_restart(self):
        args = build_parser().parse_args(["simulate"])
        assert args.degrade_policy == "restart"
        assert args.chaos_runs == 0

    def test_simulate_shrink_kill_finishes_degraded(self, capsys):
        code = main(
            [
                "simulate", "-n", "4", "--steps", "2", "--ranks", "3",
                "--degrade-policy", "shrink",
                "--faults", "kill:rank=1,step=1",
                "--timeout", "10",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "finished on 2" in out
        assert "shrink" in out

    def test_chaos_runs_flag_soaks(self, capsys):
        code = main(
            ["simulate", "--chaos-runs", "2", "--chaos-seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "chaos soak: 2 run(s)" in out
        assert "invariant HELD" in out

    def test_chaos_runs_must_be_positive(self, capsys):
        assert main(["simulate", "--chaos-runs", "-4"]) == 2
        assert "--chaos-runs" in capsys.readouterr().out


class TestTimeoutValidation:
    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_simulate_rejects_nonpositive_timeout(self, capsys, value):
        assert main(["simulate", "--timeout", value]) == 2
        assert "--timeout must be positive" in capsys.readouterr().out

    @pytest.mark.parametrize("value", ["0", "-5"])
    def test_trace_rejects_nonpositive_timeout(self, capsys, value):
        assert main(["trace", "--timeout", value]) == 2
        assert "--timeout must be positive" in capsys.readouterr().out

    def test_resilient_simulate_rejects_nonpositive_timeout(self, capsys):
        assert main(["simulate", "--ranks", "2", "--timeout", "0"]) == 2
        assert "--timeout must be positive" in capsys.readouterr().out


class TestServiceCli:
    def test_submit_without_service_is_a_usage_error(self, tmp_path, capsys):
        sock = str(tmp_path / "missing.sock")
        assert main(["submit", "--socket", sock, "-n", "4"]) == 2
        assert "no service listening" in capsys.readouterr().out

    def test_jobs_without_service_is_a_usage_error(self, tmp_path, capsys):
        sock = str(tmp_path / "missing.sock")
        assert main(["jobs", "--socket", sock]) == 2
        assert "no service listening" in capsys.readouterr().out

    def test_dashboard_follow_rejects_bad_poll(self, tmp_path, capsys):
        events = str(tmp_path / "events.jsonl")
        assert main(["dashboard", events, "--follow", "--poll", "0"]) == 2
        assert "--poll must be positive" in capsys.readouterr().out

    def test_validate_unknown_backend_is_usage_error(self, capsys):
        assert main(["validate", "--backend", "no-such"]) == 2
        assert "unknown backend" in capsys.readouterr().out

    def test_profile_unknown_backend_is_usage_error(self, capsys):
        assert main(["profile", "Frontier", "--backend", "no-such"]) == 2
        assert "unknown backend" in capsys.readouterr().out
