"""Tests for neighbour finding."""

import numpy as np
import pytest

from repro.hacc.neighbors import (
    build_neighbor_list,
    find_pairs,
    pair_statistics,
)


def brute_force_pairs(pos, box, cutoff):
    half = 0.5 * box
    d = pos[:, None, :] - pos[None, :, :]
    d = (d + half) % box - half
    r2 = np.einsum("abi,abi->ab", d, d)
    mask = r2 < cutoff**2
    np.fill_diagonal(mask, False)
    return set(zip(*np.nonzero(mask)))


class TestFindPairs:
    def test_matches_brute_force(self, rng):
        pos = rng.uniform(0, 10, (120, 3))
        i, j = find_pairs(pos, 10.0, 1.7)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 1.7)

    def test_directed_symmetry(self, rng):
        pos = rng.uniform(0, 10, (80, 3))
        i, j = find_pairs(pos, 10.0, 2.0)
        pairs = set(zip(i.tolist(), j.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_periodic_pair_across_boundary(self):
        pos = np.array([[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]])
        i, j = find_pairs(pos, 10.0, 0.5)
        assert len(i) == 2  # both directions

    def test_no_self_pairs(self, rng):
        pos = rng.uniform(0, 10, (50, 3))
        i, j = find_pairs(pos, 10.0, 3.0)
        assert np.all(i != j)

    def test_cross_pairs_against_other_set(self, rng):
        a = rng.uniform(0, 10, (30, 3))
        b = rng.uniform(0, 10, (40, 3))
        i, j = find_pairs(a, 10.0, 2.0, pos_other=b)
        assert i.max(initial=-1) < 30
        assert j.max(initial=-1) < 40
        # verify one pair by hand
        if len(i):
            half = 5.0
            d = a[i[0]] - b[j[0]]
            d = (d + half) % 10.0 - half
            assert np.linalg.norm(d) < 2.0

    def test_excessive_cutoff_rejected(self, rng):
        with pytest.raises(ValueError):
            find_pairs(rng.uniform(0, 10, (5, 3)), 10.0, 6.0)

    def test_bruteforce_path_for_small_boxes(self, rng):
        # cutoff big enough that fewer than 3 cells fit per side
        pos = rng.uniform(0, 10, (40, 3))
        i, j = find_pairs(pos, 10.0, 4.0)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 4.0)

    def test_empty_result(self):
        pos = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        i, j = find_pairs(pos, 10.0, 0.5)
        assert len(i) == 0


class TestNeighborList:
    def test_csr_structure_consistent(self, rng):
        pos = rng.uniform(0, 10, (100, 3))
        nlist = build_neighbor_list(pos, 10.0, 1.5)
        assert nlist.start[0] == 0
        assert nlist.start[-1] == len(nlist.indices)
        assert np.all(np.diff(nlist.start) >= 0)

    def test_neighbors_of_matches_pairs(self, rng):
        pos = rng.uniform(0, 10, (60, 3))
        nlist = build_neighbor_list(pos, 10.0, 2.0)
        pairs = brute_force_pairs(pos, 10.0, 2.0)
        for p in range(60):
            expected = {b for a, b in pairs if a == p}
            assert set(nlist.neighbors_of(p).tolist()) == expected

    def test_statistics(self, rng):
        pos = rng.uniform(0, 10, (100, 3))
        nlist = build_neighbor_list(pos, 10.0, 2.0)
        stats = pair_statistics(nlist)
        assert stats["n_particles"] == 100
        assert stats["n_pairs"] == nlist.n_pairs
        assert stats["min_neighbors"] <= stats["mean_neighbors"] <= stats["max_neighbors"]
