"""Tests for neighbour finding."""

import numpy as np
import pytest

from repro.hacc.neighbors import (
    CellList,
    CellListCache,
    build_neighbor_list,
    find_pairs,
    pair_statistics,
)


def brute_force_pairs(pos, box, cutoff):
    half = 0.5 * box
    d = pos[:, None, :] - pos[None, :, :]
    d = (d + half) % box - half
    r2 = np.einsum("abi,abi->ab", d, d)
    mask = r2 < cutoff**2
    np.fill_diagonal(mask, False)
    return set(zip(*np.nonzero(mask)))


class TestFindPairs:
    def test_matches_brute_force(self, rng):
        pos = rng.uniform(0, 10, (120, 3))
        i, j = find_pairs(pos, 10.0, 1.7)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 1.7)

    def test_directed_symmetry(self, rng):
        pos = rng.uniform(0, 10, (80, 3))
        i, j = find_pairs(pos, 10.0, 2.0)
        pairs = set(zip(i.tolist(), j.tolist()))
        assert all((b, a) in pairs for a, b in pairs)

    def test_periodic_pair_across_boundary(self):
        pos = np.array([[0.1, 5.0, 5.0], [9.9, 5.0, 5.0]])
        i, j = find_pairs(pos, 10.0, 0.5)
        assert len(i) == 2  # both directions

    def test_no_self_pairs(self, rng):
        pos = rng.uniform(0, 10, (50, 3))
        i, j = find_pairs(pos, 10.0, 3.0)
        assert np.all(i != j)

    def test_cross_pairs_against_other_set(self, rng):
        a = rng.uniform(0, 10, (30, 3))
        b = rng.uniform(0, 10, (40, 3))
        i, j = find_pairs(a, 10.0, 2.0, pos_other=b)
        assert i.max(initial=-1) < 30
        assert j.max(initial=-1) < 40
        # verify one pair by hand
        if len(i):
            half = 5.0
            d = a[i[0]] - b[j[0]]
            d = (d + half) % 10.0 - half
            assert np.linalg.norm(d) < 2.0

    def test_excessive_cutoff_rejected(self, rng):
        with pytest.raises(ValueError):
            find_pairs(rng.uniform(0, 10, (5, 3)), 10.0, 6.0)

    def test_bruteforce_path_for_small_boxes(self, rng):
        # cutoff big enough that fewer than 3 cells fit per side
        pos = rng.uniform(0, 10, (40, 3))
        i, j = find_pairs(pos, 10.0, 4.0)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 4.0)

    def test_empty_result(self):
        pos = np.array([[0.0, 0.0, 0.0], [5.0, 5.0, 5.0]])
        i, j = find_pairs(pos, 10.0, 0.5)
        assert len(i) == 0

    def test_cross_mode_drops_exact_coincidences_cell_path(self, rng):
        # an i-particle exactly on top of a ghost/j-particle has r = 0,
        # which divides by zero in every gather-style kernel downstream
        a = rng.uniform(0, 10, (30, 3))
        b = np.concatenate([a[:5], rng.uniform(0, 10, (20, 3))])
        i, j = find_pairs(a, 10.0, 1.5, pos_other=b)  # cell path (6 cells)
        assert len(i) > 0
        d = a[i] - b[j]
        d = (d + 5.0) % 10.0 - 5.0
        assert np.all(np.einsum("ij,ij->i", d, d) > 0.0)
        # the coincident copies must not appear as (k, k) pairs
        for k in range(5):
            assert not np.any((i == k) & (j == k))

    def test_cross_mode_drops_exact_coincidences_bruteforce_path(self, rng):
        a = rng.uniform(0, 10, (10, 3))
        b = a.copy()  # every particle coincides with its ghost copy
        i, j = find_pairs(a, 10.0, 4.0, pos_other=b)  # brute force (2 cells)
        assert np.all(i != j)
        d = a[i] - b[j]
        d = (d + 5.0) % 10.0 - 5.0
        assert np.all(np.einsum("ij,ij->i", d, d) > 0.0)

    def test_symmetric_mode_keeps_coincident_distinct_particles(self):
        # symmetric mode is unchanged: coincident *distinct* particles
        # are still within any cutoff (matching the brute-force oracle)
        pos = np.array([[1.0, 1.0, 1.0], [1.0, 1.0, 1.0], [5.0, 5.0, 5.0]])
        i, j = find_pairs(pos, 10.0, 1.0)
        assert set(zip(i.tolist(), j.tolist())) == {(0, 1), (1, 0)}


class TestFindPairsPropertyStyle:
    """Cell-list vs brute-force oracle on adversarial configurations."""

    def test_randomized_periodic_configurations(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            n = int(rng.integers(20, 200))
            cutoff = float(rng.uniform(0.4, 3.0))
            pos = rng.uniform(0, 10, (n, 3))
            i, j = find_pairs(pos, 10.0, cutoff)
            assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(
                pos, 10.0, cutoff
            ), f"seed {seed}"

    def test_particles_exactly_on_cell_boundaries(self):
        # cutoff 2.0 on box 10 -> cell size 2.0; lattice points sit
        # exactly on every cell boundary
        coords = np.array([0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 1.0, 3.0])
        gx, gy, gz = np.meshgrid(coords[:4], coords[:4], coords[:4], indexing="ij")
        pos = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
        i, j = find_pairs(pos, 10.0, 2.0)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 2.0)

    def test_n_cells_exactly_three(self, rng):
        # box / cutoff in [3, 4): the smallest box where the stencil
        # path (use_cells) engages
        pos = rng.uniform(0, 10, (150, 3))
        cutoff = 10.0 / 3.2
        i, j = find_pairs(pos, 10.0, cutoff)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(
            pos, 10.0, cutoff
        )

    def test_asymmetric_wrap_canonical_direction(self):
        # a pair straddling the periodic seam at a separation within a
        # few ulp of the cutoff: the wrap is not bitwise symmetric
        # under i<->j, so the cutoff decision must be made once per
        # unordered pair or the directed list loses its mirror
        eps = 1e-13
        pos = np.array(
            [
                [9.999999, 5.0, 5.0],
                [1.0 - eps, 5.0, 5.0],
                [5.0, 5.0, 5.0],
            ]
        )
        for cutoff in (1.000001 - eps, 1.0000005, 2.5):
            i, j = find_pairs(pos, 10.0, cutoff)
            pairs = set(zip(i.tolist(), j.tolist()))
            assert all((b, a) in pairs for a, b in pairs), cutoff


class TestCellList:
    def test_reuse_matches_fresh_search(self, rng):
        pos = rng.uniform(0, 10, (200, 3))
        cl = CellList.build(pos, 10.0, 1.5)
        i1, j1 = find_pairs(pos, 10.0, 1.5, cell_list=cl)
        i2, j2 = find_pairs(pos, 10.0, 1.5)
        assert set(zip(i1.tolist(), j1.tolist())) == set(
            zip(i2.tolist(), j2.tolist())
        )

    def test_supports_smaller_cutoff(self, rng):
        pos = rng.uniform(0, 10, (200, 3))
        cl = CellList.build(pos, 10.0, 2.0)
        assert cl.supports(1.0)
        i, j = find_pairs(pos, 10.0, 1.0, cell_list=cl)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 1.0)

    def test_larger_cutoff_served_by_wider_stencil(self, rng):
        # a finely-binned list answers a larger cutoff with a
        # (2k+1)^3 stencil instead of forcing a rebuild
        pos = rng.uniform(0, 10, (150, 3))
        cl = CellList.build(pos, 10.0, 1.0)
        assert cl.supports(2.5)
        assert cl.reach(2.5) == 3
        i, j = find_pairs(pos, 10.0, 2.5, cell_list=cl)
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(pos, 10.0, 2.5)

    def test_rejects_cutoff_wider_than_periodic_stencil(self, rng):
        # 2k+1 stencil cells must stay distinct under the wrap
        pos = rng.uniform(0, 10, (50, 3))
        cl = CellList.build(pos, 10.0, 1.0)
        assert not cl.supports(4.9)
        with pytest.raises(ValueError):
            find_pairs(pos, 10.0, 4.9, cell_list=cl)

    def test_stale_binning_within_skin_is_exact(self, rng):
        # Verlet-skin guarantee: after drifting every particle by less
        # than skin/2, the old binning still finds exactly the true
        # pairs at the *new* positions
        pos = rng.uniform(0, 10, (300, 3))
        skin = 0.4
        cl = CellList.build(pos, 10.0, 1.5, skin=skin)
        drift = rng.uniform(-1, 1, (300, 3))
        drift *= 0.49 * skin / np.linalg.norm(drift, axis=1).max()
        moved = (pos + drift) % 10.0
        i, j = find_pairs(moved, 10.0, 1.5, cell_list=cl)
        assert cl.is_current()
        assert set(zip(i.tolist(), j.tolist())) == brute_force_pairs(
            moved, 10.0, 1.5
        )

    def test_displacement_tracking(self, rng):
        pos = rng.uniform(0, 10, (100, 3))
        cl = CellList.build(pos, 10.0, 1.5, skin=0.2)
        assert cl.max_displacement() == 0.0
        moved = pos.copy()
        moved[0] = (moved[0] + 0.5) % 10.0
        cl.update_positions(moved)
        assert cl.max_displacement() == pytest.approx(np.sqrt(3 * 0.5**2))
        assert not cl.is_current()

    def test_subset_query_matches_standalone_search(self, rng):
        pos = rng.uniform(0, 10, (250, 3))
        subset = np.sort(rng.choice(250, size=90, replace=False))
        cl = CellList.build(pos, 10.0, 1.8)
        i_sub, j_sub = cl.pairs_within(1.8, subset=subset)
        i_ref, j_ref = find_pairs(pos[subset], 10.0, 1.8)
        assert set(zip(i_sub.tolist(), j_sub.tolist())) == set(
            zip(i_ref.tolist(), j_ref.tolist())
        )

    def test_shape_mismatch_rejected(self, rng):
        cl = CellList.build(rng.uniform(0, 10, (50, 3)), 10.0, 1.5)
        with pytest.raises(ValueError):
            cl.update_positions(rng.uniform(0, 10, (51, 3)))


class TestCellListCache:
    def test_hit_then_rebuild_on_large_drift(self, rng):
        cache = CellListCache(10.0, skin_fraction=0.1)
        pos = rng.uniform(0, 10, (200, 3))
        cl1 = cache.get(pos, 1.5)
        cl2 = cache.get(pos, 1.5)
        assert cl1 is cl2
        assert cache.builds == 1 and cache.hits == 1
        far = (pos + 2.0) % 10.0
        cl3 = cache.get(far, 1.5)
        assert cl3 is not cl1
        assert cache.builds == 2

    def test_alternating_cutoffs_share_one_decomposition(self, rng):
        # the larger cutoff is served by the same binning through a
        # wider stencil: one build covers both query scales
        cache = CellListCache(10.0, skin_fraction=0.1)
        pos = rng.uniform(0, 10, (200, 3))
        cache.get(pos, 1.0)
        cache.get(pos, 2.0)
        assert cache.builds == 1
        a = cache.get(pos, 1.0)
        b = cache.get(pos, 2.0)
        assert a is b
        assert cache.builds == 1

    def test_mismatched_scales_get_two_tiers(self, rng):
        # when one binning cannot serve both scales well the cache
        # keeps a tier per scale instead of thrashing
        cache = CellListCache(30.0, skin_fraction=0.1)
        pos = rng.uniform(0, 30, (300, 3))
        coarse = cache.get(pos, 9.0)
        fine = cache.get(pos, 1.0)
        assert fine is not coarse
        assert cache.builds == 2
        assert cache.get(pos, 9.0) is coarse
        assert cache.get(pos, 1.0) is fine
        assert cache.builds == 2 and cache.hits == 2

    def test_disabled_cache_always_rebuilds(self, rng):
        cache = CellListCache(10.0, enabled=False)
        pos = rng.uniform(0, 10, (100, 3))
        cache.get(pos, 1.5)
        cache.get(pos, 1.5)
        assert cache.builds == 2 and cache.hits == 0

    def test_metrics_mirroring(self, rng):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = CellListCache(10.0, metrics=registry)
        pos = rng.uniform(0, 10, (100, 3))
        cache.get(pos, 1.5)
        cache.get(pos, 1.5)
        assert registry.counter("sim.pairs.cell_list.builds").value == 1
        assert registry.counter("sim.pairs.cell_list.hits").value == 1


class TestNeighborList:
    def test_csr_structure_consistent(self, rng):
        pos = rng.uniform(0, 10, (100, 3))
        nlist = build_neighbor_list(pos, 10.0, 1.5)
        assert nlist.start[0] == 0
        assert nlist.start[-1] == len(nlist.indices)
        assert np.all(np.diff(nlist.start) >= 0)

    def test_neighbors_of_matches_pairs(self, rng):
        pos = rng.uniform(0, 10, (60, 3))
        nlist = build_neighbor_list(pos, 10.0, 2.0)
        pairs = brute_force_pairs(pos, 10.0, 2.0)
        for p in range(60):
            expected = {b for a, b in pairs if a == p}
            assert set(nlist.neighbors_of(p).tolist()) == expected

    def test_statistics(self, rng):
        pos = rng.uniform(0, 10, (100, 3))
        nlist = build_neighbor_list(pos, 10.0, 2.0)
        stats = pair_statistics(nlist)
        assert stats["n_particles"] == 100
        assert stats["n_pairs"] == nlist.n_pairs
        assert stats["min_neighbors"] <= stats["mean_neighbors"] <= stats["max_neighbors"]
