"""Tests for the Eisenstein-Hu transfer-function option."""

import numpy as np
import pytest

from repro.hacc.cosmology import Cosmology
from repro.hacc.power import (
    TRANSFER_FUNCTIONS,
    PowerSpectrum,
    bbks_transfer,
    eisenstein_hu_transfer,
)


class TestEisensteinHu:
    def test_unity_at_large_scales(self):
        t = eisenstein_hu_transfer(np.array([1e-5]), Cosmology())
        assert t[0] == pytest.approx(1.0, abs=2e-2)

    def test_monotone_decreasing(self):
        k = np.logspace(-4, 1, 60)
        t = eisenstein_hu_transfer(k, Cosmology())
        assert np.all(np.diff(t) < 0)

    def test_stronger_suppression_than_bbks(self):
        # baryons suppress small-scale power; EH carries more of that
        # than the Sugiyama-corrected BBKS shape
        k = np.logspace(-1, 1, 20)
        c = Cosmology()
        assert np.all(eisenstein_hu_transfer(k, c) < bbks_transfer(k, c))

    def test_baryon_fraction_matters(self):
        k = np.array([0.2])
        lo_b = Cosmology(omega_b=0.02)
        hi_b = Cosmology(omega_b=0.06)
        assert eisenstein_hu_transfer(k, hi_b)[0] < eisenstein_hu_transfer(k, lo_b)[0]

    def test_k_zero_defined(self):
        assert eisenstein_hu_transfer(np.array([0.0]), Cosmology())[0] == 1.0


class TestTransferSelection:
    def test_both_fits_registered(self):
        assert set(TRANSFER_FUNCTIONS) == {"bbks", "eisenstein-hu"}

    def test_unknown_transfer_rejected(self):
        with pytest.raises(ValueError):
            PowerSpectrum(transfer="camb")

    def test_sigma8_pinned_for_both(self):
        c = Cosmology()
        for name in TRANSFER_FUNCTIONS:
            p = PowerSpectrum(c, transfer=name)
            assert p.sigma_r(8.0) == pytest.approx(c.sigma8, rel=1e-2), name

    def test_different_shapes_after_normalisation(self):
        c = Cosmology()
        bbks = PowerSpectrum(c, transfer="bbks")
        eh = PowerSpectrum(c, transfer="eisenstein-hu")
        k = np.array([5.0])
        # same sigma8, different small-scale power
        assert bbks(k)[0] != pytest.approx(eh(k)[0], rel=0.05)

    def test_ics_generate_with_eh_spectrum(self):
        from repro.hacc.ic import ICConfig, zeldovich_ics

        c = Cosmology()
        p = zeldovich_ics(
            ICConfig(n_per_side=4, box=2.0),
            c,
            PowerSpectrum(c, transfer="eisenstein-hu"),
        )
        assert len(p) == 2 * 4**3
        p.validate()
