"""Tests for the adiabatic driver (the dynamical time stepper)."""

import numpy as np
import pytest

from repro.hacc.timestep import (
    GRAVITY_KERNEL,
    TIMER_NAMES,
    AdiabaticDriver,
    KernelInvocation,
    SimulationConfig,
    WorkloadTrace,
)


class TestSimulationConfig:
    def test_box_follows_paper_scaling(self):
        # box = 177 Mpc/h * n/512 keeps the mass resolution fixed
        assert SimulationConfig(n_per_side=512).box == pytest.approx(177.0)
        assert SimulationConfig(n_per_side=16).box == pytest.approx(177.0 / 32)

    def test_defaults_match_paper_schedule(self):
        c = SimulationConfig()
        assert c.z_initial == 200.0
        assert c.z_final == 50.0
        assert c.n_steps == 5


class TestWorkloadTrace:
    def test_record_and_group(self):
        t = WorkloadTrace()
        t.record("upGeo", 100, 60.0)
        t.record("upGeo", 100, 62.0)
        t.record("upCor", 100, 60.0)
        assert len(t.by_kernel()["upGeo"]) == 2
        assert t.total_interactions() == pytest.approx(100 * (60 + 62 + 60))

    def test_zero_workitems_ignored(self):
        t = WorkloadTrace()
        t.record("upGeo", 0, 60.0)
        assert t.invocations == []


class TestReferenceRun:
    """Checks against the session-scoped 5-step reference run."""

    def test_timer_call_pattern(self, reference_trace):
        by = reference_trace.by_kernel()
        # every hydro timer fires once per step; gravity twice (KDK)
        for timer in TIMER_NAMES:
            assert len(by[timer]) == 5, timer
        assert len(by[GRAVITY_KERNEL]) == 10

    def test_interactions_are_realistic(self, reference_trace):
        by = reference_trace.by_kernel()
        for timer in TIMER_NAMES:
            for inv in by[timer]:
                # SPH neighbour counts: tens to a few hundred directed
                assert 10 < inv.interactions_per_item < 1000

    def test_workitems_equal_gas_count(self, reference_trace, reference_driver):
        from repro.hacc.particles import Species

        n_gas = reference_driver.particles.count(Species.BARYON)
        for inv in reference_trace.by_kernel()["upGeo"]:
            assert inv.n_workitems == n_gas

    def test_momentum_conserved_through_run(self, reference_driver):
        mom = reference_driver.diagnostics[-1].total_momentum
        # compare against the momentum scale of the system
        p = reference_driver.particles
        scale = float(np.abs(p.mass[:, None] * p.velocities).sum())
        assert np.all(np.abs(mom) < 1e-6 * scale)

    def test_scale_factor_progression(self, reference_driver):
        a_values = [d.a for d in reference_driver.diagnostics]
        assert a_values == sorted(a_values)
        assert a_values[-1] == pytest.approx(1 / 51.0)

    def test_structure_grows(self, reference_driver):
        # gravitational collapse: kinetic energy grows from z=200 to 50
        ke = [d.kinetic_energy for d in reference_driver.diagnostics]
        assert ke[-1] > ke[0]

    def test_thermal_energy_positive(self, reference_driver):
        for d in reference_driver.diagnostics:
            assert d.thermal_energy > 0

    def test_positions_stay_in_box(self, reference_driver):
        p = reference_driver.particles
        assert np.all((p.positions >= 0) & (p.positions < p.box))

    def test_hydro_state_finite(self, reference_driver):
        p = reference_driver.particles
        from repro.hacc.particles import Species

        gas = p.species_mask(Species.BARYON)
        for field in ("rho", "u", "pressure", "cs", "volume", "hsml"):
            assert np.all(np.isfinite(p.arrays[field][gas])), field
        assert np.all(p.rho[gas] > 0)
        assert np.all(p.hsml[gas] > 0)


class TestSharedPairDecomposition:
    """One spatial decomposition per step, shared by SPH and gravity."""

    def test_step_reuses_one_cell_list(self):
        from repro.observability.metrics import MetricsRegistry

        driver = AdiabaticDriver(SimulationConfig(n_per_side=6, pm_mesh=8))
        driver.metrics = MetricsRegistry()
        schedule = driver.schedule()
        driver.step(float(schedule[0]), float(schedule[1]))
        counters = driver.metrics.snapshot()["counters"]
        builds = counters["sim.pairs.cell_list.builds"]
        hits = counters["sim.pairs.cell_list.hits"]
        # a plain KDK step performs 4 decomposition lookups: 2 gravity
        # evaluations + 2 hydro passes.  Sharing means the SPH context
        # and the short-range gravity hit the same cached cell list
        # instead of rebuilding per call site.
        assert builds + hits == 4
        assert builds <= 2
        assert hits >= 2

    def test_cache_survives_across_steps(self):
        driver = AdiabaticDriver(SimulationConfig(n_per_side=6, pm_mesh=8))
        schedule = driver.schedule()
        driver.step(float(schedule[0]), float(schedule[1]))
        first_builds = driver.pair_cache.builds
        driver.step(float(schedule[1]), float(schedule[2]))
        # early-universe drift is tiny: later steps mostly reuse
        assert driver.pair_cache.hits >= 6
        assert driver.pair_cache.builds <= first_builds + 2

    def test_restore_invalidates_cache(self):
        driver = AdiabaticDriver(SimulationConfig(n_per_side=6, pm_mesh=8))
        schedule = driver.schedule()
        driver.step(float(schedule[0]), float(schedule[1]))
        assert driver.pair_cache._lists or not driver.pair_cache.enabled
        driver.restore(particles=driver.particles, step_index=0)
        assert not driver.pair_cache._lists
