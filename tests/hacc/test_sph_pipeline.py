"""Tests for the five CRK-SPH kernels: the paper's hot loop physics.

The decisive invariants:

- Geometry: volumes tile space (sum V ~ box volume on a uniform grid);
- Corrections: the CRK reproducing conditions (constants exact, linear
  fields exact);
- Extras: gradients of linear fields are exact;
- Acceleration: exact momentum conservation; uniform pressure -> no
  force;
- Energy: the compatible pairing conserves total energy to round-off.
"""

import numpy as np
import pytest

from repro.hacc.sph.acceleration import compute_acceleration, pair_viscosity
from repro.hacc.sph.corrections import (
    compute_corrections,
    corrected_kernel_gradients,
    corrected_kernel_values,
)
from repro.hacc.sph.energy import compute_energy_rate, pairwise_energy_balance
from repro.hacc.sph.extras import compute_extras
from repro.hacc.sph.geometry import compute_geometry
from repro.hacc.sph.pairs import PairContext
from repro.hacc.units import SPH_ETA


def glass_state(n_side=8, box=8.0, jitter=0.15, seed=5):
    """A jittered lattice of gas particles with uniform h."""
    rng = np.random.default_rng(seed)
    cell = box / n_side
    coords = (np.arange(n_side) + 0.5) * cell
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    pos = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
    pos = (pos + rng.normal(0, jitter * cell, pos.shape)) % box
    h = np.full(len(pos), SPH_ETA * cell)
    ctx = PairContext.build(pos, h, box)
    return pos, h, ctx, box


@pytest.fixture(scope="module")
def state():
    return glass_state()


@pytest.fixture(scope="module")
def geometry(state):
    _pos, h, ctx, _box = state
    return compute_geometry(ctx, h)


@pytest.fixture(scope="module")
def corrections(state, geometry):
    _pos, h, ctx, _box = state
    return compute_corrections(ctx, h, geometry.volume)


class TestPairContext:
    def test_pairs_are_directed(self, state):
        _pos, _h, ctx, _box = state
        pairs = set(zip(ctx.i.tolist(), ctx.j.tolist()))
        assert all((j, i) in pairs for i, j in pairs)

    def test_cutoff_truncation_is_surfaced(self):
        # a smoothing length whose support exceeds the minimum-image
        # bound must warn and count, not silently shrink the kernel
        from repro.hacc.sph.pairs import CutoffTruncationWarning
        from repro.observability.metrics import MetricsRegistry

        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 4.0, (30, 3))
        h = np.full(30, 1.5)  # SUPPORT * h = 3.0 > 0.499 * 4.0
        registry = MetricsRegistry()
        with pytest.warns(CutoffTruncationWarning):
            PairContext.build(pos, h, 4.0, metrics=registry)
        assert registry.counter("sim.pairs.cutoff_truncated").value == 1

    def test_no_warning_inside_minimum_image_bound(self, recwarn):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 10.0, (30, 3))
        PairContext.build(pos, np.full(30, 0.5), 10.0)
        from repro.hacc.sph.pairs import CutoffTruncationWarning

        assert not any(
            isinstance(w.message, CutoffTruncationWarning) for w in recwarn.list
        )

    def test_build_on_shared_cell_list_subset_matches_plain(self, state):
        # the driver path: a cell list binned over the full two-species
        # set, with the SPH context built on the gas subset
        from repro.hacc.neighbors import CellList

        pos, h, ctx, box = state
        rng = np.random.default_rng(3)
        n_dark = 100
        full_pos = np.concatenate([rng.uniform(0, box, (n_dark, 3)), pos])
        subset = np.arange(n_dark, n_dark + len(pos))
        cl = CellList.build(full_pos, box, 2.0 * h.max())
        shared = PairContext.build(pos, h, box, cell_list=cl, subset=subset)
        assert shared.n == ctx.n
        assert set(zip(shared.i.tolist(), shared.j.tolist())) == set(
            zip(ctx.i.tolist(), ctx.j.tolist())
        )
        order_a = np.lexsort((shared.j, shared.i))
        order_b = np.lexsort((ctx.j, ctx.i))
        assert np.allclose(shared.dx[order_a], ctx.dx[order_b])
        assert np.allclose(shared.r[order_a], ctx.r[order_b])

    def test_displacement_consistency(self, state):
        pos, _h, ctx, box = state
        half = 0.5 * box
        d = (pos[ctx.i] - pos[ctx.j] + half) % box - half
        assert np.allclose(d, ctx.dx)
        assert np.allclose(np.linalg.norm(ctx.dx, axis=1), ctx.r)

    def test_scatter_sum_matches_manual(self, state):
        _pos, _h, ctx, _box = state
        vals = np.ones(ctx.n_pairs)
        out = ctx.scatter_sum(vals)
        assert out.sum() == ctx.n_pairs

    def test_scatter_sum_matches_add_at(self, state):
        # the segmented reduceat must agree with the np.add.at scatter
        # it replaced, for every value rank the kernels use
        _pos, _h, ctx, _box = state
        rng = np.random.default_rng(11)
        for shape in [(ctx.n_pairs,), (ctx.n_pairs, 3), (ctx.n_pairs, 3, 3)]:
            vals = rng.normal(size=shape)
            ref = np.zeros((ctx.n,) + shape[1:])
            np.add.at(ref, ctx.i, vals)
            assert np.allclose(ctx.scatter_sum(vals), ref, atol=1e-12)

    def test_scatter_sum_empty_context(self):
        ctx = PairContext.build(np.zeros((0, 3)), np.zeros(0), 10.0)
        assert ctx.scatter_sum(np.zeros(0)).shape == (0,)

    def test_scatter_sum_isolated_particles_get_zero(self):
        # particles with no neighbours must stay exactly zero under the
        # segmented reduction (empty segments are skipped, not aliased)
        pos = np.array([[1.0, 1.0, 1.0], [1.4, 1.0, 1.0], [8.0, 8.0, 8.0]])
        ctx = PairContext.build(pos, np.full(3, 0.5), 10.0)
        out = ctx.scatter_sum(np.ones(ctx.n_pairs))
        assert out[2] == 0.0
        assert out[0] == 1.0 and out[1] == 1.0


class TestGeometry:
    def test_volumes_tile_space(self, state, geometry):
        _pos, _h, _ctx, box = state
        # inverse-number-density volumes should sum to ~box volume
        assert geometry.volume.sum() == pytest.approx(box**3, rel=0.05)

    def test_number_density_positive(self, geometry):
        assert np.all(geometry.number_density > 0)

    def test_h_update_moves_toward_target(self, state, geometry):
        _pos, h, _ctx, _box = state
        target = SPH_ETA * np.cbrt(geometry.volume)
        # relaxed update lies between old h and the target
        lo = np.minimum(h, target) - 1e-12
        hi = np.maximum(h, target) + 1e-12
        assert np.all((geometry.h_new >= lo) & (geometry.h_new <= hi))

    def test_mismatched_h_rejected(self, state):
        _pos, h, ctx, _box = state
        with pytest.raises(ValueError):
            compute_geometry(ctx, h[:-1])


class TestCorrections:
    def test_zeroth_order_reproducing_condition(self, state, geometry, corrections):
        # sum_j V_j W^R_ij + self term = 1 exactly
        _pos, h, ctx, _box = state
        wr = corrected_kernel_values(ctx, h, corrections)
        vj = geometry.volume[ctx.j]
        from repro.hacc.sph.kernels_math import kernel_self_value

        total = ctx.scatter_sum(vj * wr) + corrections.a * geometry.volume * kernel_self_value(h)
        assert np.allclose(total, 1.0, atol=1e-10)

    def test_first_order_reproducing_condition(self, state, geometry, corrections):
        # sum_j V_j (x_j - x_i) W^R_ij = 0 exactly (linear reproduction)
        _pos, h, ctx, _box = state
        wr = corrected_kernel_values(ctx, h, corrections)
        vj = geometry.volume[ctx.j]
        moment = ctx.scatter_sum((vj * wr)[:, None] * (-ctx.dx))
        scale = np.abs(ctx.dx).max()
        # the 1e-8 Tikhonov regularisation of m2 bounds the residual
        assert np.abs(moment).max() < 1e-7 * scale

    def test_coefficients_near_identity_on_uniform_grid(self, corrections):
        # a near-uniform distribution needs only a small correction
        assert np.all(corrections.a > 0)
        assert np.median(np.abs(corrections.a - 1.0 / corrections.m0)) < np.median(
            corrections.a
        )

    def test_m2_symmetric(self, corrections):
        assert np.allclose(corrections.m2, np.swapaxes(corrections.m2, 1, 2))

    def test_degenerate_neighbourhood_falls_back(self):
        # two isolated particles: m2 is singular -> B = 0, A = 1/m0
        pos = np.array([[1.0, 1.0, 1.0], [1.4, 1.0, 1.0]])
        h = np.full(2, 0.5)
        ctx = PairContext.build(pos, h, 10.0)
        vol = np.full(2, 0.1)
        corr = compute_corrections(ctx, h, vol)
        assert np.all(np.isfinite(corr.a))
        assert np.all(np.isfinite(corr.b))


class TestExtras:
    def test_linear_field_gradient_exact(self, state, geometry, corrections):
        pos, h, ctx, _box = state
        grad_direction = np.array([0.3, -0.2, 0.5])
        # use an affine pressure field; CRK gradients are exact for it
        pressure = 2.0 + pos @ grad_direction
        mass = geometry.volume.copy()  # rho = 1
        vel = np.zeros((ctx.n, 3))
        extras = compute_extras(
            ctx, h, geometry.volume, mass, vel, pressure, corrections
        )
        # interior particles (periodic wrap breaks affinity at the seam)
        from repro.hacc.sph.kernels_math import SUPPORT

        margin = SUPPORT * h.max()
        interior = np.all(
            (pos > margin) & (pos < state[3] - margin), axis=1
        )
        assert interior.sum() > 5
        assert np.allclose(extras.grad_p[interior], grad_direction, atol=1e-7)

    def test_constant_velocity_zero_divergence(self, state, geometry, corrections):
        pos, h, ctx, _box = state
        vel = np.tile([1.0, 2.0, 3.0], (ctx.n, 1))
        extras = compute_extras(
            ctx,
            h,
            geometry.volume,
            geometry.volume,
            vel,
            np.ones(ctx.n),
            corrections,
        )
        assert np.abs(extras.div_v).max() < 1e-9

    def test_density_is_mass_over_volume(self, state, geometry, corrections):
        _pos, h, ctx, _box = state
        mass = np.full(ctx.n, 2.0)
        extras = compute_extras(
            ctx, h, geometry.volume, mass, np.zeros((ctx.n, 3)), np.ones(ctx.n), corrections
        )
        assert np.allclose(extras.rho, mass / geometry.volume)


def _full_hydro_state(state, geometry):
    rng = np.random.default_rng(42)
    _pos, h, ctx, _box = state
    n = ctx.n
    mass = geometry.volume * 1.2
    rho = mass / geometry.volume
    u = rng.uniform(0.5, 1.5, n)
    from repro.hacc import eos

    pressure = eos.pressure(rho, u)
    cs = eos.sound_speed(rho, u)
    vel = rng.normal(0, 0.1, (n, 3))
    return mass, rho, u, pressure, cs, vel


class TestAcceleration:
    def test_momentum_exactly_conserved(self, state, geometry, corrections):
        _pos, h, ctx, _box = state
        mass, rho, _u, pressure, cs, vel = _full_hydro_state(state, geometry)
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        net = (mass[:, None] * accel.dv_dt).sum(axis=0)
        scale = np.abs(mass[:, None] * accel.dv_dt).sum()
        assert np.all(np.abs(net) < 1e-12 * max(scale, 1e-300))

    def test_viscosity_only_on_approach(self, state, geometry):
        _pos, h, ctx, _box = state
        mass, rho, _u, _p, cs, vel = _full_hydro_state(state, geometry)
        visc = pair_viscosity(ctx, h, rho, cs, vel)
        assert np.all(visc >= 0.0)
        dv = vel[ctx.i] - vel[ctx.j]
        receding = np.einsum("ij,ij->i", dv, ctx.dx) >= 0
        assert np.all(visc[receding] == 0.0)

    def test_viscosity_symmetric_under_pair_swap(self, state, geometry):
        _pos, h, ctx, _box = state
        mass, rho, _u, _p, cs, vel = _full_hydro_state(state, geometry)
        visc = pair_viscosity(ctx, h, rho, cs, vel)
        lookup = {(a, b): v for a, b, v in zip(ctx.i.tolist(), ctx.j.tolist(), visc)}
        for (a, b), v in list(lookup.items())[:200]:
            assert lookup[(b, a)] == pytest.approx(v)

    def test_signal_speed_bounded_below_by_sound_speed(self, state, geometry, corrections):
        _pos, h, ctx, _box = state
        mass, rho, _u, pressure, cs, vel = _full_hydro_state(state, geometry)
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        assert accel.max_signal_speed >= 2 * cs.min()


class TestEnergy:
    def test_total_energy_conserved_to_roundoff(self, state, geometry, corrections):
        # the compatible discretisation: d/dt(KE + TE) = 0 identically
        _pos, h, ctx, _box = state
        mass, rho, _u, pressure, cs, vel = _full_hydro_state(state, geometry)
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        residual = pairwise_energy_balance(
            ctx, geometry.volume, mass, pressure, vel, accel
        )
        scale = float(np.abs(mass[:, None] * vel * accel.dv_dt).sum())
        assert abs(residual) < 1e-10 * max(scale, 1e-300)

    def test_static_gas_no_heating(self, state, geometry, corrections):
        _pos, h, ctx, _box = state
        mass, rho, _u, pressure, cs, _vel = _full_hydro_state(state, geometry)
        vel = np.zeros((ctx.n, 3))
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        energy = compute_energy_rate(
            ctx, geometry.volume, mass, pressure, vel, accel
        )
        assert np.abs(energy.du_dt).max() == 0.0

    def test_compression_heats(self, state, geometry, corrections):
        # a uniformly contracting flow does positive compressive work
        pos, h, ctx, box = state
        mass, rho, _u, pressure, cs, _ = _full_hydro_state(state, geometry)
        centre = box / 2
        vel = -0.1 * ((pos - centre))
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        energy = compute_energy_rate(
            ctx, geometry.volume, mass, pressure, vel, accel
        )
        assert energy.du_dt.sum() > 0

    def test_mismatched_accel_rejected(self, state, geometry, corrections):
        _pos, h, ctx, _box = state
        mass, rho, _u, pressure, cs, vel = _full_hydro_state(state, geometry)
        accel = compute_acceleration(
            ctx, h, geometry.volume, mass, rho, pressure, cs, vel, corrections
        )
        other_ctx = PairContext.build(
            np.random.default_rng(0).uniform(0, 6, (10, 3)), np.full(10, 1.0), 6.0
        )
        with pytest.raises(ValueError):
            compute_energy_rate(
                other_ctx, geometry.volume[:10], mass[:10], pressure[:10], vel[:10], accel
            )
