"""Tests for the ``repro.xp`` array-backend shim.

Covers the registry/selection machinery, cross-backend op parity, the
dtype-fidelity contract, and the three pair-pipeline bugfix
regressions this shim's port surfaced (float32 upcast in scatter_sum,
scalar smoothing lengths, swapped sph_cutoff arguments).
"""

import numpy as np
import pytest

from repro import xp
from repro.xp.base import OP_NAMES, ArrayBackend


@pytest.fixture(autouse=True)
def _restore_active_backend():
    """Backend selection is process-global; never leak it across tests."""
    previous = xp._active
    yield
    xp._active = previous


# ---------------------------------------------------------------------------
# registry / selection
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        assert {"numpy", "blocked", "numba", "torch"} <= set(
            xp.registered_backends()
        )

    def test_always_available_backends(self):
        names = xp.available_backends()
        assert names[0] == "numpy"
        assert "blocked" in names

    def test_unknown_backend_raises(self):
        with pytest.raises(xp.UnknownBackendError, match="registered:"):
            xp.set_backend("does-not-exist")

    def test_unavailable_backend_raises_with_hint(self):
        spec = xp._BackendSpec(
            "ghost", "repro.xp.ghost", "GhostBackend", "not_an_importable_module"
        )
        xp._register_spec(spec)
        try:
            assert not spec.available()
            with pytest.raises(xp.BackendUnavailableError, match="pip install"):
                xp.set_backend("ghost")
            assert "ghost" not in xp.available_backends()
        finally:
            del xp._REGISTRY["ghost"]

    def test_set_backend_switches_dispatch(self):
        xp.set_backend("blocked")
        assert xp.get_backend().name == "blocked"
        xp.set_backend("numpy")
        assert xp.get_backend().name == "numpy"

    def test_use_backend_scopes_and_restores(self):
        xp.set_backend("numpy")
        with xp.use_backend("blocked") as backend:
            assert backend.name == "blocked"
            assert xp.get_backend().name == "blocked"
        assert xp.get_backend().name == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(xp.ENV_VAR, "blocked")
        xp._active = None
        assert xp.get_backend().name == "blocked"

    def test_env_var_bad_name_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv(xp.ENV_VAR, "no-such-backend")
        xp._active = None
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = xp.get_backend()
        assert backend.name == xp.DEFAULT_BACKEND

    def test_explicit_set_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(xp.ENV_VAR, "blocked")
        xp.set_backend("numpy")
        assert xp.get_backend().name == "numpy"

    def test_module_getattr_rejects_non_ops(self):
        with pytest.raises(AttributeError):
            xp.not_an_op  # noqa: B018

    def test_register_backend_requires_subclass_and_name(self):
        with pytest.raises(TypeError):
            xp.register_backend(int)
        with pytest.raises(ValueError):
            xp.register_backend(type("Anon", (ArrayBackend,), {}))

    def test_register_backend_roundtrip(self):
        @xp.register_backend
        class EchoBackend(ArrayBackend):
            name = "echo-test"
            summary = "test double"

        try:
            assert "echo-test" in xp.registered_backends()
            xp.set_backend("echo-test")
            assert xp.get_backend().name == "echo-test"
        finally:
            del xp._REGISTRY["echo-test"]
            del xp._INSTANCES["echo-test"]

    def test_capabilities_rows(self):
        rows = {row["name"]: row for row in xp.backend_capabilities()}
        assert rows["numpy"]["specialised_ops"] == []
        assert "segment_sum" in rows["blocked"]["specialised_ops"]

    def test_source_files_share_the_contract(self):
        ref = xp.backend_source_files("numpy")
        blk = xp.backend_source_files("blocked")
        assert ref[0] == blk[0]  # both include base.py first
        assert ref[-1] != blk[-1]


# ---------------------------------------------------------------------------
# op parity across every available backend
# ---------------------------------------------------------------------------
def _segments_fixture(rng, m=257, n_seg=31, trailing=()):
    values = rng.standard_normal((m,) + trailing)
    starts = np.sort(rng.choice(np.arange(1, m), size=n_seg - 1, replace=False))
    starts = np.concatenate([[0], starts]).astype(np.int64)
    return values, starts


class TestOpParity:
    @pytest.mark.parametrize("backend", xp.available_backends())
    @pytest.mark.parametrize("trailing", [(), (3,), (3, 3)])
    def test_segment_sum_matches_reference(self, backend, trailing):
        rng = np.random.default_rng(7)
        values, starts = _segments_fixture(rng, trailing=trailing)
        expect = np.add.reduceat(values, starts, axis=0)
        with xp.use_backend(backend):
            got = xp.segment_sum(values, starts)
        np.testing.assert_allclose(got, expect, rtol=1e-12, atol=1e-12)
        assert got.shape == expect.shape

    @pytest.mark.parametrize("backend", xp.available_backends())
    def test_rowwise_dot_matches_reference(self, backend):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((101, 3))
        b = rng.standard_normal((101, 3))
        with xp.use_backend(backend):
            got = xp.rowwise_dot(a, b)
        np.testing.assert_allclose(got, np.einsum("ij,ij->i", a, b), rtol=1e-13)

    @pytest.mark.parametrize("backend", xp.available_backends())
    def test_weighted_bincount_matches_reference(self, backend):
        rng = np.random.default_rng(13)
        index = rng.integers(0, 20, size=300)
        weights = rng.standard_normal(300)
        with xp.use_backend(backend):
            got = xp.bincount(index, weights=weights, minlength=25)
        expect = np.bincount(index, weights=weights, minlength=25)
        np.testing.assert_allclose(got, expect, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("backend", xp.available_backends())
    def test_argsort_is_stable(self, backend):
        keys = np.array([2, 1, 2, 1, 2, 1, 0, 0], dtype=np.int64)
        with xp.use_backend(backend):
            order = xp.argsort(keys)
        np.testing.assert_array_equal(order, np.argsort(keys, kind="stable"))

    def test_numpy_backend_specialises_nothing(self):
        from repro.xp.numpy_backend import NumpyBackend

        assert NumpyBackend.specialised() == ()
        assert set(OP_NAMES) <= set(dir(NumpyBackend))


# ---------------------------------------------------------------------------
# dtype fidelity
# ---------------------------------------------------------------------------
class TestDtypeFidelity:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_ensure_float_preserves_float_dtypes(self, dtype):
        out = xp.ensure_float(np.ones(4, dtype=dtype))
        assert out.dtype == dtype

    def test_ensure_float_promotes_ints_to_float64(self):
        assert xp.ensure_float(np.arange(4)).dtype == np.float64
        assert xp.ensure_float([1, 2, 3]).dtype == np.float64

    @pytest.mark.parametrize("backend", xp.available_backends())
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_segment_sum_preserves_dtype(self, backend, dtype):
        rng = np.random.default_rng(3)
        values, starts = _segments_fixture(rng, trailing=(3,))
        values = values.astype(dtype)
        with xp.use_backend(backend):
            assert xp.segment_sum(values, starts).dtype == dtype


# ---------------------------------------------------------------------------
# bugfix regressions (pair pipeline)
# ---------------------------------------------------------------------------
def _tiny_context():
    from repro.hacc.sph.pairs import PairContext

    rng = np.random.default_rng(5)
    pos = rng.uniform(0.0, 1.0, size=(24, 3))
    h = np.full(24, 0.18)
    return PairContext.build(pos, h, 1.0), h


class TestScatterSumDtypeRegression:
    """Bugfix: scatter_sum silently upcast float32 pair values to
    float64 (``np.zeros`` without ``dtype=values.dtype``)."""

    @pytest.mark.parametrize("backend", xp.available_backends())
    @pytest.mark.parametrize("shape", [(), (3,)])
    def test_float32_values_accumulate_as_float32(self, backend, shape):
        ctx, _h = _tiny_context()
        rng = np.random.default_rng(9)
        values = rng.standard_normal((ctx.n_pairs,) + shape).astype(np.float32)
        with xp.use_backend(backend):
            out = ctx.scatter_sum(values)
        assert out.dtype == np.float32
        assert out.shape == (ctx.n,) + shape
        np.testing.assert_allclose(
            out, _reference_scatter(ctx, values), rtol=1e-5, atol=1e-5
        )

    def test_float64_results_unchanged(self):
        ctx, _h = _tiny_context()
        values = np.random.default_rng(2).standard_normal(ctx.n_pairs)
        out = ctx.scatter_sum(values)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, _reference_scatter(ctx, values), rtol=1e-12)

    def test_empty_context_keeps_dtype(self):
        from repro.hacc.sph.pairs import PairContext

        ctx = PairContext.build(np.zeros((0, 3)), np.zeros(0), 1.0)
        out = ctx.scatter_sum(np.zeros((0, 3), dtype=np.float32))
        assert out.dtype == np.float32
        assert out.shape == (0, 3)


def _reference_scatter(ctx, values):
    out = np.zeros((ctx.n,) + values.shape[1:], dtype=np.float64)
    np.add.at(out, ctx.i, values.astype(np.float64))
    return out


class TestScalarSmoothingLengthRegression:
    """Bugfix: ``kernel_values(h)`` crashed with a TypeError when ``h``
    was a python float (``h[self.i]`` on a scalar)."""

    def test_scalar_h_matches_uniform_array(self):
        ctx, h = _tiny_context()
        scalar = float(h[0])
        np.testing.assert_array_equal(
            ctx.kernel_values(scalar), ctx.kernel_values(h)
        )
        np.testing.assert_array_equal(
            ctx.kernel_gradients(scalar), ctx.kernel_gradients(h)
        )

    def test_zero_dim_array_accepted(self):
        ctx, h = _tiny_context()
        np.testing.assert_array_equal(
            ctx.kernel_values(np.float64(h[0])), ctx.kernel_values(h)
        )


class TestSphCutoffValidationRegression:
    """Bugfix: swapping the (h, box) arguments surfaced as an opaque
    'truth value of an array is ambiguous' ValueError from ``min``."""

    def test_swapped_arguments_raise_clear_typeerror(self):
        from repro.hacc.sph.pairs import sph_cutoff

        h = np.full(10, 0.2)
        with pytest.raises(TypeError, match="did you swap"):
            sph_cutoff(1.0, h)  # box and h swapped

    @pytest.mark.parametrize("box", [0.0, -1.0])
    def test_nonpositive_box_rejected(self, box):
        from repro.hacc.sph.pairs import sph_cutoff

        with pytest.raises(ValueError, match="must be positive"):
            sph_cutoff(np.full(4, 0.1), box)

    def test_valid_call_unchanged(self):
        from repro.hacc.sph.kernels_math import SUPPORT
        from repro.hacc.sph.pairs import sph_cutoff

        requested, clamped = sph_cutoff(np.full(4, 0.1), 10.0)
        assert requested == pytest.approx(SUPPORT * 0.1)
        assert clamped == requested


# ---------------------------------------------------------------------------
# whole-driver cross-backend agreement
# ---------------------------------------------------------------------------
class TestDriverAgreement:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_numpy_and_blocked_agree_to_roundoff(self):
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

        def run():
            driver = AdiabaticDriver(
                SimulationConfig(n_per_side=4, pm_mesh=8, n_steps=1)
            )
            driver.run()
            return driver.particles

        with xp.use_backend("numpy"):
            ref = run()
        with xp.use_backend("blocked"):
            got = run()
        for name in ("positions", "velocities", "u", "rho", "hsml", "volume"):
            np.testing.assert_allclose(
                getattr(got, name),
                getattr(ref, name),
                rtol=1e-9,
                atol=1e-12,
                err_msg=name,
            )
