"""Tests for the second-order LPT initial conditions."""

import numpy as np
import pytest

from repro.hacc.cosmology import Cosmology
from repro.hacc.ic import (
    ICConfig,
    displacement_field,
    second_order_displacement,
    zeldovich_ics,
)
from repro.hacc.mesh import fourier_grid
from repro.hacc.power import PowerSpectrum


@pytest.fixture(scope="module")
def cosmo_power():
    c = Cosmology()
    return c, PowerSpectrum(c)


class TestSecondOrderDisplacement:
    def test_plane_wave_has_zero_second_order(self):
        # for a single plane wave, phi_,ii phi_,jj == phi_,ij^2
        n, box = 16, 10.0
        coords = np.arange(n) * (box / n)
        x = coords[:, None, None] * np.ones((n, n, n))
        phi = np.cos(2 * np.pi * x / box)
        # psi1 = -grad phi: only the x-component is nonzero
        psi1 = np.zeros((n, n, n, 3))
        psi1[..., 0] = (2 * np.pi / box) * np.sin(2 * np.pi * x / box)
        psi2 = second_order_displacement(psi1, box)
        assert np.abs(psi2).max() < 1e-12 * np.abs(psi1).max()

    def test_second_order_is_small_at_high_z(self, cosmo_power):
        cosmo, power = cosmo_power
        config = ICConfig(n_per_side=16, box=10.0, z_initial=200.0, seed=3)
        psi1, _vel = displacement_field(config, cosmo, power)
        psi2 = second_order_displacement(psi1, box=10.0)
        # 2LPT scales as the square of the (tiny) z=200 fluctuations
        assert np.abs(psi2).max() < 0.05 * np.abs(psi1).max()

    def test_zero_mean(self, cosmo_power):
        cosmo, power = cosmo_power
        config = ICConfig(n_per_side=8, box=5.0, seed=9)
        psi1, _vel = displacement_field(config, cosmo, power)
        psi2 = second_order_displacement(psi1, box=5.0)
        assert np.allclose(psi2.mean(axis=(0, 1, 2)), 0.0, atol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            second_order_displacement(np.zeros((4, 4, 4)), 1.0)

    def test_curl_free(self, cosmo_power):
        # psi2 is a gradient field: its curl vanishes
        cosmo, power = cosmo_power
        config = ICConfig(n_per_side=16, box=10.0, seed=5)
        psi1, _vel = displacement_field(config, cosmo, power)
        psi2 = second_order_displacement(psi1, box=10.0)
        kx, ky, kz, _k2 = fourier_grid(16, 10.0)
        fx = np.fft.rfftn(psi2[..., 0])
        fy = np.fft.rfftn(psi2[..., 1])
        curl_z = kx * fy - ky * fx
        scale = max(np.abs(fx).max(), np.abs(fy).max())
        assert np.abs(curl_z).max() < 1e-10 * scale


class TestLPTOrderOption:
    def test_order_validated(self):
        with pytest.raises(ValueError):
            ICConfig(lpt_order=3)

    def test_2lpt_particles_generate(self, cosmo_power):
        cosmo, power = cosmo_power
        p = zeldovich_ics(
            ICConfig(n_per_side=6, box=3.0, lpt_order=2), cosmo, power
        )
        p.validate()
        assert len(p) == 2 * 6**3

    def test_2lpt_close_to_zeldovich_at_z200(self, cosmo_power):
        cosmo, power = cosmo_power
        base = ICConfig(n_per_side=8, box=4.0, seed=21, lpt_order=1)
        second = ICConfig(n_per_side=8, box=4.0, seed=21, lpt_order=2)
        p1 = zeldovich_ics(base, cosmo, power)
        p2 = zeldovich_ics(second, cosmo, power)
        d = p1.minimum_image(p1.positions - p2.positions)
        cell = 4.0 / 8
        assert np.abs(d).max() < 0.05 * cell  # a sub-percent correction
        assert np.abs(d).max() > 0.0  # but a real one
