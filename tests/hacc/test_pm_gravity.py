"""Tests for the PM Poisson solver and the short-range PP solver."""

import numpy as np
import pytest

from repro.hacc.particles import ParticleData
from repro.hacc.pm import PMConfig, PMSolver
from repro.hacc.short_range import (
    POLY_ORDER,
    PolynomialForceKernel,
    ShortRangeSolver,
    exact_short_range_factor,
)
from repro.hacc.units import G_NEWTON


def two_body(box=20.0, sep=1.0):
    p = ParticleData.allocate(2, box=box)
    p.set_positions(np.array([[10.0, 10.0, 10.0], [10.0 + sep, 10.0, 10.0]]))
    p.arrays["mass"][:] = 1.0e10
    return p


class TestShortRangeFactor:
    def test_full_newtonian_at_zero(self):
        assert exact_short_range_factor(np.array([1e-6]), 1.0)[0] == pytest.approx(
            1.0, abs=1e-4
        )

    def test_vanishes_beyond_split_scale(self):
        assert exact_short_range_factor(np.array([8.0]), 1.0)[0] < 1e-5

    def test_monotone_decreasing(self):
        r = np.linspace(0.01, 6.0, 100)
        s = exact_short_range_factor(r, 1.0)
        assert np.all(np.diff(s) < 0)


class TestPolynomialKernel:
    def test_order_matches_appendix(self):
        # -DHACC_CUDA_POLY_ORDER=5
        k = PolynomialForceKernel.fit(1.0, 3.0)
        assert len(k.coefficients) == POLY_ORDER + 1

    def test_fit_error_small(self):
        k = PolynomialForceKernel.fit(1.0, 4.5)
        assert k.max_fit_error() < 2e-2

    def test_zero_beyond_cutoff(self):
        k = PolynomialForceKernel.fit(1.0, 3.0)
        assert k(np.array([3.5]))[0] == 0.0

    def test_invalid_scales_rejected(self):
        with pytest.raises(ValueError):
            PolynomialForceKernel.fit(0.0, 3.0)


class TestShortRangeSolver:
    def test_two_body_force_matches_filtered_newton(self):
        p = two_body(sep=0.5)
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0, softening=1e-4)
        acc = solver.accelerations(p, use_polynomial=False)
        r = 0.5
        expected = G_NEWTON * 1.0e10 / r**2 * exact_short_range_factor(
            np.array([r]), 1.0
        )[0]
        assert abs(acc[0, 0]) == pytest.approx(expected, rel=1e-3)
        # attraction: particle 0 pulled toward +x
        assert acc[0, 0] > 0 and acc[1, 0] < 0

    def test_newtons_third_law(self, rng):
        p = ParticleData.allocate(20, box=20.0)
        p.set_positions(rng.uniform(8, 12, (20, 3)))
        p.arrays["mass"][:] = rng.uniform(1e9, 1e10, 20)
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0)
        acc = solver.accelerations(p)
        net = (p.mass[:, None] * acc).sum(axis=0)
        scale = np.abs(p.mass[:, None] * acc).sum()
        assert np.all(np.abs(net) < 1e-10 * scale)

    def test_polynomial_matches_exact_path(self, rng):
        p = ParticleData.allocate(30, box=20.0)
        p.set_positions(rng.uniform(5, 15, (30, 3)))
        p.arrays["mass"][:] = 1e10
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0)
        a_poly = solver.accelerations(p, use_polynomial=True)
        a_exact = solver.accelerations(p, use_polynomial=False)
        denom = np.abs(a_exact).max()
        assert np.allclose(a_poly, a_exact, atol=2e-2 * denom)

    def test_interaction_count(self):
        p = two_body(sep=0.5)
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0)
        assert solver.interaction_count(p) == 2

    def test_interaction_count_reuses_accelerations_pair_list(self, rng, monkeypatch):
        # the cost model and the force evaluation must build the pair
        # list exactly once per particle state
        import repro.hacc.short_range as sr

        p = ParticleData.allocate(25, box=20.0)
        p.set_positions(rng.uniform(5, 15, (25, 3)))
        p.arrays["mass"][:] = 1e10
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0)
        calls = []
        real = sr.find_pairs
        monkeypatch.setattr(
            sr, "find_pairs", lambda *a, **k: calls.append(1) or real(*a, **k)
        )
        solver.accelerations(p)
        count = solver.interaction_count(p)
        assert len(calls) == 1
        assert count == len(real(p.positions, p.box, 3.0)[0])
        # a moved particle invalidates the memo
        moved = p.positions
        moved[0] = (moved[0] + 1.0) % p.box
        p.set_positions(moved)
        solver.interaction_count(p)
        assert len(calls) == 2

    def test_accelerations_accept_shared_cell_list(self, rng):
        from repro.hacc.neighbors import CellList

        p = ParticleData.allocate(30, box=20.0)
        p.set_positions(rng.uniform(2, 18, (30, 3)))
        p.arrays["mass"][:] = rng.uniform(1e9, 1e10, 30)
        solver = ShortRangeSolver(p.box, r_s=1.0, cutoff=3.0)
        plain = solver.accelerations(p)
        solver._pair_cache = None
        cl = CellList.build(p.positions, p.box, 3.0)
        shared = solver.accelerations(p, cell_list=cl)
        assert np.allclose(plain, shared)


class TestPMSolver:
    def test_density_contrast_mean_zero(self, small_particles):
        pm = PMSolver(small_particles.box, PMConfig(n_mesh=8))
        delta = pm.density_contrast(small_particles)
        assert delta.mean() == pytest.approx(0.0, abs=1e-12)

    def test_uniform_lattice_no_force(self):
        n = 8
        box = 10.0
        coords = (np.arange(n) + 0.5) * (box / n)
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        p = ParticleData.allocate(n**3, box=box)
        p.set_positions(np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()]))
        p.arrays["mass"][:] = 1.0
        pm = PMSolver(box, PMConfig(n_mesh=n))
        acc = pm.accelerations(p)
        assert np.abs(acc).max() < 1e-10

    def test_overdensity_attracts(self):
        # a clump at the box centre pulls a test particle toward it
        box = 32.0
        p = ParticleData.allocate(9, box=box)
        pos = np.full((9, 3), 16.0)
        pos[8] = [22.0, 16.0, 16.0]  # test particle to the +x side
        p.set_positions(pos)
        p.arrays["mass"][:8] = 1e12
        p.arrays["mass"][8] = 1.0
        pm = PMSolver(box, PMConfig(n_mesh=16, split_cells=2.0))
        acc = pm.accelerations(p)
        assert acc[8, 0] < 0  # pulled back toward the clump

    def test_cutoff_relates_to_split(self):
        pm = PMSolver(10.0, PMConfig(n_mesh=16, split_cells=1.25))
        assert pm.cutoff == pytest.approx(4.5 * pm.split_scale)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PMConfig(n_mesh=2)
        with pytest.raises(ValueError):
            PMConfig(split_cells=0.0)

    def test_potential_energy_negative_for_clustered(self):
        box = 32.0
        p = ParticleData.allocate(8, box=box)
        p.set_positions(np.full((8, 3), 16.0) + np.random.default_rng(0).normal(0, 0.5, (8, 3)))
        p.arrays["mass"][:] = 1e12
        pm = PMSolver(box, PMConfig(n_mesh=16))
        assert pm.potential_energy(p) < 0
