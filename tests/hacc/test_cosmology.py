"""Tests for the FLRW background."""

import numpy as np
import pytest

from repro.hacc.cosmology import Cosmology
from repro.hacc.units import H0_HUNITS


@pytest.fixture(scope="module")
def cosmo():
    return Cosmology()


class TestBackground:
    def test_a_z_roundtrip(self, cosmo):
        for z in (0.0, 50.0, 200.0):
            assert cosmo.z_of_a(cosmo.a_of_z(z)) == pytest.approx(z)

    def test_hubble_today(self, cosmo):
        assert cosmo.H(1.0) == pytest.approx(H0_HUNITS)

    def test_matter_dominated_limit(self, cosmo):
        # at high z, E(a) ~ sqrt(Om) a^-1.5
        a = 1.0 / 201.0
        assert cosmo.E(a) == pytest.approx(
            np.sqrt(cosmo.omega_m) * a**-1.5, rel=1e-3
        )

    def test_flatness(self, cosmo):
        assert cosmo.omega_m + cosmo.omega_l == pytest.approx(1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Cosmology(omega_m=0.0)
        with pytest.raises(ValueError):
            Cosmology(omega_m=0.3, omega_b=0.4)

    def test_negative_scale_factor_rejected(self, cosmo):
        with pytest.raises(ValueError):
            cosmo.z_of_a(0.0)


class TestGrowth:
    def test_normalised_today(self, cosmo):
        assert cosmo.growth_factor(1.0) == pytest.approx(1.0)

    def test_matter_era_growth_proportional_to_a(self, cosmo):
        # deep in matter domination D(a) ~ a
        a1, a2 = 1 / 201.0, 1 / 101.0
        ratio = cosmo.growth_factor(a2) / cosmo.growth_factor(a1)
        assert ratio == pytest.approx(a2 / a1, rel=1e-3)

    def test_growth_rate_near_unity_at_high_z(self, cosmo):
        # f = dlnD/dlna -> 1 in matter domination
        assert cosmo.growth_rate(1 / 201.0) == pytest.approx(1.0, abs=1e-3)

    def test_growth_monotonic(self, cosmo):
        ds = [cosmo.growth_factor(a) for a in (0.01, 0.1, 0.5, 1.0)]
        assert ds == sorted(ds)


class TestLeapfrogIntegrals:
    def test_positive_and_additive(self, cosmo):
        a0, am, a1 = 0.005, 0.01, 0.02
        whole = cosmo.drift_factor(a0, a1)
        parts = cosmo.drift_factor(a0, am) + cosmo.drift_factor(am, a1)
        assert whole == pytest.approx(parts)
        assert whole > 0

    def test_kick_vs_drift_scaling(self, cosmo):
        # integrand differs by one power of a < 1: drift > kick there
        a0, a1 = 0.005, 0.01
        assert cosmo.drift_factor(a0, a1) > cosmo.kick_factor(a0, a1)

    def test_empty_interval_zero(self, cosmo):
        assert cosmo.kick_factor(0.01, 0.01) == 0.0

    def test_reversed_interval_rejected(self, cosmo):
        with pytest.raises(ValueError):
            cosmo.drift_factor(0.02, 0.01)


class TestSchedule:
    def test_paper_schedule_five_steps_z200_to_50(self, cosmo):
        edges = cosmo.step_schedule()
        assert len(edges) == 6
        assert edges[0] == pytest.approx(1 / 201.0)
        assert edges[-1] == pytest.approx(1 / 51.0)
        assert np.all(np.diff(edges) > 0)

    def test_uniform_in_scale_factor(self, cosmo):
        edges = cosmo.step_schedule()
        steps = np.diff(edges)
        assert np.allclose(steps, steps[0])

    def test_invalid_schedule_rejected(self, cosmo):
        with pytest.raises(ValueError):
            cosmo.step_schedule(z_initial=50, z_final=200)
        with pytest.raises(ValueError):
            cosmo.step_schedule(n_steps=0)
