"""Tests for the run validator."""

import numpy as np
import pytest

from repro.hacc.validation import RunValidator, validate_run


class TestHealthyRun:
    def test_reference_run_validates(self, reference_driver):
        report = validate_run(reference_driver)
        assert report.ok, report.summary()

    def test_all_checks_ran(self, reference_driver):
        report = validate_run(reference_driver)
        assert set(report.checks_run) == {
            "momentum",
            "mass",
            "containment",
            "thermodynamics",
            "volumes",
            "timer_pattern",
            "conservation",
        }

    def test_raise_on_failure_noop_when_ok(self, reference_driver):
        validate_run(reference_driver).raise_on_failure()

    def test_summary_renders(self, reference_driver):
        assert "validation: OK" in validate_run(reference_driver).summary()


class TestCorruptionDetection:
    """Each corruption must trip exactly the right check."""

    @pytest.fixture
    def driver(self):
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

        d = AdiabaticDriver(SimulationConfig(n_per_side=6, pm_mesh=8, n_steps=1))
        d.run()
        return d

    def _violated(self, driver):
        return {v.check for v in validate_run(driver).violations}

    def test_clean_baseline(self, driver):
        assert self._violated(driver) == set()

    def test_momentum_corruption(self, driver):
        driver.particles.arrays["vx"][:] += 1e6
        assert "momentum" in self._violated(driver)

    def test_mass_corruption(self, driver):
        driver.particles.arrays["mass"][0] = -1.0
        assert "mass" in self._violated(driver)

    def test_containment_corruption(self, driver):
        driver.particles.arrays["x"][0] = 2 * driver.particles.box
        assert "containment" in self._violated(driver)

    def test_negative_energy(self, driver):
        from repro.hacc.particles import Species

        gas = driver.particles.species_mask(Species.BARYON)
        idx = np.nonzero(gas)[0][0]
        driver.particles.arrays["u"][idx] = -1.0
        assert "thermodynamics" in self._violated(driver)

    def test_eos_inconsistency(self, driver):
        from repro.hacc.particles import Species

        gas = driver.particles.species_mask(Species.BARYON)
        driver.particles.arrays["pressure"][gas] *= 2.0
        assert "thermodynamics" in self._violated(driver)

    def test_volume_corruption(self, driver):
        from repro.hacc.particles import Species

        gas = driver.particles.species_mask(Species.BARYON)
        driver.particles.arrays["volume"][gas] *= 10.0
        assert "volumes" in self._violated(driver)

    def test_trace_corruption(self, driver):
        driver.trace.invocations = [
            inv for inv in driver.trace.invocations if inv.name != "upCor"
        ]
        assert "timer_pattern" in self._violated(driver)

    def test_raise_on_failure_raises(self, driver):
        driver.particles.arrays["mass"][0] = np.nan
        with pytest.raises(AssertionError, match="mass"):
            validate_run(driver).raise_on_failure()


class TestExactViolationNames:
    """Each corruption trips *exactly* its own check — the resilience
    step gate's severity policy keys on ``Violation.check``, so the
    names must be precise, not just present."""

    @pytest.fixture
    def driver(self):
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

        d = AdiabaticDriver(SimulationConfig(n_per_side=6, pm_mesh=8, n_steps=1))
        d.run()
        return d

    def _violated(self, driver):
        return {v.check for v in validate_run(driver).violations}

    def test_mass_corruption_reports_only_mass(self, driver):
        # NaN (not a sign flip): a changed mass would also move the
        # total momentum and trip that check too
        driver.particles.arrays["mass"][0] = np.nan
        assert self._violated(driver) == {"mass"}

    def test_position_corruption_reports_only_containment(self, driver):
        driver.particles.arrays["x"][0] = 2 * driver.particles.box
        assert self._violated(driver) == {"containment"}

    def test_internal_energy_corruption_reports_only_thermodynamics(self, driver):
        from repro.hacc.particles import Species

        gas = driver.particles.species_mask(Species.BARYON)
        idx = np.nonzero(gas)[0][0]
        driver.particles.arrays["u"][idx] = -1.0
        assert self._violated(driver) == {"thermodynamics"}

    def test_trace_corruption_reports_only_timer_pattern(self, driver):
        driver.trace.invocations = [
            inv for inv in driver.trace.invocations if inv.name != "upGeo"
        ]
        assert self._violated(driver) == {"timer_pattern"}

    def test_velocity_corruption_reports_only_momentum(self, driver):
        driver.particles.arrays["vx"][:] += 1e6
        assert self._violated(driver) == {"momentum"}

    def test_volume_corruption_reports_only_volumes(self, driver):
        from repro.hacc.particles import Species

        gas = driver.particles.species_mask(Species.BARYON)
        driver.particles.arrays["volume"][gas] *= 100.0
        assert self._violated(driver) == {"volumes"}
