"""Tests for the FOF / DBSCAN halo finder."""

import numpy as np
import pytest

from repro.hacc.halo import HaloCatalog, UnionFind, dbscan, fof


def make_clusters(rng, box=50.0):
    """Three compact clusters plus sparse background noise."""
    centres = np.array([[10.0, 10.0, 10.0], [30.0, 30.0, 30.0], [40.0, 10.0, 25.0]])
    sizes = [40, 25, 15]
    blobs = [
        c + rng.normal(0, 0.3, (n, 3)) for c, n in zip(centres, sizes)
    ]
    noise = rng.uniform(0, box, (30, 3))
    pos = np.vstack(blobs + [noise]) % box
    return pos, sizes


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert len(set(uf.labels())) == 5

    def test_union_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)

    def test_path_compression_idempotent(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        assert len(set(uf.labels())) == 1

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestFOF:
    def test_finds_the_clusters(self, rng):
        pos, sizes = make_clusters(rng)
        cat = fof(pos, 50.0, linking_length=1.0, min_members=10)
        assert cat.n_halos == 3
        assert sorted(cat.sizes.tolist(), reverse=True) == sorted(
            sizes, reverse=True
        )

    def test_noise_unlabelled(self, rng):
        pos, sizes = make_clusters(rng)
        cat = fof(pos, 50.0, linking_length=1.0, min_members=10)
        # background particles (last 30) should mostly be field (-1)
        assert np.mean(cat.labels[-30:] == -1) > 0.8

    def test_linking_length_controls_merging(self, rng):
        pos, _ = make_clusters(rng)
        few = fof(pos, 50.0, linking_length=0.1, min_members=10)
        many = fof(pos, 50.0, linking_length=1.0, min_members=10)
        assert few.n_halos <= many.n_halos

    def test_members_returns_particle_indices(self, rng):
        pos, sizes = make_clusters(rng)
        cat = fof(pos, 50.0, linking_length=1.0, min_members=10)
        members = cat.members(0)  # largest halo
        assert len(members) == max(sizes)
        with pytest.raises(IndexError):
            cat.members(cat.n_halos)

    def test_periodic_halo_across_boundary(self, rng):
        # a cluster straddling the box edge is one halo
        pos = np.vstack(
            [
                np.array([0.2, 25.0, 25.0]) + rng.normal(0, 0.2, (20, 3)),
                np.array([49.8, 25.0, 25.0]) + rng.normal(0, 0.2, (20, 3)),
            ]
        ) % 50.0
        cat = fof(pos, 50.0, linking_length=1.0, min_members=10)
        assert cat.n_halos == 1
        assert cat.sizes[0] == 40


class TestDBSCAN:
    def test_reduces_to_fof_for_min_points_2(self, rng):
        # the equivalence the ArborX collaboration exploits (Section 3.1)
        pos, _ = make_clusters(rng)
        f = fof(pos, 50.0, linking_length=1.0, min_members=10)
        d = dbscan(pos, 50.0, eps=1.0, min_points=2, min_members=10)
        assert d.n_halos == f.n_halos
        assert np.array_equal(np.sort(d.sizes), np.sort(f.sizes))
        # identical partitions up to label renaming
        for halo in range(f.n_halos):
            fm = set(f.members(halo).tolist())
            dm = set(d.members(halo).tolist())
            assert fm == dm

    def test_high_min_points_prunes_bridges(self, rng):
        pos, _ = make_clusters(rng)
        strict = dbscan(pos, 50.0, eps=1.0, min_points=10, min_members=10)
        loose = dbscan(pos, 50.0, eps=1.0, min_points=2, min_members=10)
        # stricter core criterion never produces more clustered particles
        assert (strict.labels >= 0).sum() <= (loose.labels >= 0).sum()

    def test_all_noise_when_sparse(self, rng):
        pos = rng.uniform(0, 100, (50, 3))
        cat = dbscan(pos, 100.0, eps=0.5, min_points=5, min_members=5)
        assert cat.n_halos == 0
        assert np.all(cat.labels == -1)
