"""Tests for the Wendland C2 kernel family."""

import numpy as np
import pytest

from repro.hacc.sph.kernels_math import (
    KERNELS,
    SUPPORT,
    cubic_spline,
    verify_kernel_normalisation,
    wendland_c2,
    wendland_c2_derivative,
)


class TestWendlandC2:
    def test_normalised(self):
        assert verify_kernel_normalisation("wendland-c2") == pytest.approx(
            1.0, abs=1e-3
        )

    def test_compact_support_matches_spline(self):
        r = np.array([2.0, 3.0])
        h = np.ones(2)
        assert np.all(wendland_c2(r, h) == 0.0)

    def test_positive_and_monotone(self):
        r = np.linspace(0, SUPPORT, 100)
        w = wendland_c2(r, np.ones(100))
        assert np.all(w[:-1] >= 0)
        assert np.all(np.diff(w) <= 1e-15)

    def test_derivative_matches_finite_difference(self):
        r = np.linspace(0.05, 1.9, 100)
        h = np.ones(100)
        eps = 1e-6
        fd = (wendland_c2(r + eps, h) - wendland_c2(r - eps, h)) / (2 * eps)
        assert np.allclose(wendland_c2_derivative(r, h), fd, atol=1e-6)

    def test_derivative_zero_at_centre_and_edge(self):
        h = np.ones(2)
        d = wendland_c2_derivative(np.array([0.0, 2.0]), h)
        assert d[0] == 0.0
        assert d[1] == pytest.approx(0.0, abs=1e-12)

    def test_scale_invariance(self):
        r = np.linspace(0, 2.0, 32)
        h = np.ones(32)
        s = 2.0
        lhs = wendland_c2(r, h)
        rhs = s**3 * wendland_c2(s * r, s * h)
        assert np.allclose(lhs, rhs)

    def test_flatter_centre_than_cubic_spline(self):
        # Wendland kernels have a broader, flatter core (the pairing-
        # instability resistance); the spline is more peaked at r=0
        h = np.ones(1)
        assert wendland_c2(np.zeros(1), h)[0] > cubic_spline(np.zeros(1), h)[0]

    def test_registry(self):
        assert set(KERNELS) == {"cubic-spline", "wendland-c2"}
        with pytest.raises(ValueError):
            verify_kernel_normalisation("gaussian")

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            wendland_c2(np.ones(1), np.zeros(1))
        with pytest.raises(ValueError):
            wendland_c2_derivative(np.ones(1), np.zeros(1))
