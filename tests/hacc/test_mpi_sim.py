"""Tests for the simulated MPI world and domain decomposition."""

import numpy as np
import pytest

from repro.hacc.mpi_sim import DomainDecomposition, SimWorld


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimWorld(8)
        results = world.run(lambda comm: comm.allreduce(comm.Get_rank()))
        assert results == [28] * 8

    def test_allreduce_min_max(self):
        world = SimWorld(4)
        assert world.run(lambda c: c.allreduce(c.Get_rank(), op="max")) == [3] * 4
        assert world.run(lambda c: c.allreduce(c.Get_rank() + 1, op="min")) == [1] * 4

    def test_bcast_from_nonzero_root(self):
        world = SimWorld(4)
        results = world.run(
            lambda c: c.bcast("payload" if c.Get_rank() == 2 else None, root=2)
        )
        assert results == ["payload"] * 4

    def test_gather_only_root_receives(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.gather(c.Get_rank() ** 2, root=1))
        assert results[1] == [0, 1, 4, 9]
        assert results[0] is None and results[2] is None

    def test_allgather(self):
        world = SimWorld(3)
        results = world.run(lambda c: c.allgather(c.Get_rank() * 10))
        assert results == [[0, 10, 20]] * 3

    def test_alltoall(self):
        world = SimWorld(3)

        def fn(c):
            send = [f"{c.Get_rank()}->{dst}" for dst in range(3)]
            return c.alltoall(send)

        results = world.run(fn)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_to_root(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.reduce(1, root=0))
        assert results[0] == 4
        assert results[1] is None

    def test_sequential_collectives_keep_order(self):
        world = SimWorld(4)

        def fn(c):
            a = c.allreduce(1)
            c.barrier()
            b = c.allgather(c.Get_rank())
            return (a, tuple(b))

        results = world.run(fn)
        assert results == [(4, (0, 1, 2, 3))] * 4

    def test_rank_exception_propagates(self):
        world = SimWorld(2)

        def fn(c):
            if c.Get_rank() == 1:
                raise RuntimeError("rank 1 aborts")
            # rank 0 must not deadlock on a collective rank 1 skipped
            return c.Get_size()

        with pytest.raises(RuntimeError, match="rank 1 aborts"):
            world.run(fn)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimWorld(0)


class TestDecomposition:
    @pytest.fixture
    def decomp(self, small_particles):
        return DomainDecomposition.cubic(small_particles.box, 8, overload=0.1)

    def test_cubic_requires_cubic_count(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(small_particles.box, 6, overload=0.1)

    def test_eight_ranks_form_2x2x2(self, decomp):
        assert decomp.ranks_per_dim == (2, 2, 2)
        assert decomp.n_ranks == 8

    def test_rank_coords_roundtrip(self, decomp):
        seen = {decomp.rank_coords(r) for r in range(8)}
        assert len(seen) == 8

    def test_bounds_tile_the_box(self, decomp, small_particles):
        total = 0.0
        for r in range(8):
            lo, hi = decomp.bounds(r)
            total += np.prod(hi - lo)
        assert total == pytest.approx(small_particles.box**3)

    def test_owner_matches_bounds(self, decomp, small_particles):
        owners = decomp.owner_of(small_particles.positions)
        for r in range(8):
            lo, hi = decomp.bounds(r)
            mine = small_particles.positions[owners == r]
            assert np.all(mine >= lo - 1e-12)
            assert np.all(mine < hi + 1e-12)

    def test_split_partitions_everything(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        assert sum(len(p) for p in parts) == len(small_particles)

    def test_overload_adds_ghosts(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for owned, with_ghosts in zip(parts, merged):
            assert len(with_ghosts) >= len(owned)
        assert sum(len(m) for m in merged) > len(small_particles)

    def test_ghosts_lie_in_overload_shell(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for r in range(8):
            n_owned = len(parts[r])
            ghosts = merged[r].positions[n_owned:]
            if len(ghosts) == 0:
                continue
            lo, hi = decomp.bounds(r)
            half = 0.5 * small_particles.box
            centre = 0.5 * (lo + hi)
            d = np.abs(
                (ghosts - centre + half) % small_particles.box - half
            )
            half_width = 0.5 * (hi - lo)
            assert np.all(d <= half_width + decomp.overload + 1e-12)

    def test_ghost_pids_reference_originals(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        all_pids = set(small_particles.pid.tolist())
        for r in range(8):
            assert set(merged[r].pid.tolist()) <= all_pids

    def test_excessive_overload_rejected(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(
                small_particles.box, 8, overload=small_particles.box
            )
