"""Tests for the simulated MPI world and domain decomposition."""

import time

import numpy as np
import pytest

from repro.hacc.mpi_sim import (
    DomainDecomposition,
    RankFailure,
    SimWorld,
    _Rendezvous,
)


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimWorld(8)
        results = world.run(lambda comm: comm.allreduce(comm.Get_rank()))
        assert results == [28] * 8

    def test_allreduce_min_max(self):
        world = SimWorld(4)
        assert world.run(lambda c: c.allreduce(c.Get_rank(), op="max")) == [3] * 4
        assert world.run(lambda c: c.allreduce(c.Get_rank() + 1, op="min")) == [1] * 4

    def test_bcast_from_nonzero_root(self):
        world = SimWorld(4)
        results = world.run(
            lambda c: c.bcast("payload" if c.Get_rank() == 2 else None, root=2)
        )
        assert results == ["payload"] * 4

    def test_gather_only_root_receives(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.gather(c.Get_rank() ** 2, root=1))
        assert results[1] == [0, 1, 4, 9]
        assert results[0] is None and results[2] is None

    def test_allgather(self):
        world = SimWorld(3)
        results = world.run(lambda c: c.allgather(c.Get_rank() * 10))
        assert results == [[0, 10, 20]] * 3

    def test_alltoall(self):
        world = SimWorld(3)

        def fn(c):
            send = [f"{c.Get_rank()}->{dst}" for dst in range(3)]
            return c.alltoall(send)

        results = world.run(fn)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_to_root(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.reduce(1, root=0))
        assert results[0] == 4
        assert results[1] is None

    def test_sequential_collectives_keep_order(self):
        world = SimWorld(4)

        def fn(c):
            a = c.allreduce(1)
            c.barrier()
            b = c.allgather(c.Get_rank())
            return (a, tuple(b))

        results = world.run(fn)
        assert results == [(4, (0, 1, 2, 3))] * 4

    def test_rank_exception_propagates(self):
        world = SimWorld(2)

        def fn(c):
            if c.Get_rank() == 1:
                raise RuntimeError("rank 1 aborts")
            # rank 0 must not deadlock on a collective rank 1 skipped
            return c.Get_size()

        with pytest.raises(RuntimeError, match="rank 1 aborts"):
            world.run(fn)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimWorld(0)


@pytest.mark.timeout(60)
class TestSelfHealingCollectives:
    def test_rendezvous_result_initialised(self):
        # regression: a wakeup before the first completed generation
        # used to read an undefined _result attribute
        assert _Rendezvous(2)._result is None

    def test_per_call_timeout_raises_rankfailure(self):
        world = SimWorld(2)

        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(1.0)  # never joins the barrier
                return "late"
            with pytest.raises(RankFailure, match="timed out"):
                c.barrier(timeout=0.1)
            return "timed-out"

        assert world.run(fn) == ["late", "timed-out"]

    def test_world_level_timeout_is_the_default(self):
        world = SimWorld(2, timeout=0.1)

        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(1.0)
                return "late"
            with pytest.raises(RankFailure, match="timed out"):
                c.allreduce(1)  # no per-call timeout: world's applies
            return "timed-out"

        assert world.run(fn) == ["late", "timed-out"]

    def test_per_call_timeout_overrides_world_default(self):
        world = SimWorld(2, timeout=0.05)
        # a generous per-call timeout lets a slow rank make it
        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(0.3)
            return c.allreduce(1, timeout=10.0)

        assert world.run(fn) == [2, 2]

    def test_dead_rank_wakes_blocked_survivors(self):
        """Survivors blocked in an untimed collective are woken by the
        supervisor when a peer dies — no timeout needed."""
        world = SimWorld(4)
        woken = []

        def fn(c):
            if c.Get_rank() == 3:
                raise RuntimeError("boom")
            try:
                c.allreduce(1)  # would block forever without healing
            except RankFailure as exc:
                # peers that aborted after rank 3's death may also be
                # listed by the time later survivors wake up
                assert 3 in exc.failed_ranks
                woken.append(c.Get_rank())
                raise

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="boom"):
            world.run(fn)
        assert time.monotonic() - start < 10.0
        assert sorted(woken) == [0, 1, 2]

    def test_supervisor_records_obituaries(self):
        world = SimWorld(3)

        def fn(c):
            if c.Get_rank() == 1:
                raise ValueError("cosmic ray")
            try:
                c.barrier()
            except RankFailure:
                raise

        with pytest.raises(ValueError, match="cosmic ray"):
            world.run(fn)
        assert set(world.obituaries) == {0, 1, 2}
        assert world.obituaries[1].reason == "ValueError: cosmic ray"
        assert world.obituaries[0].reason == "aborted after peer failure"
        assert world.dead_ranks == {0, 1, 2}

    def test_collectives_after_death_fail_fast(self):
        """Once a rank is dead, later collectives on survivors fail
        immediately instead of waiting out the timeout."""
        world = SimWorld(2, timeout=30.0)
        world.mark_rank_dead(1, RuntimeError("gone"), reason="gone")

        def fn(c):
            if c.Get_rank() == 1:
                return None  # plays dead
            start = time.monotonic()
            with pytest.raises(RankFailure, match=r"rank\(s\) \[1\] died"):
                c.allgather(1)
            return time.monotonic() - start

        elapsed = world.run(fn)[0]
        assert elapsed < 5.0  # did not consume the 30s timeout

    def test_root_cause_error_preferred_over_rankfailure(self):
        world = SimWorld(4)

        def fn(c):
            if c.Get_rank() == 0:
                raise ZeroDivisionError("the real bug")
            c.barrier()

        # survivors all raise RankFailure, but the propagated error is
        # the root cause
        with pytest.raises(ZeroDivisionError, match="the real bug"):
            world.run(fn)

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            SimWorld(2, timeout=0.0)
        with pytest.raises(ValueError, match="timeout"):
            SimWorld(2, timeout=-1.0)

    def test_pre_collective_hook_observes_every_call(self):
        world = SimWorld(2)
        seen = []
        world.pre_collective_hook = lambda kind, rank: seen.append((kind, rank))

        world.run(lambda c: (c.barrier(), c.allreduce(1)))
        assert sorted(seen) == [
            ("allreduce", 0),
            ("allreduce", 1),
            ("barrier", 0),
            ("barrier", 1),
        ]


class TestDecomposition:
    @pytest.fixture
    def decomp(self, small_particles):
        return DomainDecomposition.cubic(small_particles.box, 8, overload=0.1)

    def test_cubic_requires_cubic_count(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(small_particles.box, 6, overload=0.1)

    def test_eight_ranks_form_2x2x2(self, decomp):
        assert decomp.ranks_per_dim == (2, 2, 2)
        assert decomp.n_ranks == 8

    def test_rank_coords_roundtrip(self, decomp):
        seen = {decomp.rank_coords(r) for r in range(8)}
        assert len(seen) == 8

    def test_bounds_tile_the_box(self, decomp, small_particles):
        total = 0.0
        for r in range(8):
            lo, hi = decomp.bounds(r)
            total += np.prod(hi - lo)
        assert total == pytest.approx(small_particles.box**3)

    def test_owner_matches_bounds(self, decomp, small_particles):
        owners = decomp.owner_of(small_particles.positions)
        for r in range(8):
            lo, hi = decomp.bounds(r)
            mine = small_particles.positions[owners == r]
            assert np.all(mine >= lo - 1e-12)
            assert np.all(mine < hi + 1e-12)

    def test_split_partitions_everything(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        assert sum(len(p) for p in parts) == len(small_particles)

    def test_overload_adds_ghosts(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for owned, with_ghosts in zip(parts, merged):
            assert len(with_ghosts) >= len(owned)
        assert sum(len(m) for m in merged) > len(small_particles)

    def test_ghosts_lie_in_overload_shell(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for r in range(8):
            n_owned = len(parts[r])
            ghosts = merged[r].positions[n_owned:]
            if len(ghosts) == 0:
                continue
            lo, hi = decomp.bounds(r)
            half = 0.5 * small_particles.box
            centre = 0.5 * (lo + hi)
            d = np.abs(
                (ghosts - centre + half) % small_particles.box - half
            )
            half_width = 0.5 * (hi - lo)
            assert np.all(d <= half_width + decomp.overload + 1e-12)

    def test_ghost_pids_reference_originals(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        all_pids = set(small_particles.pid.tolist())
        for r in range(8):
            assert set(merged[r].pid.tolist()) <= all_pids

    def test_excessive_overload_rejected(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(
                small_particles.box, 8, overload=small_particles.box
            )


def _collective_call(comm, name):
    if name == "alltoall":
        return comm.alltoall([0] * comm.Get_size())
    return comm.reduce(1, root=0)


@pytest.mark.timeout(60)
class TestUlfmAgreeAndShrink:
    def test_agree_all_live(self):
        world = SimWorld(4)

        def fn(c):
            out = c.agree(value=c.Get_rank() * 2)
            return (out.failed_ranks, out.survivors, out.contributions[2])

        results = world.run(fn)
        assert results == [(frozenset(), (0, 1, 2, 3), 4)] * 4

    def test_agree_excludes_dead_rank_for_every_survivor(self):
        world = SimWorld(4, timeout=5.0)

        def fn(c):
            if c.Get_rank() == 2:
                raise RuntimeError("node failure")
            out = c.agree(value="v")
            return (sorted(out.survivors), out.failed_ranks)

        results, errors = world.run_outcomes(fn)
        assert isinstance(errors[2], RuntimeError)
        live = [results[r] for r in (0, 1, 3)]
        assert live == [([0, 1, 3], frozenset({2}))] * 3

    def test_agree_declares_stalled_rank_dead_on_timeout(self):
        """A live-but-absent participant is declared dead by the
        tolerant agreement, exactly like ULFM's MPI_Comm_agree over a
        revoked communicator."""
        world = SimWorld(3, timeout=0.3)

        def fn(c):
            if c.Get_rank() == 1:
                time.sleep(1.5)  # never joins the agreement in time
                return "stalled"
            out = c.agree()
            return (sorted(out.survivors), out.failed_ranks)

        results, errors = world.run_outcomes(fn)
        assert results[0] == ([0, 2], frozenset({1}))
        assert results[2] == ([0, 2], frozenset({1}))

    def test_shrink_renumbers_and_collectives_work(self):
        world = SimWorld(4, timeout=5.0)

        def fn(c):
            if c.Get_rank() == 1:
                raise RuntimeError("gone")
            try:
                c.allreduce(1)
            except RankFailure:
                pass
            sub = c.shrink()
            assert sub.Get_size() == 3
            assert sub.group == (0, 2, 3)
            return (sub.Get_rank(), sub.global_rank, sub.allreduce(sub.global_rank))

        results, errors = world.run_outcomes(fn)
        assert [results[r] for r in (0, 2, 3)] == [(0, 0, 5), (1, 2, 5), (2, 3, 5)]

    def test_shrunk_twice_nests(self):
        world = SimWorld(4, timeout=5.0)

        def fn(c):
            if c.Get_rank() == 3:
                return None
            sub = c.shrunk((0, 1, 2))
            if c.Get_rank() == 1:
                return None
            subsub = sub.shrunk((0, 2))
            return subsub.allgather(subsub.global_rank)

        results = world.run(fn)
        assert results[0] == [0, 2] and results[2] == [0, 2]

    def test_shrunk_validation(self):
        world = SimWorld(3)

        def fn(c):
            if c.Get_rank() == 0:
                with pytest.raises(ValueError):
                    c.shrunk(())
                with pytest.raises(ValueError):
                    c.shrunk((0, 7))
                with pytest.raises(RankFailure):
                    c.shrunk((1, 2))  # caller not among survivors
            return True

        assert world.run(fn) == [True] * 3

    def test_shrink_emits_metric_once(self):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        world = SimWorld(3, timeout=5.0, metrics=metrics)
        world.run(lambda c: None if c.Get_rank() == 2 else c.shrunk((0, 1)))
        assert metrics.counter("sim.resilience.shrinks").value == 1


@pytest.mark.timeout(60)
class TestMidRendezvousDeath:
    """A rank dying around an in-flight collective must leave every
    survivor with the same view of the failure, regardless of whether
    the victim was first or last to (not) arrive."""

    @pytest.mark.parametrize("collective", ["alltoall", "reduce"])
    def test_victim_dies_before_survivors_arrive(self, collective):
        """First-arriver order: the victim is already dead when the
        survivors reach the collective; they fail fast, then agree on
        the identical dead set."""
        world = SimWorld(4, timeout=10.0)

        def fn(c):
            if c.Get_rank() == 2:
                raise RuntimeError("early death")
            time.sleep(0.2)  # let the victim die before anyone arrives
            start = time.monotonic()
            with pytest.raises(RankFailure) as exc:
                _collective_call(c, collective)
            assert time.monotonic() - start < 5.0  # fail-fast, not timeout
            assert 2 in exc.value.failed_ranks
            out = c.agree()
            return (sorted(out.survivors), out.failed_ranks)

        results, errors = world.run_outcomes(fn)
        assert isinstance(errors[2], RuntimeError)
        assert [results[r] for r in (0, 1, 3)] == [([0, 1, 3], frozenset({2}))] * 3

    @pytest.mark.parametrize("collective", ["alltoall", "reduce"])
    def test_victim_dies_as_last_arriver(self, collective):
        """Last-arriver order: the survivors are already blocked inside
        the rendezvous when the victim dies; the supervisor wakes them
        and they agree on the identical dead set."""
        world = SimWorld(4, timeout=30.0)

        def fn(c):
            if c.Get_rank() == 2:
                time.sleep(0.3)  # everyone else is blocked by now
                raise RuntimeError("late death")
            start = time.monotonic()
            with pytest.raises(RankFailure) as exc:
                _collective_call(c, collective)
            assert time.monotonic() - start < 10.0  # woken, not timed out
            assert 2 in exc.value.failed_ranks
            out = c.agree()
            return (sorted(out.survivors), out.failed_ranks)

        results, errors = world.run_outcomes(fn)
        assert isinstance(errors[2], RuntimeError)
        assert [results[r] for r in (0, 1, 3)] == [([0, 1, 3], frozenset({2}))] * 3

    def test_survivors_can_finish_on_shrunk_comm_after_death(self):
        """The full ULFM recovery motion: fail, agree, shrink, and run
        the same collective to completion on the survivors."""
        world = SimWorld(4, timeout=10.0)

        def fn(c):
            if c.Get_rank() == 1:
                raise RuntimeError("node failure")
            with pytest.raises(RankFailure):
                c.alltoall([c.Get_rank()] * 4)
            sub = c.shrink()
            return sub.alltoall([f"{sub.global_rank}->{g}" for g in sub.group])

        results, errors = world.run_outcomes(fn)
        assert results[2] == ["0->2", "2->2", "3->2"]
