"""Tests for the simulated MPI world and domain decomposition."""

import time

import numpy as np
import pytest

from repro.hacc.mpi_sim import (
    DomainDecomposition,
    RankFailure,
    SimWorld,
    _Rendezvous,
)


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimWorld(8)
        results = world.run(lambda comm: comm.allreduce(comm.Get_rank()))
        assert results == [28] * 8

    def test_allreduce_min_max(self):
        world = SimWorld(4)
        assert world.run(lambda c: c.allreduce(c.Get_rank(), op="max")) == [3] * 4
        assert world.run(lambda c: c.allreduce(c.Get_rank() + 1, op="min")) == [1] * 4

    def test_bcast_from_nonzero_root(self):
        world = SimWorld(4)
        results = world.run(
            lambda c: c.bcast("payload" if c.Get_rank() == 2 else None, root=2)
        )
        assert results == ["payload"] * 4

    def test_gather_only_root_receives(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.gather(c.Get_rank() ** 2, root=1))
        assert results[1] == [0, 1, 4, 9]
        assert results[0] is None and results[2] is None

    def test_allgather(self):
        world = SimWorld(3)
        results = world.run(lambda c: c.allgather(c.Get_rank() * 10))
        assert results == [[0, 10, 20]] * 3

    def test_alltoall(self):
        world = SimWorld(3)

        def fn(c):
            send = [f"{c.Get_rank()}->{dst}" for dst in range(3)]
            return c.alltoall(send)

        results = world.run(fn)
        assert results[1] == ["0->1", "1->1", "2->1"]

    def test_reduce_to_root(self):
        world = SimWorld(4)
        results = world.run(lambda c: c.reduce(1, root=0))
        assert results[0] == 4
        assert results[1] is None

    def test_sequential_collectives_keep_order(self):
        world = SimWorld(4)

        def fn(c):
            a = c.allreduce(1)
            c.barrier()
            b = c.allgather(c.Get_rank())
            return (a, tuple(b))

        results = world.run(fn)
        assert results == [(4, (0, 1, 2, 3))] * 4

    def test_rank_exception_propagates(self):
        world = SimWorld(2)

        def fn(c):
            if c.Get_rank() == 1:
                raise RuntimeError("rank 1 aborts")
            # rank 0 must not deadlock on a collective rank 1 skipped
            return c.Get_size()

        with pytest.raises(RuntimeError, match="rank 1 aborts"):
            world.run(fn)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SimWorld(0)


@pytest.mark.timeout(60)
class TestSelfHealingCollectives:
    def test_rendezvous_result_initialised(self):
        # regression: a wakeup before the first completed generation
        # used to read an undefined _result attribute
        assert _Rendezvous(2)._result is None

    def test_per_call_timeout_raises_rankfailure(self):
        world = SimWorld(2)

        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(1.0)  # never joins the barrier
                return "late"
            with pytest.raises(RankFailure, match="timed out"):
                c.barrier(timeout=0.1)
            return "timed-out"

        assert world.run(fn) == ["late", "timed-out"]

    def test_world_level_timeout_is_the_default(self):
        world = SimWorld(2, timeout=0.1)

        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(1.0)
                return "late"
            with pytest.raises(RankFailure, match="timed out"):
                c.allreduce(1)  # no per-call timeout: world's applies
            return "timed-out"

        assert world.run(fn) == ["late", "timed-out"]

    def test_per_call_timeout_overrides_world_default(self):
        world = SimWorld(2, timeout=0.05)
        # a generous per-call timeout lets a slow rank make it
        def fn(c):
            if c.Get_rank() == 0:
                time.sleep(0.3)
            return c.allreduce(1, timeout=10.0)

        assert world.run(fn) == [2, 2]

    def test_dead_rank_wakes_blocked_survivors(self):
        """Survivors blocked in an untimed collective are woken by the
        supervisor when a peer dies — no timeout needed."""
        world = SimWorld(4)
        woken = []

        def fn(c):
            if c.Get_rank() == 3:
                raise RuntimeError("boom")
            try:
                c.allreduce(1)  # would block forever without healing
            except RankFailure as exc:
                # peers that aborted after rank 3's death may also be
                # listed by the time later survivors wake up
                assert 3 in exc.failed_ranks
                woken.append(c.Get_rank())
                raise

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="boom"):
            world.run(fn)
        assert time.monotonic() - start < 10.0
        assert sorted(woken) == [0, 1, 2]

    def test_supervisor_records_obituaries(self):
        world = SimWorld(3)

        def fn(c):
            if c.Get_rank() == 1:
                raise ValueError("cosmic ray")
            try:
                c.barrier()
            except RankFailure:
                raise

        with pytest.raises(ValueError, match="cosmic ray"):
            world.run(fn)
        assert set(world.obituaries) == {0, 1, 2}
        assert world.obituaries[1].reason == "ValueError: cosmic ray"
        assert world.obituaries[0].reason == "aborted after peer failure"
        assert world.dead_ranks == {0, 1, 2}

    def test_collectives_after_death_fail_fast(self):
        """Once a rank is dead, later collectives on survivors fail
        immediately instead of waiting out the timeout."""
        world = SimWorld(2, timeout=30.0)
        world.mark_rank_dead(1, RuntimeError("gone"), reason="gone")

        def fn(c):
            if c.Get_rank() == 1:
                return None  # plays dead
            start = time.monotonic()
            with pytest.raises(RankFailure, match=r"rank\(s\) \[1\] died"):
                c.allgather(1)
            return time.monotonic() - start

        elapsed = world.run(fn)[0]
        assert elapsed < 5.0  # did not consume the 30s timeout

    def test_root_cause_error_preferred_over_rankfailure(self):
        world = SimWorld(4)

        def fn(c):
            if c.Get_rank() == 0:
                raise ZeroDivisionError("the real bug")
            c.barrier()

        # survivors all raise RankFailure, but the propagated error is
        # the root cause
        with pytest.raises(ZeroDivisionError, match="the real bug"):
            world.run(fn)

    def test_timeout_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            SimWorld(2, timeout=0.0)
        with pytest.raises(ValueError, match="timeout"):
            SimWorld(2, timeout=-1.0)

    def test_pre_collective_hook_observes_every_call(self):
        world = SimWorld(2)
        seen = []
        world.pre_collective_hook = lambda kind, rank: seen.append((kind, rank))

        world.run(lambda c: (c.barrier(), c.allreduce(1)))
        assert sorted(seen) == [
            ("allreduce", 0),
            ("allreduce", 1),
            ("barrier", 0),
            ("barrier", 1),
        ]


class TestDecomposition:
    @pytest.fixture
    def decomp(self, small_particles):
        return DomainDecomposition.cubic(small_particles.box, 8, overload=0.1)

    def test_cubic_requires_cubic_count(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(small_particles.box, 6, overload=0.1)

    def test_eight_ranks_form_2x2x2(self, decomp):
        assert decomp.ranks_per_dim == (2, 2, 2)
        assert decomp.n_ranks == 8

    def test_rank_coords_roundtrip(self, decomp):
        seen = {decomp.rank_coords(r) for r in range(8)}
        assert len(seen) == 8

    def test_bounds_tile_the_box(self, decomp, small_particles):
        total = 0.0
        for r in range(8):
            lo, hi = decomp.bounds(r)
            total += np.prod(hi - lo)
        assert total == pytest.approx(small_particles.box**3)

    def test_owner_matches_bounds(self, decomp, small_particles):
        owners = decomp.owner_of(small_particles.positions)
        for r in range(8):
            lo, hi = decomp.bounds(r)
            mine = small_particles.positions[owners == r]
            assert np.all(mine >= lo - 1e-12)
            assert np.all(mine < hi + 1e-12)

    def test_split_partitions_everything(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        assert sum(len(p) for p in parts) == len(small_particles)

    def test_overload_adds_ghosts(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for owned, with_ghosts in zip(parts, merged):
            assert len(with_ghosts) >= len(owned)
        assert sum(len(m) for m in merged) > len(small_particles)

    def test_ghosts_lie_in_overload_shell(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        for r in range(8):
            n_owned = len(parts[r])
            ghosts = merged[r].positions[n_owned:]
            if len(ghosts) == 0:
                continue
            lo, hi = decomp.bounds(r)
            half = 0.5 * small_particles.box
            centre = 0.5 * (lo + hi)
            d = np.abs(
                (ghosts - centre + half) % small_particles.box - half
            )
            half_width = 0.5 * (hi - lo)
            assert np.all(d <= half_width + decomp.overload + 1e-12)

    def test_ghost_pids_reference_originals(self, decomp, small_particles):
        parts = decomp.split(small_particles)
        merged = decomp.exchange_overload(parts)
        all_pids = set(small_particles.pid.tolist())
        for r in range(8):
            assert set(merged[r].pid.tolist()) <= all_pids

    def test_excessive_overload_rejected(self, small_particles):
        with pytest.raises(ValueError):
            DomainDecomposition.cubic(
                small_particles.box, 8, overload=small_particles.box
            )
