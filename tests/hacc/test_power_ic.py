"""Tests for the power spectrum and Zel'dovich initial conditions."""

import numpy as np
import pytest

from repro.hacc.cosmology import Cosmology
from repro.hacc.ic import ICConfig, displacement_field, zeldovich_ics
from repro.hacc.particles import Species
from repro.hacc.power import PowerSpectrum, bbks_transfer
from repro.hacc.units import particle_mass


@pytest.fixture(scope="module")
def power():
    return PowerSpectrum(Cosmology())


class TestTransferFunction:
    def test_unity_at_large_scales(self):
        t = bbks_transfer(np.array([1e-5]), Cosmology())
        assert t[0] == pytest.approx(1.0, abs=1e-3)

    def test_suppression_at_small_scales(self):
        t = bbks_transfer(np.array([10.0]), Cosmology())
        assert t[0] < 0.01

    def test_monotone_decreasing(self):
        k = np.logspace(-4, 1, 50)
        t = bbks_transfer(k, Cosmology())
        assert np.all(np.diff(t) < 0)


class TestNormalisation:
    def test_sigma8_pinned(self, power):
        assert power.sigma_r(8.0) == pytest.approx(power.cosmology.sigma8, rel=1e-2)

    def test_growth_scaling_with_redshift(self, power):
        k = np.array([0.1])
        ratio = power(k, z=50.0)[0] / power(k, z=0.0)[0]
        d = power.cosmology.growth_factor(1 / 51.0)
        assert ratio == pytest.approx(d**2, rel=1e-6)

    def test_zero_mode_zero_power(self, power):
        assert power(np.array([0.0]))[0] == 0.0

    def test_bad_radius_rejected(self, power):
        with pytest.raises(ValueError):
            power.sigma_r(0.0)


class TestDisplacementField:
    def test_shapes_and_zero_mean(self, power):
        config = ICConfig(n_per_side=8, box=5.0, seed=3)
        cosmo = Cosmology()
        psi, vel = displacement_field(config, cosmo, power)
        assert psi.shape == (8, 8, 8, 3)
        assert vel.shape == (8, 8, 8, 3)
        # DC mode removed: displacements average to zero
        assert np.allclose(psi.mean(axis=(0, 1, 2)), 0.0, atol=1e-10)

    def test_velocity_proportional_to_displacement(self, power):
        config = ICConfig(n_per_side=8, box=5.0, seed=3)
        cosmo = Cosmology()
        psi, vel = displacement_field(config, cosmo, power)
        a = float(cosmo.a_of_z(config.z_initial))
        # canonical-momentum convention: p = a^2 H f psi
        factor = a * a * cosmo.growth_rate(a) * cosmo.H(a)
        assert np.allclose(vel, psi * factor)

    def test_deterministic_under_seed(self, power):
        config = ICConfig(n_per_side=8, box=5.0, seed=11)
        cosmo = Cosmology()
        psi1, _ = displacement_field(config, cosmo, power)
        psi2, _ = displacement_field(config, cosmo, power)
        assert np.array_equal(psi1, psi2)


class TestZeldovichICs:
    def test_two_species_equal_counts(self, small_particles):
        assert small_particles.count(Species.DARK_MATTER) == 6**3
        assert small_particles.count(Species.BARYON) == 6**3

    def test_positions_in_box(self, small_particles):
        pos = small_particles.positions
        assert np.all((pos >= 0) & (pos < small_particles.box))

    def test_species_mass_ratio_matches_cosmology(self, small_particles):
        cosmo = Cosmology()
        dm = small_particles.mass[small_particles.species_mask(Species.DARK_MATTER)]
        ba = small_particles.mass[small_particles.species_mask(Species.BARYON)]
        assert dm[0] / ba[0] == pytest.approx(cosmo.omega_cdm / cosmo.omega_b)

    def test_total_mass_matches_mean_density(self, small_particles):
        cosmo = Cosmology()
        from repro.hacc.units import RHO_CRIT

        expected = cosmo.omega_m * RHO_CRIT * small_particles.box**3
        assert small_particles.total_mass() == pytest.approx(expected, rel=1e-10)

    def test_baryons_initialised_for_hydro(self, small_particles):
        ba = small_particles.species_mask(Species.BARYON)
        assert np.all(small_particles.u[ba] > 0)
        assert np.all(small_particles.hsml[ba] > 0)
        assert np.all(small_particles.pressure[ba] > 0)
        assert np.all(small_particles.cs[ba] > 0)

    def test_displacements_small_at_z200(self, small_particles):
        # at z=200 the universe is near-homogeneous: displacements are a
        # small fraction of the interparticle spacing
        cell = small_particles.box / 6
        # nearest lattice point distance as displacement proxy
        from repro.hacc.ic import _lattice

        dm = small_particles.positions[: 6**3]
        lattice = _lattice(6, small_particles.box, 0.25)
        d = dm - lattice
        half = small_particles.box / 2
        d = (d + half) % small_particles.box - half
        assert np.percentile(np.abs(d), 95) < cell


class TestParticleMass:
    def test_mass_resolution_invariant_under_paper_scaling(self):
        # the paper scales box size with particle count to keep the
        # mass resolution fixed (Section 3.4.2)
        m_full = particle_mass(177.0, 512, 0.26)
        m_scaled = particle_mass(177.0 * 16 / 512, 16, 0.26)
        assert m_full == pytest.approx(m_scaled)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            particle_mass(100.0, 0, 0.3)
