"""Tests for standalone-kernel checkpoints (Section 7.2)."""

import json

import numpy as np
import pytest

from repro.hacc.checkpoint import (
    STANDALONE_KERNELS,
    KernelCheckpoint,
    checkpoint_metadata,
    run_standalone,
)
from repro.hacc.particles import Species


@pytest.fixture(scope="module")
def checkpoint(reference_driver):
    return KernelCheckpoint.capture(reference_driver.particles)


class TestCapture:
    def test_captures_gas_only(self, checkpoint, reference_driver):
        n_gas = reference_driver.particles.count(Species.BARYON)
        assert checkpoint.n_particles == n_gas

    def test_fields_finite(self, checkpoint):
        for name in ("pos", "vel", "mass", "h", "u", "pressure", "cs"):
            assert np.all(np.isfinite(getattr(checkpoint, name))), name


class TestRoundTrip:
    def test_save_load_identical(self, checkpoint, tmp_path):
        path = tmp_path / "state.npz"
        checkpoint.save(path)
        loaded = KernelCheckpoint.load(path)
        assert loaded.box == checkpoint.box
        for name in ("pos", "vel", "mass", "h", "u", "volume", "rho", "pressure", "cs"):
            assert np.array_equal(getattr(loaded, name), getattr(checkpoint, name)), name

    def test_version_mismatch_rejected(self, checkpoint, tmp_path):
        path = tmp_path / "state.npz"
        checkpoint.save(path)
        data = dict(np.load(path))
        data["version"] = np.array(999)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            KernelCheckpoint.load(path)


class TestStandaloneRuns:
    @pytest.mark.parametrize("kernel", STANDALONE_KERNELS)
    def test_every_hot_kernel_runs_standalone(self, checkpoint, kernel):
        out = run_standalone(checkpoint, kernel)
        assert out
        for name, arr in out.items():
            assert np.all(np.isfinite(arr)), f"{kernel}/{name}"

    def test_unknown_kernel_rejected(self, checkpoint):
        with pytest.raises(ValueError):
            run_standalone(checkpoint, "subgrid_agn")

    def test_standalone_matches_pipeline_volume(self, checkpoint):
        # a standalone Geometry replay is deterministic
        a = run_standalone(checkpoint, "geometry")["volume"]
        b = run_standalone(checkpoint, "geometry")["volume"]
        assert np.array_equal(a, b)

    def test_acceleration_conserves_momentum(self, checkpoint):
        dv = run_standalone(checkpoint, "acceleration")["dv_dt"]
        net = (checkpoint.mass[:, None] * dv).sum(axis=0)
        scale = np.abs(checkpoint.mass[:, None] * dv).sum()
        assert np.all(np.abs(net) <= 1e-12 * max(scale, 1e-300))


class TestMetadata:
    def test_json_summary(self, checkpoint):
        meta = json.loads(checkpoint_metadata(checkpoint))
        assert meta["n_particles"] == checkpoint.n_particles
        assert meta["format_version"] == 1
