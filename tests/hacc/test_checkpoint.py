"""Tests for standalone-kernel checkpoints (Section 7.2)."""

import json

import numpy as np
import pytest

from repro.hacc.checkpoint import (
    FORMAT_VERSION,
    STANDALONE_KERNELS,
    CheckpointError,
    KernelCheckpoint,
    checkpoint_metadata,
    run_standalone,
)
from repro.hacc.particles import Species


@pytest.fixture(scope="module")
def checkpoint(reference_driver):
    return KernelCheckpoint.capture(reference_driver.particles)


class TestCapture:
    def test_captures_gas_only(self, checkpoint, reference_driver):
        n_gas = reference_driver.particles.count(Species.BARYON)
        assert checkpoint.n_particles == n_gas

    def test_fields_finite(self, checkpoint):
        for name in ("pos", "vel", "mass", "h", "u", "pressure", "cs"):
            assert np.all(np.isfinite(getattr(checkpoint, name))), name


class TestRoundTrip:
    def test_save_load_identical(self, checkpoint, tmp_path):
        path = tmp_path / "state.npz"
        checkpoint.save(path)
        loaded = KernelCheckpoint.load(path)
        assert loaded.box == checkpoint.box
        for name in ("pos", "vel", "mass", "h", "u", "volume", "rho", "pressure", "cs"):
            assert np.array_equal(getattr(loaded, name), getattr(checkpoint, name)), name

    def test_version_mismatch_rejected(self, checkpoint, tmp_path):
        path = tmp_path / "state.npz"
        checkpoint.save(path)
        data = dict(np.load(path))
        data["version"] = np.array(999)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            KernelCheckpoint.load(path)


class TestCorruptFiles:
    """load() converts every failure mode to CheckpointError."""

    @pytest.fixture
    def saved(self, checkpoint, tmp_path):
        path = tmp_path / "state.npz"
        checkpoint.save(path)
        return path

    def test_truncated_file(self, saved):
        saved.write_bytes(saved.read_bytes()[:80])
        with pytest.raises(CheckpointError, match="unreadable"):
            KernelCheckpoint.load(saved)

    def test_not_an_npz(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="unreadable"):
            KernelCheckpoint.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            KernelCheckpoint.load(tmp_path / "nope.npz")

    def test_missing_payload_field(self, saved):
        data = dict(np.load(saved))
        del data["pressure"]
        np.savez(saved, **data)
        with pytest.raises(CheckpointError, match="missing field.*pressure"):
            KernelCheckpoint.load(saved)

    def test_no_version_field(self, saved):
        data = dict(np.load(saved))
        del data["version"]
        np.savez(saved, **data)
        with pytest.raises(CheckpointError, match="no version field"):
            KernelCheckpoint.load(saved)

    def test_bitflip_detected_by_checksum(self, saved):
        data = dict(np.load(saved))
        data["u"] = data["u"].copy()
        data["u"][0] += 1e-12  # stale checksum now mismatches
        np.savez(saved, **data)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            KernelCheckpoint.load(saved)

    def test_checkpoint_error_is_a_value_error(self):
        # callers that predate the dedicated type keep working
        assert issubclass(CheckpointError, ValueError)


class TestVersion1Compat:
    def test_version1_file_without_checksum_loads(self, checkpoint, tmp_path):
        """Files written before the checksum existed stay loadable."""
        path = tmp_path / "v1.npz"
        checkpoint.save(path)
        data = dict(np.load(path))
        del data["checksum"]
        data["version"] = np.array(1)
        np.savez(path, **data)
        loaded = KernelCheckpoint.load(path)
        assert loaded.n_particles == checkpoint.n_particles
        np.testing.assert_array_equal(loaded.u, checkpoint.u)


class TestStandaloneRuns:
    @pytest.mark.parametrize("kernel", STANDALONE_KERNELS)
    def test_every_hot_kernel_runs_standalone(self, checkpoint, kernel):
        out = run_standalone(checkpoint, kernel)
        assert out
        for name, arr in out.items():
            assert np.all(np.isfinite(arr)), f"{kernel}/{name}"

    def test_unknown_kernel_rejected(self, checkpoint):
        with pytest.raises(ValueError):
            run_standalone(checkpoint, "subgrid_agn")

    def test_standalone_matches_pipeline_volume(self, checkpoint):
        # a standalone Geometry replay is deterministic
        a = run_standalone(checkpoint, "geometry")["volume"]
        b = run_standalone(checkpoint, "geometry")["volume"]
        assert np.array_equal(a, b)

    def test_acceleration_conserves_momentum(self, checkpoint):
        dv = run_standalone(checkpoint, "acceleration")["dv_dt"]
        net = (checkpoint.mass[:, None] * dv).sum(axis=0)
        scale = np.abs(checkpoint.mass[:, None] * dv).sum()
        assert np.all(np.abs(net) <= 1e-12 * max(scale, 1e-300))


class TestMetadata:
    def test_json_summary(self, checkpoint):
        meta = json.loads(checkpoint_metadata(checkpoint))
        assert meta["n_particles"] == checkpoint.n_particles
        assert meta["format_version"] == FORMAT_VERSION
