"""Tests for the RCB tree."""

import numpy as np
import pytest

from repro.hacc.tree import RCBTree


@pytest.fixture
def tree(rng):
    pos = rng.uniform(0, 10, (200, 3))
    return RCBTree.build(pos, leaf_size=16), pos


class TestConstruction:
    def test_leaves_partition_particles(self, tree):
        t, pos = tree
        all_indices = np.concatenate([leaf.indices for leaf in t.leaves])
        assert sorted(all_indices.tolist()) == list(range(len(pos)))

    def test_leaf_sizes_bounded(self, tree):
        t, _pos = tree
        assert all(leaf.count <= 16 for leaf in t.leaves)

    def test_median_split_balance(self, rng):
        pos = rng.uniform(0, 10, (256, 3))
        t = RCBTree.build(pos, leaf_size=16)
        counts = [leaf.count for leaf in t.leaves]
        # median splits of a power-of-two count give exactly equal leaves
        assert set(counts) == {16}

    def test_leaf_bounding_boxes_contain_members(self, tree):
        t, pos = tree
        for leaf in t.leaves:
            p = pos[leaf.indices]
            assert np.all(p >= leaf.lo - 1e-12)
            assert np.all(p <= leaf.hi + 1e-12)

    def test_bad_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            RCBTree.build(rng.uniform(0, 1, (10, 2)))
        with pytest.raises(ValueError):
            RCBTree.build(rng.uniform(0, 1, (10, 3)), leaf_size=0)

    def test_leaf_of_particle_inverse(self, tree):
        t, pos = tree
        lop = t.leaf_of_particle()
        for li, leaf in enumerate(t.leaves):
            assert np.all(lop[leaf.indices] == li)


class TestLeafPairs:
    def test_self_pairs_always_included(self, tree):
        t, _pos = tree
        pairs = t.leaf_pairs(cutoff=0.5)
        selfs = {(a, b) for a, b in pairs if a == b}
        assert len(selfs) == t.n_leaves

    def test_pair_count_grows_with_cutoff(self, tree):
        t, _pos = tree
        assert len(t.leaf_pairs(0.5)) <= len(t.leaf_pairs(3.0))

    def test_close_leaves_are_paired(self, rng):
        pos = rng.uniform(0, 1, (64, 3))  # tight cluster
        t = RCBTree.build(pos, leaf_size=16)
        pairs = t.leaf_pairs(cutoff=2.0)
        n = t.n_leaves
        assert len(pairs) == n * (n + 1) // 2  # everything within range

    def test_invalid_cutoff(self, tree):
        t, _pos = tree
        with pytest.raises(ValueError):
            t.leaf_pairs(0.0)


class TestInteractionInstances:
    def test_instances_follow_figure4_formula(self, rng):
        # |A| x |B| / (S/2)^2 instances per leaf pair
        pos = rng.uniform(0, 1, (32, 3))
        t = RCBTree.build(pos, leaf_size=16)
        assert t.n_leaves == 2
        # 3 pairs (AA, AB, BB), each 16*16/(16*16) = 1 instance
        assert t.interaction_instances(cutoff=2.0, subgroup_size=32) == 3

    def test_smaller_subgroups_need_more_instances(self, rng):
        pos = rng.uniform(0, 1, (128, 3))
        t = RCBTree.build(pos, leaf_size=16)
        i32 = t.interaction_instances(2.0, 32)
        i16 = t.interaction_instances(2.0, 16)
        assert i16 > i32
