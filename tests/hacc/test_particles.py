"""Tests for the SoA particle container."""

import numpy as np
import pytest

from repro.hacc.particles import ParticleData, Species


@pytest.fixture
def particles(rng):
    p = ParticleData.allocate(100, box=10.0)
    p.set_positions(rng.uniform(0, 10, (100, 3)))
    p.set_velocities(rng.normal(size=(100, 3)))
    p.arrays["mass"][:] = 1.5
    p.arrays["species"][50:] = int(Species.BARYON)
    return p


class TestAllocation:
    def test_lengths(self, particles):
        assert len(particles) == 100
        particles.validate()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ParticleData.allocate(-1, box=1.0)

    def test_zero_box_rejected(self):
        with pytest.raises(ValueError):
            ParticleData.allocate(10, box=0.0)

    def test_attribute_access(self, particles):
        assert particles.x.shape == (100,)
        with pytest.raises(AttributeError):
            particles.nonexistent_field


class TestSpecies:
    def test_counts(self, particles):
        assert particles.count(Species.DARK_MATTER) == 50
        assert particles.count(Species.BARYON) == 50
        assert particles.count() == 100

    def test_mask_partition(self, particles):
        dm = particles.species_mask(Species.DARK_MATTER)
        ba = particles.species_mask(Species.BARYON)
        assert np.all(dm ^ ba)


class TestSelectionAndMerge:
    def test_select_copies(self, particles):
        sel = particles.select(particles.species_mask(Species.BARYON))
        assert len(sel) == 50
        sel.arrays["x"][:] = 0.0
        assert not np.all(particles.x[50:] == 0.0)

    def test_concatenation_preserves_pids(self, particles):
        ghosts = particles.select(particles.pid < 10)
        merged = particles.concatenated_with(ghosts)
        assert len(merged) == 110
        assert np.array_equal(merged.pid[100:], np.arange(10))

    def test_mismatched_boxes_rejected(self, particles):
        other = ParticleData.allocate(1, box=20.0)
        with pytest.raises(ValueError):
            particles.concatenated_with(other)


class TestGeometry:
    def test_wrap_into_box(self):
        p = ParticleData.allocate(2, box=10.0)
        p.set_positions(np.array([[11.0, -1.0, 5.0], [10.0, 0.0, 25.0]]))
        p.wrap()
        assert np.all((p.positions >= 0) & (p.positions < 10.0))

    def test_minimum_image_bounds(self, particles):
        dx = particles.minimum_image(np.array([9.9, -9.9, 5.1]))
        assert np.all(np.abs(dx) <= 5.0)

    def test_minimum_image_preserves_small_displacements(self, particles):
        dx = np.array([0.1, -0.2, 0.3])
        assert np.allclose(particles.minimum_image(dx), dx)


class TestDiagnostics:
    def test_momentum_is_mass_weighted(self, particles):
        expected = (particles.mass[:, None] * particles.velocities).sum(axis=0)
        assert np.allclose(particles.total_momentum(), expected)

    def test_kinetic_energy_non_negative(self, particles):
        assert particles.kinetic_energy() >= 0.0

    def test_thermal_energy_counts_baryons_only(self, particles):
        particles.arrays["u"][:] = 2.0
        expected = float(np.sum(particles.mass[50:] * 2.0))
        assert particles.thermal_energy() == pytest.approx(expected)

    def test_validate_catches_nan(self, particles):
        particles.arrays["x"][0] = np.nan
        with pytest.raises(ValueError):
            particles.validate()

    def test_validate_catches_ragged_fields(self, particles):
        particles.arrays["mass"] = particles.arrays["mass"][:-1]
        with pytest.raises(ValueError):
            particles.validate()
