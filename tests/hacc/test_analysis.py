"""Tests for the in-situ analysis tooling."""

import numpy as np
import pytest

from repro.hacc.analysis import (
    density_pdf,
    halo_mass_function,
    measure_power_spectrum,
    radial_profile,
)
from repro.hacc.cosmology import Cosmology
from repro.hacc.halo import fof
from repro.hacc.ic import ICConfig, zeldovich_ics
from repro.hacc.particles import ParticleData
from repro.hacc.power import PowerSpectrum


@pytest.fixture(scope="module")
def ic_particles():
    cosmo = Cosmology()
    power = PowerSpectrum(cosmo)
    cfg = ICConfig(n_per_side=16, box=40.0, z_initial=200.0, seed=11)
    return zeldovich_ics(cfg, cosmo, power), cosmo, power


class TestPowerSpectrum:
    def test_ic_spectrum_matches_input_linear_power(self, ic_particles):
        """The decisive round-trip: measure back what the IC generator
        put in (within cosmic variance of a small box)."""
        particles, cosmo, power = ic_particles
        meas = measure_power_spectrum(particles, n_mesh=16)
        d2 = cosmo.growth_factor(float(cosmo.a_of_z(200.0))) ** 2
        # compare in the well-sampled band (away from the fundamental
        # mode's variance and the mesh Nyquist)
        good = (meas.n_modes > 100) & (meas.k < 1.4)
        assert good.sum() >= 3
        expected = power(meas.k[good]) * d2
        ratio = meas.power[good] / expected
        assert np.all((ratio > 0.6) & (ratio < 1.6))

    def test_uniform_lattice_has_no_power(self):
        n = 8
        box = 10.0
        coords = (np.arange(n) + 0.5) * (box / n)
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        p = ParticleData.allocate(n**3, box=box)
        p.set_positions(np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()]))
        p.arrays["mass"][:] = 1.0
        meas = measure_power_spectrum(p, n_mesh=8)
        assert np.all(np.abs(meas.power) < 1e-20)

    def test_massless_set_rejected(self):
        p = ParticleData.allocate(8, box=1.0)
        with pytest.raises(ValueError):
            measure_power_spectrum(p, n_mesh=4)

    def test_mode_counting(self, ic_particles):
        particles, _c, _p = ic_particles
        meas = measure_power_spectrum(particles, n_mesh=16)
        # a 16^3 mesh holds 16^3 - 1 nonzero modes in total
        assert meas.n_modes.sum() <= 16**3 - 1
        assert meas.n_modes.sum() > 0.8 * 16**3

    def test_clustering_raises_power(self, reference_driver, ic_particles):
        # the evolved z=50 state must be more clustered than z=200
        particles, _c, _p = ic_particles
        evolved = reference_driver.particles
        m_initial = measure_power_spectrum(particles, n_mesh=8)
        m_evolved = measure_power_spectrum(evolved, n_mesh=8)
        # compare the dimensionless large-scale amplitude, volume-scaled
        amp_initial = m_initial.power[0] / particles.box**3
        amp_evolved = m_evolved.power[0] / evolved.box**3
        assert amp_evolved > amp_initial


class TestMassFunction:
    def test_cumulative_and_monotone(self, rng):
        pos = np.vstack(
            [
                np.array([5.0, 5.0, 5.0]) + rng.normal(0, 0.2, (40, 3)),
                np.array([15.0, 15.0, 15.0]) + rng.normal(0, 0.2, (20, 3)),
            ]
        ) % 20.0
        cat = fof(pos, 20.0, linking_length=1.0, min_members=10)
        mf = halo_mass_function(cat, particle_mass=2.0, box=20.0, n_bins=6)
        assert np.all(np.diff(mf.cumulative) <= 0)  # cumulative decreases
        assert mf.cumulative[0] == cat.n_halos
        assert np.all(mf.number_density <= cat.n_halos / 20.0**3 + 1e-12)

    def test_empty_catalog(self, rng):
        pos = rng.uniform(0, 100.0, (30, 3))
        cat = fof(pos, 100.0, linking_length=0.5, min_members=10)
        mf = halo_mass_function(cat, particle_mass=1.0, box=100.0)
        assert len(mf.mass) == 0

    def test_invalid_inputs(self, rng):
        pos = rng.uniform(0, 10.0, (30, 3))
        cat = fof(pos, 10.0, linking_length=1.0, min_members=5)
        with pytest.raises(ValueError):
            halo_mass_function(cat, particle_mass=0.0, box=10.0)


class TestRadialProfile:
    def test_uniform_box_flat_profile(self, rng):
        p = ParticleData.allocate(5000, box=10.0)
        p.set_positions(rng.uniform(0, 10, (5000, 3)))
        p.arrays["mass"][:] = 1.0
        r, rho = radial_profile(p, np.array([5.0, 5.0, 5.0]), r_max=4.0, n_bins=6)
        mean_rho = 5000 / 10.0**3
        # outer shells (well-sampled) sit near the mean density
        assert np.allclose(rho[2:], mean_rho, rtol=0.35)

    def test_central_concentration_detected(self, rng):
        p = ParticleData.allocate(1000, box=10.0)
        pos = np.array([5.0, 5.0, 5.0]) + rng.normal(0, 0.5, (1000, 3))
        p.set_positions(pos % 10.0)
        p.arrays["mass"][:] = 1.0
        r, rho = radial_profile(p, np.array([5.0, 5.0, 5.0]), r_max=4.0, n_bins=8)
        assert rho[0] > 10 * rho[-1]

    def test_validation(self, rng):
        p = ParticleData.allocate(10, box=10.0)
        with pytest.raises(ValueError):
            radial_profile(p, np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            radial_profile(p, np.zeros(3), 6.0)


class TestDensityPDF:
    def test_normalised(self, ic_particles):
        particles, _c, _p = ic_particles
        centres, pdf = density_pdf(particles, n_mesh=8)
        width = centres[1] - centres[0]
        assert pdf.sum() * width == pytest.approx(1.0, rel=1e-6)

    def test_near_uniform_peaks_at_unity(self, ic_particles):
        particles, _c, _p = ic_particles
        centres, pdf = density_pdf(particles, n_mesh=8)
        assert abs(centres[np.argmax(pdf)] - 1.0) < 0.3
