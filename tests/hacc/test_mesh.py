"""Tests for CIC deposit / interpolation."""

import numpy as np
import pytest

from repro.hacc.mesh import cic_deposit, cic_interpolate, fourier_grid


class TestDeposit:
    def test_mass_conservation(self, rng):
        pos = rng.uniform(0, 10, (500, 3))
        w = rng.uniform(0.5, 2.0, 500)
        mesh = cic_deposit(pos, w, 16, 10.0)
        assert mesh.sum() == pytest.approx(w.sum())

    def test_particle_at_cell_centre_hits_8_cells(self):
        pos = np.array([[1.25, 1.25, 1.25]])  # centre of cell (0..) at n=4,box=10
        mesh = cic_deposit(pos, np.ones(1), 4, 10.0)
        assert (mesh > 0).sum() == 8

    def test_particle_on_node_hits_one_cell(self):
        pos = np.array([[2.5, 2.5, 2.5]])  # exactly on a mesh node
        mesh = cic_deposit(pos, np.ones(1), 4, 10.0)
        assert (mesh > 0).sum() == 1
        assert mesh[1, 1, 1] == pytest.approx(1.0)

    def test_periodic_wrapping(self):
        pos = np.array([[9.9, 0.0, 0.0]])  # straddles the boundary
        mesh = cic_deposit(pos, np.ones(1), 4, 10.0)
        assert mesh.sum() == pytest.approx(1.0)
        assert mesh[3, 0, 0] > 0 and mesh[0, 0, 0] > 0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            cic_deposit(np.zeros((3,)), np.ones(3), 4, 1.0)


class TestInterpolate:
    def test_constant_field_exact(self, rng):
        mesh = np.full((8, 8, 8), 3.5)
        pos = rng.uniform(0, 10, (100, 3))
        assert np.allclose(cic_interpolate(mesh, pos, 10.0), 3.5)

    def test_deposit_interpolate_adjoint_for_uniform(self, rng):
        # interpolating the deposit of uniform particles recovers ~mean
        n = 8
        coords = (np.arange(n) + 0.5) * (10.0 / n)
        gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
        pos = np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])
        mesh = cic_deposit(pos, np.ones(len(pos)), n, 10.0)
        vals = cic_interpolate(mesh, pos, 10.0)
        assert np.allclose(vals, 1.0)

    def test_non_cubic_mesh_rejected(self, rng):
        with pytest.raises(ValueError):
            cic_interpolate(np.zeros((4, 4, 5)), rng.uniform(0, 1, (2, 3)), 1.0)


class TestFourierGrid:
    def test_shapes(self):
        kx, ky, kz, k2 = fourier_grid(8, 10.0)
        assert k2.shape == (8, 8, 5)

    def test_dc_mode_zero(self):
        _kx, _ky, _kz, k2 = fourier_grid(8, 10.0)
        assert k2[0, 0, 0] == 0.0

    def test_fundamental_mode(self):
        kx, _ky, _kz, _k2 = fourier_grid(8, 10.0)
        assert kx[1, 0, 0] == pytest.approx(2 * np.pi / 10.0)
