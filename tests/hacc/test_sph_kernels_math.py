"""Tests for the smoothing-kernel mathematics."""

import numpy as np
import pytest

from repro.hacc.sph.kernels_math import (
    SUPPORT,
    cubic_spline,
    cubic_spline_derivative,
    cubic_spline_gradient,
    kernel_self_value,
    verify_normalisation,
)


class TestKernelValues:
    def test_normalised_to_unity(self):
        assert verify_normalisation(h=1.0) == pytest.approx(1.0, abs=1e-3)
        assert verify_normalisation(h=2.5) == pytest.approx(1.0, abs=1e-3)

    def test_compact_support(self):
        r = np.array([2.0, 2.5, 10.0])
        assert np.all(cubic_spline(r, np.ones(3)) == 0.0)

    def test_positive_inside_support(self):
        r = np.linspace(0, SUPPORT * 0.999, 50)
        w = cubic_spline(r, np.ones(50))
        assert np.all(w > 0)

    def test_monotone_decreasing(self):
        r = np.linspace(0, SUPPORT, 200)
        w = cubic_spline(r, np.ones(200))
        assert np.all(np.diff(w) <= 1e-15)

    def test_self_value_matches_zero_separation(self):
        h = np.array([0.7, 1.3])
        assert np.allclose(kernel_self_value(h), cubic_spline(np.zeros(2), h))

    def test_scaling_with_h(self):
        # W(0, h) ~ h^-3
        assert kernel_self_value(np.array([2.0]))[0] == pytest.approx(
            kernel_self_value(np.array([1.0]))[0] / 8.0
        )

    def test_invalid_h_rejected(self):
        with pytest.raises(ValueError):
            cubic_spline(np.array([1.0]), np.array([0.0]))


class TestDerivative:
    def test_matches_finite_difference(self):
        r = np.linspace(0.05, 1.95, 100)
        h = np.ones(100)
        eps = 1e-6
        fd = (cubic_spline(r + eps, h) - cubic_spline(r - eps, h)) / (2 * eps)
        assert np.allclose(cubic_spline_derivative(r, h), fd, atol=1e-5)

    def test_non_positive_inside_support(self):
        r = np.linspace(0.0, 2.0, 100)
        assert np.all(cubic_spline_derivative(r, np.ones(100)) <= 0)

    def test_zero_at_support_edge(self):
        assert cubic_spline_derivative(np.array([2.0]), np.array([1.0]))[0] == 0.0


class TestGradient:
    def test_points_against_displacement(self, rng):
        # dW/dr < 0: the gradient points from j toward i reversed
        dx = rng.normal(size=(50, 3))
        r = np.linalg.norm(dx, axis=1)
        g = cubic_spline_gradient(dx, r, np.full(50, 2.0))
        dots = np.einsum("ij,ij->i", g, dx)
        inside = r < 2.0 * SUPPORT
        assert np.all(dots[inside & (r > 0)] <= 0)

    def test_zero_at_origin(self):
        g = cubic_spline_gradient(np.zeros((1, 3)), np.zeros(1), np.ones(1))
        assert np.all(g == 0.0)

    def test_antisymmetric_in_displacement(self, rng):
        dx = rng.normal(size=(20, 3)) * 0.5
        r = np.linalg.norm(dx, axis=1)
        h = np.ones(20)
        g1 = cubic_spline_gradient(dx, r, h)
        g2 = cubic_spline_gradient(-dx, r, h)
        assert np.allclose(g1, -g2)
