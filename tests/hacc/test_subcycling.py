"""Tests for CFL-driven hydro subcycling."""

import numpy as np
import pytest

from repro.hacc.timestep import AdiabaticDriver, SimulationConfig


@pytest.fixture(scope="module")
def subcycled_driver():
    driver = AdiabaticDriver(
        SimulationConfig(
            n_per_side=6,
            pm_mesh=8,
            n_steps=2,
            subcycling=True,
            cfl_number=0.005,  # deliberately strict to force subcycles
            max_subcycles=4,
        )
    )
    driver.run()
    return driver


class TestCFLCriterion:
    def test_subcycle_count_bounds(self):
        driver = AdiabaticDriver(
            SimulationConfig(n_per_side=6, pm_mesh=8, subcycling=True)
        )
        assert driver.cfl_subcycles(0.0, 1.0) == 1
        assert (
            driver.cfl_subcycles(1e12, 1.0)
            == driver.config.max_subcycles
        )

    def test_stricter_cfl_more_subcycles(self):
        loose = AdiabaticDriver(
            SimulationConfig(n_per_side=6, pm_mesh=8, subcycling=True, cfl_number=0.5)
        )
        strict = AdiabaticDriver(
            SimulationConfig(
                n_per_side=6, pm_mesh=8, subcycling=True, cfl_number=0.005
            )
        )
        signal, drift = 100.0, 0.01
        assert strict.cfl_subcycles(signal, drift) >= loose.cfl_subcycles(
            signal, drift
        )


class TestSubcycledRun:
    def test_more_adiabatic_kernel_calls(self, subcycled_driver):
        # "lead to many more calls to the adiabatic kernels" (Sec. 3.1)
        by = subcycled_driver.trace.by_kernel()
        n_steps = subcycled_driver.config.n_steps
        assert len(by["upBarAcF"]) > n_steps  # > one F call per step
        assert len(by["upGeo"]) == n_steps  # geometry stays per-step
        assert len(by["upGravSR"]) == 2 * n_steps  # gravity on outer step

    def test_physics_stays_sane(self, subcycled_driver):
        p = subcycled_driver.particles
        from repro.hacc.particles import Species

        gas = p.species_mask(Species.BARYON)
        assert np.all(np.isfinite(p.velocities))
        assert np.all(p.u[gas] >= 0)
        assert np.all((p.positions >= 0) & (p.positions < p.box))

    def test_momentum_still_conserved(self, subcycled_driver):
        mom = subcycled_driver.diagnostics[-1].total_momentum
        p = subcycled_driver.particles
        scale = float(np.abs(p.mass[:, None] * p.velocities).sum())
        assert np.all(np.abs(mom) < 1e-6 * scale)

    def test_default_config_unchanged(self, reference_trace):
        # the calibration workload (subcycling off) keeps the paper's
        # one-F-call-per-step pattern
        by = reference_trace.by_kernel()
        assert len(by["upBarAcF"]) == 5
