"""Tests for the ideal-gas equation of state."""

import numpy as np
import pytest

from repro.hacc import eos
from repro.hacc.particles import ParticleData, Species
from repro.hacc.units import GAMMA_ADIABATIC


class TestPressure:
    def test_ideal_gas_law(self):
        rho = np.array([2.0])
        u = np.array([3.0])
        assert eos.pressure(rho, u)[0] == pytest.approx((5 / 3 - 1) * 6.0)

    def test_negative_energy_clamped(self):
        assert eos.pressure(np.array([1.0]), np.array([-1.0]))[0] == 0.0

    def test_gamma_parameter(self):
        p = eos.pressure(np.array([1.0]), np.array([1.0]), gamma=2.0)
        assert p[0] == pytest.approx(1.0)


class TestSoundSpeed:
    def test_definition(self):
        rho = np.array([2.0])
        u = np.array([3.0])
        cs = eos.sound_speed(rho, u)
        p = eos.pressure(rho, u)
        assert cs[0] == pytest.approx(np.sqrt(GAMMA_ADIABATIC * p[0] / rho[0]))

    def test_zero_density_gives_zero(self):
        assert eos.sound_speed(np.array([0.0]), np.array([1.0]))[0] == 0.0

    def test_monotone_in_u(self):
        rho = np.ones(3)
        u = np.array([0.1, 1.0, 10.0])
        cs = eos.sound_speed(rho, u)
        assert np.all(np.diff(cs) > 0)


class TestUpdateThermodynamics:
    def test_updates_baryons_only(self):
        p = ParticleData.allocate(4, box=1.0)
        p.arrays["species"][2:] = int(Species.BARYON)
        p.arrays["rho"][:] = 1.0
        p.arrays["u"][:] = 1.0
        eos.update_thermodynamics(p)
        assert np.all(p.pressure[:2] == 0.0)  # dark matter untouched
        assert np.all(p.pressure[2:] > 0.0)
        assert np.all(p.cs[2:] > 0.0)
