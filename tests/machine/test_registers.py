"""Tests for the register allocation / spill model."""

import pytest

from repro.machine.device import GRFMode
from repro.machine.registers import RegisterModel
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestBudgets:
    def test_intel_budget_tracks_grf_and_subgroup(self):
        model = RegisterModel(AURORA)
        assert model.budget(subgroup_size=32, grf_mode=GRFMode.SMALL) == 64
        assert model.budget(subgroup_size=16, grf_mode=GRFMode.SMALL) == 128
        assert model.budget(subgroup_size=32, grf_mode=GRFMode.LARGE) == 128
        assert model.budget(subgroup_size=16, grf_mode=GRFMode.LARGE) == 256

    def test_nvidia_budget_is_architectural_max(self):
        model = RegisterModel(POLARIS)
        assert model.budget(subgroup_size=32, grf_mode=GRFMode.SMALL) == 255

    def test_amd_budget(self):
        model = RegisterModel(FRONTIER)
        assert model.budget(subgroup_size=64, grf_mode=GRFMode.SMALL) == 256


class TestAssignment:
    def test_within_budget_no_spills(self):
        a = RegisterModel(POLARIS).assign(100, subgroup_size=32)
        assert a.allocated == 100
        assert not a.has_spills

    def test_beyond_budget_spills_excess(self):
        a = RegisterModel(POLARIS).assign(300, subgroup_size=32)
        assert a.allocated == 255
        assert a.spilled == 45

    def test_intel_spills_against_fixed_partition(self):
        a = RegisterModel(AURORA).assign(
            100, subgroup_size=32, grf_mode=GRFMode.SMALL
        )
        assert a.spilled == 36  # 100 - 64

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            RegisterModel(POLARIS).assign(-1, subgroup_size=32)


class TestSpillCycles:
    def test_no_spills_no_cost(self):
        model = RegisterModel(POLARIS)
        a = model.assign(64, subgroup_size=32)
        assert model.spill_cycles(a) == 0.0

    def test_cost_scales_with_spilled_registers(self):
        model = RegisterModel(FRONTIER)
        small = model.spill_cycles(model.assign(266, subgroup_size=64))
        large = model.spill_cycles(model.assign(306, subgroup_size=64))
        assert large > small > 0

    def test_nvidia_spill_cliff_is_superlinear(self):
        # spill_pressure_exponent > 1 models the A100's spill cliff
        # (Section 5.4: broadcast "almost 10x slower in some cases")
        model = RegisterModel(POLARIS)
        c10 = model.spill_cycles(model.assign(265, subgroup_size=32))
        c40 = model.spill_cycles(model.assign(295, subgroup_size=32))
        assert c40 > 4.0 * c10  # superlinear in spilled count

    def test_intel_spills_cheaper_than_nvidia(self):
        assert AURORA.spill_cycles_per_register < POLARIS.spill_cycles_per_register
