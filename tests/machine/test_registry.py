"""Tests for the device registry (Table 1 data)."""

import pytest

from repro.machine.device import Vendor
from repro.machine.registry import (
    AURORA,
    FRONTIER,
    POLARIS,
    all_devices,
    device_by_name,
    platform_set,
    table1_rows,
)


class TestRegistry:
    def test_three_devices_in_paper_order(self):
        assert [d.system for d in all_devices()] == ["Aurora", "Polaris", "Frontier"]

    def test_lookup_by_system_name_case_insensitive(self):
        assert device_by_name("aurora") is AURORA
        assert device_by_name("Frontier") is FRONTIER

    def test_lookup_by_registry_name(self):
        assert device_by_name("polaris-a100-half") is POLARIS

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            device_by_name("el-capitan")

    def test_platform_set(self):
        assert platform_set() == ("Aurora", "Polaris", "Frontier")

    def test_vendors(self):
        assert AURORA.vendor is Vendor.INTEL
        assert POLARIS.vendor is Vendor.NVIDIA
        assert FRONTIER.vendor is Vendor.AMD


class TestSliceAccounting:
    """One MPI rank drives one slice (Section 3.4.2)."""

    def test_every_gpu_is_split_in_two(self):
        for dev in all_devices():
            assert dev.slices_per_gpu == 2

    def test_slice_peaks_are_half_the_gpu_rating(self):
        assert AURORA.fp32_peak_tflops == pytest.approx(45.9 / 2)
        assert POLARIS.fp32_peak_tflops == pytest.approx(19.5 / 2)
        assert FRONTIER.fp32_peak_tflops == pytest.approx(53.0 / 2)

    def test_polaris_pays_the_node_mapping_penalty(self):
        # ~11% lower efficiency from 2 ranks per A100 (Section 3.4.2)
        assert POLARIS.node_mapping_efficiency == pytest.approx(0.89)
        assert AURORA.node_mapping_efficiency == 1.0
        assert FRONTIER.node_mapping_efficiency == 1.0


class TestArchitecturalFacts:
    """The paper's microarchitectural claims, encoded as data."""

    def test_only_intel_accepts_inline_visa(self):
        assert AURORA.supports_inline_visa
        assert not POLARIS.supports_inline_visa
        assert not FRONTIER.supports_inline_visa

    def test_only_nvidia_emulates_float_atomic_minmax(self):
        # Section 5.1
        assert AURORA.native_float_atomic_minmax
        assert FRONTIER.native_float_atomic_minmax
        assert not POLARIS.native_float_atomic_minmax
        assert POLARIS.cas_emulation_factor > 1.0

    def test_only_nvidia_shares_local_memory_with_l1(self):
        # Section 5.4
        assert POLARIS.local_mem_shares_l1
        assert not AURORA.local_mem_shares_l1
        assert not FRONTIER.local_mem_shares_l1

    def test_only_intel_has_large_grf(self):
        assert AURORA.supports_large_grf
        assert not POLARIS.supports_large_grf
        assert not FRONTIER.supports_large_grf

    def test_default_subgroup_sizes_match_appendix(self):
        # -DHACC_SYCL_SG_SIZE: 16/32 on Aurora runs, 32 Polaris, 64 Frontier
        assert AURORA.default_subgroup_size == 32
        assert POLARIS.default_subgroup_size == 32
        assert FRONTIER.default_subgroup_size == 64


class TestTable1:
    def test_rows_match_paper(self):
        rows = {r["system"]: r for r in table1_rows()}
        assert rows["Aurora"]["fp32_peak_per_gpu_tflops"] == 45.9
        assert rows["Polaris"]["fp32_peak_per_gpu_tflops"] == 19.5
        assert rows["Frontier"]["fp32_peak_per_gpu_tflops"] == 53.0
        assert rows["Aurora"]["num_gpus"] == 6
        assert rows["Polaris"]["num_gpus"] == 4
        assert rows["Aurora"]["sockets"] == 2
