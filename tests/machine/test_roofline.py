"""Tests for the roofline analysis."""

import pytest

from repro.machine.registry import AURORA, FRONTIER, POLARIS
from repro.machine.roofline import (
    format_roofline,
    ridge_point,
    roofline_for_trace,
    roofline_point,
)


class TestRidgePoint:
    def test_peak_over_bandwidth(self):
        assert ridge_point(POLARIS) == pytest.approx(
            POLARIS.peak_flops / (POLARIS.hbm_bandwidth_gbs * 1e9)
        )

    def test_all_devices_have_sane_ridges(self):
        # modern GPUs sit in the 5-30 flops/byte range
        for dev in (AURORA, POLARIS, FRONTIER):
            assert 2.0 < ridge_point(dev) < 40.0


class TestRooflinePoint:
    def test_sph_kernels_are_compute_bound(self):
        # tens of interactions per particle, each re-using the staged
        # payload: the hot kernels sit right of the ridge
        for timer in ("upGeo", "upBarAc", "upBarDu"):
            p = roofline_point(FRONTIER, timer, 64.0, 4096)
            assert p.bound == "compute", timer
            assert p.arithmetic_intensity > p.ridge_point

    def test_achieved_below_ceiling(self):
        for timer in ("upGeo", "upCor", "upBarAc"):
            p = roofline_point(AURORA, timer, 64.0, 1 << 18)
            assert 0.0 < p.ceiling_fraction <= 1.0

    def test_intensity_grows_with_interactions(self):
        lo = roofline_point(POLARIS, "upGeo", 16.0, 4096)
        hi = roofline_point(POLARIS, "upGeo", 256.0, 4096)
        assert hi.arithmetic_intensity > lo.arithmetic_intensity

    def test_unknown_timer_rejected(self):
        with pytest.raises(KeyError):
            roofline_point(POLARIS, "upNothing", 64.0, 4096)


class TestTraceRoofline:
    def test_one_point_per_distinct_timer(self, reference_trace):
        points = roofline_for_trace(reference_trace, FRONTIER)
        names = {p.kernel for p in points}
        assert names == {inv.name for inv in reference_trace.invocations}

    def test_format_renders(self, reference_trace):
        text = format_roofline(roofline_for_trace(reference_trace, AURORA))
        assert "ridge" in text
        assert "upGeo" in text
