"""Tests for the occupancy calculator."""

import pytest

from repro.machine.device import GRFMode
from repro.machine.occupancy import OccupancyCalculator
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestIntelOccupancy:
    def test_small_grf_full_occupancy(self):
        occ = OccupancyCalculator(AURORA).calculate(
            subgroup_size=32, workgroup_size=128, registers_needed=32
        )
        assert occ.is_full
        assert occ.limited_by == "threads"

    def test_large_grf_caps_occupancy_at_half(self):
        # Section 5.2: "limiting achievable occupancy to 50%"
        occ = OccupancyCalculator(AURORA).calculate(
            subgroup_size=32,
            workgroup_size=128,
            registers_needed=32,
            grf_mode=GRFMode.LARGE,
        )
        assert occ.occupancy == pytest.approx(0.5)

    def test_register_demand_does_not_reduce_intel_occupancy(self):
        # fixed partition: demand beyond budget spills instead
        calc = OccupancyCalculator(AURORA)
        lo = calc.calculate(subgroup_size=32, workgroup_size=128, registers_needed=16)
        hi = calc.calculate(subgroup_size=32, workgroup_size=128, registers_needed=200)
        assert lo.occupancy == hi.occupancy


class TestOccupancyTraded:
    def test_full_occupancy_at_architected_budget(self):
        occ = OccupancyCalculator(POLARIS).calculate(
            subgroup_size=32,
            workgroup_size=128,
            registers_needed=POLARIS.registers_per_thread,
        )
        assert occ.is_full

    def test_high_register_demand_reduces_occupancy(self):
        calc = OccupancyCalculator(POLARIS)
        occ = calc.calculate(
            subgroup_size=32, workgroup_size=128, registers_needed=128
        )
        assert occ.occupancy < 0.5
        assert occ.limited_by == "registers"

    def test_monotone_in_register_demand(self):
        calc = OccupancyCalculator(FRONTIER)
        values = [
            calc.calculate(
                subgroup_size=64, workgroup_size=128, registers_needed=r
            ).occupancy
            for r in (32, 64, 128, 256)
        ]
        assert values == sorted(values, reverse=True)


class TestLocalMemoryLimits:
    def test_local_memory_can_bound_occupancy(self):
        calc = OccupancyCalculator(FRONTIER)
        occ = calc.calculate(
            subgroup_size=64,
            workgroup_size=128,
            registers_needed=32,
            local_mem_bytes_per_workgroup=32 * 1024,
        )
        assert occ.limited_by == "local_mem"
        assert occ.occupancy < 1.0

    def test_zero_local_memory_no_limit(self):
        occ = OccupancyCalculator(FRONTIER).calculate(
            subgroup_size=64,
            workgroup_size=128,
            registers_needed=32,
            local_mem_bytes_per_workgroup=0,
        )
        assert occ.limited_by != "local_mem"


class TestValidation:
    def test_bad_workgroup_multiple(self):
        with pytest.raises(ValueError):
            OccupancyCalculator(POLARIS).calculate(
                subgroup_size=32, workgroup_size=100, registers_needed=32
            )

    def test_illegal_subgroup_size(self):
        with pytest.raises(ValueError):
            OccupancyCalculator(POLARIS).calculate(
                subgroup_size=16, workgroup_size=128, registers_needed=32
            )


class TestStallFactor:
    def test_full_occupancy_no_penalty(self):
        assert OccupancyCalculator(POLARIS).stall_factor(1.0) == pytest.approx(1.0)

    def test_zero_occupancy_max_penalty(self):
        calc = OccupancyCalculator(POLARIS)
        assert calc.stall_factor(0.0) == pytest.approx(1.0 + POLARIS.stall_weight)

    def test_monotone(self):
        calc = OccupancyCalculator(AURORA)
        assert calc.stall_factor(0.25) > calc.stall_factor(0.75)
