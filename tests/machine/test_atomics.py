"""Tests for the atomic cost model (Section 5.1)."""

import pytest

from repro.machine.atomics import AtomicOp, AtomicsModel
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestNativeness:
    def test_atomic_add_native_everywhere(self):
        for dev in (AURORA, POLARIS, FRONTIER):
            assert AtomicsModel(dev).is_native(AtomicOp.ADD)

    def test_float_minmax_emulated_only_on_nvidia(self):
        assert AtomicsModel(AURORA).is_native(AtomicOp.MIN)
        assert AtomicsModel(FRONTIER).is_native(AtomicOp.MAX)
        assert not AtomicsModel(POLARIS).is_native(AtomicOp.MIN)
        assert not AtomicsModel(POLARIS).is_native(AtomicOp.MAX)


class TestCosts:
    def test_emulated_minmax_pays_cas_factor(self):
        model = AtomicsModel(POLARIS)
        add = model.cycles(AtomicOp.ADD)
        mn = model.cycles(AtomicOp.MIN)
        assert mn == pytest.approx(add * POLARIS.cas_emulation_factor)

    def test_native_minmax_same_as_add(self):
        model = AtomicsModel(FRONTIER)
        assert model.cycles(AtomicOp.MIN) == model.cycles(AtomicOp.ADD)

    def test_count_scales_linearly(self):
        model = AtomicsModel(AURORA)
        assert model.cycles(AtomicOp.ADD, 5) == pytest.approx(
            5 * model.cycles(AtomicOp.ADD, 1)
        )

    def test_zero_count_free(self):
        assert AtomicsModel(POLARIS).cycles(AtomicOp.MIN, 0.0) == 0.0
