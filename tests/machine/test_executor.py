"""Tests for the device executor (the virtual runtime)."""

import pytest

from repro.machine.cost_model import InstructionProfile, KernelLaunch
from repro.machine.executor import DeviceExecutor
from repro.machine.registry import FRONTIER


@pytest.fixture
def executor():
    return DeviceExecutor(FRONTIER)


def submit(executor, name="k", fma=100.0, n=1 << 16, body=None):
    profile = InstructionProfile(fma=fma, registers_needed=32)
    launch = KernelLaunch(n_workitems=n, subgroup_size=64)
    return executor.submit(name, profile, launch, body)


class TestSubmission:
    def test_body_result_returned(self, executor):
        assert submit(executor, body=lambda: 42) == 42

    def test_no_body_returns_none(self, executor):
        assert submit(executor) is None

    def test_record_appended_per_submission(self, executor):
        submit(executor, "a")
        submit(executor, "b")
        assert [r.kernel_name for r in executor.records] == ["a", "b"]


class TestLedger:
    def test_total_is_sum_of_records(self, executor):
        submit(executor, "a")
        submit(executor, "b", fma=200.0)
        assert executor.total_seconds() == pytest.approx(
            sum(r.seconds for r in executor.records)
        )

    def test_seconds_aggregate_by_name(self, executor):
        submit(executor, "a")
        submit(executor, "a")
        submit(executor, "b")
        by = executor.seconds_by_kernel()
        assert set(by) == {"a", "b"}
        assert by["a"] == pytest.approx(2 * by["b"])

    def test_calls_by_kernel(self, executor):
        submit(executor, "a")
        submit(executor, "a")
        assert executor.calls_by_kernel() == {"a": 2}

    def test_reset_clears_ledger(self, executor):
        submit(executor)
        executor.reset()
        assert executor.total_seconds() == 0.0
        assert executor.records == []
