"""Tests for the memory hierarchy cost model."""

import pytest

from repro.machine.memory import L1_HIT_BENEFIT, MemoryModel
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestLocalExchange:
    def test_32bit_exchange_pays_one_barrier_per_word(self):
        mm = MemoryModel(FRONTIER)
        one = mm.local_exchange(1, workgroup_size=128, separate_barriers=True)
        four = mm.local_exchange(4, workgroup_size=128, separate_barriers=True)
        # 4 words = 4x the word cost and 4x the barrier cost
        assert four.cycles == pytest.approx(4 * one.cycles)

    def test_object_exchange_amortises_barriers(self):
        mm = MemoryModel(FRONTIER)
        words = 12
        c32 = words * mm.local_exchange(
            1, workgroup_size=128, separate_barriers=True
        ).cycles
        cobj = mm.local_exchange(
            words, workgroup_size=128, separate_barriers=False
        ).cycles
        assert cobj < c32

    def test_object_exchange_reserves_more_local_memory(self):
        mm = MemoryModel(POLARIS)
        c32 = mm.local_exchange(1, workgroup_size=128, separate_barriers=True)
        cobj = mm.local_exchange(12, workgroup_size=128, separate_barriers=False)
        assert cobj.local_mem_bytes_per_workgroup == 12 * c32.local_mem_bytes_per_workgroup

    def test_single_word_object_vs_32bit_equal_words(self):
        mm = MemoryModel(AURORA)
        c32 = mm.local_exchange(1, workgroup_size=128, separate_barriers=True)
        cobj = mm.local_exchange(1, workgroup_size=128, separate_barriers=False)
        assert c32.cycles == pytest.approx(cobj.cycles)


class TestL1Contention:
    def test_no_contention_without_shared_l1(self):
        assert MemoryModel(AURORA).l1_contention_factor(200) == 1.0
        assert MemoryModel(FRONTIER).l1_contention_factor(200) == 1.0

    def test_nvidia_contention_grows_with_registers(self):
        # Section 5.4: memory variants hurt most on register-heavy kernels
        mm = MemoryModel(POLARIS)
        assert mm.l1_contention_factor(110) > mm.l1_contention_factor(40) > 1.0


class TestEffectiveBandwidth:
    def test_full_l1_gives_full_boost(self):
        mm = MemoryModel(POLARIS)
        bw = mm.effective_bandwidth(0.0)
        base = POLARIS.hbm_bandwidth_gbs * 1e9
        assert bw == pytest.approx(base * (1 + L1_HIT_BENEFIT))

    def test_carveout_reduces_bandwidth_on_nvidia(self):
        mm = MemoryModel(POLARIS)
        free = mm.effective_bandwidth(0.0)
        carved = mm.effective_bandwidth(POLARIS.local_mem_per_cu_kib * 1024)
        assert carved < free
        assert carved == pytest.approx(POLARIS.hbm_bandwidth_gbs * 1e9)

    def test_carveout_irrelevant_on_dedicated_lds(self):
        mm = MemoryModel(FRONTIER)
        assert mm.effective_bandwidth(0.0) == mm.effective_bandwidth(64 * 1024)

    def test_memory_time_linear_in_bytes(self):
        mm = MemoryModel(AURORA)
        assert mm.memory_time(2e9) == pytest.approx(2 * mm.memory_time(1e9))
