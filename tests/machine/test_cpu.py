"""Tests for CPU support (Section 7.3)."""

import pytest

from repro.kernels.adiabatic import AdiabaticKernelDefinition, price_trace
from repro.kernels.specs import KERNEL_SPECS
from repro.kernels.variants import variant_by_name
from repro.machine.cost_model import KernelLaunch
from repro.machine.cpu import CPU_HOST, atomic_cycle_share, pp_with_cpu
from repro.machine.device import Vendor
from repro.machine.registry import all_devices
from repro.proglang.model import (
    CompileError,
    ProgrammingModel,
    is_available,
)


class TestCPUDevice:
    def test_not_in_the_paper_platform_set(self):
        assert CPU_HOST not in all_devices()
        assert CPU_HOST.system == "CPU"

    def test_sycl_runs_on_cpu(self):
        # "the SYCL code is the only modern version of CRK-HACC that we
        # have been able to run on CPUs"
        assert is_available(ProgrammingModel.SYCL, CPU_HOST)
        assert is_available(ProgrammingModel.OPENCL_CPU, CPU_HOST)

    def test_cuda_hip_visa_do_not(self):
        assert not is_available(ProgrammingModel.CUDA, CPU_HOST)
        assert not is_available(ProgrammingModel.HIP, CPU_HOST)
        assert not is_available(ProgrammingModel.SYCL_VISA, CPU_HOST)

    def test_atomics_are_expensive(self):
        # the Section 7.3 diagnosis, as data
        for gpu in all_devices():
            assert CPU_HOST.atomic_cycles > 5 * gpu.atomic_cycles


class TestCPUCorrectness:
    """The SYCL kernels price (i.e. 'run') on the CPU backend."""

    def test_trace_prices_on_cpu(self, reference_trace):
        report = price_trace(
            reference_trace, CPU_HOST, ProgrammingModel.SYCL, "memory_object"
        )
        assert report.total_seconds > 0
        assert set(report.seconds_by_timer) == {
            inv.name for inv in reference_trace.invocations
        }

    def test_visa_variant_fails_on_cpu(self, reference_trace):
        with pytest.raises(CompileError):
            price_trace(reference_trace, CPU_HOST, ProgrammingModel.SYCL, "visa")


class TestSection73Diagnosis:
    def test_atomics_dominate_force_kernels_on_cpu(self):
        spec = KERNEL_SPECS["acceleration"]
        definition = AdiabaticKernelDefinition(
            spec, variant_by_name("memory_object"), 64.0
        )
        profile = definition.profile(CPU_HOST, subgroup_size=16, fast_math=True)
        launch = KernelLaunch(n_workitems=4096, subgroup_size=16)
        share = atomic_cycle_share(profile, launch)
        assert share > 0.4  # "primarily due to ... atomics"

    def test_atomics_minor_on_gpus(self):
        from repro.machine.registry import FRONTIER

        spec = KERNEL_SPECS["acceleration"]
        definition = AdiabaticKernelDefinition(
            spec, variant_by_name("memory_object"), 64.0
        )
        profile = definition.profile(FRONTIER, subgroup_size=64, fast_math=True)
        launch = KernelLaunch(n_workitems=4096, subgroup_size=64)
        share = atomic_cycle_share(profile, launch, FRONTIER)
        assert share < 0.3

    def test_untuned_cpu_drags_pp_down(self, reference_trace):
        res = pp_with_cpu(reference_trace)
        assert res["cpu_efficiency"] < 0.7
        assert res["pp_with_cpu"] < res["pp_gpus"]
