"""Tests for the cross-lane communication cost primitives."""

import math

import pytest

from repro.machine import shuffle
from repro.machine.registry import AURORA, FRONTIER, POLARIS


class TestSelect:
    def test_intel_cost_is_one_cycle_per_lane(self):
        # Figure 5: indirect register access
        assert shuffle.select_cycles(AURORA, 32) == pytest.approx(32.0)
        assert shuffle.select_cycles(AURORA, 16) == pytest.approx(16.0)

    def test_dedicated_hardware_is_flat_in_subgroup(self):
        assert shuffle.select_cycles(POLARIS, 32) == shuffle.select_cycles(
            POLARIS, 32, words=1
        )
        assert shuffle.select_cycles(FRONTIER, 32) == shuffle.select_cycles(
            FRONTIER, 64
        )

    def test_words_scale_linearly(self):
        assert shuffle.select_cycles(AURORA, 32, words=12) == pytest.approx(
            12 * shuffle.select_cycles(AURORA, 32)
        )

    def test_xor_pattern_costs_like_select(self):
        # data-dependent source lanes: no compile-time lowering
        assert shuffle.xor_shuffle_cycles(AURORA, 32) == shuffle.select_cycles(
            AURORA, 32
        )


class TestBroadcast:
    def test_intel_broadcast_is_cheap(self):
        # Figure 6: register regioning is "very fast"
        assert shuffle.broadcast_cycles(AURORA) < shuffle.select_cycles(AURORA, 16) / 4


class TestReduce:
    def test_log2_tree_depth(self):
        r32 = shuffle.reduce_cycles(POLARIS, 32)
        # 5 steps of (shuffle + add)
        assert r32 == pytest.approx(
            5 * (POLARIS.dedicated_shuffle_cycles + POLARIS.fma_cycles)
        )

    def test_reduce_cheaper_than_shuffle_network_on_intel(self):
        # Section 5.1: group algorithms convey the pattern, enabling the
        # cheap lowering; a naive shuffle network would pay indirect access
        reduce = shuffle.reduce_cycles(AURORA, 32)
        naive = int(math.log2(32)) * shuffle.select_cycles(AURORA, 32)
        assert reduce < naive / 4


class TestVisaButterfly:
    def test_supported_only_on_intel(self):
        assert shuffle.visa_butterfly_cycles(AURORA, 1) > 0
        with pytest.raises(shuffle.UnsupportedOperation):
            shuffle.visa_butterfly_cycles(POLARIS, 1)
        with pytest.raises(shuffle.UnsupportedOperation):
            shuffle.visa_butterfly_cycles(FRONTIER, 1)

    def test_butterfly_beats_indirect_access(self):
        # Section 5.3.3: four movs vs one cycle per lane
        assert shuffle.visa_butterfly_cycles(AURORA, 1) < shuffle.select_cycles(
            AURORA, 32
        )
