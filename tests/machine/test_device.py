"""Tests for the device model."""

import pytest

from repro.machine.device import (
    DeviceSpec,
    GRFMode,
    ShuffleImplementation,
    UnsupportedSubgroupSize,
    peak_consistency_error,
)
from repro.machine.registry import AURORA, FRONTIER, POLARIS, all_devices


class TestDerivedQuantities:
    def test_total_lanes(self):
        assert AURORA.total_lanes == 512 * 16
        assert POLARIS.total_lanes == 54 * 64
        assert FRONTIER.total_lanes == 110 * 64

    def test_peak_flops_units(self):
        assert AURORA.peak_flops == pytest.approx(45.9e12 / 2)

    def test_peak_consistency_within_vendor_rating_slack(self):
        # rated peaks vs lanes*2*clock agree to ~15% (boost clocks)
        for dev in all_devices():
            assert peak_consistency_error(dev) < 0.16, dev.name


class TestRegistersPerWorkitem:
    def test_intel_simd32_small_grf(self):
        # 128 GRF registers x 16 elements / 32 work-items = 64 scalars
        assert AURORA.registers_per_workitem(32, GRFMode.SMALL) == 64

    def test_intel_simd16_large_grf_is_4x(self):
        # Section 5.2: the combination gives a 4x register headroom
        small = AURORA.registers_per_workitem(32, GRFMode.SMALL)
        large = AURORA.registers_per_workitem(16, GRFMode.LARGE)
        assert large == 4 * small == 256

    def test_scalar_regfiles_ignore_subgroup_size(self):
        assert POLARIS.registers_per_workitem(
            32, GRFMode.SMALL
        ) == POLARIS.registers_per_thread

    def test_large_grf_rejected_off_intel(self):
        with pytest.raises(ValueError):
            POLARIS.registers_per_workitem(32, GRFMode.LARGE)

    def test_threads_halved_in_large_grf(self):
        assert AURORA.threads_per_cu_for(GRFMode.LARGE) == AURORA.threads_per_cu // 2


class TestSubgroupSizes:
    @pytest.mark.parametrize(
        "device,sizes",
        [(AURORA, (16, 32)), (POLARIS, (32,)), (FRONTIER, (32, 64))],
    )
    def test_supported_sizes_match_section_4_3(self, device, sizes):
        assert device.subgroup_sizes == sizes
        for s in sizes:
            device.validate_subgroup_size(s)

    def test_illegal_size_raises(self):
        with pytest.raises(UnsupportedSubgroupSize):
            POLARIS.validate_subgroup_size(16)
        with pytest.raises(UnsupportedSubgroupSize):
            AURORA.validate_subgroup_size(64)


class TestShuffleCycles:
    def test_intel_indirect_access_scales_with_lanes(self):
        # Section 5.3: one cycle per element
        assert AURORA.shuffle_cycles(32) == pytest.approx(32.0)
        assert AURORA.shuffle_cycles(16) == pytest.approx(16.0)

    def test_intel_compile_time_pattern_uses_regioning(self):
        assert AURORA.shuffle_cycles(32, compile_time_pattern=True) < 4

    def test_dedicated_shuffle_is_flat(self):
        assert POLARIS.shuffle_cycles(32) == POLARIS.dedicated_shuffle_cycles
        assert FRONTIER.shuffle_cycles(64) == FRONTIER.dedicated_shuffle_cycles


class TestOverrides:
    def test_with_overrides_returns_modified_copy(self):
        fast = AURORA.with_overrides(clock_ghz=2.0)
        assert fast.clock_ghz == 2.0
        assert AURORA.clock_ghz == 1.6
        assert fast.name == AURORA.name

    def test_summary_fields(self):
        s = AURORA.summary()
        assert s["vendor"] == "intel"
        assert s["shuffle_impl"] == ShuffleImplementation.INDIRECT_REGISTER.value
        assert s["fp32_peak_tflops_gpu"] == pytest.approx(45.9)
