"""Tests for the kernel cost model."""

import pytest

from repro.machine.cost_model import CostModel, InstructionProfile, KernelLaunch
from repro.machine.device import GRFMode
from repro.machine.registry import AURORA, FRONTIER, POLARIS


def flop_profile(fma: float = 1000.0, **kw) -> InstructionProfile:
    return InstructionProfile(fma=fma, registers_needed=32, **kw)


class TestComputeBound:
    def test_pure_fma_approaches_peak(self):
        cm = CostModel(POLARIS)
        profile = flop_profile(fma=100_000)
        cost = cm.kernel_cost(profile, KernelLaunch(n_workitems=10_000_000))
        # at full occupancy, achieved ~ peak * node mapping efficiency
        assert cost.achieved_tflops == pytest.approx(
            POLARIS.fp32_peak_tflops * POLARIS.node_mapping_efficiency, rel=0.01
        )

    def test_time_linear_in_workitems(self):
        cm = CostModel(FRONTIER)
        p = flop_profile()
        t1 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20)).seconds
        t2 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 21)).seconds
        assert t2 == pytest.approx(2 * t1)

    def test_fast_math_speeds_up_specials(self):
        cm = CostModel(POLARIS)
        p = InstructionProfile(fma=100, specials=100, registers_needed=32)
        slow = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, fast_math=False))
        fast = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, fast_math=True))
        assert fast.seconds < slow.seconds

    def test_breakdown_keys(self):
        cm = CostModel(AURORA)
        cost = cm.kernel_cost(flop_profile(), KernelLaunch(n_workitems=1024))
        assert set(cost.cycles) == {
            "compute",
            "communication",
            "local_memory",
            "atomics",
            "spills",
        }


class TestCommunicationCosts:
    def test_shuffles_hurt_intel_more(self):
        p_comm = InstructionProfile(fma=100, shuffles=100, registers_needed=32)
        p_flop = InstructionProfile(fma=100, registers_needed=32)
        launch = KernelLaunch(n_workitems=1 << 20)

        def overhead(dev):
            cm = CostModel(dev)
            return (
                cm.kernel_cost(p_comm, launch).seconds
                / cm.kernel_cost(p_flop, launch).seconds
            )

        assert overhead(AURORA) > 3 * overhead(POLARIS)

    def test_visa_raises_off_intel(self):
        cm = CostModel(POLARIS)
        p = InstructionProfile(fma=10, visa_exchanges=4, registers_needed=32)
        with pytest.raises(Exception):
            cm.kernel_cost(p, KernelLaunch(n_workitems=1024))


class TestSpills:
    def test_spills_slow_the_kernel(self):
        cm = CostModel(POLARIS)
        fits = InstructionProfile(fma=100, registers_needed=100, interactions=50)
        spills = InstructionProfile(fma=100, registers_needed=300, interactions=50)
        launch = KernelLaunch(n_workitems=1 << 20)
        assert (
            cm.kernel_cost(spills, launch).seconds
            > cm.kernel_cost(fits, launch).seconds
        )

    def test_intel_large_grf_absorbs_pressure(self):
        cm = CostModel(AURORA)
        p = InstructionProfile(fma=100, registers_needed=120, interactions=50)
        small = cm.kernel_cost(
            p, KernelLaunch(n_workitems=1 << 20, subgroup_size=32)
        )
        large = cm.kernel_cost(
            p,
            KernelLaunch(
                n_workitems=1 << 20, subgroup_size=32, grf_mode=GRFMode.LARGE
            ),
        )
        assert small.cycles["spills"] > 0
        assert large.cycles["spills"] == 0


class TestMemoryBound:
    def test_huge_traffic_is_memory_bound(self):
        cm = CostModel(POLARIS)
        p = InstructionProfile(fma=1, global_bytes=64_000, registers_needed=32)
        cost = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20))
        assert cost.bound == "memory"
        assert cost.seconds >= cost.compute_seconds

    def test_flop_kernel_is_compute_bound(self):
        cm = CostModel(POLARIS)
        cost = cm.kernel_cost(
            flop_profile(fma=10_000), KernelLaunch(n_workitems=1 << 20)
        )
        assert cost.bound == "compute"


class TestProfileHelpers:
    def test_scaled_multiplies_counts_not_state(self):
        p = InstructionProfile(
            fma=10, shuffles=2, registers_needed=77, local_mem_bytes_per_workgroup=512
        )
        s = p.scaled(3.0)
        assert s.fma == 30
        assert s.shuffles == 6
        assert s.registers_needed == 77
        assert s.local_mem_bytes_per_workgroup == 512

    def test_flop_count(self):
        p = InstructionProfile(fma=10, flops=5, specials=2)
        assert p.flop_count == 27

    def test_bad_launch_rejected(self):
        with pytest.raises(ValueError):
            KernelLaunch(n_workitems=0)
        with pytest.raises(ValueError):
            KernelLaunch(n_workitems=128, workgroup_size=100, subgroup_size=32)


class TestLaneUtilisation:
    """Sub-groups below the native execution width waste lanes."""

    def test_wave32_on_frontier_halves_throughput(self):
        from repro.machine.registry import FRONTIER

        cm = CostModel(FRONTIER)
        p = flop_profile(fma=1000)
        t64 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, subgroup_size=64))
        t32 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, subgroup_size=32))
        assert t32.compute_seconds == pytest.approx(
            2 * t64.compute_seconds, rel=0.01
        )

    def test_sg16_on_aurora_keeps_full_throughput(self):
        # SIMD16 vector engines: a 16-wide sub-group is a full vector
        cm = CostModel(AURORA)
        p = flop_profile(fma=1000)
        t32 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, subgroup_size=32))
        t16 = cm.kernel_cost(p, KernelLaunch(n_workitems=1 << 20, subgroup_size=16))
        assert t16.compute_seconds == pytest.approx(t32.compute_seconds, rel=0.01)

    def test_utilisation_values(self):
        from repro.machine.registry import FRONTIER

        assert FRONTIER.lane_utilisation(64) == 1.0
        assert FRONTIER.lane_utilisation(32) == 0.5
        assert AURORA.lane_utilisation(16) == 1.0
        with pytest.raises(ValueError):
            AURORA.lane_utilisation(0)
