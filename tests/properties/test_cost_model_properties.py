"""Property-based tests for the virtual-GPU cost model.

The figures depend on the model behaving monotonically: more work can
never be cheaper, spills can never help, fast math can never hurt.
These invariants are what keep the calibrated comparisons meaningful.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cost_model import CostModel, InstructionProfile, KernelLaunch
from repro.machine.registry import AURORA, FRONTIER, POLARIS, all_devices

devices = st.sampled_from(list(all_devices()))

count = st.floats(0.0, 500.0)


@st.composite
def profiles(draw):
    return InstructionProfile(
        fma=draw(count),
        flops=draw(count),
        int_ops=draw(count),
        specials=draw(st.floats(0.0, 50.0)),
        shuffles=draw(st.floats(0.0, 50.0)),
        broadcasts=draw(st.floats(0.0, 50.0)),
        reduces=draw(st.floats(0.0, 10.0)),
        lm_exchanges_32bit=draw(st.floats(0.0, 20.0)),
        atomic_adds=draw(st.floats(0.0, 20.0)),
        atomic_minmax=draw(st.floats(0.0, 5.0)),
        global_bytes=draw(st.floats(0.0, 4000.0)),
        registers_needed=draw(st.integers(8, 320)),
        interactions=draw(st.floats(1.0, 200.0)),
    )


def launch_for(device, n=1 << 18):
    return KernelLaunch(n_workitems=n, subgroup_size=device.default_subgroup_size)


class TestCostModelProperties:
    @given(devices, profiles())
    @settings(max_examples=60, deadline=None)
    def test_time_positive_when_work_exists(self, device, profile):
        cost = CostModel(device).kernel_cost(profile, launch_for(device))
        assert cost.seconds >= 0.0
        if profile.fma > 0:
            assert cost.seconds > 0.0

    @given(devices, profiles(), st.floats(1.1, 4.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_work(self, device, profile, factor):
        cm = CostModel(device)
        base = cm.kernel_cost(profile, launch_for(device))
        more = cm.kernel_cost(profile.scaled(factor), launch_for(device))
        assert more.seconds >= base.seconds * 0.999

    @given(devices, profiles())
    @settings(max_examples=60, deadline=None)
    def test_fast_math_never_slower(self, device, profile):
        cm = CostModel(device)
        launch = launch_for(device)
        fast = cm.kernel_cost(
            profile, dataclasses.replace(launch, fast_math=True)
        )
        precise = cm.kernel_cost(
            profile, dataclasses.replace(launch, fast_math=False)
        )
        assert fast.seconds <= precise.seconds * (1 + 1e-12)

    @given(devices, profiles(), st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_more_registers_never_compute_faster(self, device, profile, extra):
        # register pressure can only hurt the compute path (spills,
        # occupancy).  The *memory* path may legitimately speed up:
        # fewer resident work-groups carve less shared memory out of
        # L1, raising effective bandwidth on the A100.
        cm = CostModel(device)
        heavier = dataclasses.replace(
            profile, registers_needed=profile.registers_needed + extra
        )
        a = cm.kernel_cost(profile, launch_for(device)).compute_seconds
        b = cm.kernel_cost(heavier, launch_for(device)).compute_seconds
        assert b >= a * 0.999

    @given(profiles())
    @settings(max_examples=60, deadline=None)
    def test_time_linear_in_workitems(self, profile):
        cm = CostModel(FRONTIER)
        t1 = cm.kernel_cost(profile, launch_for(FRONTIER, 1 << 18)).seconds
        t2 = cm.kernel_cost(profile, launch_for(FRONTIER, 1 << 19)).seconds
        if t1 > 0:
            assert 1.8 <= t2 / t1 <= 2.2

    @given(profiles())
    @settings(max_examples=60, deadline=None)
    def test_shuffles_cost_more_on_intel_than_amd(self, profile):
        if profile.shuffles < 1.0:
            return
        base = dataclasses.replace(profile, shuffles=0.0)

        def overhead(device):
            cm = CostModel(device)
            launch = launch_for(device)
            with_s = sum(cm.kernel_cost(profile, launch).cycles.values())
            without = sum(cm.kernel_cost(base, launch).cycles.values())
            return with_s - without

        assert overhead(AURORA) > overhead(FRONTIER)

    @given(devices, profiles())
    @settings(max_examples=60, deadline=None)
    def test_breakdown_consistent(self, device, profile):
        cost = CostModel(device).kernel_cost(profile, launch_for(device))
        assert all(v >= 0 for v in cost.cycles.values())
        assert cost.seconds >= max(
            cost.compute_seconds, cost.memory_seconds
        ) * 0.999 / max(device.node_mapping_efficiency, 1e-9)
