"""Property-based tests for the P3 metrics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.divergence import code_divergence, jaccard_distance
from repro.core.metrics import harmonic_mean, performance_portability

efficiencies = st.lists(st.floats(0.01, 1.0), min_size=1, max_size=8)
line_sets = st.sets(st.integers(0, 200), max_size=60)


class TestHarmonicMeanProperties:
    @given(efficiencies)
    def test_bounded_by_min_and_max(self, values):
        hm = harmonic_mean(values)
        assert min(values) - 1e-12 <= hm <= max(values) + 1e-12

    @given(efficiencies)
    def test_below_arithmetic_mean(self, values):
        assert harmonic_mean(values) <= sum(values) / len(values) + 1e-12

    @given(st.floats(0.01, 1.0), st.integers(1, 8))
    def test_constant_list_is_identity(self, value, n):
        assert harmonic_mean([value] * n) == pytest_approx(value)

    @given(efficiencies, st.floats(0.01, 1.0))
    def test_monotone_in_each_argument(self, values, bump):
        worse = list(values)
        worse[0] = min(worse[0], bump) * 0.5
        assert harmonic_mean(worse) <= harmonic_mean(values) + 1e-12


class TestPPProperties:
    @given(efficiencies)
    def test_pp_in_unit_interval(self, values):
        pp = performance_portability(values)
        assert 0.0 <= pp <= 1.0

    @given(st.lists(st.floats(0.01, 1.0), min_size=2, max_size=6))
    def test_adding_a_zero_platform_zeroes_pp(self, values):
        assert performance_portability(values + [0.0]) == 0.0

    @given(st.lists(st.floats(0.5, 1.0), min_size=1, max_size=6))
    def test_high_efficiency_everywhere_high_pp(self, values):
        assert performance_portability(values) >= 0.5


class TestJaccardProperties:
    @given(line_sets, line_sets)
    def test_symmetric_and_bounded(self, a, b):
        d = jaccard_distance(a, b)
        assert d == jaccard_distance(b, a)
        assert 0.0 <= d <= 1.0

    @given(line_sets)
    def test_identity(self, a):
        assert jaccard_distance(a, a) == 0.0

    @given(line_sets, line_sets, line_sets)
    def test_triangle_inequality(self, a, b, c):
        # Jaccard distance is a metric
        dab = jaccard_distance(a, b)
        dbc = jaccard_distance(b, c)
        dac = jaccard_distance(a, c)
        assert dac <= dab + dbc + 1e-12


class TestDivergenceProperties:
    @given(st.dictionaries(st.sampled_from("ABCD"), line_sets, min_size=2, max_size=4))
    def test_bounded(self, platform_lines):
        d = code_divergence(platform_lines)
        assert 0.0 <= d <= 1.0

    @given(line_sets, st.integers(2, 5))
    def test_identical_platforms_zero(self, lines, n):
        platform_lines = {f"P{i}": set(lines) for i in range(n)}
        assert code_divergence(platform_lines) == 0.0


def pytest_approx(value):
    import pytest

    return pytest.approx(value)
