"""Property-based tests for the sub-group intrinsics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.proglang import intrinsics as I

subgroup_sizes = st.sampled_from([4, 8, 16, 32, 64])


def lane_values(size):
    return hnp.arrays(
        dtype=np.float64,
        shape=(size,),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )


@st.composite
def lanes_and_mask(draw):
    size = draw(subgroup_sizes)
    values = draw(lane_values(size))
    mask = draw(st.integers(0, size - 1))
    return values, mask


@st.composite
def lanes_and_permutation(draw):
    size = draw(subgroup_sizes)
    values = draw(lane_values(size))
    perm = draw(st.permutations(range(size)))
    return values, np.array(perm)


class TestShuffleXorProperties:
    @given(lanes_and_mask())
    def test_involution(self, case):
        values, mask = case
        twice = I.shuffle_xor(I.shuffle_xor(values, mask), mask)
        assert np.array_equal(twice, values)

    @given(lanes_and_mask())
    def test_preserves_multiset(self, case):
        values, mask = case
        out = I.shuffle_xor(values, mask)
        assert np.array_equal(np.sort(out), np.sort(values))

    @given(lanes_and_mask())
    def test_sum_invariant(self, case):
        # summation order changes, so compare to float tolerance
        values, mask = case
        out_sum = I.shuffle_xor(values, mask).sum()
        scale = np.abs(values).sum() + 1.0
        assert abs(out_sum - values.sum()) < 1e-9 * scale


class TestSelectProperties:
    @given(lanes_and_permutation())
    def test_permutation_gather(self, case):
        values, perm = case
        out = I.select_from_group(values, perm)
        assert np.array_equal(out, values[perm])

    @given(lanes_and_permutation())
    def test_composition(self, case):
        values, perm = case
        # gathering twice composes the index maps
        once = I.select_from_group(values, perm)
        twice = I.select_from_group(once, perm)
        assert np.array_equal(twice, values[perm[perm]])


class TestReduceProperties:
    @given(subgroup_sizes.flatmap(lane_values))
    def test_sum_reduction_uniform_and_exact(self, values):
        out = I.reduce_over_group(values, "sum")
        assert np.allclose(out, values.sum())
        assert len(set(out.tolist())) == 1

    @given(subgroup_sizes.flatmap(lane_values))
    def test_min_max_are_elements(self, values):
        mn = I.reduce_over_group(values, "min")[0]
        mx = I.reduce_over_group(values, "max")[0]
        assert mn in values
        assert mx in values
        assert mn <= mx


class TestButterflyProperties:
    @given(subgroup_sizes, st.integers(0, 63))
    def test_partner_is_cross_half_involution(self, size, step):
        p = I.butterfly_partner(size, step)
        half = size // 2
        lanes = np.arange(size)
        assert np.array_equal(p[p], lanes)
        assert np.all((lanes < half) != (p < half))

    @given(subgroup_sizes)
    @settings(max_examples=20)
    def test_schedule_covers_all_pairs_exactly_once(self, size):
        half = size // 2
        seen = []
        for step in range(half):
            p = I.butterfly_partner(size, step)
            seen.extend((lane, int(p[lane])) for lane in range(half))
        assert len(seen) == len(set(seen)) == half * half
