"""Property-based tests on the physics substrates."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hacc.cosmology import Cosmology
from repro.hacc.halo import UnionFind
from repro.hacc.mesh import cic_deposit
from repro.hacc.neighbors import find_pairs
from repro.hacc.sph.kernels_math import SUPPORT, cubic_spline


class TestCosmologyProperties:
    @given(st.floats(0.005, 1.0), st.floats(0.005, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_leapfrog_integrals_additive(self, a_lo, a_hi):
        a0, a1 = sorted((a_lo, a_hi))
        mid = 0.5 * (a0 + a1)
        cosmo = Cosmology()
        whole = cosmo.kick_factor(a0, a1)
        parts = cosmo.kick_factor(a0, mid) + cosmo.kick_factor(mid, a1)
        assert whole == np.float64(whole)
        assert abs(whole - parts) < 1e-10 * max(abs(whole), 1e-12)

    @given(st.floats(0.01, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_growth_in_unit_interval(self, a):
        d = Cosmology().growth_factor(a)
        assert 0.0 < d <= 1.0 + 1e-9


class TestKernelProperties:
    @given(
        hnp.arrays(np.float64, (20,), elements=st.floats(0.0, 5.0)),
        st.floats(0.2, 3.0),
    )
    def test_kernel_non_negative_and_supported(self, r, h):
        w = cubic_spline(r, np.full_like(r, h))
        assert np.all(w >= 0)
        assert np.all(w[r >= SUPPORT * h] == 0.0)

    @given(st.floats(0.2, 3.0), st.floats(1.1, 4.0))
    def test_kernel_scale_invariance(self, h, scale):
        # W(r, h) = s^3 W(s r, s h)
        r = np.linspace(0, 2 * h, 32)
        lhs = cubic_spline(r, np.full_like(r, h))
        rhs = scale**3 * cubic_spline(scale * r, np.full_like(r, scale * h))
        assert np.allclose(lhs, rhs, rtol=1e-10, atol=1e-14)


class TestMeshProperties:
    @given(
        hnp.arrays(
            np.float64, (30, 3), elements=st.floats(0.0, 9.999, allow_nan=False)
        ),
        hnp.arrays(np.float64, (30,), elements=st.floats(0.1, 5.0)),
    )
    @settings(max_examples=30, deadline=None)
    def test_cic_conserves_mass(self, pos, weights):
        mesh = cic_deposit(pos, weights, 8, 10.0)
        assert mesh.sum() == np.float64(mesh.sum())
        assert abs(mesh.sum() - weights.sum()) < 1e-9 * max(weights.sum(), 1.0)

    @given(
        hnp.arrays(
            np.float64, (30, 3), elements=st.floats(0.0, 9.999, allow_nan=False)
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_cic_non_negative(self, pos):
        mesh = cic_deposit(pos, np.ones(30), 8, 10.0)
        assert np.all(mesh >= -1e-15)


class TestNeighborProperties:
    @given(
        hnp.arrays(
            np.float64, (25, 3), elements=st.floats(0.0, 9.999, allow_nan=False)
        ),
        st.floats(0.3, 4.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pairs_symmetric_and_within_cutoff(self, pos, cutoff):
        i, j = find_pairs(pos, 10.0, cutoff)
        pairs = set(zip(i.tolist(), j.tolist()))
        assert all((b, a) in pairs for a, b in pairs)
        half = 5.0
        d = (pos[i] - pos[j] + half) % 10.0 - half
        r = np.linalg.norm(d, axis=1)
        assert np.all(r < cutoff + 1e-12)

    @given(
        hnp.arrays(
            np.float64, (25, 3), elements=st.floats(0.0, 9.999, allow_nan=False)
        ),
        st.floats(0.3, 2.0),
        st.floats(1.01, 2.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_pair_count_monotone_in_cutoff(self, pos, cutoff, factor):
        small = len(find_pairs(pos, 10.0, cutoff)[0])
        large = len(find_pairs(pos, 10.0, min(cutoff * factor, 4.9))[0])
        assert large >= small


class TestUnionFindProperties:
    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    def test_labels_form_valid_partition(self, unions):
        uf = UnionFind(20)
        for a, b in unions:
            uf.union(a, b)
        labels = uf.labels()
        # every label is a member of its own class (canonical roots)
        for i, lab in enumerate(labels):
            assert labels[lab] == lab

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40))
    def test_union_order_irrelevant(self, unions):
        uf1 = UnionFind(20)
        uf2 = UnionFind(20)
        for a, b in unions:
            uf1.union(a, b)
        for a, b in reversed(unions):
            uf2.union(a, b)
        l1, l2 = uf1.labels(), uf2.labels()
        # identical partitions (labels may differ by representative)
        groups1 = {}
        groups2 = {}
        for i in range(20):
            groups1.setdefault(l1[i], set()).add(i)
            groups2.setdefault(l2[i], set()).add(i)
        assert sorted(map(frozenset, groups1.values())) == sorted(
            map(frozenset, groups2.values())
        )
