"""CRK correction exactness, property-tested on every array backend.

The reproducing conditions are the correctness contract of the
Corrections kernel (Section 5): the corrected kernel W^R must
reproduce constant fields exactly (zeroth moment = 1), annihilate
linear moments (first moment = 0), and make the difference-form
gradient estimate exact for affine fields.  Running the identical
properties through every registered ``repro.xp`` backend is what
certifies the backends as interchangeable implementations of the same
physics, not merely fast lookalikes -- the reproduction's analogue of
the paper validating its CUDA/HIP/SYCL builds against each other.

Tolerances: the 3x3 moment solves carry a relative Tikhonov
regularisation of 1e-8 (``M2_REGULARISATION``), so "exact" means
round-off *plus* that regularisation, i.e. residuals of order 1e-7.
"""

import numpy as np
import pytest

from repro import xp
from repro.hacc.sph.corrections import (
    compute_corrections,
    corrected_kernel_gradients,
    corrected_kernel_values,
)
from repro.hacc.sph.geometry import compute_geometry
from repro.hacc.sph.kernels_math import SUPPORT, kernel_self_value
from repro.hacc.sph.pairs import PairContext

BACKENDS = xp.available_backends()

BOX = 1.0
N_SIDE = 5


def _jittered_lattice(rng, n_side=N_SIDE, box=BOX, jitter=0.25):
    grid = (np.indices((n_side,) * 3).reshape(3, -1).T + 0.5) * (box / n_side)
    noise = rng.uniform(-jitter, jitter, size=grid.shape) * (box / n_side)
    return (grid + noise) % box


@pytest.fixture(scope="module", params=BACKENDS)
def crk_state(request):
    """(backend, pos, h, ctx, volume, corrections) computed end to end
    under one backend: build, geometry iteration, correction solve."""
    backend = request.param
    with xp.use_backend(backend):
        rng = np.random.default_rng(1234)
        pos = _jittered_lattice(rng)
        h = np.full(len(pos), 1.3 * BOX / N_SIDE)
        ctx = PairContext.build(pos, h, BOX)
        geo = compute_geometry(ctx, h)
        corr = compute_corrections(ctx, h, geo.volume)
    return backend, pos, h, ctx, geo.volume, corr


class TestReproducingConditions:
    def test_zeroth_moment_is_one(self, crk_state):
        # sum_j V_j W^R_ij + V_i W^R_ii = 1: constants are reproduced
        backend, _pos, h, ctx, volume, corr = crk_state
        with xp.use_backend(backend):
            wr = corrected_kernel_values(ctx, h, corr)
            total = (
                ctx.scatter_sum(volume[ctx.j] * wr)
                + corr.a * volume * kernel_self_value(h)
            )
        np.testing.assert_allclose(total, 1.0, atol=1e-9)

    def test_first_moment_is_zero(self, crk_state):
        # sum_j V_j (x_j - x_i) W^R_ij = 0: linear moments annihilated
        backend, _pos, h, ctx, volume, corr = crk_state
        with xp.use_backend(backend):
            wr = corrected_kernel_values(ctx, h, corr)
            moment = ctx.scatter_sum((volume[ctx.j] * wr)[:, None] * (-ctx.dx))
        assert np.abs(moment).max() < 1e-7 * np.abs(ctx.dx).max()

    def test_linear_field_gradient_is_exact(self, crk_state):
        # grad F_i = sum_j V_j (F_j - F_i) grad_i W^R_ij recovers the
        # slope of an affine field exactly; field differences are taken
        # through the minimum image so the periodic seam stays affine
        backend, _pos, h, ctx, volume, corr = crk_state
        slope = np.array([0.7, -0.4, 0.2])
        with xp.use_backend(backend):
            gw = corrected_kernel_gradients(ctx, h, corr)
            df = (-ctx.dx) @ slope  # F_j - F_i, minimum image
            grad = ctx.scatter_sum((volume[ctx.j] * df)[:, None] * gw)
        np.testing.assert_allclose(
            grad, np.tile(slope, (ctx.n, 1)), atol=2e-7
        )

    def test_constant_field_gradient_vanishes(self, crk_state):
        # the same estimator on a constant field is identically zero
        backend, _pos, h, ctx, volume, corr = crk_state
        with xp.use_backend(backend):
            gw = corrected_kernel_gradients(ctx, h, corr)
            zero = volume[ctx.j] * 0.0
            grad = ctx.scatter_sum(zero[:, None] * gw)
        np.testing.assert_array_equal(grad, 0.0)


class TestCrossBackendConsistency:
    """The same state run through different backends must agree on the
    *solved* coefficients to round-off, not only on the conditions."""

    def test_coefficients_match_reference(self):
        rng = np.random.default_rng(77)
        pos = _jittered_lattice(rng)
        h = np.full(len(pos), 1.3 * BOX / N_SIDE)

        results = {}
        for backend in BACKENDS:
            with xp.use_backend(backend):
                ctx = PairContext.build(pos, h, BOX)
                geo = compute_geometry(ctx, h)
                corr = compute_corrections(ctx, h, geo.volume)
            results[backend] = corr
        ref = results["numpy"]
        for backend, corr in results.items():
            np.testing.assert_allclose(
                corr.a, ref.a, rtol=1e-9, err_msg=f"a on {backend}"
            )
            np.testing.assert_allclose(
                corr.b, ref.b, rtol=1e-7, atol=1e-12, err_msg=f"b on {backend}"
            )
