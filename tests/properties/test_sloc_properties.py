"""Property-based tests for the SLOC analyser's condition language."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.sloc import evaluate_condition

names = st.sampled_from(["A", "B", "C", "HACC_GPU_SYCL", "HACC_GPU_CUDA"])
define_sets = st.frozensets(names, max_size=5)


@st.composite
def conditions(draw, depth=0):
    """Random well-formed guard expressions."""
    if depth > 2:
        return f"defined({draw(names)})"
    kind = draw(st.sampled_from(["leaf", "not", "and", "or", "paren"]))
    if kind == "leaf":
        return f"defined({draw(names)})"
    if kind == "not":
        return "!" + draw(conditions(depth=depth + 1))
    if kind == "paren":
        return "(" + draw(conditions(depth=depth + 1)) + ")"
    op = "&&" if kind == "and" else "||"
    left = draw(conditions(depth=depth + 1))
    right = draw(conditions(depth=depth + 1))
    return f"{left} {op} {right}"


class TestConditionProperties:
    @given(conditions(), define_sets)
    def test_total_function(self, condition, defines):
        # every generated condition evaluates without error to a bool
        assert evaluate_condition(condition, defines) in (True, False)

    @given(conditions(), define_sets)
    def test_double_negation(self, condition, defines):
        assert evaluate_condition(f"!(!({condition}))", defines) == evaluate_condition(
            condition, defines
        )

    @given(conditions(), conditions(), define_sets)
    def test_de_morgan(self, p, q, defines):
        lhs = evaluate_condition(f"!(({p}) && ({q}))", defines)
        rhs = evaluate_condition(f"!({p}) || !({q})", defines)
        assert lhs == rhs

    @given(conditions(), define_sets)
    def test_or_with_true_is_true(self, condition, defines):
        assert evaluate_condition(f"1 || ({condition})", defines)

    @given(conditions(), define_sets)
    def test_and_with_false_is_false(self, condition, defines):
        assert not evaluate_condition(f"0 && ({condition})", defines)

    @given(names, define_sets)
    def test_defined_matches_membership(self, name, defines):
        assert evaluate_condition(f"defined({name})", defines) == (name in defines)
