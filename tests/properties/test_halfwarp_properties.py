"""Property-based tests for the half-warp algorithm and variants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels.halfwarp import (
    gravity_pair_function,
    reference_all_pairs,
    run_halfwarp,
)
from repro.kernels.variants import ALL_VARIANTS

leaf_sizes = st.sampled_from([4, 8, 16])


@st.composite
def leaf_pair(draw):
    half = draw(leaf_sizes)
    payload = hnp.arrays(
        dtype=np.float64,
        shape=(4, half),
        elements=st.floats(0.1, 10.0, allow_nan=False),
    )
    return draw(payload), draw(payload)


@settings(max_examples=25, deadline=None)
@given(leaf_pair(), st.sampled_from([v.name for v in ALL_VARIANTS]))
def test_every_variant_matches_reference_on_random_leaves(case, variant_name):
    from repro.kernels.variants import variant_by_name

    a, b = case
    fn = gravity_pair_function(softening=0.1)
    ref = reference_all_pairs(a, b, fn)
    res = run_halfwarp(a, b, fn, variant_by_name(variant_name))
    assert np.allclose(res.leaf_a, ref.leaf_a, rtol=1e-10)
    assert np.allclose(res.leaf_b, ref.leaf_b, rtol=1e-10)


@settings(max_examples=25, deadline=None)
@given(leaf_pair(), st.sampled_from(["xor", "butterfly"]))
def test_schedules_agree(case, schedule):
    from repro.kernels.variants import variant_by_name

    a, b = case
    fn = gravity_pair_function(softening=0.1)
    xor = run_halfwarp(a, b, fn, variant_by_name("select"), schedule="xor")
    other = run_halfwarp(a, b, fn, variant_by_name("select"), schedule=schedule)
    assert np.allclose(xor.leaf_a, other.leaf_a)
    assert np.allclose(xor.leaf_b, other.leaf_b)


@settings(max_examples=25, deadline=None)
@given(leaf_pair())
def test_antisymmetric_pair_function_cancels(case):
    """An antisymmetric contribution f(i,j) = -f(j,i) must sum to zero
    over both leaves -- the conservation property the pair-wise
    symmetry of the schedule guarantees."""
    from repro.kernels.variants import variant_by_name

    a, b = case

    def antisym(own, other):
        return own[0] - other[0]

    res = run_halfwarp(a, b, antisym, variant_by_name("select"))
    total = res.leaf_a.sum() + res.leaf_b.sum()
    scale = np.abs(res.leaf_a).sum() + np.abs(res.leaf_b).sum() + 1e-300
    assert abs(total) < 1e-9 * max(scale, 1.0)
