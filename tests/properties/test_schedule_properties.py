"""Property-based tests for leaf scheduling and checkpoints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hacc.tree import RCBTree
from repro.kernels.leaf_schedule import build_schedule, execute_schedule
from repro.kernels.variants import variant_by_name


@st.composite
def particle_clouds(draw):
    n = draw(st.integers(8, 60))
    pos = draw(
        hnp.arrays(
            np.float64,
            (n, 3),
            elements=st.floats(0.0, 3.0, allow_nan=False, allow_infinity=False),
        )
    )
    return pos


class TestScheduleProperties:
    @given(particle_clouds())
    @settings(max_examples=20, deadline=None)
    def test_every_unordered_pair_counted_once(self, pos):
        """With a cutoff covering the whole cloud, the schedule touches
        each particle pair exactly once per accumulating side."""
        tree = RCBTree.build(pos, leaf_size=8)
        schedule = build_schedule(tree, cutoff=10.0, subgroup_size=16)

        def count_fn(own, other):
            return np.ones(own.shape[-1])

        counts = execute_schedule(
            schedule, pos.T.copy(), count_fn, variant_by_name("select")
        )
        assert np.allclose(counts, len(pos) - 1)

    @given(particle_clouds(), st.sampled_from(["select", "memory_object", "broadcast"]))
    @settings(max_examples=15, deadline=None)
    def test_symmetric_function_total_is_symmetric(self, pos, variant_name):
        tree = RCBTree.build(pos, leaf_size=8)
        schedule = build_schedule(tree, cutoff=10.0, subgroup_size=16)

        def sym_fn(own, other):
            d = own - other
            return np.einsum("fl,fl->l", d, d)

        result = execute_schedule(
            schedule, pos.T.copy(), sym_fn, variant_by_name(variant_name)
        )
        # brute-force symmetric total
        d = pos[:, None, :] - pos[None, :, :]
        r2 = np.einsum("abi,abi->ab", d, d)
        np.fill_diagonal(r2, 0.0)
        expected = r2.sum(axis=1)
        assert np.allclose(result, expected, rtol=1e-9, atol=1e-9)

    @given(particle_clouds())
    @settings(max_examples=15, deadline=None)
    def test_lane_efficiency_bounded(self, pos):
        tree = RCBTree.build(pos, leaf_size=8)
        schedule = build_schedule(tree, cutoff=10.0, subgroup_size=16)
        assert 0.0 < schedule.lane_efficiency <= 1.0


class TestCheckpointProperties:
    @given(
        st.integers(4, 30),
        st.floats(1.0, 20.0),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_save_load_roundtrip(self, n, box, seed):
        import tempfile
        from pathlib import Path

        from repro.hacc.checkpoint import KernelCheckpoint

        rng = np.random.default_rng(seed)
        ckpt = KernelCheckpoint(
            box=box,
            pos=rng.uniform(0, box, (n, 3)),
            vel=rng.normal(size=(n, 3)),
            mass=rng.uniform(0.5, 2.0, n),
            h=rng.uniform(0.1, 1.0, n),
            u=rng.uniform(0.0, 1.0, n),
            volume=rng.uniform(0.1, 1.0, n),
            rho=rng.uniform(0.5, 2.0, n),
            pressure=rng.uniform(0.0, 1.0, n),
            cs=rng.uniform(0.1, 1.0, n),
        )
        path = Path(tempfile.mkdtemp(prefix="ckpt-")) / "state.npz"
        ckpt.save(path)
        loaded = KernelCheckpoint.load(path)
        assert loaded.box == ckpt.box
        for field in ("pos", "vel", "mass", "h", "u", "volume", "rho", "pressure", "cs"):
            assert np.array_equal(getattr(loaded, field), getattr(ckpt, field))
