"""Tests for the MPI_wtime-style bracket timers."""

import pytest

from repro.machine.cost_model import InstructionProfile, KernelLaunch
from repro.machine.executor import DeviceExecutor
from repro.machine.registry import FRONTIER
from repro.timers import TimerRegistry, validate_against_profiler


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestBracketTimers:
    def test_bracket_accumulates(self):
        clock = FakeClock()
        timers = TimerRegistry(clock)
        timers.start("a")
        clock.t = 1.5
        timers.stop("a")
        timers.start("a")
        clock.t = 2.0
        timers.stop("a")
        assert timers.total("a") == pytest.approx(2.0)
        assert timers.calls("a") == 2

    def test_context_manager(self):
        clock = FakeClock()
        timers = TimerRegistry(clock)
        with timers.bracket("x"):
            clock.t = 3.0
        assert timers.total("x") == pytest.approx(3.0)

    def test_double_start_rejected(self):
        timers = TimerRegistry(FakeClock())
        timers.start("a")
        with pytest.raises(RuntimeError, match="'a' already running"):
            timers.start("a")

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="'never' is not running"):
            TimerRegistry(FakeClock()).stop("never")

    def test_report_sorted_by_total(self):
        clock = FakeClock()
        timers = TimerRegistry(clock)
        with timers.bracket("small"):
            clock.t += 1.0
        with timers.bracket("big"):
            clock.t += 5.0
        report = timers.report()
        assert [r["timer"] for r in report] == ["big", "small"]
        assert report[0]["mean_s"] == pytest.approx(5.0)

    def test_unknown_timer_reads_zero(self):
        timers = TimerRegistry(FakeClock())
        assert timers.total("nothing") == 0.0


class TestRecorderAdapter:
    """The registry doubles as a thin adapter over the span recorder."""

    def test_brackets_emit_timer_spans(self):
        from repro.observability import TraceRecorder

        clock = FakeClock()
        clock.t = 10.0  # a non-zero epoch: spans are epoch-relative
        recorder = TraceRecorder()
        timers = TimerRegistry(clock, recorder=recorder)
        with timers.bracket("upGeo"):
            clock.t += 2.0
        (span,) = recorder.spans
        assert span.name == "upGeo"
        assert span.category == "timer"
        assert span.start == pytest.approx(0.0)
        assert span.duration == pytest.approx(2.0)
        assert span.duration == pytest.approx(timers.total("upGeo"))

    def test_attach_recorder_after_construction(self):
        from repro.observability import TraceRecorder

        clock = FakeClock()
        timers = TimerRegistry(clock)
        with timers.bracket("before"):
            clock.t += 1.0
        recorder = TraceRecorder()
        timers.attach_recorder(recorder)
        with timers.bracket("after"):
            clock.t += 1.0
        assert [s.name for s in recorder.spans] == ["after"]

    def test_over_executor_spans_on_simulated_timeline(self):
        from repro.observability import TraceRecorder

        executor = DeviceExecutor(FRONTIER)
        recorder = TraceRecorder()
        timers = TimerRegistry.over_executor(executor, recorder=recorder)
        profile = InstructionProfile(fma=500.0, registers_needed=32)
        launch = KernelLaunch(n_workitems=1 << 16, subgroup_size=64)
        with timers.bracket("upGeo"):
            executor.submit("upGeo", profile, launch)
        (span,) = recorder.spans
        assert span.duration == pytest.approx(executor.total_seconds())


class TestProfilerValidation:
    """The Section 3.4.4 rocprof cross-check, in miniature."""

    def _run(self, bracket_correctly=True):
        executor = DeviceExecutor(FRONTIER)
        timers = TimerRegistry.over_executor(executor)
        profile = InstructionProfile(fma=500.0, registers_needed=32)
        launch = KernelLaunch(n_workitems=1 << 16, subgroup_size=64)
        for name in ("upGeo", "upCor"):
            if bracket_correctly:
                with timers.bracket(name):
                    executor.submit(name, profile, launch)
            else:
                executor.submit(name, profile, launch)  # missed bracket
        return timers, executor

    def test_brackets_agree_with_profiler(self):
        timers, executor = self._run()
        diffs = validate_against_profiler(timers, executor)
        assert all(d <= 1e-9 for d in diffs.values())

    def test_missing_bracket_detected(self):
        timers, executor = self._run(bracket_correctly=False)
        with pytest.raises(ValueError):
            validate_against_profiler(timers, executor)

    def test_total_gpu_bracket(self):
        # the CRK-HACC timer that brackets *all* offloaded operations
        executor = DeviceExecutor(FRONTIER)
        timers = TimerRegistry.over_executor(executor)
        profile = InstructionProfile(fma=500.0, registers_needed=32)
        launch = KernelLaunch(n_workitems=1 << 16, subgroup_size=64)
        with timers.bracket("gpu_total"):
            for name in ("upGeo", "upCor", "upBarEx"):
                executor.submit(name, profile, launch)
        assert timers.total("gpu_total") == pytest.approx(executor.total_seconds())
