"""Integration: the 8-rank production layout end to end.

Mirrors the paper's node configuration (Section 3.4.2): one MPI rank
per accelerator slice, a 2x2x2 domain decomposition with overloaded
ghost zones, per-rank workloads priced on the rank's device slice.
"""

import numpy as np
import pytest

from repro.hacc.ic import ICConfig, zeldovich_ics
from repro.hacc.mpi_sim import DomainDecomposition, SimWorld
from repro.hacc.short_range import ShortRangeSolver
from repro.kernels.adiabatic import price_trace
from repro.machine.registry import all_devices
from repro.proglang.model import ProgrammingModel


@pytest.fixture(scope="module")
def decomposed():
    particles = zeldovich_ics(ICConfig(n_per_side=10, box=177.0 * 10 / 512, seed=42))
    decomp = DomainDecomposition.cubic(
        particles.box, 8, overload=0.08 * particles.box
    )
    owned = decomp.split(particles)
    merged = decomp.exchange_overload(owned)
    return particles, decomp, owned, merged


class TestDecomposedWorkload:
    def test_balanced_early_universe(self, decomposed):
        particles, _decomp, owned, _merged = decomposed
        counts = np.array([len(p) for p in owned])
        # near-uniform ICs decompose near-evenly across 8 ranks
        assert counts.sum() == len(particles)
        assert counts.max() / counts.min() < 1.3

    def test_ghost_zones_complete_short_range_work(self, decomposed):
        particles, decomp, owned, merged = decomposed
        box = particles.box
        cutoff = decomp.overload  # short-range reach == overload width
        solver = ShortRangeSolver(box, r_s=cutoff / 4.5, cutoff=cutoff)

        # global interaction count
        global_pairs = solver.interaction_count(particles)

        # per-rank: count only pairs whose *i* side is owned
        total_local = 0
        for r in range(8):
            local = merged[r]
            n_owned = len(owned[r])
            i, _j = __import__(
                "repro.hacc.neighbors", fromlist=["find_pairs"]
            ).find_pairs(local.positions, box, cutoff)
            total_local += int((i < n_owned).sum())
        # ghosts make every owned particle's neighbourhood complete:
        # summing owned-side pairs over ranks recovers the global count
        assert total_local == global_pairs

    def test_collective_workload_summary(self, decomposed):
        _particles, _decomp, owned, _merged = decomposed
        world = SimWorld(8)

        def fn(comm):
            mine = len(owned[comm.Get_rank()])
            return comm.allreduce(mine), comm.allreduce(mine, op="max")

        results = world.run(fn)
        totals = {r[0] for r in results}
        assert len(totals) == 1  # every rank agrees on the reduction

    def test_per_rank_pricing_on_every_system(self, decomposed, reference_trace):
        # the same rank workload prices on each system's device slice
        for device in all_devices():
            report = price_trace(
                reference_trace, device, ProgrammingModel.SYCL, "memory_object"
            )
            assert report.total_seconds > 0
