"""Smoke tests: the shipped examples run to completion.

Each example is executed in-process (importing its ``main``) with
stdout captured, so a broken public API surfaces here before a user
hits it.  The two long-running studies are exercised through their
underlying entry points elsewhere (experiments tests); the quick
examples run whole.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesPresent:
    def test_at_least_five_examples_ship(self):
        scripts = sorted(p.stem for p in EXAMPLES.glob("*.py"))
        assert "quickstart" in scripts
        assert len(scripts) >= 5

    def test_every_example_has_a_main(self):
        for path in EXAMPLES.glob("*.py"):
            module = load_example(path.stem)
            assert hasattr(module, "main"), path.name


class TestQuickExamplesRun:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Performance portability" in out
        assert "PP = 0.000" in out  # the vISA zero

    def test_migrate_kernels(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["migrate_kernels.py"])
        load_example("migrate_kernels").main()
        out = capsys.readouterr().out
        assert "DPCT1026" in out
        assert "UpdateGeometryKernel" in out

    def test_standalone_kernels(self, capsys):
        load_example("standalone_kernels").main()
        out = capsys.readouterr().out
        assert "Standalone kernel replays" in out
        assert "Register-control sweep" in out

    @pytest.mark.timeout(120)
    def test_degraded_run(self, capsys):
        load_example("degraded_run").main()
        out = capsys.readouterr().out
        assert "finished on 6" in out
        assert "step 1: shrink" in out
        assert "step 2: shrink" in out
        assert "matches the fault-free reference exactly" in out

    @pytest.mark.timeout(120)
    def test_health_monitoring(self, capsys):
        load_example("health_monitoring").main()
        out = capsys.readouterr().out
        assert "Leak detected" in out
        assert "ewma-drift" in out
        assert "Rolled back to the step-3 checkpoint" in out
        assert "leak -> EWMA alert -> rollback -> clean finish" in out
