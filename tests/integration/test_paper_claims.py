"""Integration regression: the paper's quantitative claims.

These tests freeze the reproduction's calibration against the paper's
evaluation.  Tolerances are deliberately wide enough to survive small
workload fluctuations (different neighbour statistics at the scaled
problem size) but tight enough that a regression in any model
component breaks them.

Paper-vs-measured values are catalogued in EXPERIMENTS.md.
"""

import pytest

from repro.core.cascade import cascade_data
from repro.experiments import figure2, figures9_11
from repro.kernels.specs import HOTSPOT_TIMERS


@pytest.fixture(scope="module")
def cascade(reference_trace):
    return cascade_data(reference_trace)


@pytest.fixture(scope="module")
def efficiency_tables(reference_trace):
    return figures9_11.generate(reference_trace)


class TestFigure2Claims:
    @pytest.fixture(scope="class")
    def checks(self, reference_trace):
        return figure2.headline_checks(figure2.generate(reference_trace))

    def test_initial_sycl_beats_default_cuda(self, checks):
        # "SYCL significantly outperforming both CUDA on Polaris and
        # HIP on Frontier" (fast-math defaults, Section 4.4)
        assert checks["cuda_over_sycl_initial"] > 1.15
        assert checks["hip_over_sycl_initial"] > 1.15

    def test_fast_math_closes_the_gap(self, checks):
        # "Recompiling the CUDA and HIP codes with fast math flags
        # closes this gap ... the SYCL code is slightly faster"
        assert 1.0 <= checks["cuda_fast_over_sycl"] < 1.06
        assert 1.0 <= checks["hip_fast_over_sycl"] < 1.06

    def test_optimized_aurora_in_line_with_frontier(self, reference_trace):
        # "the theoretical peaks for the GPUs on Aurora and Frontier are
        # very similar ... using one of the variants more suited to the
        # architecture of Intel GPUs delivers performance more in line
        # with peak performance (and closes the gap ...)"
        from repro.kernels.adiabatic import best_variant_map, price_trace
        from repro.machine.registry import AURORA, FRONTIER
        from repro.proglang.model import ProgrammingModel

        best_aurora = best_variant_map(
            reference_trace, AURORA, ProgrammingModel.SYCL
        )
        aurora = price_trace(
            reference_trace, AURORA, ProgrammingModel.SYCL, best_aurora
        ).total_seconds
        frontier = price_trace(
            reference_trace, FRONTIER, ProgrammingModel.SYCL, "select"
        ).total_seconds
        initial = price_trace(
            reference_trace, AURORA, ProgrammingModel.SYCL, "select"
        ).total_seconds
        # before optimization Aurora lags Frontier badly; after, the
        # gap is within ~40%
        assert initial / frontier > 2.0
        assert aurora / frontier < 1.4

    def test_aurora_optimization_factor(self, checks):
        # paper: 2.4x; the reproduction lands near 3x (the cost model
        # slightly overweights the indirect-access penalty) -- same
        # direction, same order
        assert 2.0 < checks["aurora_optimization_factor"] < 4.0


class TestFigures9to11Claims:
    def test_aurora_select_always_worst(self, efficiency_tables):
        table = efficiency_tables["Aurora"]
        for timer in HOTSPOT_TIMERS:
            assert table.worst_variant(timer) == "select", timer

    def test_aurora_no_single_best_variant(self, efficiency_tables):
        table = efficiency_tables["Aurora"]
        winners = {table.best_variant(t) for t in HOTSPOT_TIMERS}
        assert len(winners) >= 2

    def test_aurora_broadcast_wins_atomic_heavy_kernels(self, efficiency_tables):
        table = efficiency_tables["Aurora"]
        for timer in ("upBarAc", "upBarAcF", "upBarDu", "upBarDuF"):
            assert table.best_variant(timer) == "broadcast", timer

    def test_aurora_best_variant_gains_2_to_5x(self, efficiency_tables):
        # paper: "can improve performance by 2-5x"; the energy kernel
        # sits right at the 5x edge in the reproduction
        table = efficiency_tables["Aurora"]
        for timer in HOTSPOT_TIMERS:
            select_eff = table.efficiencies["select"][timer]
            assert 0.17 <= select_eff <= 0.52, (timer, select_eff)

    def test_polaris_select_always_best(self, efficiency_tables):
        table = efficiency_tables["Polaris"]
        for timer in HOTSPOT_TIMERS:
            assert table.best_variant(timer) == "select", timer

    def test_polaris_broadcast_10x_on_some_kernels(self, efficiency_tables):
        table = efficiency_tables["Polaris"]
        worst = min(table.efficiencies["broadcast"][t] for t in HOTSPOT_TIMERS)
        assert worst < 0.15  # "almost 10x slower in some cases"

    def test_polaris_memory_worst_on_register_heavy_kernels(self, efficiency_tables):
        table = efficiency_tables["Polaris"]
        for variant in ("memory32", "memory_object"):
            effs = table.efficiencies[variant]
            heavy = min(effs[t] for t in ("upBarDu", "upBarDuF"))
            light = max(effs[t] for t in ("upGeo", "upCor"))
            assert heavy < light

    def test_frontier_select_always_best(self, efficiency_tables):
        table = efficiency_tables["Frontier"]
        for timer in HOTSPOT_TIMERS:
            assert table.best_variant(timer) == "select", timer

    def test_frontier_memory_object_almost_always_second(self, efficiency_tables):
        table = efficiency_tables["Frontier"]
        second_count = 0
        for timer in HOTSPOT_TIMERS:
            ranked = sorted(
                table.efficiencies,
                key=lambda v: table.efficiencies[v][timer],
                reverse=True,
            )
            if ranked[1] == "memory_object":
                second_count += 1
        assert second_count >= len(HOTSPOT_TIMERS) - 1

    def test_frontier_broadcast_around_0_6(self, efficiency_tables):
        table = efficiency_tables["Frontier"]
        effs = [table.efficiencies["broadcast"][t] for t in HOTSPOT_TIMERS]
        mean = sum(effs) / len(effs)
        assert 0.45 < mean < 0.75  # "typically ~0.6"


class TestFigure12Claims:
    """PP values (paper value in parentheses)."""

    def test_nonportable_configs_zero(self, cascade):
        assert cascade.pp["CUDA"] == 0.0
        assert cascade.pp["HIP"] == 0.0
        assert cascade.pp["vISA"] == 0.0

    def test_broadcast_pp(self, cascade):  # 0.44
        assert cascade.pp["SYCL (Broadcast)"] == pytest.approx(0.44, abs=0.07)

    def test_memory_object_pp(self, cascade):  # 0.79
        assert cascade.pp["SYCL (Memory, Object)"] == pytest.approx(0.79, abs=0.07)

    def test_select_memory_pp(self, cascade):  # 0.91
        assert cascade.pp["SYCL (Select + Memory)"] == pytest.approx(0.91, abs=0.05)

    def test_select_visa_pp(self, cascade):  # 0.96
        assert cascade.pp["SYCL (Select + vISA)"] == pytest.approx(0.96, abs=0.04)

    def test_unified_pp(self, cascade):  # 0.90
        assert cascade.pp["Unified"] == pytest.approx(0.90, abs=0.05)

    def test_specialisation_beats_single_source(self, cascade):
        # the Section 6.1 conclusion: mixing variants lifts PP
        single_best = max(
            cascade.pp[name]
            for name in (
                "SYCL (Select)",
                "SYCL (Memory, 32-bit)",
                "SYCL (Memory, Object)",
                "SYCL (Broadcast)",
            )
        )
        assert cascade.pp["SYCL (Select + Memory)"] > single_best
        assert cascade.pp["SYCL (Select + vISA)"] > single_best

    def test_specialised_sycl_beats_unified(self, cascade):
        # "higher than the performance portability ... from mixing
        # CUDA, HIP and SYCL"
        assert cascade.pp["SYCL (Select + vISA)"] > cascade.pp["Unified"]
