"""Chaos-soak tests: seeded random fault plans must terminate cleanly.

The termination invariant under test (ISSUE acceptance): every chaos
run either completes with physics matching the fault-free reference,
or aborts cleanly with a coherent attempt history — and never hangs
(the suite watchdog in ``conftest.py`` enforces the last part).
"""

import pytest

from repro.resilience.chaos import (
    ChaosOutcome,
    random_fault_plan,
    run_chaos_plan,
    soak,
)

pytestmark = pytest.mark.faults


class TestFaultPlanGenerator:
    def test_deterministic_for_fixed_seed(self):
        a = random_fault_plan(11)
        b = random_fault_plan(11)
        assert a.describe() == b.describe()

    def test_distinct_seeds_vary(self):
        plans = {random_fault_plan(seed).describe() for seed in range(12)}
        assert len(plans) > 1

    def test_specs_stay_in_bounds(self):
        for seed in range(20):
            plan = random_fault_plan(seed, world_size=3, n_steps=2, max_faults=2)
            assert 1 <= len(plan.faults) <= 2
            for spec in plan.faults:
                # -1 is the FaultSpec wildcard ("any rank" / "any step")
                assert -1 <= spec.rank < 3
                assert -1 <= spec.step < 2


class TestSingleRuns:
    @pytest.mark.timeout(120)
    def test_kill_plan_completes_or_aborts_cleanly(self, tmp_path):
        outcome = run_chaos_plan(2, checkpoint_root=tmp_path)
        assert isinstance(outcome, ChaosOutcome)
        assert outcome.ok, outcome.describe()

    @pytest.mark.timeout(120)
    def test_outcome_reproducible_modulo_timing(self, tmp_path):
        first = run_chaos_plan(5, checkpoint_root=tmp_path / "a")
        second = run_chaos_plan(5, checkpoint_root=tmp_path / "b")
        assert first.status == second.status
        assert first.attempts == second.attempts
        assert first.shrinks == second.shrinks


@pytest.mark.timeout(1800)
class TestSoakAcceptance:
    def test_thirty_plans_hold_the_invariant(self):
        """Acceptance: >= 30 seeded chaos plans all terminate cleanly
        under the shrink ladder (in-memory buddy tier only)."""
        report = soak(30, base_seed=0, degrade_policy="shrink")
        assert len(report.outcomes) == 30
        assert report.invariant_ok, report.summary()
        # the sweep must actually exercise both terminal states' logic:
        # most plans complete, and the sweep mixes degraded/clean runs
        assert report.n_completed + report.n_aborted == 30
        assert report.n_completed > 0

    def test_restart_ladder_soaks_clean_too(self):
        report = soak(8, base_seed=100, degrade_policy="restart")
        assert report.invariant_ok, report.summary()
        # the restart ladder never shrinks the world
        assert all(o.shrinks == 0 for o in report.outcomes)
