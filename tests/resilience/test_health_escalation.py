"""Health alerts escalating through the resilience rollback path.

The acceptance scenario of the telemetry pipeline: an injected slow
energy leak is detected by the EWMA drift monitor and escalated into
the runner's checkpoint/rollback machinery *before* the run ends —
many steps before the ``RunValidator``'s coarse ``conservation`` band
would hard-fail the finished run.
"""

from __future__ import annotations

import pytest

from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.hacc.validation import RunValidator, Severity
from repro.observability import MetricsRegistry, TraceRecorder
from repro.observability.health import (
    ENERGY_DRIFT,
    HealthEscalation,
    HealthPolicy,
)
from repro.resilience import FaultPlan, run_simulation
from repro.resilience.runner import SimulationAborted


def small_config(n_steps: int = 8) -> SimulationConfig:
    return SimulationConfig(n_per_side=6, pm_mesh=8, n_steps=n_steps)


LEAK = "leak:step=3,rate=0.12,count=3"


class TestLeakEscalationRoundTrip:
    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("ckpts")
        return run_simulation(
            small_config(),
            world_size=2,
            timeout=30.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse(LEAK),
            health=HealthPolicy(),
            metrics=MetricsRegistry(),
            tracer=TraceRecorder(),
        )

    def test_run_recovers_and_validates(self, result):
        assert result.ok
        assert result.recovered
        assert len(result.attempts) == 2

    def test_first_attempt_failed_on_health_escalation(self, result):
        first = result.attempts[0]
        assert first.outcome == "failed"
        assert "HealthEscalation" in first.failure

    def test_alert_detected_the_leak_at_its_first_step(self, result):
        assert len(result.health_alerts) >= 1
        alert = result.health_alerts[0]
        assert alert.series == ENERGY_DRIFT
        assert alert.severity is Severity.FATAL
        assert alert.detector == "ewma-drift"
        assert alert.step == 3  # the leak's first step, not its last

    def test_restart_rolled_back_before_the_leak(self, result):
        second = result.attempts[1]
        assert second.outcome == "completed"
        assert second.restarted_from_step == 3  # pre-leak checkpoint

    def test_detection_precedes_validator_hard_fail(self, result):
        """The monitor catches one 12% leaked step; the validator's
        hard band (50% cumulative) would need several — the alert step
        must come first, and the *recovered* run must not trip the
        band at all."""
        alert_step = result.health_alerts[0].step
        leaked_fraction_at_alert = 1 - (1 - 0.12) ** (alert_step - 3 + 1)
        assert leaked_fraction_at_alert < RunValidator.CONSERVATION_BAND
        report = RunValidator(result.driver).validate(checks=["conservation"])
        assert report.ok

    def test_final_monitor_is_clean(self, result):
        """The recovered attempt's own monitor saw no leak (the fired
        fault was cancelled on restart)."""
        assert result.health_monitor is not None
        assert result.health_monitor.alerts == []
        drift = result.health_monitor.series(ENERGY_DRIFT).values
        assert drift and all(v > -1e-9 for v in drift)


class TestUnrecoverableLeak:
    def test_leak_without_checkpoints_aborts_with_history(self, tmp_path):
        """No checkpoint dir: every attempt replays from step 0, but
        the leak window has been cancelled after firing once, so the
        retry completes — unless retries are exhausted first."""
        from repro.resilience.guards import RetryPolicy

        with pytest.raises(SimulationAborted) as excinfo:
            run_simulation(
                small_config(6),
                world_size=1,
                timeout=30.0,
                retry_policy=RetryPolicy(max_retries=0),
                fault_plan=FaultPlan.parse(LEAK),
                health=HealthPolicy(),
            )
        (attempt,) = excinfo.value.attempts
        assert "HealthEscalation" in attempt.failure


class TestValidatorConservationBackstop:
    def test_catastrophic_leak_trips_the_hard_band(self):
        """Without monitors, the end-of-run validator still refuses a
        run that leaked most of its thermal energy."""
        driver = AdiabaticDriver(small_config(4))
        driver.run()
        driver.particles.u[:] *= 1e-3
        from repro.hacc import eos

        eos.update_thermodynamics(driver.particles)
        # fake the last diagnostic reflecting the drained state
        driver.diagnostics.append(driver._diagnose(driver.diagnostics[-1].a))
        report = RunValidator(driver).validate(checks=["conservation"])
        assert not report.ok
        assert "leaking" in report.violations[0].message

    def test_default_severity_is_warn(self):
        """The health EWMA owns escalation; the validator's band only
        warns by default at the step gate."""
        from repro.resilience.guards import GuardPolicy

        assert GuardPolicy().severity["conservation"] is Severity.WARN


class TestEscalationDisabled:
    def test_warn_policy_records_without_rollback(self, tmp_path):
        """HealthPolicy(escalation=WARN): the leak is observed and
        logged but the run never rolls back."""
        result = run_simulation(
            small_config(6),
            world_size=1,
            timeout=30.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse(LEAK),
            health=HealthPolicy(escalation=Severity.WARN),
        )
        assert len(result.attempts) == 1
        assert result.health_alerts
        assert all(a.severity is Severity.WARN for a in result.health_alerts)


class TestDirectEscalation:
    def test_driver_level_monitor_raises(self):
        """Unit seam: a FATAL alert raises HealthEscalation out of
        monitor.escalate(), carrying the alerts."""
        monitor = HealthPolicy().build()
        for step, value in enumerate([0.001, 0.002, 0.003, -0.2, -0.25]):
            monitor.observe(ENERGY_DRIFT, step, value)
        with pytest.raises(HealthEscalation) as excinfo:
            monitor.escalate()
        assert excinfo.value.alerts[0].series == ENERGY_DRIFT
