"""Tests for the unified retry backoff (``repro.resilience.backoff``)."""

import pytest

from repro.observability import MetricsRegistry
from repro.resilience import BackoffPolicy, RetryPolicy


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        """Acceptance: backoff delays are a pure function of the seed."""
        a = BackoffPolicy(seed=42)
        b = BackoffPolicy(seed=42)
        assert a.schedule(8) == b.schedule(8)
        assert [a.delay_for(i) for i in range(8)] == list(b.schedule(8))

    def test_different_seeds_differ(self):
        assert BackoffPolicy(seed=1).schedule(6) != BackoffPolicy(seed=2).schedule(6)

    def test_attempts_are_independent_draws(self):
        # jitter for attempt k must not depend on earlier attempts
        policy = BackoffPolicy(seed=7)
        assert policy.delay_for(5) == BackoffPolicy(seed=7).delay_for(5)


class TestShape:
    def test_exponential_growth_until_cap(self):
        policy = BackoffPolicy(
            base_delay=0.1, factor=2.0, max_delay=0.8, jitter=0.0, seed=0
        )
        assert policy.schedule(5) == [0.1, 0.2, 0.4, 0.8, 0.8]

    def test_jitter_bounded(self):
        policy = BackoffPolicy(base_delay=1.0, factor=1.0, jitter=0.25, seed=3)
        for attempt in range(20):
            delay = policy.delay_for(attempt)
            assert 1.0 <= delay <= 1.25

    def test_budget_clamps_cumulative_sleep(self):
        policy = BackoffPolicy(
            base_delay=1.0, factor=2.0, max_delay=10.0, jitter=0.0, budget=4.0
        )
        schedule = policy.schedule(6)
        assert sum(schedule) == pytest.approx(4.0)
        # the clamp hits mid-schedule, then everything after is zero
        assert schedule[0] == 1.0
        assert schedule[-1] == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=-0.1)


class TestSleep:
    def test_sleep_uses_injected_sleeper_and_counts_metric(self):
        slept = []
        metrics = MetricsRegistry()
        policy = BackoffPolicy(base_delay=0.25, jitter=0.0, seed=0)
        policy.sleep(0, sleeper=slept.append, metrics=metrics)
        policy.sleep(1, sleeper=slept.append, metrics=metrics)
        assert slept == [0.25, 0.5]
        counter = metrics.counter("sim.resilience.backoff_seconds")
        assert counter.value == pytest.approx(0.75)

    def test_zero_delay_skips_sleeper(self):
        slept = []
        policy = BackoffPolicy(base_delay=1.0, jitter=0.0, budget=0.0)
        policy.sleep(0, sleeper=slept.append)
        assert slept == []


class TestRetryPolicyIntegration:
    def test_retry_policy_carries_a_backoff(self):
        policy = RetryPolicy(max_retries=2)
        assert isinstance(policy.backoff, BackoffPolicy)

    def test_custom_backoff_threads_through(self):
        backoff = BackoffPolicy(base_delay=0.01, seed=9)
        policy = RetryPolicy(max_retries=1, backoff=backoff)
        assert policy.backoff.schedule(3) == backoff.schedule(3)
