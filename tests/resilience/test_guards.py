"""Tests for the in-flight guards and the step-level validation gate."""

import numpy as np
import pytest

from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.hacc.validation import RunValidator, Severity
from repro.resilience.faults import FaultInjector, FaultSpec, plan_from_specs
from repro.resilience.guards import (
    GuardPolicy,
    GuardViolation,
    KernelGuard,
    RetryPolicy,
    StepGate,
    StepValidationError,
)


def tiny_driver(n_steps: int = 1) -> AdiabaticDriver:
    return AdiabaticDriver(SimulationConfig(n_per_side=5, pm_mesh=8, n_steps=n_steps))


class TestKernelGuard:
    def test_clean_outputs_pass(self):
        guard = KernelGuard()
        guard.screen("upGeo", 0, {"volume": np.ones(8)})
        assert guard.screened_kernels == 1

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_output_raises_same_step(self, bad):
        guard = KernelGuard()
        arr = np.ones(16)
        arr[5] = bad
        with pytest.raises(GuardViolation) as exc:
            guard.screen("upBarAc", 3, {"dv_dt": arr})
        assert exc.value.kernel == "upBarAc"
        assert exc.value.step == 3
        assert exc.value.n_bad == 1

    def test_screening_can_be_disabled(self):
        guard = KernelGuard(GuardPolicy(screen_kernels=False))
        guard.screen("upGeo", 0, {"volume": np.array([np.nan])})

    @pytest.mark.faults
    def test_installed_guard_catches_injected_nan_in_flight(self):
        """A NaN injected into a hot kernel output is caught by the
        screen during the very step it appears, not post-mortem."""
        driver = tiny_driver()
        injector = FaultInjector(
            plan_from_specs(
                [FaultSpec(kind="corrupt_kernel", kernel="upBarDu", step=0)]
            )
        )
        KernelGuard().install(driver, injector=injector, rank=0)
        schedule = driver.schedule()
        with pytest.raises(GuardViolation) as exc:
            driver.step(float(schedule[0]), float(schedule[1]))
        assert exc.value.kernel == "upBarDu"
        assert exc.value.step == 0
        # the step never completed
        assert driver.step_index == 0
        assert driver.diagnostics == []

    @pytest.mark.faults
    @pytest.mark.parametrize(
        "kernel", ["upGeo", "upCor", "upBarEx", "upBarAc", "upBarDu"]
    )
    def test_every_hot_kernel_is_screened(self, kernel):
        driver = tiny_driver()
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="corrupt_kernel", kernel=kernel, step=0)])
        )
        KernelGuard().install(driver, injector=injector, rank=0)
        schedule = driver.schedule()
        with pytest.raises(GuardViolation) as exc:
            driver.step(float(schedule[0]), float(schedule[1]))
        assert exc.value.kernel == kernel


class TestStepGate:
    def test_healthy_step_passes(self):
        driver = tiny_driver()
        driver.run()
        StepGate(driver).check(0)

    def test_fatal_violation_raises(self):
        driver = tiny_driver()
        driver.run()
        driver.particles.arrays["mass"][0] = -1.0
        with pytest.raises(StepValidationError, match="mass"):
            StepGate(driver).check(0)

    def test_warn_severity_accumulates(self):
        driver = tiny_driver()
        driver.run()
        # NaN trips only the mass audit (a NaN momentum drift compares
        # False against the tolerance), so severity routing is isolated
        driver.particles.arrays["mass"][0] = np.nan
        policy = GuardPolicy(severity={"mass": Severity.WARN})
        gate = StepGate(driver, policy)
        gate.check(0)
        assert [v.check for v in gate.warnings] == ["mass"]

    def test_ignore_severity_skips_check(self):
        driver = tiny_driver()
        driver.run()
        driver.particles.arrays["mass"][0] = np.nan
        policy = GuardPolicy(severity={"mass": Severity.IGNORE})
        gate = StepGate(driver, policy)
        gate.check(0)
        assert gate.warnings == []

    def test_gate_covers_all_validator_checks_by_default(self):
        assert GuardPolicy().step_checks == RunValidator.CHECK_NAMES

    def test_step_checks_subset(self):
        driver = tiny_driver()
        driver.run()
        driver.particles.arrays["mass"][0] = -1.0
        policy = GuardPolicy(step_checks=("containment",))
        StepGate(driver, policy).check(0)  # mass not audited


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_retries == 3
        assert policy.tighten_cadence

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)


class TestValidatorCheckSelection:
    def test_subset_runs_only_requested(self):
        driver = tiny_driver()
        driver.run()
        report = RunValidator(driver).validate(checks=("mass", "containment"))
        assert report.checks_run == ["mass", "containment"]

    def test_unknown_check_rejected(self):
        driver = tiny_driver()
        driver.run()
        with pytest.raises(ValueError, match="unknown validation checks"):
            RunValidator(driver).validate(checks=("entropy",))
