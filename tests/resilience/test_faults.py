"""Tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.resilience.faults import (
    ANY_RANK,
    ANY_STEP,
    CheckpointWriteFault,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankKilled,
    plan_from_specs,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike")

    def test_corrupt_needs_kernel(self):
        with pytest.raises(ValueError, match="kernel="):
            FaultSpec(kind="corrupt_kernel")

    def test_corrupt_mode_validated(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultSpec(kind="corrupt_kernel", kernel="upGeo", mode="gamma_ray")

    def test_stall_duration_validated(self):
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(kind="stall_collective", duration=0.0)

    def test_wildcards_match(self):
        spec = FaultSpec(kind="kill_rank")
        assert spec.matches_rank(0) and spec.matches_rank(7)
        assert spec.matches_step(0) and spec.matches_step(99)

    def test_pinned_targets_match_exactly(self):
        spec = FaultSpec(kind="kill_rank", rank=3, step=1)
        assert spec.matches_rank(3) and not spec.matches_rank(2)
        assert spec.matches_step(1) and not spec.matches_step(0)


class TestFaultPlanParse:
    def test_parse_kill_and_corrupt(self):
        plan = FaultPlan.parse(
            "kill:rank=3,step=1;corrupt:kernel=upBarAc,step=2,mode=nan", seed=11
        )
        assert plan.seed == 11
        assert len(plan.faults) == 2
        kill, corrupt = plan.faults
        assert kill.kind == "kill_rank" and kill.rank == 3 and kill.step == 1
        assert corrupt.kind == "corrupt_kernel"
        assert corrupt.kernel == "upBarAc" and corrupt.mode == "nan"

    def test_parse_stall_and_ckptfail(self):
        plan = FaultPlan.parse(
            "stall:rank=2,collective=allreduce,duration=0.5;ckptfail:step=2"
        )
        stall, ckpt = plan.faults
        assert stall.kind == "stall_collective"
        assert stall.collective == "allreduce" and stall.duration == 0.5
        assert ckpt.kind == "fail_checkpoint" and ckpt.step == 2

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("gremlin:rank=1")

    def test_parse_rejects_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            FaultPlan.parse("kill:rank=1,voltage=9000")

    def test_empty_plan(self):
        assert FaultPlan.parse("").faults == ()
        assert "empty" in FaultPlan.parse("").describe()

    def test_describe_lists_every_event(self):
        plan = FaultPlan.parse("kill:rank=3,step=1;ckptfail:")
        text = plan.describe()
        assert "kill_rank" in text and "fail_checkpoint" in text


class TestFaultInjector:
    def test_kill_fires_once_on_target(self):
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="kill_rank", rank=3, step=1)])
        )
        injector.on_step_start(rank=3, step=0)  # wrong step: no fire
        injector.on_step_start(rank=2, step=1)  # wrong rank: no fire
        with pytest.raises(RankKilled) as exc:
            injector.on_step_start(rank=3, step=1)
        assert exc.value.rank == 3 and exc.value.step == 1
        # one-shot: the same fault never refires (post-recovery replay)
        injector.on_step_start(rank=3, step=1)
        assert len(injector.fired) == 1
        assert injector.armed == []

    def test_nan_corruption_is_deterministic(self):
        def corrupt(seed):
            injector = FaultInjector(
                plan_from_specs(
                    [FaultSpec(kind="corrupt_kernel", kernel="upGeo", count=3)],
                    seed=seed,
                )
            )
            arr = np.arange(32, dtype=np.float64)
            injector.corrupt_kernel("upGeo", step=0, rank=0, outputs={"v": arr})
            return np.nonzero(np.isnan(arr))[0]

        a, b = corrupt(5), corrupt(5)
        assert np.array_equal(a, b)
        assert len(a) == 3

    def test_inf_and_bitflip_modes(self):
        inf_inj = FaultInjector(
            plan_from_specs(
                [FaultSpec(kind="corrupt_kernel", kernel="k", mode="inf")]
            )
        )
        arr = np.ones(8)
        inf_inj.corrupt_kernel("k", 0, 0, {"v": arr})
        assert np.isinf(arr).sum() == 1

        flip_inj = FaultInjector(
            plan_from_specs(
                [FaultSpec(kind="corrupt_kernel", kernel="k", mode="bitflip")]
            )
        )
        arr = np.ones(8)
        flip_inj.corrupt_kernel("k", 0, 0, {"v": arr})
        # silent corruption: the value changes but typically stays finite
        assert (arr != 1.0).sum() == 1

    def test_corruption_requires_matching_kernel(self):
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="corrupt_kernel", kernel="upBarAc")])
        )
        arr = np.ones(4)
        assert injector.corrupt_kernel("upGeo", 0, 0, {"v": arr}) is None
        assert not np.isnan(arr).any()

    def test_checkpoint_write_fault_tears_tmp(self, tmp_path):
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="fail_checkpoint", step=2)])
        )
        tmp = tmp_path / "x.tmp"
        injector.fail_checkpoint_write(step=1, tmp_path=tmp)  # wrong step
        assert not tmp.exists()
        with pytest.raises(CheckpointWriteFault):
            injector.fail_checkpoint_write(step=2, tmp_path=tmp)
        assert tmp.exists()  # torn bytes landed in the temp file only

    def test_collective_hook_claims_stall(self):
        injector = FaultInjector(
            plan_from_specs(
                [
                    FaultSpec(
                        kind="stall_collective",
                        rank=1,
                        collective="allreduce",
                        duration=0.01,
                    )
                ]
            )
        )
        hook = injector.collective_hook()
        hook("barrier", 1)  # wrong collective
        hook("allreduce", 0)  # wrong rank
        assert injector.fired == []
        hook("allreduce", 1)
        assert len(injector.fired) == 1

    def test_summary_reports_fired_events(self):
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="kill_rank", rank=0, step=0)])
        )
        assert "nothing fired" in injector.summary()
        with pytest.raises(RankKilled):
            injector.on_step_start(0, 0)
        assert "kill_rank" in injector.summary()

    def test_wildcard_constants_exported(self):
        assert ANY_RANK == -1 and ANY_STEP == -1


class TestLeakFaults:
    def test_parse_leak(self):
        plan = FaultPlan.parse("leak:step=3,rate=0.12,count=3")
        (spec,) = plan.faults
        assert spec.kind == "leak_energy"
        assert spec.step == 3 and spec.rate == 0.12 and spec.count == 3

    def test_parse_leak_energy_alias(self):
        plan = FaultPlan.parse("leak_energy:step=1")
        assert plan.faults[0].kind == "leak_energy"
        assert plan.faults[0].rate == 0.05  # default

    def test_rate_validated(self):
        with pytest.raises(ValueError, match="leak rate"):
            FaultSpec(kind="leak_energy", rate=1.5)
        with pytest.raises(ValueError, match="leak rate"):
            FaultSpec(kind="leak_energy", rate=0.0)

    def test_count_validated(self):
        with pytest.raises(ValueError, match="step count"):
            FaultSpec(kind="leak_energy", count=0)

    def test_describe_shows_window(self):
        spec = FaultSpec(kind="leak_energy", step=3, rate=0.12, count=3)
        assert "rate=0.12" in spec.describe()
        assert "count=3" in spec.describe()

    def _driver(self):
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

        return AdiabaticDriver(SimulationConfig(n_per_side=4, pm_mesh=8))

    def test_drain_applies_only_inside_window(self):
        driver = self._driver()
        plan = plan_from_specs([FaultSpec(kind="leak_energy", step=2, rate=0.5, count=2)])
        injector = FaultInjector(plan)
        u_before = driver.particles.u.copy()
        assert not injector.drain_energy(driver, rank=0, step=1)
        np.testing.assert_array_equal(driver.particles.u, u_before)
        assert injector.drain_energy(driver, rank=0, step=2)
        np.testing.assert_allclose(driver.particles.u, 0.5 * u_before)
        assert injector.drain_energy(driver, rank=0, step=3)
        assert not injector.drain_energy(driver, rank=0, step=4)

    def test_drain_is_rank_agnostic_and_deterministic(self):
        """Replicated lockstep ranks must apply the identical drain, so
        the leak ignores rank targeting."""
        d0, d1 = self._driver(), self._driver()
        plan = plan_from_specs([FaultSpec(kind="leak_energy", step=1, rank=0, rate=0.2)])
        inj = FaultInjector(plan)
        assert inj.drain_energy(d0, rank=0, step=1)
        assert inj.drain_energy(d1, rank=1, step=1)
        np.testing.assert_array_equal(d0.particles.u, d1.particles.u)

    def test_drain_updates_thermodynamics(self):
        driver = self._driver()
        plan = plan_from_specs([FaultSpec(kind="leak_energy", step=0, rate=0.3)])
        pressure_before = driver.particles.pressure.copy()
        FaultInjector(plan).drain_energy(driver, rank=0, step=0)
        assert (driver.particles.pressure <= pressure_before).all()
        assert (driver.particles.pressure < pressure_before).any()

    def test_reset_transients_cancels_fired_leak_only(self):
        driver = self._driver()
        fired_spec = FaultSpec(kind="leak_energy", step=0, rate=0.1)
        armed_spec = FaultSpec(kind="leak_energy", step=5, rate=0.1)
        injector = FaultInjector(plan_from_specs([fired_spec, armed_spec]))
        assert injector.drain_energy(driver, rank=0, step=0)
        injector.reset_transients()
        # the fired leak is neutralised...
        assert not injector.drain_energy(driver, rank=0, step=0)
        # ...but the unfired one stays armed
        assert injector.drain_energy(driver, rank=0, step=5)

    def test_leak_fires_one_audit_record(self):
        driver = self._driver()
        plan = plan_from_specs([FaultSpec(kind="leak_energy", step=0, rate=0.1, count=3)])
        injector = FaultInjector(plan)
        for step in range(3):
            injector.drain_energy(driver, rank=0, step=step)
        assert len(injector.fired) == 1
        assert "leak window opened" in injector.fired[0].detail
