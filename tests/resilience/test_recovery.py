"""End-to-end recovery scenarios: the acceptance tests of the
resilience subsystem.

Every scenario is seeded and deterministic: the fault plan says which
rank dies (or which kernel emits NaNs) at which step, and the run must
recover from the last checkpoint and finish with a clean validation
report.
"""

import time

import numpy as np
import pytest

from repro.hacc.mpi_sim import RankFailure, SimWorld
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.resilience import (
    FaultPlan,
    RetryPolicy,
    SimulationAborted,
    run_simulation,
)

pytestmark = pytest.mark.faults


def small_config(n_steps: int = 3) -> SimulationConfig:
    return SimulationConfig(n_per_side=5, pm_mesh=8, n_steps=n_steps)


@pytest.fixture(scope="module")
def fault_free_driver():
    """The reference the recovered runs must reproduce."""
    driver = AdiabaticDriver(small_config())
    driver.run()
    return driver


@pytest.mark.timeout(120)
class TestRankKillRecovery:
    def test_survivors_raise_rankfailure_not_deadlock(self):
        """Kill rank 3 in an 8-rank world: every survivor's collective
        raises RankFailure promptly instead of blocking forever."""
        world = SimWorld(8, timeout=30.0)
        survivors_failed = []

        def fn(comm):
            rank = comm.Get_rank()
            if rank == 3:
                raise RuntimeError("injected node failure")
            try:
                comm.allreduce(rank)
            except RankFailure as exc:
                assert 3 in exc.failed_ranks
                survivors_failed.append(rank)
                raise
            raise AssertionError("collective with a dead rank completed")

        start = time.monotonic()
        with pytest.raises(RuntimeError, match="injected node failure"):
            world.run(fn)
        assert time.monotonic() - start < 10.0  # woken, not timed out
        assert sorted(survivors_failed) == [r for r in range(8) if r != 3]
        assert 3 in world.obituaries
        assert "injected node failure" in world.obituaries[3].reason

    def test_kill_rank3_midstep_recovers_and_validates(self, tmp_path):
        """Acceptance: rank 3 dies at step 1 of an 8-rank run; the run
        restarts from the last SimulationCheckpoint and completes with
        RunValidator.ok == True."""
        result = run_simulation(
            small_config(),
            world_size=8,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse("kill:rank=3,step=1", seed=7),
        )
        assert result.recovered
        assert result.ok, result.report.summary()
        assert result.driver.step_index == 3

        failed, completed = result.attempts
        assert failed.outcome == "failed"
        assert "RankKilled" in failed.failure
        assert 3 in failed.dead_ranks
        # the survivors died of the induced RankFailure, not a hang
        assert failed.dead_ranks == tuple(range(8))
        assert completed.outcome == "completed"
        assert completed.restarted_from_step == 1


@pytest.mark.timeout(120)
class TestNaNInjectionRecovery:
    def test_nan_caught_same_step_and_recovery_matches_fault_free(
        self, tmp_path, fault_free_driver
    ):
        """Acceptance: an injected NaN is caught by the step guard the
        same step, the retry budget holds, and the recovered run's
        conserved quantities match a fault-free run."""
        result = run_simulation(
            small_config(),
            world_size=4,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse(
                "corrupt:kernel=upBarAc,step=2,rank=2,mode=nan", seed=3
            ),
            retry_policy=RetryPolicy(max_retries=2),
        )
        assert result.recovered
        assert result.ok, result.report.summary()
        # caught in-flight: exactly one failed attempt, at the faulted step
        failed = result.attempts[0]
        assert "GuardViolation" in failed.failure
        assert "step 2" in failed.failure
        assert len(result.attempts) == 2  # one retry, within budget

        # conserved quantities match the fault-free reference exactly
        for ref, got in zip(
            fault_free_driver.diagnostics, result.driver.diagnostics
        ):
            assert got.kinetic_energy == ref.kinetic_energy
            assert got.thermal_energy == ref.thermal_energy
            np.testing.assert_array_equal(got.total_momentum, ref.total_momentum)

    def test_silent_bitflip_detected_by_replica_divergence(self, tmp_path):
        """A finite bitflip slips past the NaN screen but cannot slip
        past cross-rank agreement (or the step gate)."""
        result = run_simulation(
            small_config(),
            world_size=4,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            fault_plan=FaultPlan.parse(
                "corrupt:kernel=upBarAc,step=1,rank=1,mode=bitflip", seed=5
            ),
        )
        assert result.recovered
        assert result.ok, result.report.summary()


@pytest.mark.timeout(120)
class TestOtherFaultKinds:
    def test_stalled_collective_times_out_and_recovers(self, tmp_path):
        result = run_simulation(
            small_config(n_steps=2),
            world_size=4,
            timeout=1.0,
            checkpoint_dir=tmp_path,
            fault_plan=FaultPlan.parse(
                "stall:rank=2,collective=allgather,duration=4.0"
            ),
        )
        assert result.recovered
        assert result.ok
        assert "RankFailure" in result.attempts[0].failure

    def test_checkpoint_write_fault_does_not_kill_run(self, tmp_path):
        """Losing a checkpoint write is absorbed; the run continues."""
        result = run_simulation(
            small_config(n_steps=2),
            world_size=2,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            fault_plan=FaultPlan.parse("ckptfail:step=1"),
        )
        assert not result.recovered  # no restart was ever needed
        assert result.ok
        assert result.checkpoint_write_failures == 1
        # the final-step checkpoint still landed
        assert any(p.name == "sim-step0002.npz" for p in tmp_path.iterdir())

    def test_retry_budget_exhaustion_raises_aborted(self, tmp_path):
        with pytest.raises(SimulationAborted) as exc:
            run_simulation(
                small_config(n_steps=2),
                world_size=2,
                timeout=10.0,
                checkpoint_dir=tmp_path,
                fault_plan=FaultPlan.parse("kill:rank=1,step=0"),
                retry_policy=RetryPolicy(max_retries=0),
            )
        assert len(exc.value.attempts) == 1
        assert exc.value.attempts[0].outcome == "failed"


@pytest.mark.timeout(120)
class TestFaultFreePath:
    def test_clean_multirank_run_single_attempt(self, tmp_path, fault_free_driver):
        result = run_simulation(
            small_config(),
            world_size=4,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=2,
        )
        assert not result.recovered
        assert result.ok
        assert [rec.outcome for rec in result.attempts] == ["completed"]
        # replicated ranks reproduce the single-driver reference
        for ref, got in zip(
            fault_free_driver.diagnostics, result.driver.diagnostics
        ):
            assert got.kinetic_energy == ref.kinetic_energy

    def test_restart_from_checkpoint_file(self, tmp_path):
        """--restart-from: a checkpoint written by one run seeds the next."""
        first = run_simulation(
            small_config(),
            world_size=2,
            timeout=10.0,
            checkpoint_dir=tmp_path / "a",
            checkpoint_every=1,
        )
        ckpt_path = sorted((tmp_path / "a").glob("sim-step0002.npz"))[0]
        resumed = run_simulation(
            small_config(),
            world_size=2,
            timeout=10.0,
            restart_from=ckpt_path,
        )
        assert resumed.ok
        assert resumed.attempts[0].restarted_from_step == 2
        assert (
            resumed.driver.diagnostics[-1].kinetic_energy
            == first.driver.diagnostics[-1].kinetic_energy
        )


@pytest.mark.timeout(180)
class TestGracefulDegradation:
    """Shrink-and-continue acceptance: a kill finishes the run on a
    smaller world with exact physics, without restarting from disk."""

    def test_kill_completes_via_shrink_with_exact_physics(
        self, tmp_path, fault_free_driver
    ):
        """Acceptance: rank 3 dies at step 1 of an 8-rank run under the
        shrink ladder; the run completes in ONE attempt on 7 ranks and
        conserved quantities match the fault-free reference."""
        result = run_simulation(
            small_config(),
            world_size=8,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse("kill:rank=3,step=1", seed=7),
            degrade_policy="shrink",
        )
        assert result.ok, result.report.summary()
        assert result.degraded
        assert not result.recovered  # no restart happened
        assert len(result.attempts) == 1
        assert result.attempts[0].outcome == "degraded"
        assert result.final_world_size == 7
        (event,) = result.degradations
        assert event.action == "shrink"
        assert event.dead_ranks == (3,)
        assert sorted(event.survivors) == [r for r in range(8) if r != 3]
        for ref, got in zip(
            fault_free_driver.diagnostics, result.driver.diagnostics
        ):
            assert got.kinetic_energy == ref.kinetic_energy
            assert got.thermal_energy == ref.thermal_energy
            np.testing.assert_array_equal(got.total_momentum, ref.total_momentum)

    def test_two_kills_shrink_twice_without_disk(self, fault_free_driver):
        """Two separate node failures, no checkpoint directory at all:
        the buddy tier alone carries the run from 8 ranks down to 6."""
        result = run_simulation(
            small_config(),
            world_size=8,
            timeout=10.0,
            fault_plan=FaultPlan.parse("kill:rank=3,step=1;kill:rank=5,step=2", seed=7),
            degrade_policy="shrink",
            retry_policy=RetryPolicy(max_retries=1),
        )
        assert result.ok
        assert result.final_world_size == 6
        assert len(result.attempts) == 1
        assert [e.dead_ranks for e in result.degradations] == [(3,), (5,)]
        for ref, got in zip(
            fault_free_driver.diagnostics, result.driver.diagnostics
        ):
            assert got.kinetic_energy == ref.kinetic_energy

    def test_restart_policy_preserves_pre_degradation_behaviour(self, tmp_path):
        """The default ladder ("restart") must reproduce the historic
        two-attempt restart-from-checkpoint recovery exactly."""
        kwargs = dict(
            world_size=8,
            timeout=10.0,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse("kill:rank=3,step=1", seed=7),
        )
        implicit = run_simulation(
            small_config(), checkpoint_dir=tmp_path / "implicit", **kwargs
        )
        explicit = run_simulation(
            small_config(),
            checkpoint_dir=tmp_path / "explicit",
            degrade_policy="restart",
            **kwargs,
        )
        for result in (implicit, explicit):
            assert result.recovered and result.ok
            assert not result.degraded
            assert result.final_world_size == 8
            assert [rec.outcome for rec in result.attempts] == [
                "failed",
                "completed",
            ]
            assert result.attempts[1].restarted_from_step == 1

    def test_abort_policy_fails_fast_without_retrying(self, tmp_path):
        with pytest.raises(SimulationAborted) as exc:
            run_simulation(
                small_config(n_steps=2),
                world_size=2,
                timeout=10.0,
                checkpoint_dir=tmp_path,
                checkpoint_every=1,
                fault_plan=FaultPlan.parse("kill:rank=1,step=1"),
                degrade_policy="abort",
                retry_policy=RetryPolicy(max_retries=3),  # ladder overrides budget
            )
        assert len(exc.value.attempts) == 1

    def test_min_ranks_floor_falls_back_to_restart(self, tmp_path):
        """A shrink that would go below min_ranks is refused; the
        ladder's next rung (restart) recovers the run instead."""
        from repro.resilience import DegradationPolicy

        result = run_simulation(
            small_config(n_steps=2),
            world_size=2,
            timeout=10.0,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            fault_plan=FaultPlan.parse("kill:rank=1,step=1"),
            degrade_policy=DegradationPolicy.named("shrink", min_ranks=2),
        )
        assert result.ok
        assert result.recovered  # restarted, did not shrink to 1
        assert result.final_world_size == 2
        assert not result.degradations
