"""Tests for full-run checkpoint/restart (atomic, versioned, checksummed)."""

import numpy as np
import pytest

from repro.hacc.checkpoint import CheckpointError
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.resilience.faults import (
    CheckpointWriteFault,
    FaultInjector,
    FaultSpec,
    plan_from_specs,
)
from repro.resilience.restart import (
    SIM_FORMAT_VERSION,
    CheckpointManager,
    SimulationCheckpoint,
)


def small_config(n_steps: int = 3) -> SimulationConfig:
    return SimulationConfig(n_per_side=5, pm_mesh=8, n_steps=n_steps)


@pytest.fixture(scope="module")
def mid_run_driver():
    """A driver stopped after step 2 of 3."""
    driver = AdiabaticDriver(small_config())
    schedule = driver.schedule()
    driver.step(float(schedule[0]), float(schedule[1]))
    driver.step(float(schedule[1]), float(schedule[2]))
    return driver


@pytest.fixture
def checkpoint(mid_run_driver):
    return SimulationCheckpoint.capture(mid_run_driver)


class TestCaptureRestore:
    def test_captures_position_in_schedule(self, checkpoint, mid_run_driver):
        assert checkpoint.step_index == 2
        assert checkpoint.a == pytest.approx(float(mid_run_driver.schedule()[2]))

    def test_captures_both_species(self, checkpoint, mid_run_driver):
        assert len(checkpoint.particle_arrays["species"]) == len(
            mid_run_driver.particles
        )
        assert set(np.unique(checkpoint.particle_arrays["species"])) == {0, 1}

    def test_capture_copies_state(self, checkpoint, mid_run_driver):
        original = mid_run_driver.particles.arrays["x"][0]
        mid_run_driver.particles.arrays["x"][0] = original + 1.0
        assert checkpoint.particle_arrays["x"][0] != (
            mid_run_driver.particles.arrays["x"][0]
        )
        # restore bit-exactly: the driver is module-scoped
        mid_run_driver.particles.arrays["x"][0] = original

    def test_restored_drivers_are_independent(self, checkpoint):
        d1 = checkpoint.restore_driver()
        d2 = checkpoint.restore_driver()
        d1.particles.arrays["x"][0] += 1.0
        assert d2.particles.arrays["x"][0] != d1.particles.arrays["x"][0]

    def test_rng_state_round_trips(self, checkpoint, mid_run_driver):
        restored = checkpoint.restore_driver()
        assert (
            restored.rng.bit_generator.state == mid_run_driver.rng.bit_generator.state
        )

    def test_resumed_run_matches_uninterrupted_run(self, checkpoint):
        """The core restart guarantee: resume == never-stopped."""
        uninterrupted = AdiabaticDriver(small_config())
        uninterrupted.run()

        resumed = checkpoint.restore_driver()
        resumed.run()

        assert resumed.step_index == uninterrupted.step_index
        np.testing.assert_array_equal(
            resumed.particles.positions, uninterrupted.particles.positions
        )
        np.testing.assert_array_equal(
            resumed.particles.velocities, uninterrupted.particles.velocities
        )
        # trace and diagnostics also line up, so the validator's
        # timer-pattern audit passes on the resumed run
        assert len(resumed.trace.invocations) == len(uninterrupted.trace.invocations)
        assert [d.a for d in resumed.diagnostics] == [
            d.a for d in uninterrupted.diagnostics
        ]


class TestSaveLoad:
    def test_round_trip(self, checkpoint, tmp_path):
        path = checkpoint.save(tmp_path / "state.npz")
        loaded = SimulationCheckpoint.load(path)
        assert loaded.step_index == checkpoint.step_index
        assert loaded.a == checkpoint.a
        assert loaded.config == checkpoint.config
        assert loaded.rng_state == checkpoint.rng_state
        for name, arr in checkpoint.particle_arrays.items():
            np.testing.assert_array_equal(loaded.particle_arrays[name], arr)
        assert loaded.trace == checkpoint.trace

    def test_truncated_file_raises_checkpoint_error(self, checkpoint, tmp_path):
        path = checkpoint.save(tmp_path / "state.npz")
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointError, match="unreadable"):
            SimulationCheckpoint.load(path)

    def test_bitflip_detected_by_checksum(self, checkpoint, tmp_path):
        # corrupt a payload array and re-save with the stale checksum
        path = checkpoint.save(tmp_path / "state.npz")
        with np.load(path) as data:
            entries = {name: data[name].copy() for name in data.files}
        entries["part_x"] = entries["part_x"].copy()
        entries["part_x"][0] += 1e-9
        np.savez(path, **entries)
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            SimulationCheckpoint.load(path)

    def test_wrong_version_rejected(self, checkpoint, tmp_path):
        path = checkpoint.save(tmp_path / "state.npz")
        with np.load(path) as data:
            entries = {name: data[name].copy() for name in data.files}
        entries["version"] = np.int64(SIM_FORMAT_VERSION + 1)
        np.savez(path, **entries)
        with pytest.raises(CheckpointError, match="not supported"):
            SimulationCheckpoint.load(path)

    def test_kernel_checkpoint_not_accepted(self, tmp_path, checkpoint):
        np.savez(tmp_path / "other.npz", version=1, box=1.0)
        with pytest.raises(CheckpointError, match="not a simulation checkpoint"):
            SimulationCheckpoint.load(tmp_path / "other.npz")

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            SimulationCheckpoint.load(tmp_path / "absent.npz")


@pytest.mark.faults
class TestAtomicWrite:
    def test_injected_write_fault_never_shadows_valid_file(
        self, checkpoint, tmp_path
    ):
        """Acceptance: a fault during write never leaves a file that
        load accepts (temp + rename + checksum)."""
        path = checkpoint.save(tmp_path / "state.npz")
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="fail_checkpoint")])
        )
        with pytest.raises(CheckpointWriteFault):
            checkpoint.save(path, injector=injector)
        # the old file is untouched and still verifies
        loaded = SimulationCheckpoint.load(path)
        assert loaded.step_index == checkpoint.step_index
        # no torn temp or half-written npz lingers as a loadable file
        for candidate in path.parent.iterdir():
            if candidate == path:
                continue
            with pytest.raises(CheckpointError):
                SimulationCheckpoint.load(candidate)

    def test_write_fault_on_fresh_path_leaves_nothing_loadable(
        self, checkpoint, tmp_path
    ):
        target = tmp_path / "fresh.npz"
        injector = FaultInjector(
            plan_from_specs([FaultSpec(kind="fail_checkpoint")])
        )
        with pytest.raises(CheckpointWriteFault):
            checkpoint.save(target, injector=injector)
        assert not target.exists()


class TestCheckpointManager:
    def test_cadence(self, tmp_path):
        driver = AdiabaticDriver(small_config(n_steps=4))
        manager = CheckpointManager(tmp_path, every=2)
        driver.run(on_step=lambda d, diag: manager.maybe_save(d))
        steps = sorted(int(p.stem.removeprefix("sim-step")) for p in
                       tmp_path.glob("sim-step*.npz"))
        assert steps == [2, 4]

    def test_final_step_always_checkpointed(self, tmp_path):
        driver = AdiabaticDriver(small_config(n_steps=3))
        manager = CheckpointManager(tmp_path, every=2)
        driver.run(on_step=lambda d, diag: manager.maybe_save(d))
        steps = {int(p.stem.removeprefix("sim-step")) for p in
                 tmp_path.glob("sim-step*.npz")}
        assert 3 in steps

    def test_latest_skips_corrupt_files(self, tmp_path, checkpoint):
        import dataclasses

        manager = CheckpointManager(tmp_path)
        good = dataclasses.replace(checkpoint, step_index=1)
        good_path = good.save(manager.path_for(1))
        corrupt = manager.path_for(2)
        corrupt.write_bytes(good_path.read_bytes()[:64])
        latest = manager.latest()
        assert latest is not None and latest.step_index == 1

    def test_latest_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).latest() is None

    def test_latest_skips_stale_config(self, tmp_path, checkpoint):
        """A reused directory may hold checkpoints from an earlier run
        with a different schedule; recovery must not resume from
        those (regression: IndexError past the schedule end)."""
        manager = CheckpointManager(tmp_path)
        checkpoint.save(manager.path_for(2))
        other = small_config(n_steps=7)
        assert manager.latest(config=other) is None
        found = manager.latest(config=checkpoint.config)
        assert found is not None and found.step_index == checkpoint.step_index

    def test_prune_keeps_newest(self, tmp_path, checkpoint):
        manager = CheckpointManager(tmp_path, keep=2)
        import dataclasses

        for step in (1, 2, 3):
            dataclasses.replace(checkpoint, step_index=step).save(
                manager.path_for(step)
            )
        manager._prune()
        remaining = sorted(p.name for p in tmp_path.glob("sim-step*.npz"))
        assert remaining == ["sim-step0002.npz", "sim-step0003.npz"]

    def test_tighten_halves_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=4)
        manager.tighten()
        assert manager.every == 2
        manager.tighten()
        manager.tighten()
        assert manager.every == 1

    def test_invalid_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, every=0)
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, keep=0)


class TestLatestSkipsDamagedFiles:
    """Recovery discovery must step over zero-byte and torn files
    (warning + ``sim.resilience.checkpoint_skipped``), never crash."""

    def test_zero_byte_file_skipped_with_warning_and_counter(
        self, tmp_path, checkpoint
    ):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        manager = CheckpointManager(tmp_path, metrics=metrics)
        checkpoint.save(manager.path_for(1))
        manager.path_for(2).write_bytes(b"")  # a crashed writer's leavings
        with pytest.warns(RuntimeWarning, match="skipping invalid checkpoint"):
            latest = manager.latest()
        assert latest is not None and latest.step_index == checkpoint.step_index
        assert metrics.counter("sim.resilience.checkpoint_skipped").value == 1

    def test_torn_tail_skipped(self, tmp_path, checkpoint):
        """Regression: a file truncated mid-write (torn tail) anywhere
        in the directory must not mask an older good checkpoint."""
        import dataclasses

        manager = CheckpointManager(tmp_path)
        good = dataclasses.replace(checkpoint, step_index=1)
        good.save(manager.path_for(1))
        whole = manager.path_for(2)
        dataclasses.replace(checkpoint, step_index=2).save(whole)
        torn = whole.read_bytes()
        whole.write_bytes(torn[: len(torn) - len(torn) // 3])
        with pytest.warns(RuntimeWarning, match="skipping invalid checkpoint"):
            latest = manager.latest()
        assert latest is not None and latest.step_index == 1

    def test_every_file_damaged_returns_none(self, tmp_path):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        manager = CheckpointManager(tmp_path, metrics=metrics)
        manager.path_for(1).write_bytes(b"")
        manager.path_for(2).write_bytes(b"not a checkpoint")
        with pytest.warns(RuntimeWarning):
            assert manager.latest() is None
        assert metrics.counter("sim.resilience.checkpoint_skipped").value == 2


class TestDifferentialCheckpoint:
    def test_capture_stores_only_dirty_arrays(self, mid_run_driver):
        from repro.resilience.restart import DifferentialCheckpoint

        base = SimulationCheckpoint.capture(mid_run_driver)
        diff = DifferentialCheckpoint.capture(mid_run_driver, base)
        assert diff.n_dirty == 0  # nothing moved since the base

    def test_materialise_round_trips(self, mid_run_driver):
        from repro.resilience.restart import DifferentialCheckpoint

        base = SimulationCheckpoint.capture(mid_run_driver)
        driver = base.restore_driver()
        schedule = driver.schedule()
        driver.step(float(schedule[2]), float(schedule[3]))
        diff = DifferentialCheckpoint.capture(driver, base)
        assert diff.n_dirty > 0
        restored = diff.materialise().restore_driver()
        assert restored.step_index == driver.step_index
        for name, arr in driver.particles.arrays.items():
            np.testing.assert_array_equal(restored.particles.arrays[name], arr)

    def test_corruption_detected_before_materialise(self, mid_run_driver):
        from repro.resilience.restart import DifferentialCheckpoint

        base = SimulationCheckpoint.capture(mid_run_driver)
        driver = base.restore_driver()
        schedule = driver.schedule()
        driver.step(float(schedule[2]), float(schedule[3]))
        diff = DifferentialCheckpoint.capture(driver, base)
        name = next(iter(diff.dirty_arrays))
        diff.dirty_arrays[name][0] += 1e-3  # silent corruption in transit
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            diff.materialise()


class TestBuddyStore:
    @pytest.fixture
    def snapshot(self, mid_run_driver):
        from repro.resilience.restart import DifferentialCheckpoint

        base = SimulationCheckpoint.capture(mid_run_driver)
        return DifferentialCheckpoint.capture(mid_run_driver, base)

    def test_buddy_ring(self):
        from repro.resilience.restart import BuddyStore

        group = (0, 2, 3, 7)
        assert BuddyStore.buddy_of(0, group) == 2
        assert BuddyStore.buddy_of(7, group) == 0  # wraps the ring
        assert BuddyStore.buddy_of(3, group) == 7

    def test_deposit_and_adopt(self, snapshot):
        from repro.observability import MetricsRegistry
        from repro.resilience.restart import BuddyStore

        metrics = MetricsRegistry()
        store = BuddyStore(metrics=metrics)
        group = (0, 1, 2, 3)
        for rank in group:
            store.deposit(rank, snapshot, group)
        # rank 1 dies; its buddy (rank 2) holds a copy
        assert store.adoptable(1, survivors=(0, 2, 3))
        adopted = store.adopt(1, adopter=2)
        assert adopted.step_index == snapshot.step_index
        assert metrics.counter("sim.resilience.buddy_restores").value == 1

    def test_not_adoptable_when_holder_also_died(self, snapshot):
        from repro.resilience.restart import BuddyStore

        store = BuddyStore()
        group = (0, 1, 2)
        for rank in group:
            store.deposit(rank, snapshot, group)
        # ranks 1 and its buddy 2 both die: nobody holds rank 1's copy
        assert not store.adoptable(1, survivors=(0,))

    def test_own_returns_private_rollback_point(self, snapshot):
        from repro.resilience.restart import BuddyStore

        store = BuddyStore()
        store.deposit(0, snapshot, (0, 1))
        assert store.own(0) is snapshot
        assert store.own(1) is None


class TestConfigHashStamp:
    """The canonical config hash recorded in every checkpoint."""

    def _write_npz(self, path, payload):
        from repro.hacc.checkpoint import payload_digest
        from repro.resilience.restart import _KIND

        np.savez_compressed(
            path,
            kind=_KIND,
            version=SIM_FORMAT_VERSION,
            checksum=payload_digest(payload),
            **payload,
        )

    def test_saved_checkpoint_records_the_config_hash(self, checkpoint, tmp_path):
        from repro.core.confighash import config_hash

        path = checkpoint.save(tmp_path / "ck.npz")
        with np.load(path) as data:
            assert str(data["config_hash"]) == config_hash(checkpoint.config)
        # and it loads back fine
        assert SimulationCheckpoint.load(path).step_index == checkpoint.step_index

    def test_pre_hash_files_still_load(self, checkpoint, tmp_path):
        # files written before the hash was recorded carry the same
        # format version and simply lack the key; absence is tolerated
        payload = {
            k: v for k, v in checkpoint._payload().items() if k != "config_hash"
        }
        path = tmp_path / "legacy.npz"
        self._write_npz(path, payload)
        loaded = SimulationCheckpoint.load(path)
        assert loaded.step_index == checkpoint.step_index

    def test_mismatched_hash_is_rejected(self, checkpoint, tmp_path):
        payload = checkpoint._payload()
        payload["config_hash"] = np.array("0" * 64, dtype=np.str_)
        path = tmp_path / "crossed.npz"
        self._write_npz(path, payload)
        with pytest.raises(CheckpointError, match="config hash mismatch"):
            SimulationCheckpoint.load(path)
