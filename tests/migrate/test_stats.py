"""Tests for migration code statistics (the Table 2 narrative)."""

import pytest

from repro.migrate.stats import (
    bundled_migration_stats,
    format_stats,
    migration_stats,
    sloc,
)


class TestSloc:
    def test_counts_code_lines_only(self):
        text = "int a;\n\n// comment\nint b; // trailing\n"
        assert sloc(text) == 2

    def test_block_comments_excluded(self):
        text = "/* multi\nline\ncomment */\nint a;\n"
        assert sloc(text) == 1

    def test_code_after_block_close_counts(self):
        assert sloc("/* c */ int a;\n") == 1

    def test_empty(self):
        assert sloc("") == 0
        assert sloc("\n\n// only comments\n") == 0


class TestMigrationStats:
    @pytest.fixture(scope="class")
    def stats(self):
        return bundled_migration_stats()

    def test_all_kernels_measured(self, stats):
        assert {s.kernel for s in stats} == {
            "geometry",
            "corrections",
            "extras",
            "acceleration",
            "energy",
        }

    def test_sycl_inflation_matches_paper_narrative(self, stats):
        # "SYCL also uses almost 1.7x as many lines as CUDA/HIP"
        total_cuda = sum(s.cuda_sloc for s in stats)
        total_sycl = sum(s.sycl_total_sloc for s in stats)
        assert 1.4 < total_sycl / total_cuda < 2.4

    def test_headers_carry_most_of_the_inflation(self, stats):
        # "~6,000 lines of SYCL can be attributed to the kernel
        # function object definitions"
        for s in stats:
            assert s.header_share > 0.5, s.kernel

    def test_kernel_bodies_similar_in_size(self, stats):
        # "The remainder of the SYCL code (the kernels themselves) is
        # more similar in size to the CUDA code."
        for s in stats:
            assert s.sycl_source_sloc <= 1.25 * s.cuda_sloc, s.kernel

    def test_format_renders(self, stats):
        text = format_stats(stats)
        assert "inflation" in text
        assert "(all)" in text
