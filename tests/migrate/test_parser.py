"""Tests for the mini-CUDA front-end."""

import pytest

from repro.migrate.parser import ParseError, parse_cuda_source

SOURCE = """
#include "hacc_cuda.h"

__global__ void simple_kernel(float* data, int n) {
  int tid = blockIdx.x * blockDim.x + threadIdx.x;
  if (tid < n) data[tid] *= 2.0f;
}

__global__ void second_kernel(const float* in, float* out, float scale) {
  out[threadIdx.x] = in[threadIdx.x] * scale;
}

void host_side(float* d, int n) {
  dim3 grid((n + 127) / 128);
  simple_kernel<<<grid, 128>>>(d, n);
  second_kernel<<<grid, dim3(128)>>>(d, d, 2.0f);
}
"""


class TestKernelParsing:
    def test_finds_both_kernels(self):
        parsed = parse_cuda_source(SOURCE)
        assert [k.name for k in parsed.kernels] == ["simple_kernel", "second_kernel"]

    def test_parameters_with_types(self):
        k = parse_cuda_source(SOURCE).kernel("simple_kernel")
        assert [(p.type, p.name) for p in k.params] == [
            ("float*", "data"),
            ("int", "n"),
        ]

    def test_qualified_types(self):
        k = parse_cuda_source(SOURCE).kernel("second_kernel")
        assert k.params[0].type == "const float*"

    def test_body_extraction_brace_matched(self):
        k = parse_cuda_source(SOURCE).kernel("simple_kernel")
        assert "data[tid] *= 2.0f;" in k.body
        assert "second_kernel" not in k.body

    def test_signature_reconstruction(self):
        k = parse_cuda_source(SOURCE).kernel("simple_kernel")
        assert k.signature == "__global__ void simple_kernel(float* data, int n)"

    def test_nested_braces_in_body(self):
        src = "__global__ void k(int n) { if (n) { for (;;) { n--; } } }"
        k = parse_cuda_source(src).kernel("k")
        assert k.body.count("{") == 2

    def test_unknown_kernel_lookup(self):
        with pytest.raises(KeyError):
            parse_cuda_source(SOURCE).kernel("missing")

    def test_missing_body_rejected(self):
        with pytest.raises(ParseError):
            parse_cuda_source("__global__ void broken(int a);")


class TestLaunchParsing:
    def test_finds_launch_sites(self):
        parsed = parse_cuda_source(SOURCE)
        assert [l.kernel_name for l in parsed.launches] == [
            "simple_kernel",
            "second_kernel",
        ]

    def test_grid_block_extraction(self):
        launch = parse_cuda_source(SOURCE).launches[0]
        assert launch.grid == "grid"
        assert launch.block == "128"
        assert launch.args == "d, n"

    def test_span_covers_semicolon(self):
        parsed = parse_cuda_source(SOURCE)
        start, end = parsed.launches[0].span
        assert parsed.text[start:end].rstrip().endswith(";")


class TestBundledKernels:
    def test_all_five_hot_kernels_parse(self):
        from repro.migrate.pipeline import bundled_kernel_sources

        sources = bundled_kernel_sources()
        assert set(sources) == {
            "geometry",
            "corrections",
            "extras",
            "acceleration",
            "energy",
        }
        for name, text in sources.items():
            parsed = parse_cuda_source(text)
            assert len(parsed.kernels) == 1, name
            assert len(parsed.launches) == 1, name
