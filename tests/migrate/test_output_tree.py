"""Tests for writing the migrated SYCL project to disk."""

from repro.migrate.pipeline import MigrationPipeline, bundled_kernel_sources


class TestRunDirectoryTo:
    def test_writes_sources_and_headers(self, tmp_path):
        pipeline = MigrationPipeline(optimize=True)
        results = pipeline.run_directory_to(
            bundled_kernel_sources(), tmp_path / "sycl"
        )
        out = tmp_path / "sycl"
        sources = sorted(p.name for p in out.glob("*.sycl.cpp"))
        assert sources == [
            "acceleration.sycl.cpp",
            "corrections.sycl.cpp",
            "energy.sycl.cpp",
            "extras.sycl.cpp",
            "geometry.sycl.cpp",
        ]
        headers = sorted(p.name for p in out.glob("*_functor.h"))
        assert "update_geometry_functor.h" in headers
        assert len(headers) == sum(len(r.kernel_names) for r in results.values())

    def test_written_source_is_the_optimized_form(self, tmp_path):
        pipeline = MigrationPipeline(optimize=True)
        pipeline.run_directory_to(bundled_kernel_sources(), tmp_path / "sycl")
        text = (tmp_path / "sycl" / "geometry.sycl.cpp").read_text()
        assert "sycl::native::" in text or "sycl::sqrt" in text
        assert "__global__" not in text

    def test_header_included_from_source(self, tmp_path):
        pipeline = MigrationPipeline()
        pipeline.run_directory_to(bundled_kernel_sources(), tmp_path / "sycl")
        text = (tmp_path / "sycl" / "energy.sycl.cpp").read_text()
        assert '#include "update_energy_functor.h"' in text
