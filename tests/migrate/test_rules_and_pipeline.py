"""Tests for the migration rules, SYCLomatic stage, functorizer and
end-to-end pipeline (Section 4)."""

import pytest

from repro.migrate.functorize import functorize, generate_header
from repro.migrate.parser import parse_cuda_source
from repro.migrate.pipeline import MigrationPipeline, bundled_kernel_sources
from repro.migrate.rules import (
    apply_rules,
    migration_rules,
    optimization_rules,
)
from repro.migrate.syclomatic import migrate_kernel_body, migrate_source


class TestIndexMapping:
    def test_cuda_x_maps_to_sycl_dim_2(self):
        out, _ = migrate_kernel_body("int t = threadIdx.x + blockIdx.x;")
        assert "item.get_local_id(2)" in out
        assert "item.get_group(2)" in out

    def test_cuda_z_maps_to_sycl_dim_0(self):
        out, _ = migrate_kernel_body("int t = threadIdx.z;")
        assert "item.get_local_id(0)" in out

    def test_block_dims(self):
        out, _ = migrate_kernel_body("int s = blockDim.y * gridDim.y;")
        assert "item.get_local_range(1)" in out
        assert "item.get_group_range(1)" in out


class TestSynchronisation:
    def test_syncthreads(self):
        out, _ = migrate_kernel_body("__syncthreads();")
        assert "item.barrier(sycl::access::fence_space::local_space)" in out


class TestShuffles:
    def test_shfl_xor_gets_project_wrapper(self):
        out, _ = migrate_kernel_body(
            "float v = __shfl_xor_sync(0xffffffff, x, 16);"
        )
        assert "hacc::shuffle_xor(item.get_sub_group(), x, 16)" in out

    def test_plain_shfl_becomes_select(self):
        out, _ = migrate_kernel_body("float v = __shfl_sync(0xffffffff, x, 0);")
        assert "sycl::select_from_group(item.get_sub_group(), x, 0)" in out


class TestAtomics:
    def test_atomic_add_wrapper(self):
        out, _ = migrate_kernel_body("atomicAdd(&acc[i], f);")
        assert "hacc::atomic_add(acc[i], f)" in out

    def test_atomic_min_wrapper(self):
        # Section 5.1: SYCL exposes float fetch_min everywhere
        out, _ = migrate_kernel_body("atomicMin(&dt[0], x);")
        assert "hacc::atomic_min(dt[0], x)" in out


class TestDiagnostics:
    def test_ldg_removed_with_diagnostic(self):
        out, diags = migrate_kernel_body("float x = __ldg(&data[i]);")
        assert "__ldg" not in out
        assert "data[i]" in out
        assert any(d.code == "DPCT1026" for d in diags)

    def test_frexp_precision_diagnostic(self):
        out, diags = migrate_kernel_body("float m = frexpf(x, &e);")
        assert "sycl::frexp(" in out
        assert any(d.code == "DPCT1017" for d in diags)

    def test_clean_code_no_diagnostics(self):
        _out, diags = migrate_kernel_body("int t = threadIdx.x;")
        assert diags == []


class TestOptimizationRules:
    """Section 5.1: the hardware-agnostic SYCL 2020 rewrites."""

    def test_uniform_shuffle_becomes_broadcast(self):
        text = "float v = sycl::select_from_group(sg, x, 0);"
        out, _ = apply_rules(text, optimization_rules())
        assert "sycl::group_broadcast(sg, x, 0)" in out

    def test_shuffle_reduction_becomes_group_reduce(self):
        text = "float s = hacc::shuffle_reduce_sum(sg, partial);"
        out, _ = apply_rules(text, optimization_rules())
        assert "sycl::reduce_over_group(sg, partial, sycl::plus<>())" in out

    def test_native_math_substitution(self):
        text = "float p = sycl::pow(a, b) + sycl::rsqrt(c);"
        out, _ = apply_rules(text, optimization_rules())
        assert "sycl::native::powr(" in out
        assert "sycl::native::rsqrt(" in out

    def test_lane_index_builtin(self):
        text = (
            "int lane = item.get_local_id(2) % "
            "item.get_sub_group().get_local_range()[0];"
        )
        out, _ = apply_rules(text, optimization_rules())
        assert "item.get_sub_group().get_local_id()" in out


class TestStage1:
    def test_kernel_becomes_free_function_with_item(self):
        src = "__global__ void k(float* d, int n) { d[threadIdx.x] = n; }"
        result = migrate_source(src)
        assert "void k(float* d, int n, const sycl::nd_item<3>& item)" in result.source
        assert "__global__" not in result.source

    def test_launch_becomes_lambda_submission(self):
        src = (
            "__global__ void k(float* d) { d[0] = 1.0f; }\n"
            "void host(float* d) { k<<<grid, 128>>>(d); }"
        )
        result = migrate_source(src)
        assert "q.parallel_for(" in result.source
        assert "[=](sycl::nd_item<3> item)" in result.source

    def test_header_substitution(self):
        src = '#include "hacc_cuda.h"\n__global__ void k(int n) { }\n'
        result = migrate_source(src)
        assert "#include <sycl/sycl.hpp>" in result.source
        assert "hacc_sycl.h" in result.source


class TestFunctorizer:
    def test_header_one_argument_per_line(self):
        # the structure behind Table 2's ~6,000-line inflation
        src = "__global__ void my_kernel(float* a, float* b, int n) { }"
        kernel = parse_cuda_source(src).kernels[0]
        header = generate_header(kernel)
        assert "struct MyKernelKernel : public hacc::KernelBase {" in header
        assert "  float* a;" in header
        assert "  float* b;" in header
        assert "  int n;" in header
        assert "void operator()(const sycl::nd_item<3>& item) const;" in header

    def test_launch_constructs_named_functor(self):
        src = (
            "__global__ void my_kernel(float* a) { a[0] = 1.0f; }\n"
            "void host(float* a) { my_kernel<<<g, 128>>>(a); }"
        )
        stage1 = migrate_source(src)
        result = functorize(stage1, src)
        assert "MyKernelKernel(local, a)" in result.source
        assert "[=]" not in result.source  # no unnamed lambdas left

    def test_call_operator_in_source_file(self):
        src = "__global__ void my_kernel(int n) { int t = threadIdx.x; }"
        result = functorize(migrate_source(src), src)
        assert (
            "void MyKernelKernel::operator()(const sycl::nd_item<3>& item) const"
            in result.source
        )
        assert "item.get_local_id(2)" in result.source


class TestPipeline:
    @pytest.fixture(scope="class")
    def results(self):
        return MigrationPipeline(optimize=True).run_directory(bundled_kernel_sources())

    def test_every_hot_kernel_migrates(self, results):
        assert set(results) == {
            "geometry",
            "corrections",
            "extras",
            "acceleration",
            "energy",
        }
        for name, r in results.items():
            assert r.kernel_names, name
            assert r.functors.headers, name

    def test_no_cuda_constructs_survive(self, results):
        for name, r in results.items():
            for token in ("__global__", "threadIdx", "__shfl", "atomicAdd", "__ldg"):
                assert token not in r.optimized_source, (name, token)

    def test_geometry_reports_ldg_diagnostics(self, results):
        codes = [d.code for d in results["geometry"].diagnostics]
        assert codes.count("DPCT1026") == 3  # three __ldg calls

    def test_extras_reports_frexp_diagnostic(self, results):
        codes = [d.code for d in results["extras"].diagnostics]
        assert "DPCT1017" in codes

    def test_optimize_flag_controls_native_math(self):
        src = bundled_kernel_sources()["geometry"]
        plain = MigrationPipeline(optimize=False).run(src)
        opt = MigrationPipeline(optimize=True).run(src)
        assert "sycl::native::" not in plain.optimized_source
        assert "sycl::sqrt(" in plain.optimized_source
