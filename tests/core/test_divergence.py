"""Tests for code divergence (Equations 2-3)."""

import pytest

from repro.core.divergence import (
    code_convergence,
    code_divergence,
    jaccard_distance,
    pairwise_distances,
)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard_distance({1, 2}, {1, 2}) == 0.0

    def test_disjoint_sets(self):
        assert jaccard_distance({1}, {2}) == 1.0

    def test_partial_overlap(self):
        # |∩| = 1, |∪| = 3
        assert jaccard_distance({1, 2}, {2, 3}) == pytest.approx(2 / 3)

    def test_both_empty(self):
        assert jaccard_distance(set(), set()) == 0.0

    def test_symmetric(self):
        a, b = {1, 2, 3}, {3, 4}
        assert jaccard_distance(a, b) == jaccard_distance(b, a)


class TestCodeDivergence:
    def test_fully_shared_is_zero(self):
        lines = {"A": {1, 2, 3}, "B": {1, 2, 3}, "C": {1, 2, 3}}
        assert code_divergence(lines) == 0.0
        assert code_convergence(lines) == 1.0

    def test_fully_specialised_is_one(self):
        lines = {"A": {1}, "B": {2}, "C": {3}}
        assert code_divergence(lines) == 1.0

    def test_average_over_pairs(self):
        # two identical platforms, one disjoint: mean of (0, 1, 1)
        lines = {"A": {1, 2}, "B": {1, 2}, "C": {9}}
        assert code_divergence(lines) == pytest.approx(2 / 3)

    def test_needs_two_platforms(self):
        with pytest.raises(ValueError):
            code_divergence({"A": {1}})

    def test_19_line_specialisation_is_nearly_converged(self):
        # Section 6.2: select vs memory differ by only 19 lines
        shared = set(range(56_624))
        mem = shared | {("mem", i) for i in range(19)}
        lines = {"Aurora": mem, "Polaris": shared, "Frontier": shared}
        assert code_convergence(lines) > 0.999

    def test_pairwise_distances_view(self):
        lines = {"A": {1, 2}, "B": {1}, "C": {3}}
        d = pairwise_distances(lines)
        assert set(d) == {("A", "B"), ("A", "C"), ("B", "C")}
        assert d[("A", "B")] == pytest.approx(0.5)
