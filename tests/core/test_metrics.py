"""Tests for the PP metric (Equation 1)."""

import pytest

from repro.core.metrics import (
    application_efficiency,
    architectural_efficiency,
    harmonic_mean,
    performance_portability,
)


class TestHarmonicMean:
    def test_equal_values(self):
        assert harmonic_mean([0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_dominated_by_worst(self):
        # the harmonic mean punishes the weak platform
        assert harmonic_mean([1.0, 1.0, 0.1]) < 0.3

    def test_zero_anywhere_zeroes_everything(self):
        # Equation 1's "otherwise" branch
        assert harmonic_mean([1.0, 1.0, 0.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            harmonic_mean([0.5, -0.1])

    def test_below_arithmetic_mean(self):
        values = [0.2, 0.9, 0.6]
        assert harmonic_mean(values) <= sum(values) / 3


class TestApplicationEfficiency:
    def test_best_time_gives_one(self):
        assert application_efficiency(2.0, 2.0) == 1.0

    def test_slower_gives_ratio(self):
        assert application_efficiency(4.0, 2.0) == pytest.approx(0.5)

    def test_capped_at_one(self):
        assert application_efficiency(1.0, 2.0) == 1.0

    def test_zero_observed_with_zero_best(self):
        assert application_efficiency(0.0, 0.0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            application_efficiency(-1.0, 1.0)
        with pytest.raises(ValueError):
            application_efficiency(0.0, 1.0)


class TestPerformancePortability:
    def test_paper_equation_on_mapping(self):
        effs = {"Aurora": 0.8, "Polaris": 1.0, "Frontier": 1.0}
        expected = 3 / (1 / 0.8 + 1 + 1)
        assert performance_portability(effs) == pytest.approx(expected)

    def test_missing_platform_zeroes_pp(self):
        # CUDA / HIP / vISA in Figure 12
        assert performance_portability({"A": 1.0, "B": 0.0, "C": 1.0}) == 0.0

    def test_sequence_input(self):
        assert performance_portability([1.0, 1.0]) == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            performance_portability({"A": 1.2})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            performance_portability({})


class TestArchitecturalEfficiency:
    def test_fraction_of_peak(self):
        assert architectural_efficiency(5e12, 10e12) == pytest.approx(0.5)

    def test_capped(self):
        assert architectural_efficiency(11e12, 10e12) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            architectural_efficiency(1.0, 0.0)
        with pytest.raises(ValueError):
            architectural_efficiency(-1.0, 1.0)
