"""Tests for the preprocessor-aware SLOC analyser."""

import textwrap

import pytest

from repro.core.sloc import (
    ConditionError,
    analyze_codebase,
    compiled_lines,
    evaluate_condition,
    total_sloc,
)


class TestConditionEvaluation:
    def test_defined(self):
        assert evaluate_condition("defined(FOO)", frozenset({"FOO"}))
        assert not evaluate_condition("defined(FOO)", frozenset())

    def test_boolean_operators(self):
        defs = frozenset({"A"})
        assert evaluate_condition("defined(A) || defined(B)", defs)
        assert not evaluate_condition("defined(A) && defined(B)", defs)
        assert evaluate_condition("!defined(B)", defs)

    def test_parentheses_and_precedence(self):
        defs = frozenset({"A", "C"})
        assert evaluate_condition("defined(A) && (defined(B) || defined(C))", defs)
        # && binds tighter than ||
        assert evaluate_condition("defined(B) && defined(B) || defined(C)", defs)

    def test_bare_names_and_literals(self):
        assert evaluate_condition("FOO", frozenset({"FOO"}))
        assert evaluate_condition("1", frozenset())
        assert not evaluate_condition("0", frozenset())

    def test_malformed_rejected(self):
        with pytest.raises(ConditionError):
            evaluate_condition("defined(A) &&", frozenset())
        with pytest.raises(ConditionError):
            evaluate_condition("(defined(A)", frozenset())


def write(tmp_path, text, name="test.cpp"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(text))
    return path


class TestCompiledLines:
    def test_unguarded_lines_always_compiled(self, tmp_path):
        path = write(tmp_path, "int a = 1;\nint b = 2;\n")
        lines = compiled_lines(path, frozenset())
        assert len(lines) == 2

    def test_ifdef_else_branches(self, tmp_path):
        path = write(
            tmp_path,
            """\
            #ifdef CUDA
            int cuda_line;
            #else
            int other_line;
            #endif
            """,
        )
        with_cuda = compiled_lines(path, frozenset({"CUDA"}))
        without = compiled_lines(path, frozenset())
        assert {ln for _f, ln in with_cuda} == {2}
        assert {ln for _f, ln in without} == {4}

    def test_elif_chain(self, tmp_path):
        path = write(
            tmp_path,
            """\
            #if defined(A)
            int a;
            #elif defined(B)
            int b;
            #else
            int c;
            #endif
            """,
        )
        assert {ln for _f, ln in compiled_lines(path, frozenset({"A"}))} == {2}
        assert {ln for _f, ln in compiled_lines(path, frozenset({"B"}))} == {4}
        assert {ln for _f, ln in compiled_lines(path, frozenset({"A", "B"}))} == {2}
        assert {ln for _f, ln in compiled_lines(path, frozenset())} == {6}

    def test_nested_guards(self, tmp_path):
        path = write(
            tmp_path,
            """\
            #ifdef OUTER
            int outer;
            #ifdef INNER
            int both;
            #endif
            #endif
            """,
        )
        assert {ln for _f, ln in compiled_lines(path, frozenset({"OUTER"}))} == {2}
        assert {ln for _f, ln in compiled_lines(path, frozenset({"OUTER", "INNER"}))} == {2, 4}
        assert compiled_lines(path, frozenset({"INNER"})) == set()

    def test_ifndef(self, tmp_path):
        path = write(tmp_path, "#ifndef X\nint line;\n#endif\n")
        assert len(compiled_lines(path, frozenset())) == 1
        assert len(compiled_lines(path, frozenset({"X"}))) == 0

    def test_comments_and_blanks_excluded(self, tmp_path):
        path = write(
            tmp_path,
            """\
            // a comment line
            int real = 1; // trailing comment

            /* block
               comment */
            int other = 2;
            """,
        )
        lines = compiled_lines(path, frozenset())
        assert {ln for _f, ln in lines} == {2, 6}

    def test_unterminated_if_rejected(self, tmp_path):
        path = write(tmp_path, "#ifdef A\nint a;\n")
        with pytest.raises(ConditionError):
            compiled_lines(path, frozenset())

    def test_stray_endif_rejected(self, tmp_path):
        path = write(tmp_path, "#endif\n")
        with pytest.raises(ConditionError):
            compiled_lines(path, frozenset())


class TestCodebaseAnalysis:
    @pytest.fixture
    def tree(self, tmp_path):
        write(
            tmp_path,
            """\
            int shared_1;
            #ifdef CUDA
            int cuda_only;
            #endif
            #if defined(CUDA) || defined(SYCL)
            int gpu_shared;
            #endif
            #ifdef NEVER
            int dead;
            #endif
            """,
            name="a.cpp",
        )
        write(tmp_path, "int shared_2;\n", name="b.h")
        return tmp_path

    def test_config_lines(self, tree):
        analysis = analyze_codebase(
            tree, {"cuda": frozenset({"CUDA"}), "sycl": frozenset({"SYCL"})}
        )
        assert len(analysis.config_lines["cuda"]) == 4  # shared x2, cuda, gpu
        assert len(analysis.config_lines["sycl"]) == 3

    def test_unused_lines(self, tree):
        analysis = analyze_codebase(
            tree, {"cuda": frozenset({"CUDA"}), "sycl": frozenset({"SYCL"})}
        )
        assert len(analysis.unused_lines()) == 1  # the NEVER block

    def test_regions(self, tree):
        analysis = analyze_codebase(
            tree, {"cuda": frozenset({"CUDA"}), "sycl": frozenset({"SYCL"})}
        )
        cuda_only = analysis.region({"cuda"})
        both = analysis.region({"cuda", "sycl"})
        assert len(cuda_only) == 1
        assert len(both) == 3  # shared x2 + gpu_shared

    def test_membership_patterns_partition_used_lines(self, tree):
        analysis = analyze_codebase(
            tree, {"cuda": frozenset({"CUDA"}), "sycl": frozenset({"SYCL"})}
        )
        patterns = analysis.membership_patterns()
        total = sum(len(v) for v in patterns.values())
        assert total == len(analysis.used_lines())

    def test_total_sloc_ignores_directives(self, tree):
        lines = total_sloc(tree / "a.cpp")
        assert len(lines) == 4  # the four int declarations
