"""Tests for cascade-plot and navigation-chart data generation."""

import pytest

from repro.core.cascade import cascade_data
from repro.core.navigation import NavigationPoint, navigation_data
from repro.core.specialization import (
    Configuration,
    PlatformChoice,
    standard_configurations,
)
from repro.proglang.model import ProgrammingModel


@pytest.fixture(scope="module")
def cascade(reference_trace):
    return cascade_data(reference_trace)


class TestConfigurations:
    def test_standard_set_matches_figure12(self):
        names = {c.name for c in standard_configurations()}
        assert names == {
            "CUDA",
            "HIP",
            "vISA",
            "SYCL (Select)",
            "SYCL (Memory, 32-bit)",
            "SYCL (Memory, Object)",
            "SYCL (Broadcast)",
            "SYCL (Select + Memory)",
            "SYCL (Select + vISA)",
            "Unified",
        }

    def test_unsupported_platform_prices_to_none(self, reference_trace):
        from repro.machine.registry import AURORA

        cuda = next(c for c in standard_configurations() if c.name == "CUDA")
        assert cuda.price(reference_trace, AURORA) is None

    def test_missing_platform_choice_prices_to_none(self, reference_trace):
        from repro.machine.registry import FRONTIER

        config = Configuration(
            "partial", {"Aurora": PlatformChoice(ProgrammingModel.SYCL, "select")}
        )
        assert config.price(reference_trace, FRONTIER) is None


class TestCascadeData:
    def test_platforms_in_paper_order(self, cascade):
        assert cascade.platforms == ["Aurora", "Polaris", "Frontier"]

    def test_efficiencies_in_unit_interval(self, cascade):
        for effs in cascade.efficiencies.values():
            for e in effs.values():
                assert 0.0 <= e <= 1.0

    def test_nonportable_configs_zero_pp(self, cascade):
        for name in ("CUDA", "HIP", "vISA"):
            assert cascade.pp[name] == 0.0

    def test_portable_configs_positive_pp(self, cascade):
        for name, pp in cascade.pp.items():
            if name not in ("CUDA", "HIP", "vISA"):
                assert pp > 0.0, name

    def test_best_times_bound_everything(self, cascade):
        for config, totals in cascade.totals.items():
            for platform, total in totals.items():
                if total is None:
                    continue
                best = sum(cascade.best_times[platform].values())
                assert total >= best * (1 - 1e-12)

    def test_sorted_series_descending(self, cascade):
        series = cascade.sorted_series("SYCL (Select)")
        values = [v for _p, v in series]
        assert values == sorted(values, reverse=True)

    def test_rows_cover_all_configs(self, cascade):
        rows = cascade.rows()
        assert len(rows) == len(cascade.pp)
        for row in rows:
            assert "PP" in row


class TestNavigationData:
    def test_joins_pp_with_convergence(self, cascade, codebase_model):
        from repro.core.codebase import convergence_by_configuration

        conv = convergence_by_configuration(codebase_model)
        points = navigation_data(cascade, conv)
        names = {p.name for p in points}
        # only configurations with a source-base model appear
        assert "SYCL (Select + vISA)" in names
        assert "CUDA" not in names

    def test_sorted_by_distance_to_ideal(self, cascade, codebase_model):
        from repro.core.codebase import convergence_by_configuration

        points = navigation_data(
            cascade, convergence_by_configuration(codebase_model)
        )
        dists = [p.distance_to_ideal for p in points]
        assert dists == sorted(dists)

    def test_ideal_point_distance_zero(self):
        p = NavigationPoint("ideal", 1.0, 1.0)
        assert p.distance_to_ideal == 0.0

    def test_invalid_convergence_rejected(self, cascade):
        with pytest.raises(ValueError):
            navigation_data(cascade, {"SYCL (Select)": 1.2})
