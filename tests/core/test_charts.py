"""Tests for the text-art chart renderers."""

import pytest

from repro.core.cascade import CascadeData
from repro.core.charts import render_cascade, render_navigation
from repro.core.navigation import NavigationPoint


@pytest.fixture
def tiny_cascade():
    data = CascadeData(platforms=["Aurora", "Polaris", "Frontier"])
    data.efficiencies = {
        "Good": {"Aurora": 0.9, "Polaris": 1.0, "Frontier": 1.0},
        "Broken": {"Aurora": 0.0, "Polaris": 1.0, "Frontier": 1.0},
    }
    data.pp = {"Good": 0.96, "Broken": 0.0}
    return data


class TestCascadeRendering:
    def test_rows_sorted_by_pp(self, tiny_cascade):
        text = render_cascade(tiny_cascade)
        assert text.index("Good") < text.index("Broken")

    def test_pp_values_shown(self, tiny_cascade):
        text = render_cascade(tiny_cascade)
        assert "PP=0.96" in text
        assert "PP=0.00" in text

    def test_platform_glyphs_present(self, tiny_cascade):
        good_line = next(l for l in render_cascade(tiny_cascade).splitlines() if "Good" in l)
        assert "A" in good_line

    def test_width_validation(self, tiny_cascade):
        with pytest.raises(ValueError):
            render_cascade(tiny_cascade, width=5)


class TestNavigationRendering:
    @pytest.fixture
    def points(self):
        return [
            NavigationPoint("Near-ideal", 0.95, 0.99),
            NavigationPoint("Diverged", 0.91, 0.78),
            NavigationPoint("Slow", 0.44, 1.0),
        ]

    def test_legend_lists_all_points(self, points):
        text = render_navigation(points)
        for p in points:
            assert p.name in text

    def test_grid_contains_indices(self, points):
        text = render_navigation(points)
        assert "1" in text and "2" in text and "3" in text

    def test_size_validation(self, points):
        with pytest.raises(ValueError):
            render_navigation(points, width=4)
        with pytest.raises(ValueError):
            render_navigation(points, height=2)

    def test_real_data_renders(self, reference_trace, codebase_model):
        from repro.core.cascade import cascade_data
        from repro.core.codebase import convergence_by_configuration
        from repro.core.navigation import navigation_data

        cascade = cascade_data(reference_trace)
        points = navigation_data(
            cascade, convergence_by_configuration(codebase_model)
        )
        text = render_navigation(points)
        assert "ideal = top-right" in text
        assert render_cascade(cascade)  # also renders
