"""Property tests for the canonical config hash.

The hash keys the service result cache and travels inside simulation
checkpoints, so the contract is sharp: *semantically equal* configs
must hash identically regardless of construction order or numeric
representation, and any *near-miss* (one field nudged) must diverge.
"""

from __future__ import annotations

import dataclasses
import enum
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confighash import canonical_json, canonicalize, config_hash

# -- strategies --------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

_config_dicts = st.dictionaries(
    st.text(min_size=1, max_size=12), _values, min_size=1, max_size=6
)


class Mode(enum.Enum):
    FAST = "fast"
    EXACT = "exact"


@dataclasses.dataclass(frozen=True)
class DemoConfig:
    n: int = 8
    dt: float = 0.5
    name: str = "run"
    flags: tuple = (1, 2)


# -- invariance --------------------------------------------------------


class TestPermutationInvariance:
    @given(_config_dicts, st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_key_order_never_changes_the_hash(self, config, rng):
        items = list(config.items())
        rng.shuffle(items)
        permuted = dict(items)
        assert permuted == config
        assert config_hash(permuted) == config_hash(config)

    @given(st.sets(st.integers(min_value=-100, max_value=100), max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_set_iteration_order_is_canonicalised(self, values):
        a = set(values)
        b = {v for v in sorted(values, reverse=True)}
        assert config_hash(a) == config_hash(b)

    def test_equal_dataclasses_hash_equal(self):
        assert config_hash(DemoConfig()) == config_hash(
            DemoConfig(n=8, dt=0.5, name="run", flags=(1, 2))
        )

    def test_tuple_and_list_are_one_sequence_form(self):
        assert config_hash((1, 2, 3)) == config_hash([1, 2, 3])


class TestNearMissDivergence:
    @given(_config_dicts, st.text(min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_adding_a_field_changes_the_hash(self, config, extra_key):
        grown = dict(config)
        grown[extra_key] = "<sentinel-not-in-values>"
        if grown == config:
            return  # the key happened to exist with that exact value
        assert config_hash(grown) != config_hash(config)

    @pytest.mark.parametrize(
        "nudge",
        [
            {"n": 9},
            {"dt": 0.5000001},
            {"name": "run2"},
            {"flags": (1, 2, 3)},
        ],
    )
    def test_nudged_dataclass_field_diverges(self, nudge):
        assert config_hash(
            dataclasses.replace(DemoConfig(), **nudge)
        ) != config_hash(DemoConfig())

    def test_int_and_equal_float_are_distinct(self):
        # 1 and 1.0 compare equal in Python but are different dtypes
        # in a config; the canonical form keeps them apart
        assert config_hash({"a": 1}) != config_hash({"a": 1.0})

    def test_string_digits_differ_from_numbers(self):
        assert config_hash({"a": "1"}) != config_hash({"a": 1})


class TestNumericStability:
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_numpy_ints_hash_like_python_ints(self, value):
        for dtype in (np.int32, np.int64):
            assert config_hash(dtype(value)) == config_hash(value)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=50, deadline=None)
    def test_numpy_float64_of_same_value_matches_python_float(self, value):
        assert config_hash(np.float64(value)) == config_hash(float(value))

    def test_numpy_array_hashes_like_nested_lists(self):
        arr = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert config_hash(arr) == config_hash([[1.0, 2.0], [3.0, 4.0]])

    def test_negative_zero_normalises(self):
        assert config_hash({"x": -0.0}) == config_hash({"x": 0.0})

    def test_nan_is_rejected(self):
        with pytest.raises(ValueError):
            config_hash({"x": float("nan")})

    def test_infinities_are_rejected(self):
        for bad in (float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                config_hash({"x": bad})

    def test_enum_hashes_by_identity_not_value_alone(self):
        assert config_hash(Mode.FAST) != config_hash(Mode.EXACT)
        assert config_hash(Mode.FAST) != config_hash("fast")


class TestCanonicalJson:
    @given(_config_dicts)
    @settings(max_examples=50, deadline=None)
    def test_canonical_json_is_valid_sorted_json(self, config):
        text = canonical_json(config)
        decoded = json.loads(text)
        assert decoded == json.loads(canonical_json(decoded))

    def test_non_string_keys_are_rejected(self):
        with pytest.raises(TypeError):
            canonicalize({1: "a"})

    def test_unsupported_types_are_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    def test_hash_is_hex_sha256(self):
        digest = config_hash({"a": 1})
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
        assert config_hash({"a": 1}, length=12) == digest[:12]


class TestRealConfigs:
    """The hash over the repo's actual config dataclasses."""

    def test_simulation_config_roundtrip_stability(self):
        from repro.hacc.timestep import SimulationConfig

        a = SimulationConfig(n_per_side=6, n_steps=2)
        b = SimulationConfig(n_per_side=6, n_steps=2)
        assert config_hash(a) == config_hash(b)
        assert config_hash(a) != config_hash(
            SimulationConfig(n_per_side=6, n_steps=3)
        )

    def test_ic_config_content_hash_helper(self):
        from repro.hacc.ic import ICConfig

        assert ICConfig(n_per_side=4).content_hash() == config_hash(
            ICConfig(n_per_side=4)
        )
        assert (
            ICConfig(n_per_side=4).content_hash()
            != ICConfig(n_per_side=4, seed=1).content_hash()
        )

    def test_job_spec_products_order_is_canonical(self):
        from repro.service.jobs import JobSpec

        a = JobSpec(products=("trace", "diagnostics"))
        b = JobSpec(products=("diagnostics", "trace"))
        assert a.content_hash() == b.content_hash()
