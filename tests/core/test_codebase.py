"""Tests for the CRK-HACC codebase model (Table 2 and Figure 13 data)."""

import pytest

from repro.core.codebase import (
    BUILD_CONFIGS,
    PAPER_TABLE2,
    PAPER_TOTAL_SLOC,
    convergence_by_configuration,
    table2_rows,
)


class TestTable2Reproduction:
    def test_total_sloc_exact(self, codebase_model):
        assert len(codebase_model.all_lines) == PAPER_TOTAL_SLOC

    @pytest.mark.parametrize("label", sorted(PAPER_TABLE2))
    def test_every_row_matches_paper(self, codebase_model, label):
        rows = {r["implementations"]: r["sloc"] for r in table2_rows(codebase_model)}
        if label == "Unused":
            assert rows["Unused"] == PAPER_TABLE2["Unused"]
        else:
            assert rows[label] == PAPER_TABLE2[label]

    def test_small_sets_aggregated_below_50(self, codebase_model):
        rows = {r["implementations"]: r["sloc"] for r in table2_rows(codebase_model)}
        other = rows["(other, <50 SLOC)"]
        assert 0 < other < 150  # a handful of small sets

    def test_percentages_sum_to_100(self, codebase_model):
        rows = table2_rows(codebase_model)
        total_pct = sum(r["pct"] for r in rows if r["implementations"] != "Total")
        assert total_pct == pytest.approx(100.0, abs=0.15)

    def test_sycl_line_inflation_vs_cuda(self, codebase_model):
        # "SYCL also uses almost 1.7x as many lines as CUDA/HIP"
        rows = {r["implementations"]: r["sloc"] for r in table2_rows(codebase_model)}
        sycl_total = rows["SYCL"] + rows["SYCL (-Broadcast)"] + rows["Broadcast"]
        cuda_total = rows["CUDA"] + rows["HIP"] + rows["HIP and CUDA"]
        assert sycl_total / cuda_total == pytest.approx(1.78, abs=0.15)


class TestBuildConfigs:
    def test_seven_build_configurations(self):
        assert len(BUILD_CONFIGS) == 7

    def test_select_and_memory_differ_by_19_lines(self, codebase_model):
        sel = codebase_model.config_lines["sycl-select"]
        mem = codebase_model.config_lines["sycl-memory-object"]
        assert len(sel ^ mem) == 19

    def test_visa_adds_226_lines(self, codebase_model):
        sel = codebase_model.config_lines["sycl-select"]
        visa = codebase_model.config_lines["sycl-visa"]
        assert len(visa - sel) == 226

    def test_unused_is_the_subgrid_code(self, codebase_model):
        assert len(codebase_model.unused_lines()) == PAPER_TABLE2["Unused"]


class TestConvergence:
    def test_single_source_configs_fully_converged(self, codebase_model):
        conv = convergence_by_configuration(codebase_model)
        for name in (
            "SYCL (Select)",
            "SYCL (Memory, 32-bit)",
            "SYCL (Memory, Object)",
            "SYCL (Broadcast)",
        ):
            assert conv[name] == 1.0

    def test_specialised_configs_nearly_converged(self, codebase_model):
        # Section 6.2: "code convergence of almost 1.0"
        conv = convergence_by_configuration(codebase_model)
        assert conv["SYCL (Select + Memory)"] > 0.999
        assert conv["SYCL (Select + vISA)"] > 0.995

    def test_unified_significantly_diverged(self, codebase_model):
        # paper reports 0.83; the Table-2 region sizes + pure Jaccard
        # land at ~0.78 (documented deviation in EXPERIMENTS.md)
        conv = convergence_by_configuration(codebase_model)
        assert 0.70 < conv["Unified"] < 0.88

    def test_ordering_matches_paper(self, codebase_model):
        conv = convergence_by_configuration(codebase_model)
        assert (
            conv["Unified"]
            < conv["SYCL (Select + vISA)"]
            <= conv["SYCL (Select + Memory)"]
        )
