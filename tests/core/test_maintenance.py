"""Tests for the Section 7.1 maintenance-cost model."""

import pytest

from repro.core.maintenance import (
    kernel_change_factors,
    maintenance_factor,
)


@pytest.fixture(scope="module")
def factors(codebase_model):
    return kernel_change_factors(codebase_model)


class TestMaintenanceFactors:
    def test_single_source_configs_cost_one(self, factors):
        for name in (
            "SYCL (Select)",
            "SYCL (Memory, 32-bit)",
            "SYCL (Memory, Object)",
            "SYCL (Broadcast)",
        ):
            assert factors[name] == pytest.approx(1.0)

    def test_unified_roughly_doubles_maintenance(self, factors):
        # Section 7.1: "any duplication of logic ... duplicates the
        # cost of code maintenance" -- CUDA and SYCL kernel copies,
        # plus the CUDA-only lines the HIP wrapper does not share
        assert 1.8 < factors["Unified"] < 2.5

    def test_specialised_sycl_stays_near_one(self, factors):
        # the 19-line and 226-line specializations barely register
        assert factors["SYCL (Select + Memory)"] < 1.01
        assert factors["SYCL (Select + vISA)"] < 1.05

    def test_ordering_matches_section_7_1(self, factors):
        assert (
            factors["SYCL (Select)"]
            <= factors["SYCL (Select + Memory)"]
            < factors["SYCL (Select + vISA)"]
            < factors["Unified"]
        )


class TestEstimateDetails:
    def test_kernel_region_sizes_reported(self, codebase_model):
        est = maintenance_factor(codebase_model, "Unified")
        assert set(est.kernel_region_sizes) == {"Aurora", "Polaris", "Frontier"}
        # the SYCL build's kernel region is larger than CUDA's
        # (Table 2's 1.7x line inflation)
        assert est.kernel_region_sizes["Aurora"] > est.kernel_region_sizes["Polaris"]

    def test_duplicated_flag(self, codebase_model):
        assert maintenance_factor(codebase_model, "Unified").duplicated
        assert not maintenance_factor(
            codebase_model, "SYCL (Select + Memory)"
        ).duplicated

    def test_unknown_configuration_rejected(self, codebase_model):
        with pytest.raises(KeyError):
            maintenance_factor(codebase_model, "Fortran")
