"""Tests for counters, gauges, histograms, and the registry."""

import json

import pytest

from repro.observability import (
    INTERACTIONS_BUCKETS,
    METRIC_GLOSSARY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.observability


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1.0)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("x")
        g.set(10.0)
        g.add(-3.0)
        assert g.value == pytest.approx(7.0)


class TestHistogramBuckets:
    def test_edges_are_inclusive_upper_bounds(self):
        h = Histogram("h", edges=(1.0, 2.0, 4.0))
        # v <= edge lands in that edge's bucket
        h.observe(0.5)  # bucket 0 (<= 1)
        h.observe(1.0)  # bucket 0 (== edge, inclusive)
        h.observe(1.5)  # bucket 1 (<= 2)
        h.observe(4.0)  # bucket 2 (== last edge)
        h.observe(100.0)  # overflow
        assert h.bucket_counts == (2, 1, 1, 1)
        assert h.count == 5
        assert h.sum == pytest.approx(107.0)

    def test_n_edges_gives_n_plus_one_buckets(self):
        h = Histogram("h", edges=INTERACTIONS_BUCKETS)
        assert len(h.bucket_counts) == len(INTERACTIONS_BUCKETS) + 1

    def test_rejects_empty_edges(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Histogram("h", edges=())

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", edges=(1.0, 1.0, 2.0))

    def test_export_shape(self):
        h = Histogram("h", edges=(1.0, 2.0))
        h.observe(1.5)
        assert h.export() == {
            "edges": [1.0, 2.0],
            "counts": [0, 1, 0],
            "count": 1,
            "sum": 1.5,
        }


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            reg.gauge("a")

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]

    def test_delta_subtracts_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h", edges=(1.0,)).observe(0.5)
        reg.gauge("g").set(3.0)
        before = reg.snapshot()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(9.0)
        reg.gauge("g").set(4.0)
        delta = reg.delta(before)
        assert delta["counters"]["c"] == pytest.approx(2.0)
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1
        # gauges report their current value, not a difference
        assert delta["gauges"]["g"] == pytest.approx(4.0)

    def test_delta_handles_metrics_created_since_snapshot(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("new").inc(3)
        assert reg.delta(before)["counters"]["new"] == pytest.approx(3.0)

    def test_write_is_json_loadable(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("sim.steps").inc()
        path = reg.write(tmp_path / "metrics.json")
        doc = json.loads(path.read_text())
        assert doc["counters"]["sim.steps"] == 1.0


class TestGlossary:
    def test_canonical_names_documented(self):
        # the names the built-in instrumentation emits must stay documented
        for name in (
            "sim.steps",
            "sim.kernel.launches",
            "sim.kernel.interactions",
            "device.kernel.seconds",
            "mpi.collective.calls",
            "resilience.rank_failures",
            "resilience.retries",
            "checkpoint.bytes",
        ):
            assert name in METRIC_GLOSSARY
