"""Tests for the trace validator tool (``tools/check_trace.py``)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.observability

TOOLS = Path(__file__).resolve().parents[2] / "tools"


def load_check_trace():
    """Import ``tools/check_trace.py`` as a module (it is a script)."""
    name = "tool_check_trace"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, TOOLS / "check_trace.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def check():
    return load_check_trace()


def good_document():
    return {
        "traceEvents": [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "rank 0"},
            },
            {
                "name": "step 0",
                "cat": "step",
                "ph": "X",
                "ts": 0.0,
                "dur": 1000.0,
                "pid": 0,
                "tid": 0,
                "args": {"depth": 0, "path": "step 0"},
            },
            {
                "name": "fault:kill_rank",
                "cat": "fault",
                "ph": "i",
                "ts": 500.0,
                "pid": 0,
                "tid": 0,
                "s": "t",
                "args": {"rank": 0},
            },
        ],
        "displayTimeUnit": "ms",
    }


class TestValidateEvents:
    def test_good_document_passes(self, check):
        assert check.validate_events(good_document()) == []

    def test_top_level_must_be_object(self, check):
        assert check.validate_events([1, 2]) != []

    def test_missing_trace_events(self, check):
        assert check.validate_events({"foo": []}) == ["document: missing 'traceEvents' list"]

    def test_bad_display_time_unit(self, check):
        doc = good_document()
        doc["displayTimeUnit"] = "fortnights"
        assert any("displayTimeUnit" in p for p in check.validate_events(doc))

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda e: e.update(ph="Q"), "unsupported phase"),
            (lambda e: e.update(name=""), "empty 'name'"),
            (lambda e: e.update(pid="zero"), "'pid' must be an integer"),
            (lambda e: e.update(tid=None), "'tid' must be an integer"),
            (lambda e: e.pop("dur"), "needs numeric 'dur'"),
            (lambda e: e.update(ts=-1.0), "'ts' must be >= 0"),
            (lambda e: e.update(args=[1]), "'args' must be an object"),
        ],
    )
    def test_malformed_complete_event(self, check, mutate, fragment):
        doc = good_document()
        mutate(doc["traceEvents"][1])
        problems = check.validate_events(doc)
        assert any(fragment in p for p in problems), problems

    def test_instant_needs_scope(self, check):
        doc = good_document()
        del doc["traceEvents"][2]["s"]
        assert any("scope 's'" in p for p in check.validate_events(doc))

    def test_metadata_needs_args_name(self, check):
        doc = good_document()
        doc["traceEvents"][0]["args"] = {}
        assert any("args.name" in p for p in check.validate_events(doc))


class TestValidateFile:
    def test_good_file(self, check, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(good_document()))
        assert check.validate_file(path) == []

    def test_not_json(self, check, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("{this is not json")
        assert any("not valid JSON" in p for p in check.validate_file(path))

    def test_missing_file(self, check, tmp_path):
        assert any(
            "cannot read" in p for p in check.validate_file(tmp_path / "nope.json")
        )


class TestMain:
    def test_exit_zero_on_valid(self, check, tmp_path, capsys):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(good_document()))
        assert check.main([str(path)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_on_malformed(self, check, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert check.main([str(path)]) == 1
        assert "event #0" in capsys.readouterr().out

    def test_usage_without_arguments(self, check, capsys):
        assert check.main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_recorder_output_validates(self, check, tmp_path):
        from repro.observability import TraceRecorder

        recorder = TraceRecorder()
        recorder.name_track(0, "rank 0")
        with recorder.span("step"):
            with recorder.span("upGeo"):
                pass
        recorder.instant("retry", category="resilience", attempt=1)
        path = recorder.write(tmp_path / "trace.json")
        assert check.main([str(path)]) == 0


class TestResilienceInstantSchema:
    """Degradation-ladder instants promise specific args; the checker
    holds them to it so dashboards can rely on the fields."""

    def instant(self, name, args):
        doc = good_document()
        doc["traceEvents"].append(
            {
                "name": name,
                "cat": "resilience",
                "ph": "i",
                "ts": 600.0,
                "pid": 0,
                "tid": 0,
                "s": "t",
                "args": args,
            }
        )
        return doc

    def test_wellformed_degradation_instants_pass(self, check):
        doc = self.instant("shrink", {"dead_ranks": [3], "survivors": [0, 1, 2]})
        doc["traceEvents"].append(
            dict(
                self.instant("buddy-restore", {"rank": 4, "owner": 3})[
                    "traceEvents"
                ][-1]
            )
        )
        doc["traceEvents"].append(
            dict(
                self.instant("degrade", {"action": "shrink", "step": 1})[
                    "traceEvents"
                ][-1]
            )
        )
        doc["traceEvents"].append(
            dict(self.instant("retry", {"attempt": 1})["traceEvents"][-1])
        )
        assert check.validate_events(doc) == []

    @pytest.mark.parametrize(
        "name, args, missing",
        [
            ("shrink", {"survivors": [0]}, "args.dead_ranks"),
            ("shrink", {"dead_ranks": [1]}, "args.survivors"),
            ("buddy-restore", {"owner": 3}, "args.rank"),
            ("degrade", {"step": 1}, "args.action"),
            ("retry", {}, "args.attempt"),
        ],
    )
    def test_missing_promised_arg_flagged(self, check, name, args, missing):
        problems = check.validate_events(self.instant(name, args))
        assert any(missing in p for p in problems), problems

    def test_missing_args_object_flagged(self, check):
        doc = self.instant("shrink", None)
        del doc["traceEvents"][-1]["args"]
        problems = check.validate_events(doc)
        assert any("args.dead_ranks" in p for p in problems)

    def test_degraded_run_trace_validates(self, check, tmp_path):
        """End-to-end: the trace written by an actual shrink recovery
        passes the schema, degradation instants included."""
        from repro.hacc.timestep import SimulationConfig
        from repro.observability import TraceRecorder
        from repro.resilience import FaultPlan, run_simulation

        recorder = TraceRecorder()
        result = run_simulation(
            SimulationConfig(n_per_side=4, pm_mesh=8, n_steps=2),
            world_size=3,
            timeout=10.0,
            fault_plan=FaultPlan.parse("kill:rank=1,step=1"),
            degrade_policy="shrink",
            tracer=recorder,
        )
        assert result.degraded
        path = recorder.write(tmp_path / "degraded.json")
        assert check.validate_file(path) == []
        names = {e["name"] for e in json.loads(path.read_text())["traceEvents"]}
        assert "shrink" in names
        assert "degrade" in names
        assert "buddy-restore" in names


class TestCounterAndAlertSchema:
    """PR 7 telemetry: Perfetto counter tracks ("C" events) and health
    ``alert`` instants have schemas the checker enforces."""

    def counter(self, **overrides):
        doc = good_document()
        event = {
            "name": "sim.health.energy_drift",
            "cat": "health",
            "ph": "C",
            "ts": 700.0,
            "pid": 0,
            "tid": 0,
            "args": {"value": 0.01},
        }
        event.update(overrides)
        doc["traceEvents"].append(event)
        return doc

    def test_wellformed_counter_passes(self, check):
        assert check.validate_events(self.counter()) == []

    def test_counter_needs_numeric_ts(self, check):
        problems = check.validate_events(self.counter(ts="later"))
        assert any("numeric 'ts'" in p for p in problems)

    def test_counter_rejects_negative_ts(self, check):
        problems = check.validate_events(self.counter(ts=-3.0))
        assert any("'ts' must be >= 0" in p for p in problems)

    @pytest.mark.parametrize("args", [{}, {"value": "high"}, {"value": True}, None])
    def test_counter_needs_numeric_value(self, check, args):
        doc = self.counter(args=args)
        if args is None:
            del doc["traceEvents"][-1]["args"]
        problems = check.validate_events(doc)
        assert any("args.value" in p for p in problems), problems

    def alert(self, args):
        doc = good_document()
        doc["traceEvents"].append(
            {
                "name": "alert",
                "cat": "health",
                "ph": "i",
                "ts": 800.0,
                "pid": 0,
                "tid": 0,
                "s": "t",
                "args": args,
            }
        )
        return doc

    def test_wellformed_alert_passes(self, check):
        args = {
            "series": "sim.health.energy_drift",
            "step": 3,
            "severity": "fatal",
            "detector": "ewma-drift",
            "value": -0.12,
        }
        assert check.validate_events(self.alert(args)) == []

    @pytest.mark.parametrize("drop", ["series", "step", "severity", "detector"])
    def test_alert_missing_promised_arg_flagged(self, check, drop):
        args = {
            "series": "sim.health.energy_drift",
            "step": 3,
            "severity": "fatal",
            "detector": "ewma-drift",
        }
        del args[drop]
        problems = check.validate_events(self.alert(args))
        assert any(f"args.{drop}" in p for p in problems), problems

    def test_monitored_run_trace_validates(self, check, tmp_path):
        """End-to-end: a traced run with a health monitor attached
        writes counter tracks and (on a leak) an alert instant, and the
        whole trace passes the schema."""
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
        from repro.observability import TraceRecorder
        from repro.observability.health import HealthPolicy

        recorder = TraceRecorder()
        driver = AdiabaticDriver(SimulationConfig(n_per_side=4, pm_mesh=8, n_steps=3))
        driver.tracer = recorder
        monitor = HealthPolicy().build(tracer=recorder)
        driver.health = monitor
        driver.run()
        # inject a leak-shaped observation so an alert instant is cut
        monitor.observe(
            "sim.health.energy_drift", step=99, value=-0.9
        )
        assert monitor.alerts
        path = recorder.write(tmp_path / "monitored.json")
        assert check.validate_file(path) == []
        document = json.loads(path.read_text())
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "C" in phases
        names = {e["name"] for e in document["traceEvents"] if e["ph"] == "i"}
        assert "alert" in names
