"""Exporters: OpenMetrics exposition and the JSONL event log."""

from __future__ import annotations

import json

import pytest

from repro.hacc.validation import Severity
from repro.observability import (
    KernelProfiler,
    MetricsRegistry,
    TraceRecorder,
)
from repro.observability.export import (
    EVENT_LOG_VERSION,
    iter_events,
    mangle_name,
    parse_openmetrics,
    read_events,
    to_openmetrics,
    write_event_log,
    write_openmetrics,
)
from repro.observability.health import Alert, HealthMonitor, ThresholdDetector

pytestmark = pytest.mark.observability


def sample_registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.counter("sim.steps").inc(5)
    metrics.gauge("sim.health.energy_drift").set(0.0123)
    hist = metrics.histogram("sim.kernel.interactions_per_item", edges=[1.0, 10.0, 100.0])
    for value in (0.5, 3.0, 3.0, 42.0, 640.0):
        hist.observe(value)
    return metrics


class TestOpenMetrics:
    def test_exposition_shape(self):
        text = to_openmetrics(sample_registry().snapshot())
        assert "# TYPE sim_steps counter" in text
        assert "sim_steps_total 5" in text
        assert "# TYPE sim_health_energy_drift gauge" in text
        assert 'sim_kernel_interactions_per_item_bucket{le="+Inf"} 5' in text
        assert "sim_kernel_interactions_per_item_count 5" in text
        assert text.rstrip().endswith("# EOF")

    def test_help_lines_come_from_glossary(self):
        text = to_openmetrics(sample_registry().snapshot())
        assert "# HELP sim_steps completed KDK steps (counter)" in text

    def test_round_trip_preserves_every_number(self):
        snapshot = sample_registry().snapshot()
        parsed = parse_openmetrics(to_openmetrics(snapshot))
        assert parsed["counters"]["sim_steps"] == 5
        assert parsed["gauges"]["sim_health_energy_drift"] == pytest.approx(0.0123)
        hist = parsed["histograms"]["sim_kernel_interactions_per_item"]
        original = snapshot["histograms"]["sim.kernel.interactions_per_item"]
        assert hist["edges"] == original["edges"]
        assert hist["counts"] == original["counts"]
        assert hist["count"] == original["count"]
        assert hist["sum"] == pytest.approx(original["sum"])

    def test_mangle_name(self):
        assert mangle_name("sim.pairs.cell_list.hits") == "sim_pairs_cell_list_hits"
        assert mangle_name("weird-name!") == "weird_name_"

    def test_unparseable_line_raises(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_openmetrics("!!! not a metric line")

    def test_write_openmetrics_accepts_registry_and_snapshot(self, tmp_path):
        metrics = sample_registry()
        p1 = write_openmetrics(tmp_path / "a.prom", metrics)
        p2 = write_openmetrics(tmp_path / "b.prom", metrics.snapshot())
        assert p1.read_text() == p2.read_text()


class TestEventLog:
    def build_sources(self):
        tracer = TraceRecorder()
        with tracer.span("step", category="step"):
            pass
        tracer.instant("retry", category="resilience", attempt=1)
        tracer.counter("sim.health.energy_drift", 0.01, category="health")
        metrics = sample_registry()
        monitor = HealthMonitor()
        monitor.attach("sim.health.energy_drift", ThresholdDetector(low=0.0))
        monitor.observe("sim.health.energy_drift", 0, 0.02)
        monitor.observe("sim.health.energy_drift", 1, -0.5)
        profiler = KernelProfiler()
        return tracer, metrics, monitor, profiler

    def test_header_first_and_versioned(self):
        events = list(iter_events(meta={"title": "t"}))
        assert events[0] == {
            "kind": "header",
            "version": EVENT_LOG_VERSION,
            "meta": {"title": "t"},
        }

    def test_all_kinds_emitted(self):
        tracer, metrics, monitor, _ = self.build_sources()
        kinds = {
            e["kind"]
            for e in iter_events(tracer=tracer, metrics=metrics, monitor=monitor)
        }
        assert kinds == {"header", "series", "alert", "span", "instant", "counter", "metrics"}

    def test_round_trip_through_file(self, tmp_path):
        tracer, metrics, monitor, _ = self.build_sources()
        path = write_event_log(
            tmp_path / "events.jsonl",
            tracer=tracer,
            metrics=metrics,
            monitor=monitor,
            meta={"title": "round trip"},
        )
        events = read_events(path)
        assert events == list(
            iter_events(
                tracer=tracer,
                metrics=metrics,
                monitor=monitor,
                meta={"title": "round trip"},
            )
        )
        series = [e for e in events if e["kind"] == "series"]
        assert [(e["step"], e["value"]) for e in series] == [(0, 0.02), (1, -0.5)]
        alerts = [e for e in events if e["kind"] == "alert"]
        assert len(alerts) == 1 and alerts[0]["step"] == 1

    def test_alerts_override_replaces_monitor_alerts(self):
        """A recovered run's cross-attempt alert list wins over the
        final (clean) monitor's empty alert log."""
        monitor = HealthMonitor()
        monitor.observe("sim.health.energy_drift", 0, 0.01)
        assert monitor.alerts == []
        override = Alert(
            series="sim.health.energy_drift",
            step=3,
            value=-0.12,
            severity=Severity.FATAL,
            detector="ewma-drift",
            message="leak",
        )
        events = list(iter_events(monitor=monitor, alerts=[override]))
        alerts = [e for e in events if e["kind"] == "alert"]
        assert len(alerts) == 1
        assert alerts[0]["step"] == 3 and alerts[0]["severity"] == "fatal"
        # plain dicts pass through too
        events = list(iter_events(alerts=[override.as_dict()]))
        assert [e for e in events if e["kind"] == "alert"] == alerts

    def test_read_events_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "header"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events(path)
        path.write_text('{"no_kind": 1}\n')
        with pytest.raises(ValueError, match="'kind' field"):
            read_events(path)

    def test_events_are_plain_json(self, tmp_path):
        tracer, metrics, monitor, profiler = self.build_sources()
        path = write_event_log(
            tmp_path / "events.jsonl",
            tracer=tracer,
            metrics=metrics,
            monitor=monitor,
            profiler=profiler,
        )
        for line in path.read_text().splitlines():
            json.loads(line)  # every line independently decodable
