"""Metric-glossary lint (``tools/check_metrics.py``): every emitted
metric name is documented, every documented name is emitted, and the
README table is current."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.observability

TOOLS = Path(__file__).resolve().parents[2] / "tools"
REPO_ROOT = TOOLS.parent


def load_check_metrics():
    name = "tool_check_metrics"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, TOOLS / "check_metrics.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return load_check_metrics()


class TestScan:
    def test_finds_known_emission_sites(self, tool):
        uses = tool.scan_metric_names()
        assert "sim.steps" in uses
        assert "sim.health.energy_drift" in uses
        assert any("timestep.py" in site for site in uses["sim.steps"])

    def test_glossary_module_excluded(self, tool):
        uses = tool.scan_metric_names()
        for sites in uses.values():
            assert not any("observability/metrics.py" in s for s in sites)


class TestLint:
    def test_repo_is_clean(self, tool):
        """The contract this PR establishes: the lint passes on the
        committed tree."""
        assert tool.lint() == []

    def test_undocumented_metric_flagged(self, tool):
        glossary = {
            name: "doc" for name in tool.scan_metric_names()
        }
        del glossary["sim.steps"]
        problems = tool.lint(glossary)
        assert any("undocumented metric 'sim.steps'" in p for p in problems)

    def test_stale_entry_flagged(self, tool):
        glossary = {name: "doc" for name in tool.scan_metric_names()}
        glossary["sim.никогда.emitted"] = "ghost"
        problems = tool.lint(glossary)
        assert any("stale glossary entry" in p for p in problems)

    def test_main_exit_codes(self, tool, capsys):
        assert tool.main([]) == 0
        assert "OK" in capsys.readouterr().out


class TestGlossaryTable:
    def test_table_lists_every_metric(self, tool):
        from repro.observability.metrics import METRIC_GLOSSARY

        table = tool.glossary_table()
        for name in METRIC_GLOSSARY:
            assert f"`{name}`" in table

    def test_write_glossary_idempotent(self, tool, tmp_path):
        target = tmp_path / "doc.md"
        target.write_text(
            "intro\n\n"
            f"{tool.GLOSSARY_BEGIN}\nstale\n{tool.GLOSSARY_END}\n\noutro\n"
        )
        assert tool.write_glossary(target) is True
        assert tool.write_glossary(target) is False
        text = target.read_text()
        assert "stale" not in text
        assert text.startswith("intro") and text.rstrip().endswith("outro")
        assert "| `sim.steps` |" in text

    def test_missing_markers_raise(self, tool, tmp_path):
        target = tmp_path / "doc.md"
        target.write_text("no markers here\n")
        with pytest.raises(ValueError, match="markers"):
            tool.write_glossary(target)

    def test_readme_table_is_current(self, tool, tmp_path):
        """The committed README glossary table matches the code."""
        readme = REPO_ROOT / "README.md"
        copy = tmp_path / "README.md"
        copy.write_text(readme.read_text())
        assert tool.write_glossary(copy) is False, (
            "README metric glossary is stale; run "
            "'python tools/check_metrics.py --write-glossary README.md'"
        )
