"""Health monitors: series buffers, detectors, alerts, escalation.

The detector tests run on *synthetic* series so each failure mode is
isolated: a slow injected leak must trip the EWMA drift detector, a
single-step spike must trip the z-score detector, and a clean (healthy
but noisy) series must trip neither.
"""

from __future__ import annotations

import math

import pytest

from repro.hacc.validation import Severity
from repro.observability import MetricsRegistry, TraceRecorder
from repro.observability.health import (
    CACHE_HIT_RATE,
    ENERGY_DRIFT,
    HEALTH_SERIES,
    KINETIC_ENERGY,
    MASS_DRIFT,
    MOMENTUM_DRIFT,
    STEP_SECONDS,
    SUBCYCLES,
    THERMAL_ENERGY,
    TOTAL_ENERGY,
    Alert,
    EWMADriftDetector,
    HealthEscalation,
    HealthMonitor,
    HealthPolicy,
    SeriesBuffer,
    ThresholdDetector,
    ZScoreSpikeDetector,
    default_monitor,
)

pytestmark = pytest.mark.observability

#: a healthy energy-drift series: small positive residuals, growing
#: slowly with structure formation (measured shape of a clean run)
CLEAN_DRIFT = [0.0009, 0.0044, 0.0157, 0.0446, 0.0381, 0.0502, 0.0475, 0.0523]


class TestSeriesBuffer:
    def test_appends_and_views(self):
        buf = SeriesBuffer("s", capacity=8)
        assert not buf
        buf.append(0, 1.0)
        buf.append(1, 2.0)
        assert len(buf) == 2
        assert buf.steps == [0, 1]
        assert buf.values == [1.0, 2.0]
        assert buf.points == [(0, 1.0), (1, 2.0)]
        assert buf.last() == (1, 2.0)

    def test_ring_evicts_oldest(self):
        buf = SeriesBuffer("s", capacity=3)
        for i in range(6):
            buf.append(i, float(i))
        assert buf.steps == [3, 4, 5]

    def test_window(self):
        buf = SeriesBuffer("s")
        for i in range(5):
            buf.append(i, float(i))
        assert buf.window(2) == [3.0, 4.0]
        assert buf.window(99) == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert buf.window(0) == []

    def test_empty_last_raises(self):
        with pytest.raises(IndexError):
            SeriesBuffer("s").last()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SeriesBuffer("s", capacity=0)


class TestThresholdDetector:
    def test_band(self):
        det = ThresholdDetector(low=-1.0, high=1.0)
        assert det.update(0, 0.0) is None
        assert "below the floor" in det.update(1, -1.5)
        assert "above the ceiling" in det.update(2, 2.0)

    def test_nan_always_alerts(self):
        det = ThresholdDetector(high=10.0)
        assert det.update(0, float("nan")) == "value is NaN"

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            ThresholdDetector()


class TestEWMADriftDetector:
    def test_slow_leak_is_caught(self):
        """A 5%/step downward shift fires within a few steps even
        though every absolute value stays far inside any hard band."""
        det = EWMADriftDetector(tolerance=0.03, direction="down")
        fired_at = None
        for step, clean in enumerate(CLEAN_DRIFT):
            leaking = clean - (0.12 if step >= 3 else 0.0)
            if det.update(step, leaking) is not None:
                fired_at = step
                break
        assert fired_at == 3  # the first leaking step

    def test_clean_series_is_silent(self):
        det = EWMADriftDetector(tolerance=0.03, direction="down")
        assert all(det.update(s, v) is None for s, v in enumerate(CLEAN_DRIFT))

    def test_direction_down_ignores_heating(self):
        det = EWMADriftDetector(tolerance=0.01, direction="down")
        # a shock: sudden extra heating is physical, not a leak
        for step, value in enumerate([0.001, 0.002, 0.001, 0.3, 0.32]):
            assert det.update(step, value) is None

    def test_direction_up_and_both(self):
        up = EWMADriftDetector(tolerance=0.01, warmup=1, direction="up")
        both = EWMADriftDetector(tolerance=0.01, warmup=1, direction="both")
        for det in (up, both):
            det.update(0, 0.0)
            det.update(1, 0.0)
        assert up.update(2, 0.5) is not None
        assert both.update(2, -0.5) is not None

    def test_warmup_defers_arming(self):
        det = EWMADriftDetector(tolerance=0.01, warmup=4, direction="both")
        # the huge jump lands while still warming up: no alert
        assert det.update(0, 0.0) is None
        assert det.update(1, 5.0) is None

    def test_step_change_is_absorbed(self):
        """The mean keeps updating through alerts, so a one-time level
        shift stops alarming once the history catches up."""
        det = EWMADriftDetector(tolerance=0.05, alpha=0.5, warmup=1, direction="both")
        for step in range(4):
            det.update(step, 0.0)
        messages = [det.update(4 + i, 1.0) for i in range(8)]
        assert messages[0] is not None
        assert messages[-1] is None

    def test_nan_alerts(self):
        det = EWMADriftDetector(tolerance=0.1)
        assert det.update(0, float("nan")) == "value is NaN"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": 0.0},
            {"tolerance": 0.1, "alpha": 0.0},
            {"tolerance": 0.1, "alpha": 1.5},
            {"tolerance": 0.1, "direction": "sideways"},
            {"tolerance": 0.1, "warmup": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EWMADriftDetector(**kwargs)


class TestZScoreSpikeDetector:
    def test_spike_is_caught(self):
        det = ZScoreSpikeDetector(z_threshold=6.0, min_points=4)
        base = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02]
        assert all(det.update(s, v) is None for s, v in enumerate(base))
        message = det.update(len(base), 5.0)
        assert message is not None and "spikes" in message

    def test_clean_noise_is_silent(self):
        det = ZScoreSpikeDetector(z_threshold=6.0, min_points=4)
        values = [1.0 + 0.05 * math.sin(i) for i in range(32)]
        assert all(det.update(s, v) is None for s, v in enumerate(values))

    def test_min_std_floor_suppresses_roundoff(self):
        det = ZScoreSpikeDetector(z_threshold=6.0, min_points=3, min_std=1e-3)
        for s in range(5):
            det.update(s, 1.0)
        # 1e-4 above a perfectly flat series: within the std floor
        assert det.update(5, 1.0 + 1e-4) is None

    def test_needs_min_points(self):
        det = ZScoreSpikeDetector(min_points=4)
        assert det.update(0, 0.0) is None
        assert det.update(1, 100.0) is None  # only 1 point of history


class TestHealthMonitor:
    def test_observe_feeds_series_and_sinks(self):
        tracer = TraceRecorder()
        metrics = MetricsRegistry()
        monitor = HealthMonitor(tracer=tracer, metrics=metrics)
        monitor.observe("sim.health.energy_drift", 0, 0.01)
        assert monitor.series("sim.health.energy_drift").values == [0.01]
        assert metrics.gauge("sim.health.energy_drift").value == 0.01
        assert [c.name for c in tracer.counters] == ["sim.health.energy_drift"]

    def test_alerts_recorded_and_mirrored(self):
        tracer = TraceRecorder()
        metrics = MetricsRegistry()
        seen: list[Alert] = []
        monitor = HealthMonitor(tracer=tracer, metrics=metrics, on_alert=seen.append)
        monitor.attach("s", ThresholdDetector(high=1.0), severity=Severity.WARN)
        monitor.observe("s", 0, 0.5)
        monitor.observe("s", 1, 2.0)
        assert len(monitor.alerts) == 1
        alert = monitor.alerts[0]
        assert alert.step == 1 and alert.severity is Severity.WARN
        assert seen == [alert]
        assert metrics.counter("sim.health.alerts").value == 1
        assert [i.name for i in tracer.instants] == ["alert"]
        assert tracer.instants[0].args["series"] == "s"

    def test_escalate_raises_only_fresh_fatals(self):
        monitor = HealthMonitor()
        monitor.attach("s", ThresholdDetector(high=0.0), severity=Severity.FATAL)
        monitor.observe("s", 0, 1.0)
        with pytest.raises(HealthEscalation) as excinfo:
            monitor.escalate()
        assert excinfo.value.alerts == tuple(monitor.alerts)
        # already escalated: a second call is silent
        monitor.escalate()
        # a *new* fatal alert escalates again
        monitor.observe("s", 1, 2.0)
        with pytest.raises(HealthEscalation):
            monitor.escalate()

    def test_warn_alerts_never_escalate(self):
        monitor = HealthMonitor()
        monitor.attach("s", ThresholdDetector(high=0.0), severity=Severity.WARN)
        monitor.observe("s", 0, 1.0)
        monitor.escalate()
        assert len(monitor.alerts) == 1

    def test_snapshot_hides_internal_series(self):
        monitor = HealthMonitor()
        monitor.observe("sim.health.subcycles", 0, 1)
        monitor.series("_scale_factor").append(0, 0.01)
        snap = monitor.snapshot()
        assert set(snap["series"]) == {"sim.health.subcycles"}
        assert snap["alerts"] == []

    def test_summary_counts(self):
        monitor = HealthMonitor()
        monitor.attach("s", ThresholdDetector(high=0.0), severity=Severity.FATAL)
        monitor.observe("s", 0, 1.0)
        text = monitor.summary()
        assert "1 alert(s) (1 fatal)" in text


class TestObserveStep:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

        metrics = MetricsRegistry()
        driver = AdiabaticDriver(
            SimulationConfig(n_per_side=6, pm_mesh=8, n_steps=5)
        )
        driver.metrics = metrics
        monitor = default_monitor(metrics=metrics)
        driver.health = monitor
        driver.run()
        return driver, monitor

    def test_all_standard_series_recorded(self, run):
        driver, monitor = run
        names = set(monitor.series_names())
        # guard_hit_rate only exists when a KernelGuard is screening
        # (the resilience runner's path); everything else is standard
        for name in HEALTH_SERIES:
            if name == "sim.health.guard_hit_rate":
                continue
            assert name in names, name

    def test_series_lengths(self, run):
        driver, monitor = run
        steps = len(driver.diagnostics)
        for name in (
            KINETIC_ENERGY,
            THERMAL_ENERGY,
            TOTAL_ENERGY,
            MOMENTUM_DRIFT,
            MASS_DRIFT,
            STEP_SECONDS,
            SUBCYCLES,
        ):
            assert len(monitor.series(name)) == steps, name
        # the drift series needs a previous step: one point fewer
        assert len(monitor.series(ENERGY_DRIFT)) == steps - 1

    def test_clean_run_raises_no_alerts(self, run):
        _, monitor = run
        assert monitor.alerts == []

    def test_energy_drift_is_nonnegative_on_clean_run(self, run):
        """The physics grounding: beyond the exact adiabatic factor a
        healthy run only heats, so every residual is >= 0 (tiny
        negative round-off would be caught by the tolerance)."""
        _, monitor = run
        drift = monitor.series(ENERGY_DRIFT).values
        assert drift and all(v > -1e-9 for v in drift)

    def test_cache_hit_rate_derived_from_metrics(self, run):
        _, monitor = run
        rates = monitor.series(CACHE_HIT_RATE).values
        assert rates and all(0.0 <= r <= 1.0 for r in rates)

    def test_mass_and_momentum_drift_tiny(self, run):
        _, monitor = run
        assert max(monitor.series(MASS_DRIFT).values) == 0.0
        assert max(monitor.series(MOMENTUM_DRIFT).values) < 1e-9


class TestHealthPolicy:
    def test_default_policy_catches_injected_leak(self):
        """Synthetic end-to-end: feeding the policy's monitor a drift
        series with a leak fires the EWMA detector at FATAL."""
        monitor = HealthPolicy().build()
        for step, clean in enumerate(CLEAN_DRIFT):
            monitor.observe(ENERGY_DRIFT, step, clean - (0.12 if step >= 4 else 0))
        assert monitor.fatal_alerts
        assert monitor.fatal_alerts[0].detector == "ewma-drift"
        assert monitor.fatal_alerts[0].step == 4

    def test_energy_floor_is_instant(self):
        monitor = HealthPolicy(energy_floor=0.5).build()
        monitor.observe(ENERGY_DRIFT, 0, -0.7)
        assert monitor.fatal_alerts  # no warmup on the hard floor

    def test_escalation_severity_configurable(self):
        monitor = HealthPolicy(escalation=Severity.WARN).build()
        for step in range(6):
            monitor.observe(ENERGY_DRIFT, step, -0.2 * (step + 1))
        assert monitor.alerts and not monitor.fatal_alerts
        monitor.escalate()  # does not raise

    def test_step_spike_watch_optional(self):
        on = HealthPolicy(step_spike_z=4.0).build()
        off = HealthPolicy(step_spike_z=None).build()
        base = [1.0, 1.02, 0.98, 1.01, 0.99, 1.0]
        for monitor in (on, off):
            for step, value in enumerate(base):
                monitor.observe(STEP_SECONDS, step, value)
            monitor.observe(STEP_SECONDS, len(base), 30.0)
        assert on.alerts and on.alerts[0].severity is Severity.WARN
        assert off.alerts == []
