"""Tests for the perf observatory (``tools/perf_report.py``)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.observability

TOOLS = Path(__file__).resolve().parents[2] / "tools"
REPO_ROOT = TOOLS.parent


def load_perf_report():
    name = "tool_perf_report"
    if name in sys.modules:
        return sys.modules[name]
    spec = importlib.util.spec_from_file_location(name, TOOLS / "perf_report.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def tool():
    return load_perf_report()


def trajectory(baseline, current, name="bench"):
    return {"benchmark": name, "runs": [baseline, current]}


class TestMetricDirection:
    @pytest.mark.parametrize(
        "name", ["pairs_per_sec", "speedup_vs_legacy", "cache_hit_rate", "throughput"]
    )
    def test_higher_is_better(self, tool, name):
        assert tool.metric_direction(name) == "up"

    @pytest.mark.parametrize(
        "name", ["step_seconds_cached", "wall_time", "latency_p99", "kernel_ns"]
    )
    def test_lower_is_better(self, tool, name):
        assert tool.metric_direction(name) == "down"

    @pytest.mark.parametrize("name", ["n_pairs", "world_size", "checksum"])
    def test_informational(self, tool, name):
        assert tool.metric_direction(name) == "none"


class TestAnalyzeTrajectory:
    def test_rate_regression_flagged(self, tool):
        doc = trajectory({"pairs_per_sec": 1000.0}, {"pairs_per_sec": 400.0})
        (report,) = tool.analyze_trajectory(doc, band=2.0)
        assert report.regressed
        assert report.worse_factor == pytest.approx(2.5)

    def test_time_regression_flagged(self, tool):
        doc = trajectory({"step_seconds": 0.5}, {"step_seconds": 1.5})
        (report,) = tool.analyze_trajectory(doc, band=2.0)
        assert report.regressed and report.worse_factor == pytest.approx(3.0)

    def test_improvement_and_within_band_pass(self, tool):
        doc = trajectory(
            {"pairs_per_sec": 1000.0, "step_seconds": 1.0},
            {"pairs_per_sec": 1500.0, "step_seconds": 1.8},
        )
        reports = tool.analyze_trajectory(doc, band=2.0)
        assert not any(r.regressed for r in reports)

    def test_informational_metric_never_gates(self, tool):
        doc = trajectory({"n_pairs": 100}, {"n_pairs": 100000})
        (report,) = tool.analyze_trajectory(doc, band=2.0)
        assert report.direction == "none" and not report.regressed

    def test_single_run_yields_nothing(self, tool):
        assert tool.analyze_trajectory({"benchmark": "b", "runs": [{"x": 1}]}) == []

    def test_non_numeric_and_missing_metrics_skipped(self, tool):
        doc = trajectory(
            {"pairs_per_sec": 1.0, "label": "seed", "flag": True, "extra": 2.0},
            {"pairs_per_sec": 1.0, "label": "now", "flag": False},
        )
        reports = tool.analyze_trajectory(doc)
        assert [r.metric for r in reports] == ["pairs_per_sec"]

    def test_degenerate_baseline_is_worse_inf(self, tool):
        doc = trajectory({"step_seconds": 0.0}, {"step_seconds": 1.0})
        (report,) = tool.analyze_trajectory(doc, band=2.0)
        assert report.worse_factor == float("inf") and report.regressed


class TestMain:
    def write(self, tmp_path, doc, name="BENCH_x.json"):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_clean(self, tool, tmp_path, capsys):
        path = self.write(
            tmp_path, trajectory({"pairs_per_sec": 1.0}, {"pairs_per_sec": 1.1})
        )
        assert tool.main([path]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_exit_one_on_regression(self, tool, tmp_path, capsys):
        path = self.write(
            tmp_path, trajectory({"pairs_per_sec": 10.0}, {"pairs_per_sec": 1.0})
        )
        assert tool.main([path]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_band_is_configurable(self, tool, tmp_path):
        path = self.write(
            tmp_path, trajectory({"step_seconds": 1.0}, {"step_seconds": 1.6})
        )
        assert tool.main([path]) == 0  # within the default 2x
        assert tool.main(["--band", "1.5", path]) == 1

    def test_json_output(self, tool, tmp_path, capsys):
        path = self.write(
            tmp_path, trajectory({"pairs_per_sec": 10.0}, {"pairs_per_sec": 1.0})
        )
        assert tool.main(["--json", path]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["regressions"] == 1
        assert document["metrics"][0]["metric"] == "pairs_per_sec"

    def test_malformed_file_is_an_error(self, tool, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{}")
        assert tool.main([str(path)]) == 2
        assert "runs" in capsys.readouterr().err

    def test_profile_summary_from_event_log(self, tool, tmp_path, capsys):
        sys.path.insert(0, str(REPO_ROOT / "src"))
        events = tmp_path / "events.jsonl"
        events.write_text(
            "\n".join(
                json.dumps(e)
                for e in [
                    {"kind": "header", "version": 1},
                    {
                        "kind": "profile",
                        "kernel": "upBarAcF",
                        "device": "PVC",
                        "seconds": 1.5,
                        "calls": 10,
                        "bound": "memory",
                    },
                ]
            )
        )
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(
            json.dumps(trajectory({"pairs_per_sec": 1.0}, {"pairs_per_sec": 1.0}))
        )
        assert tool.main(["--profile", str(events), str(bench)]) == 0
        out = capsys.readouterr().out
        assert "hottest kernels" in out and "upBarAcF" in out

    def test_committed_trajectory_gates_clean(self, tool, capsys):
        """The repo's own BENCH_pairs.json must pass its own gate."""
        bench = REPO_ROOT / "BENCH_pairs.json"
        assert tool.main([str(bench)]) == 0
