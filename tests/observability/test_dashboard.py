"""Terminal dashboard: sparklines, state folding, frame rendering."""

from __future__ import annotations

import io

import pytest

from repro.observability.dashboard import (
    DashboardState,
    LiveDashboard,
    load_events,
    render,
    sparkline,
)
from repro.observability.export import write_event_log
from repro.observability.health import HealthMonitor, ThresholdDetector
from repro.observability import TraceRecorder

pytestmark = pytest.mark.observability


class TestSparkline:
    def test_scales_to_window(self):
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(line) == 3

    def test_flat_series_renders_mid_blocks(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"

    def test_non_finite_marked(self):
        line = sparkline([0.0, float("nan"), 1.0, float("inf")])
        assert line[1] == "!" and line[3] == "!"

    def test_all_non_finite(self):
        assert sparkline([float("nan")] * 3) == "!!!"

    def test_window_truncates(self):
        assert len(sparkline(range(100), width=10)) == 10

    def test_empty(self):
        assert sparkline([]) == ""


class TestDashboardState:
    def test_series_records_set_step_count(self):
        state = DashboardState()
        state.apply({"kind": "series", "name": "s", "step": 0, "value": 1.0})
        state.apply({"kind": "series", "name": "s", "step": 4, "value": 2.0})
        assert state.steps == 5
        assert state.values("s") == [1.0, 2.0]

    def test_counter_skipped_when_series_already_fed(self):
        """The monitor mirrors each series point onto a trace counter
        track; the dashboard must not double-count the pair."""
        state = DashboardState()
        state.apply({"kind": "series", "name": "s", "step": 0, "value": 1.0})
        state.apply({"kind": "counter", "name": "s", "ts": 0.1, "pid": 0, "value": 1.0})
        assert state.values("s") == [1.0]

    def test_counter_only_series_still_sparklines(self):
        state = DashboardState()
        for i in range(3):
            state.apply(
                {"kind": "counter", "name": "c", "ts": 0.1 * i, "pid": 0, "value": float(i)}
            )
        assert state.values("c") == [0.0, 1.0, 2.0]

    def test_step_spans_backfill_only_without_series(self):
        """Step spans repeat per rank and per recovery attempt, so
        they are a last-resort step count."""
        bare = DashboardState()
        for _ in range(6):  # 2 ranks x 3 steps
            bare.apply({"kind": "span", "category": "step", "duration": 0.5})
        assert bare.steps == 6  # no better signal available

        informed = DashboardState()
        informed.apply({"kind": "series", "name": "s", "step": 2, "value": 1.0})
        for _ in range(6):
            informed.apply({"kind": "span", "category": "step", "duration": 0.5})
        assert informed.steps == 3  # series step index wins

    def test_step_rate_prefers_health_series(self):
        state = DashboardState()
        for step in range(4):
            state.apply(
                {
                    "kind": "series",
                    "name": "sim.health.step_seconds",
                    "step": step,
                    "value": 0.5,
                }
            )
        # spans from 2 ranks would double the elapsed time
        for _ in range(8):
            state.apply({"kind": "span", "category": "step", "duration": 0.5})
        assert state.step_rate == pytest.approx(2.0)

    def test_alerts_and_instants_accumulate(self):
        state = DashboardState()
        state.apply({"kind": "alert", "series": "s", "step": 1, "severity": "fatal"})
        state.apply({"kind": "instant", "name": "retry", "category": "resilience", "args": {}})
        assert len(state.alerts) == 1
        assert len(state.events) == 1


class TestRender:
    def make_state(self):
        state = DashboardState()
        state.meta = {"title": "test run"}
        for step in range(6):
            state.apply(
                {
                    "kind": "series",
                    "name": "sim.health.energy_drift",
                    "step": step,
                    "value": 0.01 * step,
                }
            )
        return state

    def test_header_and_sparkline(self):
        frame = render(self.make_state())
        assert "test run" in frame
        assert "step 6" in frame
        assert "energy drift" in frame
        assert "0 alert(s) (0 fatal)" in frame

    def test_alert_section(self):
        state = self.make_state()
        state.apply(
            {
                "kind": "alert",
                "series": "sim.health.energy_drift",
                "step": 3,
                "severity": "fatal",
                "message": "leaking",
            }
        )
        frame = render(state)
        assert "1 alert(s) (1 fatal)" in frame
        assert "[FATAL" in frame and "leaking" in frame

    def test_empty_state_renders(self):
        frame = render(DashboardState())
        assert "no health series recorded" in frame

    def test_width_respected(self):
        frame = render(self.make_state(), width=60)
        assert all(len(line) <= 60 for line in frame.splitlines())


class TestLoadEvents:
    def test_round_trip_from_event_log(self, tmp_path):
        tracer = TraceRecorder()
        monitor = HealthMonitor(tracer=tracer)
        monitor.attach("sim.health.energy_drift", ThresholdDetector(low=0.0))
        for step, value in enumerate([0.01, 0.02, -0.3]):
            monitor.observe("sim.health.energy_drift", step, value)
        path = write_event_log(
            tmp_path / "events.jsonl",
            tracer=tracer,
            monitor=monitor,
            meta={"title": "replay"},
        )
        state = load_events(path)
        assert state.meta["title"] == "replay"
        assert state.values("sim.health.energy_drift") == [0.01, 0.02, -0.3]
        assert len(state.alerts) == 1
        frame = render(state)
        assert "replay" in frame and "1 alert(s)" in frame


class TestLiveDashboard:
    def test_pipe_mode_prints_on_cadence(self):
        stream = io.StringIO()
        live = LiveDashboard(stream, plain_every=3)
        for step in range(6):
            live.update(
                [{"kind": "series", "name": "sim.health.subcycles", "step": step, "value": 1.0}]
            )
        frames = stream.getvalue().count("repro telemetry")
        assert frames == 3  # first update + every 3rd

    def test_finish_always_prints_final_frame(self):
        stream = io.StringIO()
        live = LiveDashboard(stream, plain_every=100)
        live.update(
            [{"kind": "series", "name": "sim.health.subcycles", "step": 0, "value": 1.0}]
        )
        live.finish()
        assert stream.getvalue().count("step 1") >= 1

    def test_tty_mode_uses_ansi_repaint(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        live = LiveDashboard(stream)
        live.update([])
        live.update([])
        assert "\x1b[2J" in stream.getvalue()  # initial clear
        assert "\x1b[H\x1b[J" in stream.getvalue()  # repaint
