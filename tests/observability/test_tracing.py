"""Tests for the span recorder and its Chrome-trace export."""

import json
import threading

import pytest

from repro.observability import (
    DEFAULT_TRACK,
    TraceRecorder,
    maybe_span,
)

pytestmark = pytest.mark.observability


class FakeClock:
    """A monotonic clock the tests advance by hand."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def recorder(clock):
    return TraceRecorder(clock=clock)


class TestSpanNesting:
    def test_nested_spans_record_depth_and_path(self, recorder, clock):
        with recorder.span("step"):
            clock.advance(1.0)
            with recorder.span("kernel"):
                clock.advance(0.5)
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["step"].depth == 0
        assert by_name["step"].path == "step"
        assert by_name["kernel"].depth == 1
        assert by_name["kernel"].path == "step/kernel"

    def test_inner_span_closes_first_but_timestamps_order(self, recorder, clock):
        with recorder.span("outer"):
            clock.advance(1.0)
            with recorder.span("inner"):
                clock.advance(2.0)
            clock.advance(1.0)
        inner, outer = recorder.spans_named("inner")[0], recorder.spans_named("outer")[0]
        # the inner span is recorded first (it closes first) ...
        assert [s.name for s in recorder.spans] == ["inner", "outer"]
        # ... but the timeline nests it inside the outer span
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration == pytest.approx(4.0)
        assert inner.duration == pytest.approx(2.0)

    def test_siblings_share_depth_and_parent_path(self, recorder, clock):
        with recorder.span("step"):
            with recorder.span("a"):
                clock.advance(0.1)
            with recorder.span("b"):
                clock.advance(0.1)
        a, b = recorder.spans_named("a")[0], recorder.spans_named("b")[0]
        assert a.depth == b.depth == 1
        assert a.path == "step/a"
        assert b.path == "step/b"
        assert a.end <= b.start

    def test_span_survives_body_exception(self, recorder, clock):
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                clock.advance(1.0)
                raise RuntimeError("kernel fault")
        (span,) = recorder.spans_named("doomed")
        assert span.duration == pytest.approx(1.0)

    def test_span_args_recorded(self, recorder):
        with recorder.span("step", category="step", step=3):
            pass
        (span,) = recorder.spans
        assert span.category == "step"
        assert span.args == {"step": 3}

    def test_maybe_span_none_recorder_is_noop(self, recorder):
        with maybe_span(None, "x"):
            pass
        with maybe_span(recorder, "y"):
            pass
        assert [s.name for s in recorder.spans] == ["y"]


class TestRawSpansAndInstants:
    def test_add_span_explicit_timeline(self, recorder):
        span = recorder.add_span("k", begin=2.0, end=3.5, pid=7, tid=1)
        assert span.start == 2.0
        assert span.duration == pytest.approx(1.5)
        assert span.pid == 7 and span.tid == 1

    def test_add_span_rejects_negative_duration(self, recorder):
        with pytest.raises(ValueError, match="ends before it begins"):
            recorder.add_span("k", begin=2.0, end=1.0)

    def test_instant_records_timestamp_and_args(self, recorder, clock):
        clock.advance(4.0)
        event = recorder.instant("fault:kill_rank", category="fault", rank=3)
        assert event.ts == pytest.approx(4.0)
        assert event.category == "fault"
        assert event.args == {"rank": 3}


class TestTracks:
    def test_default_track(self, recorder):
        with recorder.span("x"):
            pass
        assert recorder.spans[0].pid == DEFAULT_TRACK

    def test_rank_threads_get_their_own_tracks(self, recorder):
        def rank_fn(rank):
            with recorder.track(rank, name=f"rank {rank}"):
                with recorder.span(f"step-r{rank}"):
                    pass

        threads = [
            threading.Thread(target=rank_fn, args=(r,)) for r in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert recorder.tracks() == {0, 1, 2}
        # each thread got a distinct tid lane
        assert len({(s.pid, s.tid) for s in recorder.spans}) == 3

    def test_track_restores_previous_pid(self, recorder):
        with recorder.track(5):
            pass
        with recorder.span("after"):
            pass
        assert recorder.spans[0].pid == DEFAULT_TRACK

    def test_merge_with_pid_offset(self, recorder):
        other = TraceRecorder(clock=FakeClock())
        with other.track(0, name="rank 0"):
            other.add_span("k", begin=0.0, end=1.0, pid=0)
        other.instant("e", pid=1, ts=0.5)
        recorder.add_span("local", begin=0.0, end=1.0)
        recorder.merge(other, pid_offset=10)
        assert recorder.tracks() == {DEFAULT_TRACK, 10, 11}
        merged = recorder.spans_named("k")[0]
        assert merged.pid == 10


class TestChromeExport:
    def test_export_is_schema_valid(self, recorder, clock, tmp_path):
        from tests.observability.test_check_trace import load_check_trace

        recorder.name_track(0, "rank 0")
        with recorder.span("step", category="step"):
            clock.advance(1.0)
            with recorder.span("upGeo", category="kernel"):
                clock.advance(0.5)
        recorder.instant("fault", category="fault", rank=0)
        path = recorder.write(tmp_path / "trace.json")
        check = load_check_trace()
        assert check.validate_file(path) == []

    def test_export_round_trips_through_json(self, recorder, clock, tmp_path):
        with recorder.span("step"):
            clock.advance(0.25)
        path = recorder.write(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        (x,) = [e for e in events if e["ph"] == "X"]
        assert x["name"] == "step"
        assert x["ts"] == pytest.approx(0.0)
        assert x["dur"] == pytest.approx(0.25e6)  # microseconds
        assert isinstance(x["pid"], int) and isinstance(x["tid"], int)
        assert x["args"]["path"] == "step"

    def test_named_tracks_export_metadata_events(self, recorder):
        recorder.name_track(1, "rank 1")
        recorder.add_span("k", begin=0.0, end=1.0, pid=1)
        events = recorder.to_chrome_trace()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta == [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "rank 1"},
            }
        ]

    def test_instants_export_with_scope(self, recorder):
        recorder.instant("fault", ts=1.0)
        (event,) = [
            e for e in recorder.to_chrome_trace()["traceEvents"] if e["ph"] == "i"
        ]
        assert event["s"] == "t"
        assert event["ts"] == pytest.approx(1e6)


class TestFlameSummary:
    def test_self_time_subtracts_children(self, recorder, clock):
        with recorder.span("step"):
            clock.advance(1.0)
            with recorder.span("kernel"):
                clock.advance(3.0)
        text = recorder.flame_summary()
        lines = text.splitlines()
        # hottest total first: step (4s) before step/kernel (3s)
        assert lines[1].startswith("step ")
        assert lines[2].startswith("step/kernel")
        total_s, self_s = lines[1].split()[-2:]
        assert float(total_s) == pytest.approx(4.0)
        assert float(self_s) == pytest.approx(1.0)  # 4s minus the 3s child
        kernel_total, kernel_self = lines[2].split()[-2:]
        assert float(kernel_total) == float(kernel_self) == pytest.approx(3.0)

    def test_empty_recorder(self, recorder):
        assert "no spans" in recorder.flame_summary()
