"""End-to-end observability: traced runs, rank tracks, CLI artefacts."""

import json

import pytest

from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.kernels.specs import HOTSPOT_KERNELS, TIMER_TO_KERNEL
from repro.observability import MetricsRegistry, TraceRecorder

pytestmark = pytest.mark.observability

SMALL = SimulationConfig(n_per_side=6, pm_mesh=8, n_steps=2)


def kernels_with_spans(tracer):
    """The hot-kernel spec names that have at least one kernel span."""
    return {
        TIMER_TO_KERNEL[s.name]
        for s in tracer.spans
        if s.category == "kernel" and s.name in TIMER_TO_KERNEL
    }


class TestTracedDriver:
    def test_steps_nest_all_five_hot_kernels(self):
        tracer = TraceRecorder()
        metrics = MetricsRegistry()
        driver = AdiabaticDriver(SMALL)
        driver.tracer = tracer
        driver.metrics = metrics
        driver.run()

        steps = [s for s in tracer.spans if s.category == "step"]
        assert len(steps) == SMALL.n_steps
        assert set(HOTSPOT_KERNELS) <= kernels_with_spans(tracer)
        # kernel spans nest inside their step span
        kernel_spans = [s for s in tracer.spans if s.category == "kernel"]
        assert kernel_spans
        for span in kernel_spans:
            assert span.depth == 1
            assert span.path.startswith("step ")

    def test_metrics_count_the_run(self):
        metrics = MetricsRegistry()
        driver = AdiabaticDriver(SMALL)
        driver.metrics = metrics
        driver.run()
        counters = metrics.snapshot()["counters"]
        assert counters["sim.steps"] == SMALL.n_steps
        assert counters["sim.kernel.launches"] == len(driver.trace.invocations)
        assert counters["sim.kernel.interactions"] > 0
        hist = metrics.snapshot()["histograms"]["sim.kernel.interactions_per_item"]
        assert hist["count"] > 0

    def test_untraced_run_unchanged(self):
        # observability off by default: no recorder, no overhead hooks
        driver = AdiabaticDriver(SMALL)
        assert driver.tracer is None and driver.metrics is None
        driver.run()  # must not raise


@pytest.mark.faults
class TestTracedWorld:
    def test_multirank_run_merges_per_rank_tracks(self):
        from repro.resilience import run_simulation

        tracer = TraceRecorder()
        metrics = MetricsRegistry()
        run_simulation(
            SMALL, world_size=3, timeout=60.0, tracer=tracer, metrics=metrics
        )
        # one track per rank, merged into one timeline
        assert {0, 1, 2} <= tracer.tracks()
        for rank in range(3):
            rank_steps = [
                s
                for s in tracer.spans
                if s.pid == rank and s.category == "step"
            ]
            assert len(rank_steps) == SMALL.n_steps
        # collectives traced on their rank's track
        mpi = [s for s in tracer.spans if s.category == "mpi"]
        assert {s.args["rank"] for s in mpi} == {0, 1, 2}
        counters = metrics.snapshot()["counters"]
        assert counters["mpi.collective.calls"] >= 3 * SMALL.n_steps

    def test_faulted_run_traces_fault_and_retry(self, tmp_path):
        from repro.resilience import run_simulation
        from repro.resilience.faults import FaultPlan, FaultSpec

        tracer = TraceRecorder()
        metrics = MetricsRegistry()
        plan = FaultPlan(faults=(FaultSpec(kind="kill_rank", rank=1, step=1),))
        result = run_simulation(
            SMALL,
            world_size=2,
            timeout=60.0,
            checkpoint_dir=tmp_path,
            fault_plan=plan,
            tracer=tracer,
            metrics=metrics,
        )
        assert result.recovered
        names = [e.name for e in tracer.instants]
        assert "fault:kill_rank" in names
        assert "rank-death" in names
        assert "retry" in names
        assert "checkpoint-write" in names
        counters = metrics.snapshot()["counters"]
        assert counters["resilience.faults_injected"] == 1.0
        assert counters["resilience.retries"] == 1.0
        assert counters["resilience.rank_failures"] >= 1.0
        assert counters["checkpoint.bytes"] > 0.0
        # the retried steps still produce hot-kernel spans
        assert set(HOTSPOT_KERNELS) <= kernels_with_spans(tracer)


class TestCLI:
    def run_cli(self, argv, capsys):
        from repro.__main__ import main

        code = main(argv)
        return code, capsys.readouterr().out

    def test_simulate_trace_flags_write_artefacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        code, out = self.run_cli(
            [
                "simulate",
                "-n", "6",
                "--steps", "2",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ],
            capsys,
        )
        assert code == 0
        assert "trace written" in out
        doc = json.loads(trace_path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        assert json.loads(metrics_path.read_text())["counters"]["sim.steps"] == 2

    def test_trace_command_validates_and_covers_hot_kernels(self, tmp_path, capsys):
        from tests.observability.test_check_trace import load_check_trace

        trace_path = tmp_path / "trace.json"
        code, out = self.run_cli(
            [
                "trace",
                "-n", "6",
                "--steps", "2",
                "--device", "Aurora",
                "-o", str(trace_path),
                "--metrics-out", str(tmp_path / "metrics.json"),
            ],
            capsys,
        )
        assert code == 0
        assert load_check_trace().validate_file(trace_path) == []
        doc = json.loads(trace_path.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        covered = {TIMER_TO_KERNEL[n] for n in names if n in TIMER_TO_KERNEL}
        assert set(HOTSPOT_KERNELS) <= covered
        # the device replay adds a simulated-device track
        assert any(e["pid"] >= 100 for e in doc["traceEvents"])

    def test_profile_command_prints_annotated_table(self, capsys):
        code, out = self.run_cli(["profile", "Frontier", "-n", "6"], capsys)
        assert code == 0
        assert "%roof" in out
        assert "upGeo" in out
