"""Tests for the kernel profiler and the executor's incremental ledger."""

import pytest

from repro.machine.cost_model import InstructionProfile, KernelLaunch
from repro.machine.executor import DeviceExecutor
from repro.machine.registry import AURORA, FRONTIER
from repro.observability import (
    DEVICE_TRACK_BASE,
    KernelProfiler,
    MetricsRegistry,
    TraceRecorder,
    format_profile_table,
    profile_trace,
)

pytestmark = pytest.mark.observability


def submit(executor, name="k", fma=100.0, n=1 << 16, subgroup=64):
    profile = InstructionProfile(
        fma=fma, global_bytes=64.0, atomic_adds=1.0, registers_needed=32
    )
    launch = KernelLaunch(n_workitems=n, subgroup_size=subgroup)
    return executor.submit(name, profile, launch)


class TestExecutorLedger:
    def test_aggregates_update_incrementally(self):
        executor = DeviceExecutor(FRONTIER)
        submit(executor, "a")
        assert executor.calls_by_kernel() == {"a": 1}
        submit(executor, "a")
        submit(executor, "b", fma=200.0)
        assert executor.calls_by_kernel() == {"a": 2, "b": 1}
        by = executor.seconds_by_kernel()
        assert by["a"] == pytest.approx(
            sum(r.seconds for r in executor.records if r.kernel_name == "a")
        )
        assert executor.total_seconds() == pytest.approx(
            sum(r.seconds for r in executor.records)
        )

    def test_records_for_returns_per_kernel_records(self):
        executor = DeviceExecutor(FRONTIER)
        submit(executor, "a")
        submit(executor, "b")
        submit(executor, "a", fma=50.0)
        records = executor.records_for("a")
        assert [r.kernel_name for r in records] == ["a", "a"]
        assert executor.records_for("missing") == []
        # a copy: mutating it does not corrupt the ledger
        records.clear()
        assert len(executor.records_for("a")) == 2

    def test_observer_sees_every_submission(self):
        executor = DeviceExecutor(FRONTIER)
        seen = []
        executor.add_observer(lambda record, profile: seen.append(record.kernel_name))
        submit(executor, "a")
        submit(executor, "b")
        assert seen == ["a", "b"]

    def test_reset_clears_aggregates(self):
        executor = DeviceExecutor(FRONTIER)
        submit(executor, "a")
        executor.reset()
        assert executor.calls_by_kernel() == {}
        assert executor.seconds_by_kernel() == {}
        assert executor.records_for("a") == []


class TestKernelProfiler:
    def test_aggregates_match_executor_ledger(self):
        profiler = KernelProfiler()
        executor = profiler.attach(DeviceExecutor(FRONTIER))
        submit(executor, "upGeo")
        submit(executor, "upGeo")
        submit(executor, "upCor", fma=200.0)
        rows = {r.kernel: r for r in profiler.rows()}
        assert rows["upGeo"].calls == 2
        assert rows["upGeo"].seconds == pytest.approx(
            executor.seconds_by_kernel()["upGeo"]
        )
        assert rows["upGeo"].device == FRONTIER.system

    def test_rows_carry_cost_model_annotations(self):
        profiler = KernelProfiler()
        executor = profiler.attach(DeviceExecutor(FRONTIER))
        submit(executor, "upGeo")
        (row,) = profiler.rows()
        record = executor.records[0]
        assert 0.0 < row.occupancy <= 1.0
        assert row.occupancy == pytest.approx(record.cost.occupancy.occupancy)
        assert row.limited_by == record.cost.occupancy.limited_by
        assert row.stall_factor >= 1.0
        assert row.bound in ("compute", "memory")
        assert row.intensity > 0.0
        assert row.achieved_tflops > 0.0
        # the synthetic profile is not roofline-consistent, so only
        # positivity holds here; the reference trace is bounded below
        assert row.peak_fraction > 0.0

    def test_device_track_spans_in_simulated_seconds(self):
        tracer = TraceRecorder()
        profiler = KernelProfiler(tracer=tracer)
        executor = profiler.attach(DeviceExecutor(FRONTIER))
        submit(executor, "upGeo")
        submit(executor, "upCor")
        spans = tracer.spans
        assert [s.name for s in spans] == ["upGeo", "upCor"]
        assert all(s.pid == DEVICE_TRACK_BASE for s in spans)
        assert all(s.category == "kernel-sim" for s in spans)
        # back-to-back on the simulated timeline, starting at zero
        assert spans[0].start == 0.0
        assert spans[1].start == pytest.approx(spans[0].end)
        assert spans[0].args["limited_by"]
        assert "peak_fraction" in spans[0].args

    def test_two_devices_get_distinct_tracks(self):
        tracer = TraceRecorder()
        profiler = KernelProfiler(tracer=tracer)
        ex_a = profiler.attach(DeviceExecutor(FRONTIER))
        ex_b = profiler.attach(DeviceExecutor(AURORA))
        submit(ex_a, "upGeo")
        submit(ex_b, "upGeo", subgroup=16)  # Aurora PVC has no SG-64
        pids = {s.pid for s in tracer.spans}
        assert pids == {DEVICE_TRACK_BASE, DEVICE_TRACK_BASE + 1}
        rows = profiler.rows()
        assert {r.device for r in rows} == {FRONTIER.system, AURORA.system}

    def test_metrics_counters_updated(self):
        metrics = MetricsRegistry()
        profiler = KernelProfiler(metrics=metrics)
        executor = profiler.attach(DeviceExecutor(FRONTIER))
        submit(executor, "upGeo")
        submit(executor, "upCor")
        snap = metrics.snapshot()["counters"]
        assert snap["device.kernel.launches"] == 2.0
        assert snap["device.kernel.seconds"] == pytest.approx(
            executor.total_seconds()
        )


class TestProfileTrace:
    def test_profile_of_reference_trace_covers_hot_timers(self, reference_trace):
        from repro.kernels.specs import HOTSPOT_TIMERS

        profiler = profile_trace(reference_trace, FRONTIER)
        kernels = {r.kernel for r in profiler.rows()}
        assert set(HOTSPOT_TIMERS) <= kernels
        # real kernels stay under the roofline ceiling
        assert all(0.0 < r.peak_fraction <= 1.0 for r in profiler.rows())

    def test_table_renders_one_line_per_row(self, reference_trace):
        profiler = profile_trace(reference_trace, FRONTIER)
        table = format_profile_table(profiler.rows())
        lines = table.splitlines()
        assert len(lines) == 2 + len(profiler.rows())
        assert "%roof" in lines[0]

    def test_empty_table(self):
        assert "no kernel launches" in format_profile_table([])
