"""Follow-mode dashboard: tailing a growing JSONL event log.

A writer thread plays the part of a live ``repro serve --events-out``
process, appending records with flushes between them, while the
follower reads concurrently — the real race the feature exists for.
"""

from __future__ import annotations

import io
import json
import threading
import time

from repro.observability.dashboard import follow_dashboard, follow_events

HEADER = {"kind": "header", "version": 1, "meta": {"title": "t"}}
METRICS = {"kind": "metrics", "snapshot": {"counters": {}}}


def _instant(i):
    return {
        "kind": "instant",
        "name": f"job-{i}",
        "category": "service",
        "ts": float(i),
        "pid": 0,
        "args": {},
    }


def _write_slowly(path, records, delay=0.02):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            time.sleep(delay)


class TestFollowEvents:
    def test_tails_a_growing_file_to_the_metrics_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [HEADER, _instant(0), _instant(1), _instant(2), METRICS]
        writer = threading.Thread(target=_write_slowly, args=(path, records))
        writer.start()
        try:
            seen = list(follow_events(path, poll=0.01))
        finally:
            writer.join()
        assert [r["kind"] for r in seen] == [
            "header",
            "instant",
            "instant",
            "instant",
            "metrics",
        ]

    def test_waits_for_the_file_to_appear(self, tmp_path):
        path = tmp_path / "late.jsonl"

        def create_later():
            time.sleep(0.1)
            _write_slowly(path, [HEADER, METRICS], delay=0)

        writer = threading.Thread(target=create_later)
        writer.start()
        try:
            seen = list(follow_events(path, poll=0.01))
        finally:
            writer.join()
        assert len(seen) == 2

    def test_duration_limit_stops_an_unfinished_log(self, tmp_path):
        path = tmp_path / "stuck.jsonl"
        _write_slowly(path, [HEADER, _instant(0)], delay=0)  # no metrics record
        start = time.monotonic()
        seen = list(follow_events(path, poll=0.01, duration=0.2))
        assert time.monotonic() - start < 2.0
        assert [r["kind"] for r in seen] == ["header", "instant"]

    def test_partial_line_is_buffered_until_complete(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        line = json.dumps(_instant(7)) + "\n"
        with open(path, "w") as handle:
            handle.write(json.dumps(HEADER) + "\n")
            handle.write(line[: len(line) // 2])  # torn mid-record
            handle.flush()

            def finish():
                time.sleep(0.1)
                handle.write(line[len(line) // 2 :])
                handle.write(json.dumps(METRICS) + "\n")
                handle.flush()

            writer = threading.Thread(target=finish)
            writer.start()
            try:
                seen = list(follow_events(path, poll=0.01))
            finally:
                writer.join()
        assert [r["kind"] for r in seen] == ["header", "instant", "metrics"]
        assert seen[1]["name"] == "job-7"


class TestFollowDashboard:
    def test_renders_live_and_returns_final_state(self, tmp_path):
        path = tmp_path / "events.jsonl"
        records = [HEADER, _instant(0), _instant(1), METRICS]
        writer = threading.Thread(
            target=_write_slowly, args=(path, records), kwargs={"delay": 0.01}
        )
        writer.start()
        stream = io.StringIO()
        try:
            state = follow_dashboard(path, stream=stream, poll=0.01)
        finally:
            writer.join()
        assert len(state.events) == 2
        assert state.meta == {"title": "t"}
        out = stream.getvalue()
        assert "job-0" in out and "job-1" in out
