"""Tests for the per-table/figure regenerators."""

import pytest

from repro.experiments import (
    ablations,
    figure2,
    figure12,
    figure13,
    figures9_11,
    table1,
    table2,
)


class TestTable1:
    def test_rows_match_paper_values(self):
        rows = {r["system"]: r for r in table1.generate()}
        for paper_row in table1.PAPER_TABLE1:
            system = paper_row["system"]
            assert rows[system]["gpu"] == paper_row["gpu"]
            assert rows[system]["num_gpus"] == paper_row["num_gpus"]
            assert rows[system]["fp32_peak_per_gpu_tflops"] == pytest.approx(
                paper_row["fp32_peak_per_gpu_tflops"]
            )

    def test_format_contains_all_systems(self):
        text = table1.format_table()
        for system in ("Aurora", "Polaris", "Frontier"):
            assert system in text


class TestFigure2:
    def test_bar_set(self, reference_trace):
        bars = figure2.generate(reference_trace)
        labels = {(b.system, b.label) for b in bars}
        assert ("Polaris", "CUDA") in labels
        assert ("Frontier", "HIP (fast math)") in labels
        assert ("Aurora", "SYCL (optimized)") in labels
        assert len(bars) == 8

    def test_all_bars_positive(self, reference_trace):
        assert all(b.seconds > 0 for b in figure2.generate(reference_trace))

    def test_format_renders(self, reference_trace):
        text = figure2.format_figure(figure2.generate(reference_trace))
        assert "GPU kernel time" in text


class TestFigures9to11:
    def test_tables_for_all_systems(self, reference_trace):
        tables = figures9_11.generate(reference_trace)
        assert set(tables) == {"Aurora", "Polaris", "Frontier"}

    def test_visa_only_on_aurora(self, reference_trace):
        tables = figures9_11.generate(reference_trace)
        assert "visa" in tables["Aurora"].efficiencies
        assert "visa" not in tables["Polaris"].efficiencies
        assert "visa" not in tables["Frontier"].efficiencies

    def test_best_variant_has_efficiency_one(self, reference_trace):
        tables = figures9_11.generate(reference_trace)
        for table in tables.values():
            for timer in table.timers:
                best = table.best_variant(timer)
                assert table.efficiencies[best][timer] == pytest.approx(1.0)

    def test_format_renders(self, reference_trace):
        table = figures9_11.generate(reference_trace)["Aurora"]
        text = figures9_11.format_figure(table)
        assert "upGeo" in text and "select" in text


class TestFigure12:
    def test_paper_pp_reference_table(self):
        assert figure12.PAPER_PP["SYCL (Select + vISA)"] == 0.96

    def test_format_includes_paper_column(self, reference_trace):
        text = figure12.format_figure(figure12.generate(reference_trace))
        assert "0.96" in text
        assert "Unified" in text


class TestFigure13:
    def test_points_generated(self, reference_trace, tmp_path):
        points = figure13.generate(reference_trace, codebase_root=tmp_path / "src")
        names = {p.name for p in points}
        assert "Unified" in names
        assert "SYCL (Select + vISA)" in names

    def test_format_renders(self, reference_trace, tmp_path):
        points = figure13.generate(reference_trace, codebase_root=tmp_path / "src")
        text = figure13.format_figure(points)
        assert "convergence" in text


class TestTable2:
    def test_rows_and_format(self, tmp_path):
        rows = table2.generate(tmp_path / "src")
        by = {r["implementations"]: r["sloc"] for r in rows}
        assert by["Total"] == 85_179
        text = table2.format_table(rows)
        assert "85,179" in text


class TestAblations:
    def test_register_sweep_covers_four_configs(self, reference_trace):
        points = ablations.register_sweep(reference_trace)
        kernels = {p.kernel for p in points}
        configs = {(p.subgroup_size, p.grf_mode) for p in points}
        assert len(configs) == 4
        assert "upBarAc" in kernels

    def test_best_register_config_is_kernel_specific(self, reference_trace):
        best = ablations.best_register_config(
            ablations.register_sweep(reference_trace)
        )
        # Section 5.2: "the best combination ... varied across kernels"
        assert len(set(best.values())) >= 2

    def test_exchange_crossover_object_wins_large_payloads(self):
        points = ablations.exchange_crossover(max_words=16)
        for system in ("Aurora", "Polaris", "Frontier"):
            sys_points = [p for p in points if p.system == system]
            large = [p for p in sys_points if p.payload_words >= 8]
            assert all(p.object_wins for p in large), system

    def test_exchange_crossover_tie_at_one_word(self):
        points = ablations.exchange_crossover(max_words=2)
        ties = [p for p in points if p.payload_words == 1]
        for p in ties:
            assert p.cycles_object == pytest.approx(p.cycles_32bit)

    def test_specialization_gain_at_least_one(self, reference_trace):
        rows = ablations.specialization_gain(reference_trace)
        assert {r.system for r in rows} == {"Aurora", "Polaris", "Frontier"}
        for r in rows:
            assert r.gain >= 1.0 - 1e-12

    def test_aurora_gains_most_from_specialization(self, reference_trace):
        rows = {r.system: r for r in ablations.specialization_gain(reference_trace)}
        assert rows["Aurora"].gain >= rows["Polaris"].gain
        assert rows["Aurora"].gain >= rows["Frontier"].gain
