"""Tests for the standalone-kernel exploration (Section 7.2)."""

import pytest

from repro.experiments.standalone import (
    checkpoint_workload,
    explore_all,
    explore_kernel,
    format_study,
)
from repro.hacc.checkpoint import KernelCheckpoint
from repro.machine.registry import AURORA, POLARIS


@pytest.fixture(scope="module")
def checkpoint(reference_driver):
    return KernelCheckpoint.capture(reference_driver.particles)


class TestCheckpointWorkload:
    def test_single_invocation(self, checkpoint):
        trace = checkpoint_workload(checkpoint, "upBarAc")
        assert len(trace.invocations) == 1
        inv = trace.invocations[0]
        assert inv.n_workitems == checkpoint.n_particles
        assert inv.interactions_per_item > 10


class TestExploration:
    def test_ranking_sorted(self, checkpoint):
        study = explore_kernel(checkpoint, "acceleration", AURORA)
        times = [c.seconds for c in study.ranking]
        assert times == sorted(times)
        assert study.upper_bound_speedup > 1.0

    def test_aurora_space_includes_visa_and_grf(self, checkpoint):
        study = explore_kernel(checkpoint, "geometry", AURORA)
        names = {c.variant.name for c in study.ranking}
        assert "visa" in names
        grf_modes = {c.grf_mode.value for c in study.ranking}
        assert grf_modes == {"small", "large"}

    def test_polaris_space_excludes_visa_and_sg16(self, checkpoint):
        study = explore_kernel(checkpoint, "geometry", POLARIS)
        assert all(c.variant.name != "visa" for c in study.ranking)
        assert all(c.subgroup_size == 32 for c in study.ranking)

    def test_aurora_upper_bound_headroom_is_large(self, checkpoint):
        # the exploration's reason to exist: the config space spans
        # multiples of performance on Aurora
        study = explore_kernel(checkpoint, "acceleration", AURORA)
        assert study.upper_bound_speedup > 2.5

    def test_all_hotspots(self, checkpoint):
        studies = explore_all(checkpoint, AURORA)
        assert set(studies) == {
            "geometry",
            "corrections",
            "extras",
            "acceleration",
            "energy",
        }

    def test_unknown_kernel_rejected(self, checkpoint):
        with pytest.raises(KeyError):
            explore_kernel(checkpoint, "agn_feedback", AURORA)

    def test_format_renders(self, checkpoint):
        text = format_study(explore_kernel(checkpoint, "energy", AURORA))
        assert "energy on Aurora" in text
        assert "us" in text


class TestTimerIntegration:
    """End-to-end: bracket timers over a priced replay agree with the
    executor ledger (the rocprof validation, Section 3.4.4)."""

    def test_bracketed_replay_validates(self, reference_trace):
        from repro.kernels.adiabatic import TracePricer, executor_timers
        from repro.proglang.model import ProgrammingModel
        from repro.timers import validate_against_profiler

        pricer = TracePricer(AURORA, ProgrammingModel.SYCL, "memory_object")
        holder = {}

        def make_timers(executor):
            holder["executor"] = executor
            holder["timers"] = executor_timers(executor)
            return holder["timers"]

        report = pricer.price(reference_trace, timers=make_timers)
        diffs = validate_against_profiler(holder["timers"], holder["executor"])
        assert diffs
        assert all(d <= 1e-9 for d in diffs.values())
        # and the bracket totals equal the report's per-timer seconds
        # up to the compiler-variability factor (identity for SYCL)
        for timer, seconds in report.seconds_by_timer.items():
            assert holder["timers"].total(timer) == pytest.approx(seconds)
