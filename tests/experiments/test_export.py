"""Tests for the JSON artefact export."""

import json

import pytest

from repro.experiments.export import (
    SCHEMA_VERSION,
    export_all,
    figure2_payload,
    figure12_payload,
    load_export,
)


class TestPayloads:
    def test_figure2_payload_shape(self, reference_trace):
        payload = figure2_payload(reference_trace)
        assert len(payload["bars"]) == 8
        assert "aurora_optimization_factor" in payload["checks"]

    def test_figure12_payload_includes_paper_targets(self, reference_trace):
        payload = figure12_payload(reference_trace)
        assert payload["paper_pp"]["SYCL (Select + vISA)"] == 0.96
        assert set(payload["pp"]) >= set(payload["paper_pp"])


class TestExportRoundTrip:
    @pytest.fixture(scope="class")
    def exported(self, reference_trace, tmp_path_factory):
        path = tmp_path_factory.mktemp("export") / "artifacts.json"
        export_all(reference_trace, path)
        return path

    def test_document_is_valid_json(self, exported):
        document = json.loads(exported.read_text())
        assert document["schema_version"] == SCHEMA_VERSION

    def test_all_artifacts_present(self, exported):
        document = load_export(exported)
        assert set(document) == {
            "schema_version",
            "table1",
            "figure2",
            "figures9_11",
            "figure12",
            "figure13",
            "table2",
            "ablations",
        }

    def test_table2_total_in_export(self, exported):
        document = load_export(exported)
        totals = [
            r for r in document["table2"] if r["implementations"] == "Total"
        ]
        assert totals[0]["sloc"] == 85_179

    def test_figures9_11_cover_three_systems(self, exported):
        document = load_export(exported)
        assert set(document["figures9_11"]) == {"Aurora", "Polaris", "Frontier"}

    def test_version_check(self, exported, tmp_path):
        document = json.loads(exported.read_text())
        document["schema_version"] = 999
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_export(bad)
