"""Tests for the Section 5.3.1 compiler-lowering what-if study."""

import pytest

from repro.experiments.ablations import compiler_lowering_study


@pytest.fixture(scope="module")
def study(reference_trace):
    return compiler_lowering_study(reference_trace)


class TestCompilerLowering:
    def test_lowering_improves_out_of_box_pp(self, study):
        # the proposal's point: out-of-box migrated code gets better
        # without any source change
        assert study.pp_select_lowered > study.pp_select + 0.2

    def test_lowering_matches_hand_specialisation(self, study):
        # the lowering substitutes exactly what the hand-specialised
        # Select+Memory configuration does, so it recovers ~all of it
        assert study.pp_select_lowered == pytest.approx(
            study.pp_hand_specialised, abs=0.02
        )
        assert study.lowering_recovers > 0.9

    def test_select_baseline_is_the_out_of_box_pp(self, study):
        assert 0.4 < study.pp_select < 0.8
