"""Figure 2: initial migrated SYCL vs CUDA/HIP, and the optimized SYCL.

The figure's story (Section 4.4):

1. out of the box, the migrated SYCL code *beats* CUDA on Polaris and
   HIP on Frontier -- because DPC++ defaults to fast math while
   nvcc/hipcc do not;
2. recompiling CUDA/HIP with fast-math flags closes the gap (SYCL
   stays very slightly ahead, compilers differ per kernel);
3. the initial SYCL performance on Aurora is far below what the
   hardware peaks suggest; the Section 5 optimizations (variant
   selection, large GRF, sub-group 16 for broadcast kernels) improve
   it by ~2.4x, bringing Aurora in line with Frontier.

``generate()`` returns one row per bar of the figure: total GPU kernel
seconds for each (system, configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.workload import reference_trace
from repro.hacc.timestep import WorkloadTrace
from repro.kernels.adiabatic import best_variant_map, price_trace
from repro.machine.registry import AURORA, FRONTIER, POLARIS
from repro.proglang.model import ProgrammingModel


@dataclass(frozen=True)
class Bar:
    """One bar of Figure 2."""

    system: str
    label: str
    seconds: float


def generate(trace: WorkloadTrace | None = None) -> list[Bar]:
    """All bars of Figure 2."""
    trace = trace if trace is not None else reference_trace()
    bars: list[Bar] = []

    # Polaris: CUDA (default = precise math), CUDA + fast math, SYCL
    cuda_default = price_trace(trace, POLARIS, ProgrammingModel.CUDA, "select")
    cuda_fast = price_trace(
        trace, POLARIS, ProgrammingModel.CUDA, "select", fast_math=True
    )
    sycl_polaris = price_trace(trace, POLARIS, ProgrammingModel.SYCL, "select")
    bars += [
        Bar("Polaris", "CUDA", cuda_default.total_seconds),
        Bar("Polaris", "CUDA (fast math)", cuda_fast.total_seconds),
        Bar("Polaris", "SYCL (initial)", sycl_polaris.total_seconds),
    ]

    # Frontier: HIP, HIP + fast math, SYCL
    hip_default = price_trace(trace, FRONTIER, ProgrammingModel.HIP, "select")
    hip_fast = price_trace(
        trace, FRONTIER, ProgrammingModel.HIP, "select", fast_math=True
    )
    sycl_frontier = price_trace(trace, FRONTIER, ProgrammingModel.SYCL, "select")
    bars += [
        Bar("Frontier", "HIP", hip_default.total_seconds),
        Bar("Frontier", "HIP (fast math)", hip_fast.total_seconds),
        Bar("Frontier", "SYCL (initial)", sycl_frontier.total_seconds),
    ]

    # Aurora: initial migration (Select everywhere, sub-group 32) and
    # the optimized configuration (per-kernel best variant)
    sycl_initial = price_trace(trace, AURORA, ProgrammingModel.SYCL, "select")
    best = best_variant_map(trace, AURORA, ProgrammingModel.SYCL)
    sycl_optimized = price_trace(trace, AURORA, ProgrammingModel.SYCL, best)
    bars += [
        Bar("Aurora", "SYCL (initial)", sycl_initial.total_seconds),
        Bar("Aurora", "SYCL (optimized)", sycl_optimized.total_seconds),
    ]
    return bars


def headline_checks(bars: list[Bar] | None = None) -> dict[str, float]:
    """The figure's quantitative claims, as named ratios."""
    bars = bars if bars is not None else generate()
    by = {(b.system, b.label): b.seconds for b in bars}
    return {
        # initial SYCL significantly outperforms default CUDA/HIP
        "cuda_over_sycl_initial": by[("Polaris", "CUDA")]
        / by[("Polaris", "SYCL (initial)")],
        "hip_over_sycl_initial": by[("Frontier", "HIP")]
        / by[("Frontier", "SYCL (initial)")],
        # fast math closes the gap (ratio ~1, SYCL slightly ahead)
        "cuda_fast_over_sycl": by[("Polaris", "CUDA (fast math)")]
        / by[("Polaris", "SYCL (initial)")],
        "hip_fast_over_sycl": by[("Frontier", "HIP (fast math)")]
        / by[("Frontier", "SYCL (initial)")],
        # the Aurora optimization factor (paper: 2.4x)
        "aurora_optimization_factor": by[("Aurora", "SYCL (initial)")]
        / by[("Aurora", "SYCL (optimized)")],
    }


def format_figure(bars: list[Bar] | None = None) -> str:
    bars = bars if bars is not None else generate()
    lines = [f"{'System':<9} {'Configuration':<20} {'GPU kernel time':>16}"]
    lines.append("-" * len(lines[0]))
    for b in bars:
        lines.append(f"{b.system:<9} {b.label:<20} {b.seconds * 1e3:>13.3f} ms")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_figure())
    for k, v in headline_checks().items():
        print(f"{k}: {v:.2f}")
