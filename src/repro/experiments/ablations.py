"""Ablations beyond the paper's headline figures.

Three studies the paper motivates but does not tabulate:

- :func:`register_sweep` -- Section 5.2's register-pressure controls
  on Aurora: GRF mode x sub-group size (the "4x increase in available
  registers per work-item").  The paper states the best combination is
  kernel-specific; the sweep regenerates that conclusion.
- :func:`exchange_crossover` -- Memory, 32-bit vs Memory, Object as a
  function of payload size: the object exchange amortises barriers, so
  there is a payload size beyond which it always wins.
- :func:`specialization_gain` -- Section 6's trade-off: single-variant
  configurations vs per-kernel best selection, per platform.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.workload import reference_trace
from repro.hacc.timestep import WorkloadTrace
from repro.kernels.adiabatic import (
    AdiabaticKernelDefinition,
    best_variant_map,
    price_trace,
)
from repro.kernels.specs import KERNEL_SPECS
from repro.kernels.variants import ALL_VARIANTS, variant_by_name
from repro.machine.cost_model import CostModel, KernelLaunch
from repro.machine.device import GRFMode
from repro.machine.memory import MemoryModel
from repro.machine.registry import AURORA, all_devices
from repro.proglang.model import CompileError, ProgrammingModel


# ---------------------------------------------------------------------------
# Section 5.2: GRF mode x sub-group size on Aurora
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegisterSweepPoint:
    kernel: str
    subgroup_size: int
    grf_mode: str
    registers_per_workitem: int
    seconds: float


def register_sweep(trace: WorkloadTrace | None = None) -> list[RegisterSweepPoint]:
    """Per-kernel timing across the four register configurations."""
    trace = trace if trace is not None else reference_trace()
    # the local-memory variant's exchange cost is independent of the
    # sub-group size, so the sweep isolates the register-pressure
    # effect Section 5.2 describes
    variant = variant_by_name("memory_object")
    cost_model = CostModel(AURORA)
    points: list[RegisterSweepPoint] = []
    by_kernel = trace.by_kernel()
    for timer, invocations in by_kernel.items():
        from repro.kernels.specs import TIMER_TO_KERNEL

        spec = KERNEL_SPECS[TIMER_TO_KERNEL[timer]]
        for sg in (16, 32):
            for grf in (GRFMode.SMALL, GRFMode.LARGE):
                total = 0.0
                for inv in invocations:
                    definition = AdiabaticKernelDefinition(
                        spec, variant, inv.interactions_per_item, timer=timer
                    )
                    profile = definition.profile(
                        AURORA, subgroup_size=sg, fast_math=True
                    )
                    launch = KernelLaunch(
                        n_workitems=inv.n_workitems,
                        subgroup_size=sg,
                        grf_mode=grf,
                        fast_math=True,
                    )
                    total += cost_model.kernel_cost(profile, launch).seconds
                points.append(
                    RegisterSweepPoint(
                        kernel=timer,
                        subgroup_size=sg,
                        grf_mode=grf.value,
                        registers_per_workitem=AURORA.registers_per_workitem(sg, grf),
                        seconds=total,
                    )
                )
    return points


def best_register_config(points: list[RegisterSweepPoint]) -> dict[str, tuple[int, str]]:
    """Per-kernel best (sub-group, GRF mode) -- kernel-specific, per
    the paper's observation."""
    best: dict[str, RegisterSweepPoint] = {}
    for p in points:
        if p.kernel not in best or p.seconds < best[p.kernel].seconds:
            best[p.kernel] = p
    return {k: (p.subgroup_size, p.grf_mode) for k, p in best.items()}


# ---------------------------------------------------------------------------
# Memory, 32-bit vs Memory, Object crossover
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CrossoverPoint:
    system: str
    payload_words: int
    cycles_32bit: float
    cycles_object: float

    @property
    def object_wins(self) -> bool:
        return self.cycles_object < self.cycles_32bit


def exchange_crossover(max_words: int = 16) -> list[CrossoverPoint]:
    """Exchange cost vs payload size for both local-memory variants."""
    points = []
    for device in all_devices():
        memory = MemoryModel(device)
        for words in range(1, max_words + 1):
            c32 = words * memory.local_exchange(
                1, workgroup_size=128, separate_barriers=True
            ).cycles
            cobj = memory.local_exchange(
                words, workgroup_size=128, separate_barriers=False
            ).cycles
            points.append(
                CrossoverPoint(
                    system=device.system,
                    payload_words=words,
                    cycles_32bit=c32,
                    cycles_object=cobj,
                )
            )
    return points


# ---------------------------------------------------------------------------
# Section 5.3.1's what-if: a compiler that lowers select_from_group to
# work-group local memory on Intel hardware
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompilerLoweringStudy:
    """PP of out-of-box Select code, with and without the lowering.

    "It is conceivable that future SYCL compilers could directly map
    usage of sycl::select_from_group to work-group local memory on the
    Intel Data Center GPU Max 1550 and thereby improve the out-of-box
    performance of migrated SYCL codes."  The study quantifies that
    proposal: the same single-source Select code, with the compiler
    transparently substituting the local-memory exchange on
    indirect-access hardware.
    """

    pp_select: float
    pp_select_lowered: float
    pp_hand_specialised: float

    @property
    def lowering_recovers(self) -> float:
        """Fraction of the hand-specialisation benefit the compiler
        lowering captures (1.0 = all of it)."""
        gain_full = self.pp_hand_specialised - self.pp_select
        if gain_full <= 0:
            return 1.0
        return (self.pp_select_lowered - self.pp_select) / gain_full


def compiler_lowering_study(trace: WorkloadTrace | None = None) -> CompilerLoweringStudy:
    """Quantify the Section 5.3.1 compiler-lowering proposal."""
    from repro.core.cascade import cascade_data
    from repro.core.specialization import Configuration, PlatformChoice
    from repro.machine.device import ShuffleImplementation
    from repro.proglang.model import ProgrammingModel

    trace = trace if trace is not None else reference_trace()

    sycl = ProgrammingModel.SYCL
    lowered = Configuration(
        "SYCL (Select, compiler-lowered)",
        {
            # the lowering fires only where shuffles are indirect
            d.system: PlatformChoice(
                sycl,
                "memory_object"
                if d.shuffle_impl is ShuffleImplementation.INDIRECT_REGISTER
                else "select",
            )
            for d in all_devices()
        },
    )
    from repro.core.specialization import standard_configurations

    configs = standard_configurations() + [lowered]
    data = cascade_data(trace, configs)
    return CompilerLoweringStudy(
        pp_select=data.pp["SYCL (Select)"],
        pp_select_lowered=data.pp["SYCL (Select, compiler-lowered)"],
        pp_hand_specialised=data.pp["SYCL (Select + Memory)"],
    )


# ---------------------------------------------------------------------------
# Section 6: specialization gain per platform
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SpecializationRow:
    system: str
    best_single_variant: str
    single_seconds: float
    specialized_seconds: float

    @property
    def gain(self) -> float:
        return self.single_seconds / self.specialized_seconds


def specialization_gain(trace: WorkloadTrace | None = None) -> list[SpecializationRow]:
    """Best single variant vs per-kernel best selection, per system."""
    trace = trace if trace is not None else reference_trace()
    rows = []
    for device in all_devices():
        singles = {}
        for v in ALL_VARIANTS:
            try:
                singles[v.name] = price_trace(
                    trace, device, ProgrammingModel.SYCL, v
                ).total_seconds
            except CompileError:
                continue
        best_single = min(singles, key=singles.get)
        best_map = best_variant_map(trace, device, ProgrammingModel.SYCL)
        specialized = price_trace(
            trace, device, ProgrammingModel.SYCL, best_map
        ).total_seconds
        rows.append(
            SpecializationRow(
                system=device.system,
                best_single_variant=best_single,
                single_seconds=singles[best_single],
                specialized_seconds=specialized,
            )
        )
    return rows


if __name__ == "__main__":  # pragma: no cover
    for kernel, cfg in best_register_config(register_sweep()).items():
        print(f"{kernel}: best sub-group={cfg[0]}, GRF={cfg[1]}")
    for row in specialization_gain():
        print(
            f"{row.system}: best single={row.best_single_variant}, "
            f"specialization gain={row.gain:.2f}x"
        )
