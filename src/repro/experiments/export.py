"""Machine-readable export of every experiment artefact.

Downstream analysis (plotting notebooks, regression dashboards) wants
the figures as data, not text.  ``export_all`` serialises every table
and figure to one JSON document with a stable schema; individual
``<artefact>_payload`` functions expose the same dictionaries
programmatically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments import figure2, figure12, figure13, figures9_11, table1, table2
from repro.experiments.ablations import exchange_crossover, specialization_gain
from repro.hacc.timestep import WorkloadTrace

SCHEMA_VERSION = 1


def table1_payload() -> list[dict]:
    return table1.generate()


def figure2_payload(trace: WorkloadTrace) -> dict:
    bars = figure2.generate(trace)
    return {
        "bars": [
            {"system": b.system, "label": b.label, "seconds": b.seconds}
            for b in bars
        ],
        "checks": figure2.headline_checks(bars),
    }


def figures9_11_payload(trace: WorkloadTrace) -> dict:
    tables = figures9_11.generate(trace)
    return {
        system: {
            "timers": list(table.timers),
            "efficiencies": table.efficiencies,
        }
        for system, table in tables.items()
    }


def figure12_payload(trace: WorkloadTrace) -> dict:
    data = figure12.generate(trace)
    return {
        "platforms": data.platforms,
        "pp": data.pp,
        "efficiencies": data.efficiencies,
        "paper_pp": figure12.PAPER_PP,
    }


def figure13_payload(trace: WorkloadTrace) -> list[dict]:
    return [
        {
            "configuration": p.name,
            "performance_portability": p.performance_portability,
            "code_convergence": p.code_convergence,
        }
        for p in figure13.generate(trace)
    ]


def table2_payload() -> list[dict]:
    return table2.generate()


def ablations_payload(trace: WorkloadTrace) -> dict:
    return {
        "specialization_gain": [
            {
                "system": r.system,
                "best_single_variant": r.best_single_variant,
                "gain": r.gain,
            }
            for r in specialization_gain(trace)
        ],
        "exchange_crossover": [
            {
                "system": p.system,
                "payload_words": p.payload_words,
                "cycles_32bit": p.cycles_32bit,
                "cycles_object": p.cycles_object,
            }
            for p in exchange_crossover()
        ],
    }


def export_all(trace: WorkloadTrace, path: str | Path) -> Path:
    """Write every artefact to ``path`` as one JSON document."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "table1": table1_payload(),
        "figure2": figure2_payload(trace),
        "figures9_11": figures9_11_payload(trace),
        "figure12": figure12_payload(trace),
        "figure13": figure13_payload(trace),
        "table2": table2_payload(),
        "ablations": ablations_payload(trace),
    }
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_export(path: str | Path) -> dict:
    """Load and version-check an exported document."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"export schema {version} not supported (expected {SCHEMA_VERSION})"
        )
    return document
