"""Standalone-kernel performance exploration (Section 7.2).

"Working with these standalone kernels helped us to establish an upper
bound for achievable performance, and ultimately drove us to develop
each of the SYCL variants outlined in Section 5."

This experiment reproduces that workflow quantitatively: from a
checkpoint of the gas state it derives the kernel's exact interaction
statistics, prices every legal (variant, sub-group, GRF) configuration
on a device, and reports the ranking -- the per-kernel upper bound the
paper's authors chased.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hacc.checkpoint import KernelCheckpoint
from repro.hacc.sph.pairs import PairContext
from repro.hacc.timestep import WorkloadTrace
from repro.kernels.specs import KERNEL_SPECS
from repro.kernels.tuning import TunedConfig, autotune
from repro.machine.device import DeviceSpec


@dataclass(frozen=True)
class StandaloneStudy:
    """Outcome of a standalone exploration for one kernel."""

    kernel: str
    device: str
    n_particles: int
    interactions_per_item: float
    #: every priced configuration, fastest first
    ranking: tuple[TunedConfig, ...]

    @property
    def best(self) -> TunedConfig:
        return self.ranking[0]

    @property
    def upper_bound_speedup(self) -> float:
        """Best over worst configuration -- the exploration headroom."""
        return self.ranking[-1].seconds / self.ranking[0].seconds


def checkpoint_workload(checkpoint: KernelCheckpoint, timer: str) -> WorkloadTrace:
    """Build the single-kernel workload trace a checkpoint implies."""
    ctx = PairContext.build(checkpoint.pos, checkpoint.h, checkpoint.box)
    trace = WorkloadTrace()
    trace.record(timer, checkpoint.n_particles, ctx.mean_neighbors())
    return trace


def explore_kernel(
    checkpoint: KernelCheckpoint, kernel: str, device: DeviceSpec
) -> StandaloneStudy:
    """Price every legal configuration of one kernel on one device."""
    spec = KERNEL_SPECS.get(kernel)
    if spec is None:
        raise KeyError(f"unknown kernel {kernel!r}; known: {sorted(KERNEL_SPECS)}")
    timer = spec.timers[0]
    trace = checkpoint_workload(checkpoint, timer)

    # reuse the tuner's exhaustive search, then flatten its per-config
    # pricing into a full ranking by re-running the inner sweep
    from repro.kernels.adiabatic import AdiabaticKernelDefinition
    from repro.kernels.tuning import _grf_modes, _kernel_seconds
    from repro.kernels.variants import ALL_VARIANTS
    from repro.machine.cost_model import CostModel
    from repro.proglang.compiler import DEFAULT_WORKGROUP_SIZE

    cost_model = CostModel(device)
    invocations = trace.by_kernel()[timer]
    priced: list[TunedConfig] = []
    for variant in ALL_VARIANTS:
        if not variant.supported(device):
            continue
        for sg in device.subgroup_sizes:
            if DEFAULT_WORKGROUP_SIZE % sg != 0:
                continue
            for grf in _grf_modes(device):
                seconds = _kernel_seconds(
                    device, cost_model, kernel, invocations, variant, sg, grf
                )
                priced.append(
                    TunedConfig(
                        kernel=kernel,
                        variant=variant,
                        subgroup_size=sg,
                        grf_mode=grf,
                        seconds=seconds,
                    )
                )
    priced.sort(key=lambda c: c.seconds)
    return StandaloneStudy(
        kernel=kernel,
        device=device.system,
        n_particles=checkpoint.n_particles,
        interactions_per_item=trace.invocations[0].interactions_per_item,
        ranking=tuple(priced),
    )


def explore_all(
    checkpoint: KernelCheckpoint, device: DeviceSpec
) -> dict[str, StandaloneStudy]:
    """Standalone studies for all five hot kernels."""
    from repro.kernels.specs import HOTSPOT_KERNELS

    return {
        kernel: explore_kernel(checkpoint, kernel, device)
        for kernel in HOTSPOT_KERNELS
    }


def format_study(study: StandaloneStudy, top: int = 5) -> str:
    lines = [
        f"{study.kernel} on {study.device}: {study.n_particles} particles, "
        f"{study.interactions_per_item:.1f} interactions/particle, "
        f"{study.upper_bound_speedup:.1f}x best-to-worst spread",
    ]
    for config in study.ranking[:top]:
        lines.append(
            f"  {config.variant.name:<14} sg{config.subgroup_size:<3} "
            f"{config.grf_mode.value:<6} {config.seconds * 1e6:9.1f} us"
        )
    return "\n".join(lines)
