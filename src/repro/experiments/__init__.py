"""Experiment regenerators: one module per table/figure of the paper.

========================  ==========================================
Module                    Paper artefact
========================  ==========================================
:mod:`.table1`            Table 1 (hardware configuration)
:mod:`.figure2`           Figure 2 (initial vs optimized, fast math)
:mod:`.figures9_11`       Figures 9-11 (variant efficiency per system)
:mod:`.figure12`          Figure 12 (cascade plot / PP)
:mod:`.figure13`          Figure 13 (navigation chart)
:mod:`.table2`            Table 2 (SLOC breakdown)
:mod:`.ablations`         Section 5.2 register sweep + exchange-size
                          crossover (beyond-paper ablations)
========================  ==========================================

All regenerators work from a shared cached physics run
(:func:`repro.experiments.workload.reference_trace`), so the full
suite prices one workload many ways rather than re-simulating.
"""

from repro.experiments.workload import reference_trace, workload_config

__all__ = ["reference_trace", "workload_config"]
