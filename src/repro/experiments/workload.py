"""The shared experiment workload.

The paper's test problem is 2x 512^3 particles over 8 ranks, five
steps from z = 200 to z = 50 (Section 3.4).  The reproduction scales
the per-rank particle count down (the box shrinks with it, preserving
the mass resolution exactly as the paper's own scaling rule does) and
runs the same five steps.  The resulting workload trace -- kernel
launches with their interaction counts -- is what every experiment
prices on the virtual GPUs.

The trace is cached per configuration, so the experiment suite runs
the physics once.
"""

from __future__ import annotations

from functools import lru_cache

from repro.hacc.timestep import AdiabaticDriver, SimulationConfig, WorkloadTrace

#: default per-rank particle grid for experiments (2x n^3 particles);
#: small enough for seconds-scale physics, large enough for stable
#: neighbour statistics
DEFAULT_N_PER_SIDE = 8


def workload_config(n_per_side: int = DEFAULT_N_PER_SIDE) -> SimulationConfig:
    """The paper's test problem at reproduction scale."""
    return SimulationConfig(
        n_per_side=n_per_side,
        z_initial=200.0,
        z_final=50.0,
        n_steps=5,
        pm_mesh=max(8, n_per_side),
    )


@lru_cache(maxsize=4)
def _cached_run(n_per_side: int) -> tuple[WorkloadTrace, tuple]:
    driver = AdiabaticDriver(workload_config(n_per_side))
    diagnostics = tuple(driver.run())
    return driver.trace, diagnostics


def reference_trace(n_per_side: int = DEFAULT_N_PER_SIDE) -> WorkloadTrace:
    """The cached workload trace of the reference physics run."""
    trace, _diags = _cached_run(n_per_side)
    return trace


def reference_diagnostics(n_per_side: int = DEFAULT_N_PER_SIDE):
    """Per-step conservation diagnostics of the reference run."""
    _trace, diags = _cached_run(n_per_side)
    return diags
