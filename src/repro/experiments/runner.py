"""Run every experiment and print the paper-shaped output.

``python -m repro.experiments.runner`` regenerates all tables and
figures in one pass (sharing the cached physics run) -- the quickest
way to see the whole reproduction.
"""

from __future__ import annotations

from repro.experiments import figure2, figure12, figure13, figures9_11, table1, table2
from repro.experiments.ablations import (
    best_register_config,
    compiler_lowering_study,
    register_sweep,
    specialization_gain,
)
from repro.experiments.workload import reference_trace


def run_all(verbose: bool = True) -> dict[str, object]:
    """Regenerate every artefact; returns them keyed by name."""
    trace = reference_trace()
    results: dict[str, object] = {}

    results["table1"] = table1.generate()
    results["figure2"] = figure2.generate(trace)
    results["figure2_checks"] = figure2.headline_checks(results["figure2"])
    results["figures9_11"] = figures9_11.generate(trace)
    results["figure12"] = figure12.generate(trace)
    results["figure13"] = figure13.generate(trace)
    results["table2"] = table2.generate()
    results["ablation_registers"] = best_register_config(register_sweep(trace))
    results["ablation_specialization"] = specialization_gain(trace)

    from repro.machine.cpu import pp_with_cpu
    from repro.machine.registry import AURORA
    from repro.machine.roofline import roofline_for_trace
    from repro.migrate.stats import bundled_migration_stats

    results["migration_stats"] = bundled_migration_stats()
    results["roofline_aurora"] = roofline_for_trace(trace, AURORA)
    results["cpu_outlook"] = pp_with_cpu(trace)
    results["compiler_lowering"] = compiler_lowering_study(trace)

    import tempfile
    from pathlib import Path

    from repro.core.codebase import analyze_model, generate_codebase
    from repro.core.maintenance import kernel_change_factors

    root = Path(tempfile.mkdtemp(prefix="crkhacc-runner-")) / "src"
    generate_codebase(root)
    results["maintenance_factors"] = kernel_change_factors(analyze_model(root))

    if verbose:
        print("=" * 72)
        print("Table 1: hardware configuration")
        print(table1.format_table(results["table1"]))
        print()
        print("Figure 2: initial vs optimized GPU kernel time")
        print(figure2.format_figure(results["figure2"]))
        for k, v in results["figure2_checks"].items():
            print(f"  {k}: {v:.2f}")
        print()
        for system, tab in results["figures9_11"].items():
            print(figures9_11.format_figure(tab))
            print()
        print("Figure 12: cascade plot")
        print(figure12.format_figure(results["figure12"]))
        print()
        print("Figure 13: navigation chart")
        print(figure13.format_figure(results["figure13"]))
        print()
        print("Table 2: SLOC breakdown")
        print(table2.format_table(results["table2"]))
        print()
        print("Ablation: best register configuration per kernel (Aurora)")
        for kernel, cfg in results["ablation_registers"].items():
            print(f"  {kernel}: sub-group={cfg[0]}, GRF={cfg[1]}")
        print("Ablation: specialization gain per system")
        for row in results["ablation_specialization"]:
            print(
                f"  {row.system}: best single={row.best_single_variant}, "
                f"gain={row.gain:.2f}x"
            )
        print()
        print("Migration statistics (Section 6.2 narrative)")
        from repro.migrate.stats import format_stats

        print(format_stats(results["migration_stats"]))
        print()
        print("Roofline on Aurora")
        from repro.machine.roofline import format_roofline

        print(format_roofline(results["roofline_aurora"]))
        print()
        outlook = results["cpu_outlook"]
        print(
            "CPU outlook (Section 7.3): PP over GPUs "
            f"{outlook['pp_gpus']:.2f} -> {outlook['pp_with_cpu']:.2f} "
            "with the untuned CPU added"
        )
        lowering = results["compiler_lowering"]
        print(
            "Compiler-lowering what-if (Section 5.3.1): "
            f"PP {lowering.pp_select:.2f} -> {lowering.pp_select_lowered:.2f} "
            f"(hand-specialised: {lowering.pp_hand_specialised:.2f})"
        )
        print("Maintenance factors (Section 7.1):")
        for cfg, factor in results["maintenance_factors"].items():
            print(f"  {cfg}: {factor:.3f} copies per kernel change")
    return results


if __name__ == "__main__":  # pragma: no cover
    run_all()
