"""Figures 9, 10, 11: application efficiency of the SYCL variants.

One figure per system; each shows, for the seven hydro timers (upGeo,
upCor, upBarEx, upBarAc, upBarAcF, upBarDu, upBarDuF), the efficiency
of every compilable variant normalised to the best variant for that
timer on that system.

The paper's qualitative findings, which the regenerated data must (and
the test suite checks does) reproduce:

- **Aurora** (Fig. 9): Select is always worst; no single variant is
  best everywhere; broadcast wins the atomic-heavy kernels; picking
  the best variant gains 2-5x per kernel.
- **Polaris** (Fig. 10): Select is always best; Broadcast is ~10x
  slower on some kernels (register spills); the memory variants do
  their worst on the register-heavy Energy/Acceleration kernels.
- **Frontier** (Fig. 11): Select is always best; local memory is
  (almost) always second; Broadcast sits around 0.6 efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.workload import reference_trace
from repro.hacc.timestep import WorkloadTrace
from repro.kernels.adiabatic import price_trace
from repro.kernels.specs import HOTSPOT_TIMERS
from repro.kernels.variants import ALL_VARIANTS
from repro.machine.device import DeviceSpec
from repro.machine.registry import all_devices
from repro.proglang.model import CompileError, ProgrammingModel


@dataclass(frozen=True)
class EfficiencyTable:
    """One system's figure: variant x timer efficiencies."""

    system: str
    timers: tuple[str, ...]
    #: variant name -> timer -> efficiency in (0, 1]
    efficiencies: dict[str, dict[str, float]]

    def best_variant(self, timer: str) -> str:
        return max(self.efficiencies, key=lambda v: self.efficiencies[v][timer])

    def worst_variant(self, timer: str) -> str:
        return min(self.efficiencies, key=lambda v: self.efficiencies[v][timer])


def generate_for(device: DeviceSpec, trace: WorkloadTrace | None = None) -> EfficiencyTable:
    """The variant-efficiency table for one system."""
    trace = trace if trace is not None else reference_trace()
    seconds: dict[str, dict[str, float]] = {}
    for variant in ALL_VARIANTS:
        try:
            report = price_trace(trace, device, ProgrammingModel.SYCL, variant)
        except CompileError:
            continue  # vISA off-Intel: not part of the figure
        seconds[variant.name] = {
            t: report.seconds_by_timer[t] for t in HOTSPOT_TIMERS
        }
    best = {t: min(s[t] for s in seconds.values()) for t in HOTSPOT_TIMERS}
    efficiencies = {
        name: {t: best[t] / s[t] for t in HOTSPOT_TIMERS}
        for name, s in seconds.items()
    }
    return EfficiencyTable(
        system=device.system, timers=HOTSPOT_TIMERS, efficiencies=efficiencies
    )


def generate(trace: WorkloadTrace | None = None) -> dict[str, EfficiencyTable]:
    """All three figures, keyed by system name."""
    trace = trace if trace is not None else reference_trace()
    return {d.system: generate_for(d, trace) for d in all_devices()}


def format_figure(table: EfficiencyTable) -> str:
    lines = [
        f"Application efficiency of SYCL variants on {table.system}",
        f"{'variant':<15} " + " ".join(f"{t:>9}" for t in table.timers),
    ]
    for name, effs in table.efficiencies.items():
        lines.append(
            f"{name:<15} " + " ".join(f"{effs[t]:>9.2f}" for t in table.timers)
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    for system, table in generate().items():
        print(format_figure(table))
        print()
