"""Table 1: hardware configuration of the three test systems."""

from __future__ import annotations

from repro.machine.registry import table1_rows

#: the paper's Table 1, for comparison in tests and EXPERIMENTS.md
PAPER_TABLE1 = [
    {
        "system": "Aurora",
        "cpu": "Intel Xeon CPU Max 9470C, 52 cores",
        "sockets": 2,
        "gpu": "Intel Data Center GPU Max 1550",
        "num_gpus": 6,
        "fp32_peak_per_gpu_tflops": 45.9,
    },
    {
        "system": "Polaris",
        "cpu": "AMD EPYC 7543P, 32 cores",
        "sockets": 1,
        "gpu": "NVIDIA A100-SXM4-40GB",
        "num_gpus": 4,
        "fp32_peak_per_gpu_tflops": 19.5,
    },
    {
        "system": "Frontier",
        "cpu": "AMD EPYC 7A53, 64 cores",
        "sockets": 1,
        "gpu": "AMD Instinct MI250X",
        "num_gpus": 4,
        "fp32_peak_per_gpu_tflops": 53.0,
    },
]


def generate() -> list[dict]:
    """Regenerate Table 1 from the device registry."""
    return table1_rows()


def format_table(rows: list[dict] | None = None) -> str:
    """Human-readable rendering (what the bench harness prints)."""
    rows = rows if rows is not None else generate()
    header = f"{'System':<9} {'CPU':<36} {'Sockets':>7} {'GPU':<32} {'#GPUs':>5} {'FP32/GPU':>9}"
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['system']:<9} {r['cpu']:<36} {r['sockets']:>7} "
            f"{r['gpu']:<32} {r['num_gpus']:>5} "
            f"{r['fp32_peak_per_gpu_tflops']:>8.1f}T"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
