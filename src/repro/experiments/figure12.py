"""Figure 12: the cascade plot (performance portability).

The paper's values, which the reproduction tracks:

==========================  =====
Configuration               PP
==========================  =====
CUDA                        0
HIP                         0
inline vISA                 0
SYCL (Broadcast)            0.44
SYCL (Memory, Object)       0.79
SYCL (Select + Memory)      0.91
SYCL (Select + vISA)        0.96
Unified (CUDA/HIP + SYCL)   0.90
==========================  =====
"""

from __future__ import annotations

from repro.core.cascade import CascadeData, cascade_data
from repro.experiments.workload import reference_trace
from repro.hacc.timestep import WorkloadTrace

#: paper-reported PP values (Section 6.1)
PAPER_PP = {
    "CUDA": 0.0,
    "HIP": 0.0,
    "vISA": 0.0,
    "SYCL (Broadcast)": 0.44,
    "SYCL (Memory, Object)": 0.79,
    "SYCL (Select + Memory)": 0.91,
    "SYCL (Select + vISA)": 0.96,
    "Unified": 0.90,
}


def generate(trace: WorkloadTrace | None = None) -> CascadeData:
    """Regenerate the cascade-plot data."""
    trace = trace if trace is not None else reference_trace()
    return cascade_data(trace)


def format_figure(data: CascadeData | None = None) -> str:
    data = data if data is not None else generate()
    lines = [
        f"{'Configuration':<26} {'PP':>6} {'paper':>6}  "
        + "  ".join(f"{p:>8}" for p in data.platforms)
    ]
    lines.append("-" * len(lines[0]))
    for row in data.rows():
        name = row["configuration"]
        paper = PAPER_PP.get(name)
        paper_s = f"{paper:.2f}" if paper is not None else "  -- "
        effs = "  ".join(f"{row['eff:' + p]:>8.3f}" for p in data.platforms)
        lines.append(f"{name:<26} {row['PP']:>6.3f} {paper_s:>6}  {effs}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_figure())
