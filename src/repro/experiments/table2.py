"""Table 2: SLOC breakdown across CRK-HACC variants."""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.codebase import (
    PAPER_TABLE2,
    PAPER_TOTAL_SLOC,
    analyze_model,
    generate_codebase,
    table2_rows,
)


def generate(root: Path | None = None) -> list[dict]:
    """Regenerate Table 2 from the codebase model."""
    if root is None:
        root = Path(tempfile.mkdtemp(prefix="crkhacc-model-")) / "src"
        generate_codebase(root)
    elif not root.exists():
        generate_codebase(root)
    analysis = analyze_model(root)
    return table2_rows(analysis)


def format_table(rows: list[dict] | None = None) -> str:
    rows = rows if rows is not None else generate()
    lines = [f"{'Implementations':<22} {'# SLOC':>8} {'% SLOC':>7} {'paper':>8}"]
    lines.append("-" * len(lines[0]))
    for r in rows:
        paper = PAPER_TABLE2.get(r["implementations"])
        if r["implementations"] == "Total":
            paper = PAPER_TOTAL_SLOC
        paper_s = f"{paper:,}" if paper is not None else "--"
        lines.append(
            f"{r['implementations']:<22} {r['sloc']:>8,} {r['pct']:>6.2f}% {paper_s:>8}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_table())
