"""Figure 13: the navigation chart (PP vs code convergence).

Joins the cascade plot's PP values with per-configuration code
convergence computed from the CRK-HACC codebase model.  The paper's
landmarks: the specialised SYCL variants sit at convergence ~1.0
(select vs local-memory differ by 19 lines; vISA adds 226), while
Unified drops to ~0.83 because every kernel exists in both CUDA and
SYCL.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.cascade import CascadeData
from repro.core.codebase import (
    analyze_model,
    convergence_by_configuration,
    generate_codebase,
)
from repro.core.navigation import NavigationPoint, navigation_data
from repro.experiments import figure12
from repro.hacc.timestep import WorkloadTrace

#: paper-reported convergence landmarks
PAPER_CONVERGENCE = {
    "SYCL (Select + Memory)": 1.0,   # "almost 1.0"
    "SYCL (Select + vISA)": 1.0,     # "almost 1.0"
    "Unified": 0.83,
}


def compute_convergence(root: Path | None = None) -> dict[str, float]:
    """Code convergence per configuration from the codebase model."""
    if root is None:
        root = Path(tempfile.mkdtemp(prefix="crkhacc-model-")) / "src"
    if not any(root.rglob("*.cpp")) if root.exists() else True:
        generate_codebase(root)
    analysis = analyze_model(root)
    return convergence_by_configuration(analysis)


def generate(
    trace: WorkloadTrace | None = None, codebase_root: Path | None = None
) -> list[NavigationPoint]:
    """Regenerate the navigation-chart points."""
    cascade: CascadeData = figure12.generate(trace)
    convergence = compute_convergence(codebase_root)
    return navigation_data(cascade, convergence)


def format_figure(points: list[NavigationPoint] | None = None) -> str:
    points = points if points is not None else generate()
    lines = [f"{'Configuration':<26} {'PP':>6} {'convergence':>12} {'paper conv.':>11}"]
    lines.append("-" * len(lines[0]))
    for p in points:
        paper = PAPER_CONVERGENCE.get(p.name)
        paper_s = f"{paper:.2f}" if paper is not None else "    --"
        lines.append(
            f"{p.name:<26} {p.performance_portability:>6.3f} "
            f"{p.code_convergence:>12.4f} {paper_s:>11}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(format_figure())
