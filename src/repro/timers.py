"""MPI_wtime-style bracket timers (Section 3.4.4).

CRK-HACC brackets its operations with ``MPI_Wtime()`` calls and
aggregates per-name totals; the paper validated those timers against
``rocprof`` on the MI250X.  This module reproduces both halves:

- :class:`TimerRegistry` provides named bracket timers over an
  arbitrary clock.  With the default wall clock it times host code;
  pointed at a :class:`~repro.machine.executor.DeviceExecutor`'s
  simulated-seconds ledger it brackets offloaded GPU time exactly the
  way the paper's "timer that brackets all of the offloaded GPU
  operations" does.
- :func:`validate_against_profiler` compares bracket totals against
  the executor's per-kernel ground truth (the reproduction's
  ``rocprof``), asserting the agreement the paper reports.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.machine.executor import DeviceExecutor

if TYPE_CHECKING:
    from repro.observability.tracing import TraceRecorder


@dataclass
class TimerRecord:
    """Accumulated state of one named timer."""

    total: float = 0.0
    calls: int = 0
    max_interval: float = 0.0

    def add(self, interval: float) -> None:
        self.total += interval
        self.calls += 1
        self.max_interval = max(self.max_interval, interval)


class TimerRegistry:
    """Named bracket timers over a pluggable clock.

    The registry is a thin adapter over the span recorder: pass a
    :class:`~repro.observability.tracing.TraceRecorder` and every
    completed bracket is also recorded as a span (category ``timer``)
    on the caller's track, with timestamps relative to the registry's
    construction on its own clock's timeline.  All existing call sites
    keep working without a recorder.

    Bracketing discipline is enforced with clear errors: ``start`` of
    an already-running name and ``stop`` of a never-started name both
    raise :class:`RuntimeError` naming the timer, instead of silently
    overwriting the open interval or failing with a bare ``KeyError``
    from the registry internals.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        recorder: "TraceRecorder | None" = None,
    ):
        self._clock = clock if clock is not None else time.perf_counter
        self._records: dict[str, TimerRecord] = {}
        self._open: dict[str, float] = {}
        self._recorder = recorder
        self._epoch = self._clock()

    @classmethod
    def over_executor(
        cls,
        executor: DeviceExecutor,
        *,
        recorder: "TraceRecorder | None" = None,
    ) -> "TimerRegistry":
        """Timers that read the executor's simulated device time."""
        return cls(clock=executor.total_seconds, recorder=recorder)

    def attach_recorder(self, recorder: "TraceRecorder") -> None:
        """Route subsequently completed brackets into ``recorder``."""
        self._recorder = recorder

    def start(self, name: str) -> None:
        if name in self._open:
            raise RuntimeError(f"timer {name!r} already running")
        self._open[name] = self._clock()

    def stop(self, name: str) -> float:
        if name not in self._open:
            raise RuntimeError(f"timer {name!r} is not running")
        begin = self._open.pop(name)
        interval = self._clock() - begin
        self._records.setdefault(name, TimerRecord()).add(interval)
        if self._recorder is not None:
            self._recorder.add_span(
                name,
                begin=begin - self._epoch,
                end=begin - self._epoch + interval,
                category="timer",
            )
        return interval

    @contextmanager
    def bracket(self, name: str):
        """``with timers.bracket("upGeo"): ...``"""
        self.start(name)
        try:
            yield
        finally:
            self.stop(name)

    def total(self, name: str) -> float:
        return self._records.get(name, TimerRecord()).total

    def calls(self, name: str) -> int:
        return self._records.get(name, TimerRecord()).calls

    def totals(self) -> dict[str, float]:
        return {name: rec.total for name, rec in self._records.items()}

    def report(self) -> list[dict]:
        """Per-timer summary rows, largest total first."""
        rows = [
            {
                "timer": name,
                "total_s": rec.total,
                "calls": rec.calls,
                "mean_s": rec.total / rec.calls if rec.calls else 0.0,
            }
            for name, rec in self._records.items()
        ]
        rows.sort(key=lambda r: r["total_s"], reverse=True)
        return rows


def validate_against_profiler(
    timers: TimerRegistry,
    executor: DeviceExecutor,
    *,
    rel_tolerance: float = 1.0e-9,
) -> dict[str, float]:
    """Compare bracket totals with the executor's per-kernel ledger.

    Returns the per-kernel relative differences; raises ``ValueError``
    when any timer disagrees with the profiler beyond tolerance -- the
    check the paper performed with rocprof ("very good agreement").
    Timers with no corresponding kernel ledger entry are ignored (they
    bracket host work).
    """
    ledger = executor.seconds_by_kernel()
    diffs: dict[str, float] = {}
    for name, profiled in ledger.items():
        bracketed = timers.total(name)
        if bracketed == 0.0 and profiled == 0.0:
            diffs[name] = 0.0
            continue
        denom = max(abs(profiled), 1e-300)
        diffs[name] = abs(bracketed - profiled) / denom
        if diffs[name] > rel_tolerance:
            raise ValueError(
                f"timer {name!r} disagrees with the profiler: "
                f"bracketed {bracketed:.6e}s vs profiled {profiled:.6e}s"
            )
    return diffs
