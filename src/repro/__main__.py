"""Command-line interface: ``python -m repro <command>``.

Commands:

``simulate``   run the mini-app and print per-step diagnostics
``price``      price the reference workload on a device/model/variant
``tune``       auto-tune per-kernel configurations on a device
``migrate``    run the CUDA->SYCL pipeline over the bundled kernels
``report``     regenerate the full reproduction report (markdown)
``figures``    print every table and figure (the experiments runner)
``export``     write every artefact to one JSON document
``validate``   run the mini-app and audit its invariants
``roofline``   roofline positions of the hot kernels on a device
``trace``      run the mini-app and write trace.json + metrics.json
``profile``    per-kernel, per-device profile table (cost-model annotated)
``dashboard``  render a recorded telemetry event log (JSONL) as a dashboard
"""

from __future__ import annotations

import argparse
import sys

#: simulate/trace flags that require live observability sinks
_SINK_FLAGS = ("trace_out", "metrics_out", "events_out", "openmetrics_out")


def _observability_sinks(args: argparse.Namespace):
    """(tracer, metrics) when the flags ask for them, else (None, None)."""
    wanted = any(getattr(args, flag, None) for flag in _SINK_FLAGS)
    wanted = wanted or getattr(args, "live", False) or getattr(args, "health", False)
    if not wanted:
        return None, None
    from repro.observability import MetricsRegistry, TraceRecorder

    return TraceRecorder(), MetricsRegistry()


def _write_observability(
    args: argparse.Namespace, tracer, metrics, monitor=None, alerts=None
) -> None:
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    openmetrics_out = getattr(args, "openmetrics_out", None)
    if tracer is not None and trace_out:
        path = tracer.write(trace_out)
        print(
            f"trace written to {path} "
            f"({len(tracer.spans)} spans, {len(tracer.instants)} events) "
            "-- open at https://ui.perfetto.dev"
        )
    if metrics is not None and metrics_out:
        print(f"metrics written to {metrics.write(metrics_out)}")
    if events_out:
        from repro.observability.export import write_event_log

        path = write_event_log(
            events_out, tracer=tracer, metrics=metrics, monitor=monitor, alerts=alerts
        )
        print(
            f"event log written to {path} "
            f"-- replay with: python -m repro dashboard {path}"
        )
    if metrics is not None and openmetrics_out:
        from repro.observability.export import write_openmetrics

        print(f"openmetrics exposition written to {write_openmetrics(openmetrics_out, metrics)}")


def _select_backend(args: argparse.Namespace) -> str | None:
    """Activate ``--backend`` for subcommands that run the hot path.

    An unavailable backend (missing optional dependency) degrades to
    the reference with a warning so a run script written for a
    torch-equipped machine still completes elsewhere; an unknown name
    is a hard usage error.  Returns an error string, or None.
    """
    from repro import xp

    wanted = getattr(args, "backend", None)
    if not wanted:
        # still resolve so the active backend (env var or default) is
        # validated and printed once up front
        backend = xp.get_backend()
    else:
        try:
            backend = xp.set_backend(wanted)
        except xp.UnknownBackendError as exc:
            return f"error: {exc}"
        except xp.BackendUnavailableError as exc:
            print(f"warning: {exc}")
            backend = xp.set_backend(xp.DEFAULT_BACKEND)
    print(f"array backend: {backend.name} ({backend.summary})")
    return None


def _timeout_error(args: argparse.Namespace) -> str | None:
    """Shared ``--timeout`` validation for every subcommand that has
    one: the flag must be positive wherever it is accepted."""
    timeout = getattr(args, "timeout", None)
    if timeout is not None and timeout <= 0:
        return "error: --timeout must be positive"
    return None


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.hacc.timestep import AdiabaticDriver, SimulationConfig

    problem = _timeout_error(args)
    if problem:
        print(problem)
        return 2
    problem = _select_backend(args)
    if problem:
        print(problem)
        return 2
    if args.chaos_runs:
        return _simulate_chaos(args)

    config = SimulationConfig(
        n_per_side=args.n, pm_mesh=max(8, args.n), n_steps=args.steps
    )
    print(
        f"2x {args.n}^3 particles, box {config.box:.2f} Mpc/h, "
        f"{args.steps} steps z={config.z_initial:.0f} -> {config.z_final:.0f}"
    )
    tracer, metrics = _observability_sinks(args)

    resilient = (
        args.ranks > 1
        or args.faults
        or args.restart_from
        or args.checkpoint_dir
    )
    if resilient:
        return _simulate_resilient(args, config, tracer, metrics)

    driver = AdiabaticDriver(config)
    driver.tracer = tracer
    driver.metrics = metrics
    monitor = None
    if args.live or args.health:
        from repro.observability import HealthPolicy

        monitor = HealthPolicy().build(tracer=tracer, metrics=metrics)
        driver.health = monitor

    if args.live:
        from repro.observability.dashboard import LiveDashboard

        live = LiveDashboard()
        live.state.meta = {"title": f"simulate -n {args.n}"}

        def on_step(drv, diag) -> None:
            # observe_step ran inside step(), before the index bump
            step = drv.step_index - 1
            snap = monitor.snapshot()
            events = [
                {"kind": "series", "name": name, "step": s, "value": v}
                for name, series in snap["series"].items()
                for s, v in zip(series["steps"], series["values"])
                if s == step
            ]
            events += [
                {"kind": "alert", **a} for a in snap["alerts"] if a["step"] == step
            ]
            live.update(events)

        driver.run(on_step=on_step)
        live.finish()
    else:
        for diag in driver.run():
            print(
                f"a={diag.a:.5f}  KE={diag.kinetic_energy:.4e}  "
                f"thermal={diag.thermal_energy:.4e}  "
                f"max_delta={diag.max_density_contrast:.2f}"
            )
    if monitor is not None and monitor.alerts:
        print(monitor.summary())
    print(f"kernel launches recorded: {len(driver.trace.invocations)}")
    _write_observability(args, tracer, metrics, monitor=monitor)
    return 0


def _simulate_chaos(args: argparse.Namespace) -> int:
    """The ``simulate --chaos-runs N`` path: a seeded chaos soak."""
    from repro.resilience.chaos import soak

    if args.chaos_runs < 1:
        print("error: --chaos-runs must be >= 1")
        return 2
    world_size = args.ranks if args.ranks > 1 else 3
    report = soak(
        args.chaos_runs,
        base_seed=args.chaos_seed,
        degrade_policy=args.degrade_policy,
        world_size=world_size,
        echo=print,
    )
    print(
        f"chaos soak: {len(report.outcomes)} run(s), "
        f"{report.n_completed} completed ({report.n_degraded} degraded), "
        f"{report.n_aborted} cleanly aborted -> invariant "
        f"{'HELD' if report.invariant_ok else 'VIOLATED'}"
    )
    return 0 if report.invariant_ok else 1


def _simulate_resilient(
    args: argparse.Namespace, config, tracer=None, metrics=None
) -> int:
    """The fault-tolerant multi-rank path of ``simulate``."""
    from repro.resilience import (
        FaultPlan,
        RetryPolicy,
        SimulationAborted,
        run_simulation,
    )

    from repro.hacc.checkpoint import CheckpointError

    if args.ranks < 1:
        print("error: --ranks must be >= 1")
        return 2
    if args.checkpoint_every < 1:
        print("error: --checkpoint-every must be >= 1")
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0")
        return 2
    problem = _timeout_error(args)
    if problem:
        print(problem)
        return 2

    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
        except ValueError as exc:
            print(f"error: invalid --faults plan: {exc}")
            return 2
        print(fault_plan.describe())
    health_policy = None
    if args.health or args.live:
        from repro.observability import HealthPolicy

        health_policy = HealthPolicy()
    try:
        result = run_simulation(
            config,
            world_size=args.ranks,
            timeout=args.timeout,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            restart_from=args.restart_from,
            fault_plan=fault_plan,
            retry_policy=RetryPolicy(max_retries=args.max_retries),
            degrade_policy=args.degrade_policy,
            health=health_policy,
            echo=print,
            tracer=tracer,
            metrics=metrics,
        )
    except CheckpointError as exc:
        print(f"error: cannot restart: {exc}")
        return 2
    except SimulationAborted as exc:
        print(f"simulation lost: {exc}")
        for rec in exc.attempts:
            print(f"  attempt {rec.attempt}: {rec.outcome} ({rec.failure})")
        _write_observability(args, tracer, metrics)
        return 1
    for diag in result.driver.diagnostics:
        print(
            f"a={diag.a:.5f}  KE={diag.kinetic_energy:.4e}  "
            f"thermal={diag.thermal_energy:.4e}  "
            f"max_delta={diag.max_density_contrast:.2f}"
        )
    print(result.summary())
    if result.health_alerts:
        # the monitor on SimulationResult belongs to the *final*
        # (clean) attempt; the escalated alerts live in health_alerts
        print(f"health: {len(result.health_alerts)} alert(s) across all attempts")
        for alert in result.health_alerts:
            print(f"  {alert.describe()}")
    if args.live:
        # the rank threads already ran: render the final dashboard
        # frame from the recorded telemetry
        from repro.observability.dashboard import DashboardState, render
        from repro.observability.export import iter_events

        state = DashboardState()
        for event in iter_events(
            tracer=tracer,
            metrics=metrics,
            monitor=result.health_monitor,
            alerts=result.health_alerts,
        ):
            state.apply(event)
        state.meta.setdefault("title", f"simulate --ranks {args.ranks}")
        print(render(state))
    _write_observability(
        args,
        tracer,
        metrics,
        monitor=result.health_monitor,
        alerts=result.health_alerts,
    )
    return 0 if result.ok else 1


def _cmd_price(args: argparse.Namespace) -> int:
    from repro.experiments.workload import reference_trace
    from repro.kernels.adiabatic import price_trace
    from repro.machine.registry import device_by_name
    from repro.proglang.model import CompileError, ProgrammingModel

    device = device_by_name(args.device)
    model = ProgrammingModel(args.model)
    try:
        report = price_trace(
            reference_trace(args.n), device, model, args.variant
        )
    except CompileError as exc:
        print(f"does not compile: {exc}", file=sys.stderr)
        return 1
    for timer, seconds in sorted(
        report.seconds_by_timer.items(), key=lambda kv: -kv[1]
    ):
        print(f"{timer:12s} {seconds * 1e6:10.1f} us")
    print(f"{'total':12s} {report.total_seconds * 1e6:10.1f} us")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.experiments.workload import reference_trace
    from repro.kernels.tuning import autotune, tuning_table
    from repro.machine.registry import device_by_name

    result = autotune(reference_trace(args.n), device_by_name(args.device))
    print(tuning_table(result))
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.migrate.pipeline import MigrationPipeline, bundled_kernel_sources
    from repro.migrate.stats import bundled_migration_stats, format_stats

    pipeline = MigrationPipeline(optimize=not args.no_optimize)
    results = pipeline.run_directory(bundled_kernel_sources())
    for name, result in sorted(results.items()):
        diag = "; ".join(d.code for d in result.diagnostics) or "clean"
        print(f"{name:14s} -> {', '.join(result.kernel_names)}  [{diag}]")
    print()
    print(format_stats(bundled_migration_stats(optimize=not args.no_optimize)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.report import generate_report
    from repro.experiments.workload import reference_trace

    report = generate_report(reference_trace(args.n))
    if args.output:
        path = report.save(args.output)
        print(f"report written to {path}")
    else:
        print(report.markdown)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    run_all(verbose=True)
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export import export_all
    from repro.experiments.workload import reference_trace

    path = export_all(reference_trace(args.n), args.output)
    print(f"artifacts written to {path}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
    from repro.hacc.validation import validate_run

    problem = _select_backend(args)
    if problem:
        print(problem)
        return 2
    driver = AdiabaticDriver(
        SimulationConfig(n_per_side=args.n, pm_mesh=max(8, args.n), n_steps=args.steps)
    )
    driver.run()
    report = validate_run(driver)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_roofline(args: argparse.Namespace) -> int:
    from repro.experiments.workload import reference_trace
    from repro.machine.registry import device_by_name
    from repro.machine.roofline import format_roofline, roofline_for_trace

    device = device_by_name(args.device)
    points = roofline_for_trace(reference_trace(args.n), device, args.variant)
    print(f"Roofline on {device.system} (ridge at {points[0].ridge_point:.1f} F/B)")
    print(format_roofline(points))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run the mini-app under full tracing; write trace + metrics."""
    from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
    from repro.observability import MetricsRegistry, TraceRecorder

    problem = _timeout_error(args)
    if problem:
        print(problem)
        return 2
    problem = _select_backend(args)
    if problem:
        print(problem)
        return 2
    config = SimulationConfig(
        n_per_side=args.n, pm_mesh=max(8, args.n), n_steps=args.steps
    )
    tracer = TraceRecorder()
    metrics = MetricsRegistry()
    exit_code = 0
    trace = None

    if args.ranks > 1 or args.faults:
        from repro.resilience import (
            FaultPlan,
            RetryPolicy,
            SimulationAborted,
            run_simulation,
        )

        fault_plan = None
        if args.faults:
            try:
                fault_plan = FaultPlan.parse(args.faults, seed=args.fault_seed)
            except ValueError as exc:
                print(f"error: invalid --faults plan: {exc}")
                return 2
            print(fault_plan.describe())
        try:
            result = run_simulation(
                config,
                world_size=args.ranks,
                timeout=args.timeout,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
                fault_plan=fault_plan,
                retry_policy=RetryPolicy(max_retries=args.max_retries),
                echo=print,
                tracer=tracer,
                metrics=metrics,
            )
            trace = result.driver.trace
            print(result.summary())
        except SimulationAborted as exc:
            # a lost run is exactly when the trace matters most
            print(f"simulation lost: {exc}")
            exit_code = 1
    else:
        driver = AdiabaticDriver(config)
        driver.tracer = tracer
        driver.metrics = metrics
        driver.run()
        trace = driver.trace
        print(f"{config.n_steps} steps, {len(trace.invocations)} kernel launches")

    if args.device and trace is not None:
        from repro.machine.registry import device_by_name
        from repro.observability import profile_trace
        from repro.proglang.model import CompileError

        try:
            profile_trace(
                trace,
                device_by_name(args.device),
                model=args.model,
                variants=args.variant,
                tracer=tracer,
                metrics=metrics,
            )
            print(f"device timeline added for {args.device}")
        except CompileError as exc:
            print(f"device replay skipped (does not compile): {exc}")

    path = tracer.write(args.trace_out)
    print(
        f"trace written to {path} "
        f"({len(tracer.spans)} spans, {len(tracer.instants)} events) "
        "-- open at https://ui.perfetto.dev"
    )
    print(f"metrics written to {metrics.write(args.metrics_out)}")
    if args.events_out:
        from repro.observability.export import write_event_log

        print(
            "event log written to "
            f"{write_event_log(args.events_out, tracer=tracer, metrics=metrics)}"
        )
    if args.openmetrics_out:
        from repro.observability.export import write_openmetrics

        print(
            "openmetrics exposition written to "
            f"{write_openmetrics(args.openmetrics_out, metrics)}"
        )
    if args.flame:
        print()
        print(tracer.flame_summary(limit=30))
    return exit_code


def _cmd_dashboard(args: argparse.Namespace) -> int:
    """Render a recorded JSONL event log as a dashboard frame.

    With ``--follow`` the log may still be growing (``repro serve
    --events-out``, or a ``simulate`` in another terminal): the
    dashboard tails it live and stops at the writer's final ``metrics``
    snapshot or after ``--duration`` seconds.
    """
    from pathlib import Path

    from repro.observability.dashboard import follow_dashboard, load_events, render

    path = Path(args.events)
    if args.follow:
        if args.poll <= 0:
            print("error: --poll must be positive")
            return 2
        try:
            follow_dashboard(
                path,
                poll=args.poll,
                duration=args.duration,
                width=args.width,
            )
        except KeyboardInterrupt:
            print()
        return 0
    if not path.exists():
        print(f"error: no event log at {path}")
        return 2
    try:
        state = load_events(path)
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    print(render(state, width=args.width))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Per-kernel, per-device profile table over the reference trace."""
    from repro.experiments.workload import reference_trace
    from repro.machine.registry import all_devices, device_by_name
    from repro.observability import (
        KernelProfiler,
        format_profile_table,
        profile_trace,
    )
    from repro.proglang.model import CompileError

    problem = _select_backend(args)
    if problem:
        print(problem)
        return 2
    trace = reference_trace(args.n)
    if args.device.lower() == "all":
        devices = list(all_devices())
    else:
        devices = [device_by_name(args.device)]
    profiler = KernelProfiler()
    priced_any = False
    for device in devices:
        try:
            profile_trace(
                trace,
                device,
                model=args.model,
                variants=args.variant,
                profiler=profiler,
            )
            priced_any = True
        except CompileError as exc:
            print(f"{device.system}: does not compile: {exc}", file=sys.stderr)
    print(format_profile_table(profiler.rows()))
    return 0 if priced_any else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service behind a unix socket."""
    import asyncio

    from repro.service import ServiceAPI, ServiceConfig, SimulationService, TenantQuota

    if args.workers < 1:
        print("error: --workers must be >= 1")
        return 2
    if args.cache_mb <= 0:
        print("error: --cache-mb must be positive")
        return 2
    config = ServiceConfig(
        workers=args.workers,
        cache_bytes=int(args.cache_mb * 1024 * 1024),
        quota=TenantQuota(max_active=args.quota),
        checkpoint_dir=args.checkpoint_dir,
        events_out=args.events_out,
    )

    async def _serve() -> None:
        service = SimulationService(config)
        api = ServiceAPI(service, args.socket)
        await api.start()
        print(f"serving on {args.socket} ({config.workers} worker(s))")
        if args.events_out:
            print(
                f"event log: {args.events_out} "
                f"-- follow with: python -m repro dashboard --follow {args.events_out}"
            )
        try:
            await api.serve_until_shutdown()
        finally:
            stats = service.cache.stats()
            print(
                f"served {len(service.scheduler.jobs)} job(s), "
                f"cache {stats.hits} hit(s) / {stats.misses} miss(es)"
            )

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted")
    return 0


def _spec_from_args(args: argparse.Namespace) -> dict:
    spec: dict = {
        "n_per_side": args.n,
        "n_steps": args.steps,
        "seed": args.seed,
        "products": [p.strip() for p in args.products.split(",") if p.strip()],
    }
    if args.backend:
        spec["backend"] = args.backend
    if args.faults:
        spec["faults"] = args.faults
    if args.ranks != 1:
        spec["ranks"] = args.ranks
    if args.degrade_policy:
        spec["degrade_policy"] = args.degrade_policy
    return spec


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running ``repro serve`` and await the result."""
    import json as _json

    from repro.service import submit_job

    spec = _spec_from_args(args)
    try:
        lines = list(
            submit_job(
                args.socket,
                spec,
                tenant=args.tenant,
                priority=args.priority,
                deadline_in=args.deadline_in,
                stream=args.stream,
                timeout=args.timeout,
            )
        )
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no service listening on {args.socket}")
        return 2
    for line in lines:
        if "event" in line:
            event = line["event"]
            print(
                f"  step {event.get('step', '?')}: a={event.get('a', 0):.5f} "
                f"KE={event.get('kinetic_energy', 0):.6g}"
            )
    final = lines[-1]
    if not final.get("ok"):
        error = final.get("error", {})
        print(f"error [{error.get('type', '?')}]: {error.get('message', '')}")
        return 1
    if args.json:
        print(_json.dumps(final["result"], sort_keys=True, indent=2))
        return 0
    result = final["result"]
    origin = "cache" if result["from_cache"] else "run"
    print(
        f"job {final['job_id']} {final['state']} ({origin}): "
        f"{result['steps_completed']} step(s), "
        f"attempts={result['attempts']}, degraded={result['degraded']}, "
        f"preemptions={final.get('preemptions', 0)}"
    )
    for name, product in sorted(result["products"].items()):
        keys = ", ".join(sorted(product)) if isinstance(product, dict) else product
        print(f"  {name}: {keys}")
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    """List a running service's jobs (and optionally its stats)."""
    from repro.service import request

    try:
        response = request(args.socket, {"op": "jobs"}, timeout=args.timeout)
    except (ConnectionRefusedError, FileNotFoundError):
        print(f"error: no service listening on {args.socket}")
        return 2
    jobs = response.get("jobs", [])
    if not jobs:
        print("no jobs")
    else:
        print(
            f"{'id':>4} {'state':>10} {'tenant':>10} {'prio':>4} "
            f"{'steps':>5} {'preempt':>7} spec"
        )
        for job in jobs:
            print(
                f"{job['job_id']:>4} {job['state']:>10} {job['tenant']:>10.10} "
                f"{job['priority']:>4} {job['steps_done']:>5} "
                f"{job['preemptions']:>7} {job['spec_hash'][:12]}"
                + (f" -> {job['coalesced_into']}" if job["coalesced_into"] else "")
                + (f" [{job['error']}]" if job["error"] else "")
            )
    if args.stats:
        stats = request(args.socket, {"op": "stats"}, timeout=args.timeout)["stats"]
        cache = stats["cache"]
        print(
            f"queue depth {stats['queue_depth']}, running {stats['running']}, "
            f"cache {cache['hits']} hit(s) / {cache['misses']} miss(es) "
            f"({cache['hit_rate']:.0%}), {cache['entries']} entr(ies), "
            f"{cache['bytes']} byte(s)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run the mini-app")
    p.add_argument("-n", type=int, default=8, help="particles per side (2x n^3)")
    p.add_argument("--steps", type=int, default=5)
    p.add_argument(
        "--backend",
        help=(
            "array backend for the hot path (numpy | blocked | numba | "
            "torch); overrides REPRO_BACKEND, falls back to numpy with "
            "a warning when the optional dependency is missing"
        ),
    )
    p.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="simulated MPI ranks (>1 enables the fault-tolerant runner)",
    )
    p.add_argument(
        "--faults",
        help=(
            "fault plan, e.g. 'kill:rank=3,step=1;"
            "corrupt:kernel=upBarAc,step=2,mode=nan'"
        ),
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="checkpoint cadence in steps (with --checkpoint-dir)",
    )
    p.add_argument("--checkpoint-dir", help="directory for simulation checkpoints")
    p.add_argument("--restart-from", help="resume from a simulation checkpoint file")
    p.add_argument(
        "--timeout", type=float, default=30.0, help="collective timeout (seconds)"
    )
    p.add_argument(
        "--max-retries", type=int, default=3, help="restart budget after failures"
    )
    p.add_argument(
        "--degrade-policy",
        default="restart",
        choices=("shrink", "restart", "abort"),
        help=(
            "degradation ladder on rank failure: shrink-and-continue, "
            "restart the world (default, pre-degradation behaviour), "
            "or abort immediately"
        ),
    )
    p.add_argument(
        "--chaos-runs",
        type=int,
        default=0,
        help="run N seeded random fault plans (chaos soak) instead of one simulation",
    )
    p.add_argument(
        "--chaos-seed", type=int, default=0, help="base seed for --chaos-runs"
    )
    p.add_argument(
        "--trace-out",
        help="write a Chrome-trace/Perfetto JSON timeline of the run here",
    )
    p.add_argument(
        "--metrics-out", help="write a metrics snapshot (JSON) of the run here"
    )
    p.add_argument(
        "--health",
        action="store_true",
        help=(
            "attach the physics health monitors (conservation drift, "
            "wall-time, cache rates); with --ranks > 1 a FATAL alert "
            "rolls the run back like a NaN guard"
        ),
    )
    p.add_argument(
        "--live",
        action="store_true",
        help=(
            "live terminal dashboard (implies --health); redraws per "
            "step on a TTY, prints the final frame on the multi-rank path"
        ),
    )
    p.add_argument(
        "--events-out",
        help="write the telemetry JSONL event log here (repro dashboard input)",
    )
    p.add_argument(
        "--openmetrics-out",
        help="write an OpenMetrics/Prometheus text exposition of the metrics here",
    )
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("price", help="price the reference workload")
    p.add_argument("device", help="Aurora | Polaris | Frontier")
    p.add_argument("--model", default="sycl", help="cuda | hip | sycl | sycl+visa")
    p.add_argument(
        "--variant",
        default="select",
        help="select | memory32 | memory_object | broadcast | visa",
    )
    p.add_argument("-n", type=int, default=8)
    p.set_defaults(func=_cmd_price)

    p = sub.add_parser("tune", help="auto-tune kernels on a device")
    p.add_argument("device")
    p.add_argument("-n", type=int, default=8)
    p.set_defaults(func=_cmd_tune)

    p = sub.add_parser("migrate", help="run the CUDA->SYCL pipeline")
    p.add_argument("--no-optimize", action="store_true")
    p.set_defaults(func=_cmd_migrate)

    p = sub.add_parser("report", help="regenerate the full report")
    p.add_argument("-o", "--output", help="write markdown to this path")
    p.add_argument("-n", type=int, default=8)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("figures", help="print every table and figure")
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("export", help="write artefacts to JSON")
    p.add_argument("-o", "--output", default="artifacts.json")
    p.add_argument("-n", type=int, default=8)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("validate", help="run and audit invariants")
    p.add_argument("-n", type=int, default=6)
    p.add_argument("--steps", type=int, default=2)
    p.add_argument(
        "--backend",
        help="array backend for the hot path (same semantics as simulate)",
    )
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("roofline", help="roofline positions on a device")
    p.add_argument("device")
    p.add_argument("--variant", default="select")
    p.add_argument("-n", type=int, default=8)
    p.set_defaults(func=_cmd_roofline)

    p = sub.add_parser(
        "trace", help="run the mini-app and write trace.json + metrics.json"
    )
    p.add_argument("-n", type=int, default=6, help="particles per side (2x n^3)")
    p.add_argument("--steps", type=int, default=2)
    p.add_argument(
        "--backend",
        help="array backend for the hot path (same semantics as simulate)",
    )
    p.add_argument(
        "--device",
        help="replay kernels through this device's cost model on a device track",
    )
    p.add_argument("--model", default="sycl", help="cuda | hip | sycl | sycl+visa")
    p.add_argument(
        "--variant",
        default="select",
        help="select | memory32 | memory_object | broadcast | visa",
    )
    p.add_argument(
        "--ranks",
        type=int,
        default=1,
        help="simulated MPI ranks (>1 gives one timeline track per rank)",
    )
    p.add_argument("--faults", help="fault plan (same syntax as simulate)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--checkpoint-dir", help="directory for simulation checkpoints")
    p.add_argument("--checkpoint-every", type=int, default=1)
    p.add_argument("--timeout", type=float, default=30.0)
    p.add_argument("--max-retries", type=int, default=3)
    p.add_argument("-o", "--trace-out", default="trace.json")
    p.add_argument("--metrics-out", default="metrics.json")
    p.add_argument(
        "--events-out",
        help="also write the telemetry JSONL event log (repro dashboard input)",
    )
    p.add_argument(
        "--openmetrics-out",
        help="also write an OpenMetrics/Prometheus text exposition",
    )
    p.add_argument(
        "--flame", action="store_true", help="print a flame summary of the spans"
    )
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "dashboard", help="render a recorded telemetry event log (JSONL)"
    )
    p.add_argument("events", help="JSONL event log (simulate/trace --events-out)")
    p.add_argument("--width", type=int, default=80, help="frame width in columns")
    p.add_argument(
        "--follow",
        action="store_true",
        help="tail a growing event log live (e.g. repro serve --events-out)",
    )
    p.add_argument(
        "--poll",
        type=float,
        default=0.2,
        help="follow-mode poll interval in seconds",
    )
    p.add_argument(
        "--duration",
        type=float,
        help="stop following after this many seconds (default: until the "
        "writer's final metrics snapshot)",
    )
    p.set_defaults(func=_cmd_dashboard)

    p = sub.add_parser(
        "profile", help="per-kernel profile table with cost-model annotations"
    )
    p.add_argument("device", help="Aurora | Polaris | Frontier | all")
    p.add_argument("--model", default="sycl", help="cuda | hip | sycl | sycl+visa")
    p.add_argument(
        "--variant",
        default="select",
        help="select | memory32 | memory_object | broadcast | visa",
    )
    p.add_argument("-n", type=int, default=8)
    p.add_argument(
        "--backend",
        help="array backend for the trace-recording run (same semantics "
        "as simulate)",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "serve", help="run the simulation service behind a unix socket"
    )
    p.add_argument("--socket", default="repro.sock", help="unix socket path")
    p.add_argument("--workers", type=int, default=2, help="worker pool size")
    p.add_argument(
        "--cache-mb", type=float, default=256, help="result cache budget (MiB)"
    )
    p.add_argument(
        "--quota", type=int, default=64, help="per-tenant active-job quota"
    )
    p.add_argument(
        "--checkpoint-dir", help="directory for preemption checkpoints"
    )
    p.add_argument(
        "--events-out",
        help="append a live JSONL event log (repro dashboard --follow input)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit", help="submit one job to a running repro serve"
    )
    p.add_argument("--socket", default="repro.sock", help="unix socket path")
    p.add_argument("-n", type=int, default=6, help="particles per side (2x n^3)")
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--seed", type=int, default=2023)
    p.add_argument(
        "--products",
        default="diagnostics",
        help="comma-separated: diagnostics,power_spectrum,halo_catalog,trace",
    )
    p.add_argument("--backend", help="array backend for the hot path")
    p.add_argument("--faults", help="fault plan (same syntax as simulate)")
    p.add_argument("--ranks", type=int, default=1)
    p.add_argument("--degrade-policy", help="shrink | restart | abort")
    p.add_argument("--tenant", default="default")
    p.add_argument(
        "--priority", type=int, default=1, help="priority class (lower = sooner)"
    )
    p.add_argument(
        "--deadline-in",
        type=float,
        help="soft deadline in seconds from now (drives preemption)",
    )
    p.add_argument(
        "--stream",
        action="store_true",
        help="print per-step in-situ snapshot events while the job runs",
    )
    p.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    p.add_argument("--timeout", type=float, default=600.0)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list a running service's jobs")
    p.add_argument("--socket", default="repro.sock", help="unix socket path")
    p.add_argument(
        "--stats", action="store_true", help="also print queue/cache stats"
    )
    p.add_argument("--timeout", type=float, default=30.0)
    p.set_defaults(func=_cmd_jobs)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
