"""CPU execution of the SYCL code (Section 7.3).

"The SYCL code has been tested for correctness on CPUs using an OpenCL
backend ... We expect that some additional tuning for CPUs would be
required to achieve high levels of performance portability --
primarily due to the way the code uses atomics."

This module models that situation: a CPU device (the Xeon Max 9470C
host of an Aurora node) on which the SYCL kernels *run correctly*
through the OpenCL backend but with poor efficiency, dominated by
atomic contention -- cache-line ping-pong makes every atomic an order
of magnitude costlier than on a GPU.  The CPU is deliberately *not*
part of the paper's platform set H; helpers here quantify what PP
would become if it were (the "future work" the paper announces).
"""

from __future__ import annotations

from repro.machine.device import (
    DeviceSpec,
    RegisterAllocation,
    ShuffleImplementation,
    Vendor,
)

# ---------------------------------------------------------------------------
# The CPU host of an Aurora node: 2x Intel Xeon CPU Max 9470C.
#
# 52 cores x 2 sockets, 2 AVX-512 FMA pipes per core (32 FP32 lanes
# each): ~13 TFLOP/s FP32 at 2.0 GHz.  The OpenCL CPU backend emulates
# sub-groups with vector lanes (sizes 4/8/16 supported, plus 32 and 64
# by loop-unrolling); "shuffles" are permutes/cache traffic rather
# than register moves, and atomics serialize through the coherence
# protocol.
# ---------------------------------------------------------------------------
CPU_HOST = DeviceSpec(
    name="aurora-xeon-max-host",
    system="CPU",
    vendor=Vendor.CPU,
    gpu_product="2x Intel Xeon CPU Max 9470C",
    slices_per_gpu=1,
    fp32_peak_tflops=13.3,
    clock_ghz=2.0,
    compute_units=104,  # physical cores
    simd_width=32,  # dual AVX-512 FMA pipes, FP32 lanes
    hbm_bandwidth_gbs=3276.8,  # HBM2e SKU
    subgroup_sizes=(4, 8, 16, 32, 64),
    default_subgroup_size=16,
    registers_per_thread=32,  # AVX-512 architectural registers
    threads_per_cu=2,  # SMT-2
    supports_large_grf=False,
    register_width_elems=16,  # ZMM registers hold 16 FP32 lanes
    register_allocation=RegisterAllocation.OCCUPANCY_TRADED,
    max_regs_per_workitem=256,  # the compiler spills to stack beyond L1-hot state
    local_mem_per_cu_kib=48,  # L1D per core backing "local memory"
    local_mem_shares_l1=False,
    local_mem_latency_cycles=1.0,  # local memory *is* cache
    subgroup_barrier_cycles=2.0,
    shuffle_impl=ShuffleImplementation.DEDICATED,
    dedicated_shuffle_cycles=3.0,  # vector permutes
    broadcast_cycles=1.0,
    indirect_access_cycles_per_lane=0.0,
    supports_inline_visa=False,
    native_float_atomic_add=True,
    native_float_atomic_minmax=True,
    # Section 7.3's warning, as a number: coherence-protocol atomics
    # cost ~an order of magnitude more than a GPU's memory atomics
    atomic_cycles=120.0,
    cas_emulation_factor=1.5,
    fma_cycles=1.0,
    precise_special_cycles=20.0,
    native_special_cycles=10.0,
    spill_cycles_per_register=2.0,  # spills land in L1
    stall_weight=0.3,  # out-of-order cores self-hide latency
    min_full_throughput_subgroup=16,  # one AVX-512 FP32 vector
    node_mapping_efficiency=1.0,
    notes="Section 7.3: correctness target, not a performance target",
)


def atomic_cycle_share(profile, launch, device: DeviceSpec = CPU_HOST) -> float:
    """Share of per-work-item cycles spent in atomics for a profile."""
    from repro.machine.cost_model import CostModel

    cost = CostModel(device).kernel_cost(profile, launch)
    total = sum(cost.cycles.values())
    if total <= 0:
        return 0.0
    return cost.cycles["atomics"] / total


def pp_with_cpu(trace, variants="memory_object") -> dict[str, float]:
    """PP over {Aurora, Polaris, Frontier} vs over the set + CPU.

    The paper plans to "explore this further in future work"; this
    helper shows why: adding an untuned CPU platform to H collapses
    the harmonic mean.
    """
    from repro.core.metrics import performance_portability
    from repro.kernels.adiabatic import price_trace
    from repro.machine.registry import all_devices
    from repro.proglang.model import ProgrammingModel

    devices = list(all_devices()) + [CPU_HOST]
    # utilisation proxy: work per second per peak FLOP/s, normalised to
    # the best-utilising device.  This keeps the comparison meaningful
    # across devices with very different raw speeds without requiring a
    # per-CPU variant search.
    work = trace.total_interactions()
    utilisation = {}
    for device in devices:
        report = price_trace(trace, device, ProgrammingModel.SYCL, variants)
        utilisation[device.system] = work / report.total_seconds / device.peak_flops
    top = max(utilisation.values())
    efficiencies = {s: u / top for s, u in utilisation.items()}
    gpu_only = {s: e for s, e in efficiencies.items() if s != "CPU"}
    return {
        "pp_gpus": performance_portability(gpu_only),
        "pp_with_cpu": performance_portability(efficiencies),
        "cpu_efficiency": efficiencies["CPU"],
    }
