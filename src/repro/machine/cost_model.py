"""Kernel cost model: instruction profiles -> simulated device time.

A kernel variant running on a device is summarised by an
:class:`InstructionProfile`: per-work-item operation counts measured
from the actual (NumPy) kernel implementations, plus register and
local-memory footprints.  :class:`CostModel` prices the profile on a
:class:`~repro.machine.device.DeviceSpec`, producing a
:class:`KernelCost` with a full cycle breakdown.

The model is a straightforward in-order cycle account with three
corrections that carry the paper's phenomena:

- *occupancy-dependent stalls* (register/local-memory pressure reduces
  latency hiding),
- *register spilling* (charged per inner-loop iteration),
- *a roofline memory bound* (kernel time is the max of the compute and
  memory times, with the NVIDIA shared-memory/L1 trade-off reducing
  effective bandwidth).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.machine.atomics import AtomicOp, AtomicsModel
from repro.machine.device import DeviceSpec, GRFMode
from repro.machine.memory import MemoryModel
from repro.machine.occupancy import OccupancyCalculator, OccupancyResult
from repro.machine.registers import RegisterModel
from repro.machine import shuffle as shuffle_ops

#: fraction of spilled registers that are actually touched per inner
#: iteration (not all spilled state is hot); calibration constant
SPILL_ACCESS_FRACTION = 0.25


@dataclass(frozen=True)
class InstructionProfile:
    """Per-work-item operation counts for one kernel execution.

    All counts are totals over the kernel's lifetime for one work-item
    (kernels derive them as interactions-per-work-item times
    per-interaction counts).
    """

    #: fused multiply-adds (2 flops each)
    fma: float = 0.0
    #: plain single-op flops (add/mul/sub/cmp)
    flops: float = 0.0
    #: integer/address operations
    int_ops: float = 0.0
    #: transcendental / special-function calls (pow, sqrt, exp, rsqrt)
    specials: float = 0.0
    #: arbitrary-pattern cross-lane word moves (select_from_group)
    shuffles: float = 0.0
    #: compile-time-known broadcasts (words)
    broadcasts: float = 0.0
    #: sub-group reductions (reduce_over_group calls)
    reduces: float = 0.0
    #: words exchanged via the inline-vISA butterfly (Intel-only)
    visa_exchanges: float = 0.0
    #: 32-bit local-memory exchange round-trips (Memory, 32-bit variant)
    lm_exchanges_32bit: float = 0.0
    #: object-at-once local-memory exchanges (Memory, Object variant)
    lm_exchange_objects: float = 0.0
    #: words per object exchange
    lm_object_words: float = 0.0
    #: float atomic adds issued
    atomic_adds: float = 0.0
    #: float atomic min/max issued
    atomic_minmax: float = 0.0
    #: global memory traffic in bytes
    global_bytes: float = 0.0
    #: live scalar registers required per work-item
    registers_needed: int = 32
    #: work-group local memory reserved per work-group, in bytes
    local_mem_bytes_per_workgroup: int = 0
    #: inner-loop iterations (interaction count) per work-item; spills
    #: are charged once per iteration
    interactions: float = 1.0

    def scaled(self, factor: float) -> "InstructionProfile":
        """Profile with all *count* fields multiplied by ``factor``.

        Register and local-memory footprints are per-work-item state,
        not counts, and are left unchanged.
        """
        updates = {}
        for f in dataclasses.fields(self):
            if f.name in ("registers_needed", "local_mem_bytes_per_workgroup"):
                continue
            updates[f.name] = getattr(self, f.name) * factor
        return dataclasses.replace(self, **updates)

    @property
    def flop_count(self) -> float:
        """Total floating-point operations per work-item (FMA = 2)."""
        return 2.0 * self.fma + self.flops + self.specials


@dataclass(frozen=True)
class KernelLaunch:
    """Launch geometry and compile options for one kernel execution."""

    n_workitems: int
    workgroup_size: int = 128
    subgroup_size: int = 32
    grf_mode: GRFMode = GRFMode.SMALL
    fast_math: bool = True

    def __post_init__(self):
        if self.n_workitems <= 0:
            raise ValueError("n_workitems must be positive")
        if self.workgroup_size % self.subgroup_size != 0:
            raise ValueError(
                "work-group size must be a multiple of the sub-group size"
            )


@dataclass(frozen=True)
class KernelCost:
    """Priced kernel execution with a cycle breakdown."""

    device: str
    seconds: float
    compute_seconds: float
    memory_seconds: float
    occupancy: OccupancyResult
    stall_factor: float
    #: per-work-item cycle breakdown before the stall multiplier
    cycles: dict = field(default_factory=dict)
    flops_total: float = 0.0

    @property
    def achieved_tflops(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.flops_total / self.seconds / 1e12

    @property
    def bound(self) -> str:
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"


class CostModel:
    """Prices instruction profiles on one device."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self.occupancy = OccupancyCalculator(device)
        self.registers = RegisterModel(device)
        self.memory = MemoryModel(device)
        self.atomics = AtomicsModel(device)

    # ------------------------------------------------------------------
    def kernel_cost(
        self, profile: InstructionProfile, launch: KernelLaunch
    ) -> KernelCost:
        """Simulated execution time of one kernel launch."""
        dev = self.device
        dev.validate_subgroup_size(launch.subgroup_size)
        sg = launch.subgroup_size

        cycles: dict[str, float] = {}

        # -- compute pipeline -----------------------------------------
        special_cost = (
            dev.native_special_cycles
            if launch.fast_math
            else dev.precise_special_cycles
        )
        cycles["compute"] = (
            profile.fma * dev.fma_cycles
            + profile.flops * dev.fma_cycles
            + profile.int_ops * dev.fma_cycles
            + profile.specials * special_cost
        )

        # -- cross-lane communication ----------------------------------
        comm = (
            profile.shuffles * shuffle_ops.select_cycles(dev, sg)
            + profile.broadcasts * shuffle_ops.broadcast_cycles(dev)
            + profile.reduces * shuffle_ops.reduce_cycles(dev, sg)
        )
        if profile.visa_exchanges:
            comm += shuffle_ops.visa_butterfly_cycles(dev, profile.visa_exchanges)
        cycles["communication"] = comm

        # -- local-memory exchanges --------------------------------------
        lm_cycles = 0.0
        lm_bytes = profile.local_mem_bytes_per_workgroup
        if profile.lm_exchanges_32bit:
            one = self.memory.local_exchange(
                1, workgroup_size=launch.workgroup_size, separate_barriers=True
            )
            lm_cycles += profile.lm_exchanges_32bit * one.cycles
            lm_bytes = max(lm_bytes, one.local_mem_bytes_per_workgroup)
        if profile.lm_exchange_objects:
            obj = self.memory.local_exchange(
                max(1, int(round(profile.lm_object_words))),
                workgroup_size=launch.workgroup_size,
                separate_barriers=False,
            )
            lm_cycles += profile.lm_exchange_objects * obj.cycles
            lm_bytes = max(lm_bytes, obj.local_mem_bytes_per_workgroup)
        if lm_cycles:
            lm_cycles *= self.memory.l1_contention_factor(profile.registers_needed)
        cycles["local_memory"] = lm_cycles

        # -- atomics -------------------------------------------------------
        cycles["atomics"] = self.atomics.cycles(
            AtomicOp.ADD, profile.atomic_adds
        ) + self.atomics.cycles(AtomicOp.MIN, profile.atomic_minmax)

        # -- register spills -------------------------------------------------
        assignment = self.registers.assign(
            profile.registers_needed,
            subgroup_size=sg,
            grf_mode=launch.grf_mode,
        )
        cycles["spills"] = (
            self.registers.spill_cycles(assignment)
            * profile.interactions
            * SPILL_ACCESS_FRACTION
        )

        # -- occupancy & stalls ------------------------------------------------
        occ = self.occupancy.calculate(
            subgroup_size=sg,
            workgroup_size=launch.workgroup_size,
            registers_needed=profile.registers_needed,
            local_mem_bytes_per_workgroup=lm_bytes,
            grf_mode=launch.grf_mode,
        )
        stall = self.occupancy.stall_factor(occ.occupancy)

        per_item = sum(cycles.values())
        lanes = dev.compute_units * dev.simd_width
        # sub-groups narrower than the native execution width leave
        # lanes idle (e.g. a 32-wide sub-group on the wave64 MI250X)
        utilisation = dev.lane_utilisation(sg)
        compute_seconds = (
            per_item
            * launch.n_workitems
            * stall
            / (lanes * utilisation * dev.clock_ghz * 1e9)
        )

        # -- memory roofline -------------------------------------------------------
        subgroups_per_wg = launch.workgroup_size // sg
        resident_wgs = max(1, occ.resident_subgroups // max(1, subgroups_per_wg))
        memory_seconds = self.memory.memory_time(
            profile.global_bytes * launch.n_workitems,
            local_mem_bytes_per_cu=float(lm_bytes * resident_wgs),
        )

        seconds = max(compute_seconds, memory_seconds)
        seconds /= dev.node_mapping_efficiency

        return KernelCost(
            device=dev.name,
            seconds=seconds,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            occupancy=occ,
            stall_factor=stall,
            cycles=cycles,
            flops_total=profile.flop_count * launch.n_workitems,
        )
