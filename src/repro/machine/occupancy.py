"""Occupancy calculation for the virtual GPUs.

Occupancy — the fraction of a compute unit's hardware-thread slots that
are resident — controls how well a device hides latency.  The paper's
Section 5.2 discusses the Intel-specific interplay between the register
file mode and occupancy (the large-GRF mode halves the resident
threads, capping occupancy at 50%); on NVIDIA and AMD devices the
compiler instead trades registers per work-item against the number of
resident sub-groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.device import DeviceSpec, GRFMode, RegisterAllocation
from repro.machine.registers import RegisterModel

#: register allocation granularity on occupancy-traded devices (the
#: hardware allocates registers in blocks; 8 matches NVIDIA's rounding)
REGISTER_GRANULARITY = 8


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of an occupancy calculation for one kernel launch."""

    #: sub-groups (hardware threads) resident per compute unit
    resident_subgroups: int
    #: the device's nominal maximum for the launch's GRF mode
    max_subgroups: int
    #: resident / nominal-max-in-default-mode, in [0, 1]
    occupancy: float
    #: what bounded residency: "threads", "registers", "local_mem"
    limited_by: str

    @property
    def is_full(self) -> bool:
        return self.occupancy >= 0.999


class OccupancyCalculator:
    """Computes occupancy for kernel launches on one device."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self._registers = RegisterModel(device)

    def calculate(
        self,
        *,
        subgroup_size: int,
        workgroup_size: int,
        registers_needed: int,
        local_mem_bytes_per_workgroup: int = 0,
        grf_mode: GRFMode = GRFMode.SMALL,
    ) -> OccupancyResult:
        """Occupancy of a launch on this device.

        ``registers_needed`` is the kernel's live scalar register
        requirement per work-item (before any spilling).
        """
        dev = self.device
        dev.validate_subgroup_size(subgroup_size)
        if workgroup_size % subgroup_size != 0:
            raise ValueError(
                f"work-group size {workgroup_size} is not a multiple of "
                f"sub-group size {subgroup_size}"
            )

        # The nominal ceiling against which occupancy is reported is the
        # default-mode thread count: this is what makes the Intel
        # large-GRF mode read as "50% occupancy" (Section 5.2).
        nominal_max = dev.threads_per_cu
        mode_max = dev.threads_per_cu_for(grf_mode)
        limited_by = "threads"
        resident = mode_max

        if dev.register_allocation is RegisterAllocation.OCCUPANCY_TRADED:
            allocation = self._registers.assign(
                registers_needed, subgroup_size=subgroup_size, grf_mode=grf_mode
            )
            granule = REGISTER_GRANULARITY
            alloc = max(
                granule,
                ((allocation.allocated + granule - 1) // granule) * granule,
            )
            regfile_scalars = (
                dev.registers_per_thread
                * dev.threads_per_cu
                * dev.default_subgroup_size
            )
            by_regs = regfile_scalars // (alloc * subgroup_size)
            if by_regs < resident:
                resident = by_regs
                limited_by = "registers"

        if local_mem_bytes_per_workgroup > 0:
            lm_budget = dev.local_mem_per_cu_kib * 1024
            wgs_per_cu = lm_budget // local_mem_bytes_per_workgroup
            subgroups_per_wg = workgroup_size // subgroup_size
            by_lm = wgs_per_cu * subgroups_per_wg
            if by_lm < resident:
                resident = by_lm
                limited_by = "local_mem"

        resident = max(0, min(resident, mode_max))
        occupancy = resident / nominal_max if nominal_max else 0.0
        return OccupancyResult(
            resident_subgroups=int(resident),
            max_subgroups=int(mode_max),
            occupancy=float(min(1.0, occupancy)),
            limited_by=limited_by,
        )

    def stall_factor(self, occupancy: float) -> float:
        """Latency-hiding penalty multiplier.

        A fully occupied device pays no penalty; an idle one pays
        ``1 + stall_weight``.  The linear form is a deliberate
        simplification: the reproduction only needs the *direction* of
        the effect (lower occupancy -> longer kernels).
        """
        occ = min(1.0, max(0.0, occupancy))
        return 1.0 + self.device.stall_weight * (1.0 - occ)
