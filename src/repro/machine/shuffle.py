"""Cross-lane communication cost primitives.

These are the machine-level building blocks behind the paper's five
kernel variants (Section 5.3):

- :func:`select_cycles` — an arbitrary-pattern shuffle
  (``sycl::select_from_group``).  Dedicated-shuffle hardware pays a
  small constant; Intel's indirect register access pays one cycle per
  lane (Figure 5).
- :func:`broadcast_cycles` — a compile-time-known broadcast, lowered to
  register regioning on Intel (Figure 6).
- :func:`reduce_cycles` — ``sycl::reduce_over_group``, a log2 shuffle
  tree (or the hardware's native reduction).
- :func:`visa_butterfly_cycles` — the specialized butterfly-shuffle
  written in inline vISA: four ``mov`` instructions regardless of
  sub-group size (Section 5.3.3, Figure 8).  Intel-only.
"""

from __future__ import annotations

import math

from repro.machine.device import DeviceSpec, ShuffleImplementation


class UnsupportedOperation(RuntimeError):
    """Raised when a device cannot execute the requested primitive."""


def select_cycles(device: DeviceSpec, subgroup_size: int, words: int = 1) -> float:
    """Cycles for an arbitrary cross-lane shuffle of ``words`` words."""
    return words * device.shuffle_cycles(subgroup_size)


def xor_shuffle_cycles(device: DeviceSpec, subgroup_size: int, words: int = 1) -> float:
    """Cycles for the half-warp XOR shuffle pattern (Figure 4).

    The XOR pattern's source lanes are data-dependent across loop
    iterations, so on indirect-register-access hardware it costs the
    same as a general ``select_from_group``.
    """
    return select_cycles(device, subgroup_size, words)


def broadcast_cycles(device: DeviceSpec, words: int = 1) -> float:
    """Cycles to broadcast ``words`` words from a known lane."""
    return words * device.broadcast_cycles


def reduce_cycles(device: DeviceSpec, subgroup_size: int) -> float:
    """Cycles for a sub-group reduction (``reduce_over_group``).

    Implemented as a log2(subgroup) tree of compile-time shuffles; the
    conveyed communication pattern lets the compiler use the cheap
    compile-time lowering even on indirect-access hardware
    (Section 5.1's group-algorithms optimization).
    """
    steps = int(math.log2(subgroup_size))
    if device.shuffle_impl is ShuffleImplementation.DEDICATED:
        per_step = device.dedicated_shuffle_cycles
    else:
        per_step = device.broadcast_cycles
    return steps * (per_step + device.fma_cycles)


def visa_butterfly_cycles(device: DeviceSpec, words: int = 1) -> float:
    """Cycles for the inline-vISA butterfly exchange (Figure 8).

    Four ``mov`` instructions move a whole sub-group's worth of data:
    two populate the duplicated register pairs and two perform the
    shifted reads via register regioning.

    Raises :class:`UnsupportedOperation` on non-Intel hardware, which is
    what zeroes the vISA variant's performance portability in
    Figure 12.
    """
    if not device.supports_inline_visa:
        raise UnsupportedOperation(
            f"{device.name} does not accept inline vISA assembly"
        )
    # four movs move a sub-group's worth of data per exchanged word;
    # register regioning keeps them close to plain moves
    return 3.0 * words * device.fma_cycles
