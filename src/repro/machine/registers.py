"""Register allocation and spill model.

The paper's central performance-portability tension is register
pressure: the broadcast-restructured kernels hold two particles' state
per work-item and spill catastrophically on the A100 (Section 5.4,
"almost 10x slower in some cases"), while on Intel hardware the
combination of the large-GRF mode and a sub-group size of 16 provides a
4x register headroom (Section 5.2) that absorbs the same pressure.

The model distinguishes the two allocation disciplines described in
:class:`repro.machine.device.RegisterAllocation`:

- *fixed partition* (Intel): the budget per work-item is set by the GRF
  mode and the sub-group size; demand beyond it spills.
- *occupancy traded* (NVIDIA/AMD): the compiler allocates up to the
  architectural per-thread maximum, lowering occupancy; demand beyond
  the maximum spills.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.device import DeviceSpec, GRFMode, RegisterAllocation


@dataclass(frozen=True)
class RegisterAssignment:
    """Result of register allocation for one kernel on one device."""

    #: scalar registers requested per work-item
    requested: int
    #: scalar registers actually held in the register file
    allocated: int
    #: scalar registers spilled to memory
    spilled: int
    #: the budget that applied (fixed partition or architectural max)
    budget: int

    @property
    def has_spills(self) -> bool:
        return self.spilled > 0


class RegisterModel:
    """Per-device register assignment."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def budget(self, *, subgroup_size: int, grf_mode: GRFMode) -> int:
        """Scalar registers one work-item may hold without spilling."""
        dev = self.device
        if dev.register_allocation is RegisterAllocation.FIXED_PARTITION:
            return dev.registers_per_workitem(subgroup_size, grf_mode)
        return dev.max_regs_per_workitem

    def assign(
        self,
        requested: int,
        *,
        subgroup_size: int,
        grf_mode: GRFMode = GRFMode.SMALL,
    ) -> RegisterAssignment:
        """Allocate ``requested`` scalar registers per work-item."""
        if requested < 0:
            raise ValueError("register demand must be non-negative")
        cap = self.budget(subgroup_size=subgroup_size, grf_mode=grf_mode)
        allocated = min(requested, cap)
        spilled = max(0, requested - cap)
        return RegisterAssignment(
            requested=requested, allocated=allocated, spilled=spilled, budget=cap
        )

    def spill_cycles(self, assignment: RegisterAssignment) -> float:
        """Cycles per interaction charged for spill traffic.

        Each spilled register is assumed to be refilled/stored once per
        inner interaction iteration; the per-register cost is the
        device's calibrated :attr:`spill_cycles_per_register`.  The
        superlinear exponent models cache-thrashing once spill working
        sets exceed nearby cache (A100's spill cliff).
        """
        if assignment.spilled <= 0:
            return 0.0
        dev = self.device
        return (
            dev.spill_cycles_per_register
            * assignment.spilled ** dev.spill_pressure_exponent
        )
