"""Memory hierarchy cost models.

Two effects from the paper are modelled here:

1. *Local-memory exchange cost* (Section 5.3.1): swapping
   ``select_from_group`` for a write / sub-group-barrier / read sequence
   through work-group local memory.  The cost is per exchanged word plus
   a barrier.

2. *The shared-memory / L1 trade-off on NVIDIA* (Section 5.4): on A100
   the shared memory is carved out of the unified L1, so local-memory
   variants of cache-hungry kernels (Energy, Acceleration) lose L1 hit
   rate.  We model this as a reduction in effective global-memory
   bandwidth proportional to the carve-out fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.device import DeviceSpec

#: fraction of global traffic that L1 absorbs when fully available;
#: calibrated so that a full shared-memory carve-out costs cache-hungry
#: kernels a noticeable but not dominating factor on A100
L1_HIT_BENEFIT = 1.5


@dataclass(frozen=True)
class LocalExchangeCost:
    """Cycle cost of one local-memory sub-group exchange."""

    cycles: float
    #: bytes of work-group local memory the exchange reserves per
    #: work-group (affects occupancy)
    local_mem_bytes_per_workgroup: int


class MemoryModel:
    """Per-device memory cost helper."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    # -- local-memory exchange -----------------------------------------
    def local_exchange(
        self,
        words: int,
        *,
        workgroup_size: int,
        separate_barriers: bool,
    ) -> LocalExchangeCost:
        """Cost of exchanging ``words`` 32-bit words between work-items
        of a sub-group through local memory.

        ``separate_barriers`` selects the paper's *Memory, 32-bit*
        variant (one write/barrier/read round-trip per component) as
        opposed to *Memory, Object* (a single round-trip moving the
        whole composite object, using a larger local-memory region).
        """
        dev = self.device
        per_word = 2.0 * dev.local_mem_latency_cycles  # write + read
        if separate_barriers:
            barriers = words
            lm_bytes = 4 * workgroup_size  # one word per work-item
        else:
            barriers = 1
            lm_bytes = 4 * words * workgroup_size  # whole object at once
        cycles = words * per_word + barriers * dev.subgroup_barrier_cycles
        return LocalExchangeCost(
            cycles=cycles, local_mem_bytes_per_workgroup=lm_bytes
        )

    # -- shared-memory / L1 contention ----------------------------------
    def l1_contention_factor(self, registers_needed: int) -> float:
        """Multiplier on local-memory cycles from the shared-memory/L1
        trade-off (Section 5.4).

        On devices whose local memory is carved out of L1, kernels with
        a large live state depend on L1 to hold their working set;
        using local memory for exchanges both shrinks that cache and
        contends with it for bandwidth.  The linear form (1 + R/128) is
        a calibration choice: it makes the memory variants of the
        register-heavy Energy and Acceleration kernels the ones that
        suffer most, as the paper reports for the A100.
        """
        if not self.device.local_mem_shares_l1:
            return 1.0
        return 1.0 + registers_needed / 128.0

    # -- global memory ---------------------------------------------------
    def effective_bandwidth(self, local_mem_bytes_per_cu: float) -> float:
        """Effective global bandwidth (bytes/s) given shared-memory use.

        On devices where local memory shares capacity with L1, carving
        out shared memory lowers the cache's ability to filter global
        traffic, which we fold into a lower effective bandwidth.
        """
        dev = self.device
        base = dev.hbm_bandwidth_gbs * 1e9
        if not dev.local_mem_shares_l1:
            return base * (1.0 + L1_HIT_BENEFIT)
        capacity = dev.local_mem_per_cu_kib * 1024.0
        carve = min(1.0, max(0.0, local_mem_bytes_per_cu / capacity))
        l1_available = 1.0 - carve
        return base * (1.0 + L1_HIT_BENEFIT * l1_available)

    def memory_time(
        self,
        total_bytes: float,
        *,
        local_mem_bytes_per_cu: float = 0.0,
    ) -> float:
        """Seconds to move ``total_bytes`` of global traffic."""
        bw = self.effective_bandwidth(local_mem_bytes_per_cu)
        return total_bytes / bw
