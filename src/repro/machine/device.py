"""Device descriptions for the virtual-GPU performance model.

A :class:`DeviceSpec` captures the microarchitectural facts the paper's
analysis turns on:

- which *sub-group sizes* the device supports (Section 4.3: AMD supports
  {32, 64}, Intel {16, 32}, NVIDIA {32});
- the size and configurability of the *register file* (Section 5.2: the
  Intel Data Center GPU Max 1550 offers 128 registers per thread by
  default, or 256 at the cost of halving the threads per EU);
- how *cross-lane communication* is implemented (Section 5.3: on Intel,
  an unknown shuffle pattern compiles to indirect register access costing
  one cycle per lane; NVIDIA and AMD have dedicated shuffle instructions);
- whether *floating-point atomic min/max* are native (Section 5.1: SYCL
  emulates them with compare-and-swap on NVIDIA GPUs);
- the *local-memory / L1 trade-off* (Section 5.4: on NVIDIA, shared
  memory and L1 share capacity, penalising local-memory variants of
  register-heavy kernels).

All latencies are expressed in cycles per SIMD instruction (i.e. per
sub-group-wide operation), and throughputs in operations per cycle per
lane.  Absolute values matter only through the ratios they induce.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace


class Vendor(enum.Enum):
    """Device vendor/kind; determines programming-model availability."""

    INTEL = "intel"
    NVIDIA = "nvidia"
    AMD = "amd"
    #: host CPUs (Section 7.3: SYCL through an OpenCL CPU backend)
    CPU = "cpu"


class ShuffleImplementation(enum.Enum):
    """How a device realises an arbitrary cross-lane shuffle.

    ``DEDICATED``
        A hardware shuffle/permute instruction (NVIDIA ``__shfl``,
        AMD ``ds_permute``/DPP).  Cost is a small constant.
    ``INDIRECT_REGISTER``
        Indirect register access through an address register (Intel
        ``r[a0.0]``, Figure 5 of the paper).  Cost scales with the
        number of lanes gathered: one cycle per element.
    """

    DEDICATED = "dedicated"
    INDIRECT_REGISTER = "indirect_register"


class RegisterAllocation(enum.Enum):
    """How the device assigns registers to threads.

    ``FIXED_PARTITION``
        Each hardware thread owns a fixed register budget; kernels whose
        live state exceeds it spill (Intel Xe: 128 or 256 registers per
        thread, selected per kernel).
    ``OCCUPANCY_TRADED``
        The compiler may allocate more registers per work-item, reducing
        the number of resident threads (NVIDIA/AMD); spills occur only
        beyond the architectural per-thread maximum.
    """

    FIXED_PARTITION = "fixed_partition"
    OCCUPANCY_TRADED = "occupancy_traded"


class GRFMode(enum.Enum):
    """Register-file configuration (Intel terminology: GRF = general
    register file).  ``SMALL`` is the default 128-register mode;
    ``LARGE`` doubles the per-thread register count while halving the
    number of resident threads (Section 5.2)."""

    SMALL = "small"
    LARGE = "large"


@dataclass(frozen=True)
class DeviceSpec:
    """A virtual GPU (or the GPU slice owned by one MPI rank).

    Parameters are documented inline; see :mod:`repro.machine.registry`
    for the concrete values used for Aurora, Polaris and Frontier.
    """

    # -- identity -----------------------------------------------------
    name: str
    system: str
    vendor: Vendor
    #: marketing name of the physical GPU this slice belongs to
    gpu_product: str
    #: how many logical devices (ranks) one physical GPU presents
    slices_per_gpu: int

    # -- raw throughput ----------------------------------------------
    #: FP32 peak of this *slice* in TFLOP/s (Table 1 values divided by
    #: ``slices_per_gpu``)
    fp32_peak_tflops: float
    #: core clock in GHz
    clock_ghz: float
    #: number of compute units in this slice (EUs / SMs / CUs)
    compute_units: int
    #: native SIMD/vector width of one compute unit issue, in lanes
    simd_width: int
    #: HBM bandwidth of the slice in GB/s
    hbm_bandwidth_gbs: float

    # -- sub-groups ----------------------------------------------------
    #: sub-group sizes this device's compiler accepts
    subgroup_sizes: tuple[int, ...]
    #: the sub-group size used by default ("native" warp/wavefront size)
    default_subgroup_size: int

    # -- register file -------------------------------------------------
    #: architected registers per hardware thread in the default mode
    registers_per_thread: int
    #: hardware threads resident per compute unit in the default mode
    threads_per_cu: int
    #: whether the device supports the LARGE GRF mode (2x registers,
    #: half the threads) -- an Intel Max Series feature
    supports_large_grf: bool
    #: register width in 32-bit elements (Intel GRF registers are
    #: SIMD-wide; CUDA registers are per-lane scalars).  The cost and
    #: occupancy models work in *scalar registers per work-item*, and
    #: this factor converts.
    register_width_elems: int
    #: register-assignment policy (see :class:`RegisterAllocation`)
    register_allocation: RegisterAllocation
    #: architectural maximum scalar registers one work-item may be
    #: allocated (255 on NVIDIA, 256 VGPRs on AMD; on Intel this equals
    #: the fixed budget of the chosen GRF mode / sub-group size)
    max_regs_per_workitem: int

    # -- local memory ---------------------------------------------------
    #: work-group local memory (shared memory / SLM / LDS) per compute
    #: unit, in KiB
    local_mem_per_cu_kib: int
    #: True when local memory is carved out of the L1 cache (NVIDIA),
    #: creating the trade-off discussed in Section 5.4
    local_mem_shares_l1: bool
    #: latency, in cycles, of one local-memory access instruction
    local_mem_latency_cycles: float
    #: cycles for a sub-group barrier
    subgroup_barrier_cycles: float

    # -- cross-lane communication ---------------------------------------
    shuffle_impl: ShuffleImplementation
    #: cycles for one dedicated shuffle instruction (if available)
    dedicated_shuffle_cycles: float
    #: cycles per *lane* for an indirect-register-access gather
    indirect_access_cycles_per_lane: float
    #: cycles for a compile-time-known broadcast (register regioning on
    #: Intel; ``__shfl_sync`` with uniform index elsewhere)
    broadcast_cycles: float
    #: whether inline vISA assembly is accepted (Intel only)
    supports_inline_visa: bool

    # -- atomics ----------------------------------------------------------
    #: native FP32 atomic add in memory hierarchy
    native_float_atomic_add: bool
    #: native FP32 atomic min/max (Intel and AMD: yes; NVIDIA: emulated
    #: via CAS -- Section 5.1)
    native_float_atomic_minmax: bool
    #: cycles for one native atomic op (amortised, contention included)
    atomic_cycles: float
    #: multiplier applied when an atomic must be emulated with a CAS loop
    cas_emulation_factor: float

    # -- math instruction costs -------------------------------------------
    #: cycles per FMA issue (per sub-group instruction); normally 1
    fma_cycles: float
    #: cycles for a *precise* transcendental (pow, exp, rsqrt chain)
    precise_special_cycles: float
    #: cycles for a *native* / fast-math transcendental
    native_special_cycles: float

    # -- spill behaviour ----------------------------------------------------
    #: cycles charged per spilled scalar register per interaction loop
    #: (models the load/store traffic a spill generates)
    spill_cycles_per_register: float
    #: fraction of interaction state that must stay live; used by the
    #: register model when estimating pressure
    spill_pressure_exponent: float = 1.0

    # -- latency hiding -------------------------------------------------------
    #: weight of the occupancy-dependent stall penalty; effective cycles
    #: are multiplied by ``1 + stall_weight * (1 - occupancy)``
    stall_weight: float = 1.0

    # -- sub-group execution width ------------------------------------------
    #: smallest sub-group size that fully utilises the execution units.
    #: Sub-groups below it waste lanes (e.g. a 32-wide sub-group on the
    #: wave64-native MI250X runs at half throughput); sizes at or above
    #: it pipeline over multiple issue cycles at full utilisation.
    min_full_throughput_subgroup: int = 1

    # -- mapping from rank workload to device --------------------------------
    #: efficiency multiplier capturing node-mapping artefacts (the paper
    #: runs 2 ranks per A100 on Polaris, costing ~11%)
    node_mapping_efficiency: float = 1.0

    #: free-form notes (shown in Table 1 regeneration)
    notes: str = ""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def total_lanes(self) -> int:
        """Total FP32 lanes in the slice."""
        return self.compute_units * self.simd_width

    @property
    def fma_lanes_equivalent(self) -> float:
        """FP32 FMA lanes implied by the peak rating.

        ``peak = lanes * 2 flops * clock`` -- useful as a cross-check of
        the registry data.
        """
        return self.fp32_peak_tflops * 1e12 / (2.0 * self.clock_ghz * 1e9)

    @property
    def peak_flops(self) -> float:
        """FP32 peak in FLOP/s."""
        return self.fp32_peak_tflops * 1e12

    def registers_per_workitem(self, subgroup_size: int, grf_mode: GRFMode) -> int:
        """Scalar 32-bit registers available to one work-item.

        On Intel hardware a hardware thread executes one sub-group, and
        its (SIMD-wide) registers are shared by the sub-group's
        work-items: halving the sub-group size doubles the registers per
        work-item (Section 5.2).  On NVIDIA/AMD, registers are
        architected per lane and the sub-group size does not change the
        per-work-item budget.
        """
        regs = self.registers_per_thread
        if grf_mode is GRFMode.LARGE:
            if not self.supports_large_grf:
                raise ValueError(
                    f"{self.name} does not support the large-GRF mode"
                )
            regs *= 2
        if self.register_width_elems > 1:
            # SIMD register file: budget is per thread, shared by lanes.
            total_scalars = regs * self.register_width_elems
            return total_scalars // subgroup_size
        return regs

    def threads_per_cu_for(self, grf_mode: GRFMode) -> int:
        """Resident hardware threads per CU under the given GRF mode."""
        if grf_mode is GRFMode.LARGE:
            if not self.supports_large_grf:
                raise ValueError(
                    f"{self.name} does not support the large-GRF mode"
                )
            return max(1, self.threads_per_cu // 2)
        return self.threads_per_cu

    def lane_utilisation(self, subgroup_size: int) -> float:
        """Fraction of execution lanes a sub-group of this size keeps
        busy (1.0 at or above the native execution width)."""
        if subgroup_size <= 0:
            raise ValueError("sub-group size must be positive")
        return min(1.0, subgroup_size / self.min_full_throughput_subgroup)

    def validate_subgroup_size(self, size: int) -> None:
        """Raise :class:`UnsupportedSubgroupSize` if ``size`` is illegal."""
        if size not in self.subgroup_sizes:
            raise UnsupportedSubgroupSize(
                f"sub-group size {size} is not supported by {self.name}; "
                f"supported sizes: {sorted(self.subgroup_sizes)}"
            )

    def shuffle_cycles(self, subgroup_size: int, *, compile_time_pattern: bool = False) -> float:
        """Cycles for one arbitrary cross-lane shuffle of one word.

        ``compile_time_pattern`` marks shuffles whose source lanes are
        known at compile time; on Intel these can be lowered to register
        regioning instead of indirect access (Section 5.3.2).
        """
        if self.shuffle_impl is ShuffleImplementation.DEDICATED:
            return self.dedicated_shuffle_cycles
        if compile_time_pattern:
            return self.broadcast_cycles
        return self.indirect_access_cycles_per_lane * subgroup_size

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """Return a copy of this spec with fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def summary(self) -> dict:
        """A plain-dict summary used by the Table 1 regenerator."""
        return {
            "system": self.system,
            "vendor": self.vendor.value,
            "gpu": self.gpu_product,
            "slices_per_gpu": self.slices_per_gpu,
            "fp32_peak_tflops_slice": self.fp32_peak_tflops,
            "fp32_peak_tflops_gpu": self.fp32_peak_tflops * self.slices_per_gpu,
            "subgroup_sizes": list(self.subgroup_sizes),
            "default_subgroup_size": self.default_subgroup_size,
            "registers_per_thread": self.registers_per_thread,
            "supports_large_grf": self.supports_large_grf,
            "local_mem_per_cu_kib": self.local_mem_per_cu_kib,
            "local_mem_shares_l1": self.local_mem_shares_l1,
            "shuffle_impl": self.shuffle_impl.value,
            "native_float_atomic_minmax": self.native_float_atomic_minmax,
            "supports_inline_visa": self.supports_inline_visa,
        }


class UnsupportedSubgroupSize(ValueError):
    """Raised when a kernel requests a sub-group size the device lacks."""


def peak_consistency_error(spec: DeviceSpec) -> float:
    """Relative error between the rated peak and lanes*2*clock.

    The registry test uses this to guard against typos in the device
    data; a small error is expected because vendors rate peaks at boost
    clocks and with architecture-specific dual-issue rules.
    """
    implied = spec.total_lanes * 2.0 * spec.clock_ghz * 1e9
    if implied == 0:
        return math.inf
    return abs(spec.peak_flops - implied) / implied
