"""Roofline analysis of the priced kernels.

A complement to the paper's efficiency figures: for each kernel the
roofline model asks whether the device's compute peak or its memory
bandwidth bounds performance.  The cost model already takes
``max(compute, memory)``; this module exposes the underlying
positions -- arithmetic intensity vs the device ridge point -- so the
"who is bound by what" structure behind Figures 9-11 is inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hacc.timestep import WorkloadTrace
from repro.kernels.adiabatic import AdiabaticKernelDefinition
from repro.kernels.specs import KERNEL_SPECS, TIMER_TO_KERNEL
from repro.kernels.variants import Variant, variant_by_name
from repro.machine.cost_model import CostModel, KernelLaunch
from repro.machine.device import DeviceSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under the roofline."""

    kernel: str
    device: str
    #: flops per byte of global traffic
    arithmetic_intensity: float
    #: device ridge point (flops/byte at which compute == bandwidth)
    ridge_point: float
    #: achieved FLOP/s from the cost model
    achieved_flops: float
    #: the roofline ceiling at this intensity
    ceiling_flops: float

    @property
    def bound(self) -> str:
        return (
            "memory" if self.arithmetic_intensity < self.ridge_point else "compute"
        )

    @property
    def ceiling_fraction(self) -> float:
        """Achieved fraction of the attainable (not absolute) peak."""
        if self.ceiling_flops <= 0:
            return 0.0
        return min(1.0, self.achieved_flops / self.ceiling_flops)


def ridge_point(device: DeviceSpec) -> float:
    """Flops/byte where the device's compute and bandwidth rooflines meet.

    Uses the raw HBM bandwidth (no cache boost): the classic roofline
    convention.
    """
    return device.peak_flops / (device.hbm_bandwidth_gbs * 1e9)


def roofline_point(
    device: DeviceSpec,
    timer: str,
    interactions_per_item: float,
    n_workitems: int,
    variant: Variant | str = "select",
) -> RooflinePoint:
    """Place one kernel invocation under ``device``'s roofline."""
    if isinstance(variant, str):
        variant = variant_by_name(variant)
    kernel_name = TIMER_TO_KERNEL.get(timer)
    if kernel_name is None:
        raise KeyError(f"unknown timer {timer!r}")
    spec = KERNEL_SPECS[kernel_name]
    definition = AdiabaticKernelDefinition(
        spec, variant, interactions_per_item, timer=timer
    )
    sg = variant.subgroup_size(device, spec)
    profile = definition.profile(device, subgroup_size=sg, fast_math=True)
    launch = KernelLaunch(
        n_workitems=n_workitems,
        subgroup_size=sg,
        grf_mode=variant.grf_mode(device),
    )
    cost = CostModel(device).kernel_cost(profile, launch)

    flops = profile.flop_count
    bytes_moved = max(profile.global_bytes, 1e-300)
    intensity = flops / bytes_moved
    ridge = ridge_point(device)
    ceiling = min(
        device.peak_flops, intensity * device.hbm_bandwidth_gbs * 1e9
    )
    achieved = flops * n_workitems / max(cost.seconds, 1e-300)
    return RooflinePoint(
        kernel=timer,
        device=device.system,
        arithmetic_intensity=intensity,
        ridge_point=ridge,
        achieved_flops=achieved,
        ceiling_flops=ceiling,
    )


def roofline_for_trace(
    trace: WorkloadTrace, device: DeviceSpec, variant: Variant | str = "select"
) -> list[RooflinePoint]:
    """Roofline positions of every distinct timer in a trace."""
    seen: dict[str, RooflinePoint] = {}
    for inv in trace.invocations:
        if inv.name in seen:
            continue
        seen[inv.name] = roofline_point(
            device, inv.name, inv.interactions_per_item, inv.n_workitems, variant
        )
    return list(seen.values())


def format_roofline(points: list[RooflinePoint]) -> str:
    lines = [
        f"{'kernel':<10} {'intensity':>10} {'ridge':>7} {'bound':>8} "
        f"{'achieved':>12} {'of ceiling':>10}"
    ]
    for p in sorted(points, key=lambda p: p.kernel):
        lines.append(
            f"{p.kernel:<10} {p.arithmetic_intensity:>9.1f}F/B "
            f"{p.ridge_point:>6.1f} {p.bound:>8} "
            f"{p.achieved_flops / 1e12:>10.2f}TF {p.ceiling_fraction:>9.1%}"
        )
    return "\n".join(lines)
