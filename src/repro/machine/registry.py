"""Concrete device definitions for the three test systems.

The raw throughput data comes from Table 1 of the paper; the
microarchitectural parameters come from public vendor documentation.
A small number of *calibration constants* (latencies, spill costs,
stall weights) are tuned so the model reproduces the paper's relative
results; they are grouped and commented below so that their provenance
is auditable.

Each registry entry describes the slice of a GPU that one MPI rank
drives in the paper's 8-rank test problem:

- Aurora: one of the two compute stacks of an Intel Data Center GPU
  Max 1550 (Section 3.4.2),
- Polaris: half of an NVIDIA A100-SXM4-40GB (two ranks share a GPU,
  costing ~11% efficiency),
- Frontier: one Graphics Compute Die (GCD) of an AMD Instinct MI250X.
"""

from __future__ import annotations

from repro.machine.device import (
    DeviceSpec,
    RegisterAllocation,
    ShuffleImplementation,
    Vendor,
)

# ---------------------------------------------------------------------------
# Aurora: Intel Data Center GPU Max 1550, one stack.
#
# One stack has 64 Xe-cores; each Xe-core has 8 vector engines with
# 512-bit (16-lane FP32) SIMD and 8 hardware threads of 128 GRF
# registers (512-bit each).  The large-GRF mode doubles registers and
# halves resident threads (Section 5.2).  Arbitrary shuffles lower to
# indirect register access at 1 cycle/lane (Section 5.3, Figure 5);
# compile-time-known broadcasts lower to register regioning at ~1 cycle
# (Figure 6).  Inline vISA is available (Section 5.3.3).
# ---------------------------------------------------------------------------
AURORA = DeviceSpec(
    name="aurora-pvc-stack",
    system="Aurora",
    vendor=Vendor.INTEL,
    gpu_product="Intel Data Center GPU Max 1550",
    slices_per_gpu=2,
    fp32_peak_tflops=45.9 / 2,
    clock_ghz=1.6,
    compute_units=512,  # vector engines per stack (64 Xe-cores x 8)
    simd_width=16,
    hbm_bandwidth_gbs=3276.8 / 2,
    subgroup_sizes=(16, 32),
    default_subgroup_size=32,
    registers_per_thread=128,
    threads_per_cu=8,
    supports_large_grf=True,
    register_width_elems=16,
    register_allocation=RegisterAllocation.FIXED_PARTITION,
    max_regs_per_workitem=256,  # large GRF at sub-group 16: 256*16/16
    local_mem_per_cu_kib=16,  # 128 KiB SLM per Xe-core / 8 VEs
    local_mem_shares_l1=False,
    local_mem_latency_cycles=2.5,
    subgroup_barrier_cycles=8.0,
    shuffle_impl=ShuffleImplementation.INDIRECT_REGISTER,
    dedicated_shuffle_cycles=0.0,  # not available
    indirect_access_cycles_per_lane=1.0,  # Section 5.3: 1 cycle/element
    broadcast_cycles=1.0,  # register regioning, Figure 6
    supports_inline_visa=True,
    native_float_atomic_add=True,
    native_float_atomic_minmax=True,
    atomic_cycles=12.0,
    cas_emulation_factor=1.0,
    fma_cycles=1.0,
    precise_special_cycles=24.0,
    native_special_cycles=6.0,
    spill_cycles_per_register=1.5,
    stall_weight=1.2,
    min_full_throughput_subgroup=16,  # SIMD16 vector engines
    node_mapping_efficiency=1.0,
    notes="2 stacks per GPU; 8 ranks use 2 stacks on each of 4 GPUs",
)

# ---------------------------------------------------------------------------
# Polaris: NVIDIA A100-SXM4-40GB, half a GPU (2 MPI ranks per GPU).
#
# A full A100 has 108 SMs with 64 FP32 lanes each at ~1.41 GHz
# (19.5 TFLOP/s FP32).  Registers: 64K 32-bit per SM, max 255 per
# thread; allocating more registers per thread reduces occupancy.
# Shared memory is carved out of the 192 KiB unified L1 (Section 5.4's
# shared-memory/L1 trade-off).  Float atomic min/max are emulated with
# CAS (Section 5.1).  The ~11% node-mapping penalty reflects running
# 2 ranks per GPU (Section 3.4.2).
# ---------------------------------------------------------------------------
POLARIS = DeviceSpec(
    name="polaris-a100-half",
    system="Polaris",
    vendor=Vendor.NVIDIA,
    gpu_product="NVIDIA A100-SXM4-40GB",
    slices_per_gpu=2,
    fp32_peak_tflops=19.5 / 2,
    clock_ghz=1.41,
    compute_units=54,  # SMs in the half-GPU slice
    simd_width=64,  # FP32 lanes per SM
    hbm_bandwidth_gbs=1555.0 / 2,
    subgroup_sizes=(32,),
    default_subgroup_size=32,
    registers_per_thread=32,  # 65536 regs / 2048 threads at full occupancy
    threads_per_cu=64,  # warps per SM
    supports_large_grf=False,
    register_width_elems=1,
    register_allocation=RegisterAllocation.OCCUPANCY_TRADED,
    max_regs_per_workitem=255,
    local_mem_per_cu_kib=164,  # max shared-memory carve-out per SM
    local_mem_shares_l1=True,
    local_mem_latency_cycles=1.5,
    subgroup_barrier_cycles=4.0,
    shuffle_impl=ShuffleImplementation.DEDICATED,
    dedicated_shuffle_cycles=2.0,
    indirect_access_cycles_per_lane=0.0,  # not applicable
    broadcast_cycles=2.0,
    supports_inline_visa=False,
    native_float_atomic_add=True,
    native_float_atomic_minmax=False,  # CAS-emulated, Section 5.1
    atomic_cycles=10.0,
    cas_emulation_factor=3.0,
    fma_cycles=1.0,
    precise_special_cycles=28.0,
    native_special_cycles=6.0,
    spill_cycles_per_register=8.0,
    spill_pressure_exponent=1.6,
    stall_weight=1.0,
    min_full_throughput_subgroup=32,  # warp-native
    node_mapping_efficiency=0.89,  # ~11% loss from 2 ranks/GPU
    notes="4 GPUs per node; 2 MPI ranks share each A100",
)

# ---------------------------------------------------------------------------
# Frontier: AMD Instinct MI250X, one GCD.
#
# One GCD has 110 CUs, each with 4 SIMD16 units (64 FP32 lanes) at
# ~1.7 GHz (26.5 TFLOP/s FP32 per GCD).  512 VGPRs per SIMD shared by
# up to 8 wave64 wavefronts; max 256 VGPRs per wavefront.  LDS is a
# dedicated 64 KiB per CU (no L1 trade-off).  Cross-lane data movement
# has dedicated instructions (DPP / ds_permute), giving the MI250X the
# "dual affinity" the paper remarks on: SIMD like Intel, dedicated
# cross-lane ops like NVIDIA.
# ---------------------------------------------------------------------------
FRONTIER = DeviceSpec(
    name="frontier-mi250x-gcd",
    system="Frontier",
    vendor=Vendor.AMD,
    gpu_product="AMD Instinct MI250X",
    slices_per_gpu=2,
    fp32_peak_tflops=53.0 / 2,
    clock_ghz=1.7,
    compute_units=110,
    simd_width=64,
    hbm_bandwidth_gbs=3276.8 / 2,
    subgroup_sizes=(32, 64),
    default_subgroup_size=64,
    registers_per_thread=64,  # 512 VGPRs/SIMD / 8 wavefronts
    threads_per_cu=32,  # 8 wavefronts x 4 SIMDs
    supports_large_grf=False,
    register_width_elems=1,
    register_allocation=RegisterAllocation.OCCUPANCY_TRADED,
    max_regs_per_workitem=256,
    local_mem_per_cu_kib=64,
    local_mem_shares_l1=False,
    local_mem_latency_cycles=1.5,
    subgroup_barrier_cycles=3.0,
    shuffle_impl=ShuffleImplementation.DEDICATED,
    dedicated_shuffle_cycles=2.0,
    indirect_access_cycles_per_lane=0.0,
    broadcast_cycles=2.0,
    supports_inline_visa=False,
    native_float_atomic_add=True,
    native_float_atomic_minmax=True,
    atomic_cycles=14.0,
    cas_emulation_factor=1.0,
    fma_cycles=1.0,
    precise_special_cycles=24.0,
    native_special_cycles=8.0,
    spill_cycles_per_register=3.0,
    stall_weight=1.0,
    min_full_throughput_subgroup=64,  # wave64-native CDNA2
    node_mapping_efficiency=1.0,
    notes="4 GPUs per node; each GCD is a separate logical device",
)

_DEVICES = {d.name: d for d in (AURORA, POLARIS, FRONTIER)}
_SYSTEMS = {d.system.lower(): d for d in (AURORA, POLARIS, FRONTIER)}


def all_devices() -> tuple[DeviceSpec, ...]:
    """All registered devices, in the paper's presentation order."""
    return (AURORA, POLARIS, FRONTIER)


def device_by_name(name: str) -> DeviceSpec:
    """Look a device up by registry name or by system name.

    >>> device_by_name("Aurora").vendor.value
    'intel'
    """
    key = name.lower()
    if key in _SYSTEMS:
        return _SYSTEMS[key]
    if name in _DEVICES:
        return _DEVICES[name]
    raise KeyError(
        f"unknown device {name!r}; known: "
        f"{sorted(_DEVICES) + sorted(s.title() for s in _SYSTEMS)}"
    )


def platform_set() -> tuple[str, ...]:
    """The platform set H used in the PP metric (system names)."""
    return tuple(d.system for d in all_devices())


def table1_rows() -> list[dict]:
    """Rows mirroring Table 1 of the paper (per-node hardware summary)."""
    host = {
        "Aurora": ("Intel Xeon CPU Max 9470C, 52 cores", 2, 6),
        "Polaris": ("AMD EPYC 7543P, 32 cores", 1, 4),
        "Frontier": ("AMD EPYC 7A53, 64 cores", 1, 4),
    }
    rows = []
    for dev in all_devices():
        cpu, sockets, n_gpus = host[dev.system]
        rows.append(
            {
                "system": dev.system,
                "cpu": cpu,
                "sockets": sockets,
                "gpu": dev.gpu_product,
                "num_gpus": n_gpus,
                "fp32_peak_per_gpu_tflops": round(
                    dev.fp32_peak_tflops * dev.slices_per_gpu, 1
                ),
            }
        )
    return rows
