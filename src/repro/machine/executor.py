"""Functional execution with simulated timing.

:class:`DeviceExecutor` is the virtual GPU's "runtime": it runs a
kernel's functional body (plain NumPy) for the physics result and asks
the cost model for the simulated device time, recording both.  It plays
the role that the CUDA/HIP/SYCL runtimes play in the paper: the
mini-app's time stepper submits kernels through it, and the paper's
timers (Section 3.4.4) read its ledger.

The executor's per-kernel times are the reproduction's equivalent of
``rocprof`` ground truth: the :mod:`repro.timers` module's bracket
timers are validated against them, mirroring the paper's validation of
CRK-HACC's internal timers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.machine.cost_model import (
    CostModel,
    InstructionProfile,
    KernelCost,
    KernelLaunch,
)
from repro.machine.device import DeviceSpec


@dataclass(frozen=True)
class ExecutionRecord:
    """One kernel execution as seen by the device runtime."""

    kernel_name: str
    launch: KernelLaunch
    cost: KernelCost

    @property
    def seconds(self) -> float:
        return self.cost.seconds


@dataclass
class DeviceExecutor:
    """Submits kernels to one virtual device and keeps a time ledger."""

    device: DeviceSpec
    records: list[ExecutionRecord] = field(default_factory=list)

    def __post_init__(self):
        self.cost_model = CostModel(self.device)

    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        profile: InstructionProfile,
        launch: KernelLaunch,
        body: Callable[[], Any] | None = None,
    ) -> Any:
        """Run ``body`` (if given) and record the simulated kernel time.

        Returns whatever ``body`` returns, so call sites read like a
        kernel launch followed by a result fetch.
        """
        result = body() if body is not None else None
        cost = self.cost_model.kernel_cost(profile, launch)
        self.records.append(
            ExecutionRecord(kernel_name=name, launch=launch, cost=cost)
        )
        return result

    # ------------------------------------------------------------------
    # ledger queries ("rocprof")
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Total simulated time across all offloaded kernels."""
        return sum(r.seconds for r in self.records)

    def seconds_by_kernel(self) -> dict[str, float]:
        """Simulated seconds aggregated by kernel name."""
        agg: dict[str, float] = defaultdict(float)
        for r in self.records:
            agg[r.kernel_name] += r.seconds
        return dict(agg)

    def calls_by_kernel(self) -> dict[str, int]:
        """Invocation counts by kernel name."""
        agg: dict[str, int] = defaultdict(int)
        for r in self.records:
            agg[r.kernel_name] += 1
        return dict(agg)

    def reset(self) -> None:
        """Clear the ledger (e.g. between warm-up and timed steps)."""
        self.records.clear()
