"""Functional execution with simulated timing.

:class:`DeviceExecutor` is the virtual GPU's "runtime": it runs a
kernel's functional body (plain NumPy) for the physics result and asks
the cost model for the simulated device time, recording both.  It plays
the role that the CUDA/HIP/SYCL runtimes play in the paper: the
mini-app's time stepper submits kernels through it, and the paper's
timers (Section 3.4.4) read its ledger.

The executor's per-kernel times are the reproduction's equivalent of
``rocprof`` ground truth: the :mod:`repro.timers` module's bracket
timers are validated against them, mirroring the paper's validation of
CRK-HACC's internal timers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.machine.cost_model import (
    CostModel,
    InstructionProfile,
    KernelCost,
    KernelLaunch,
)
from repro.machine.device import DeviceSpec


@dataclass(frozen=True)
class ExecutionRecord:
    """One kernel execution as seen by the device runtime."""

    kernel_name: str
    launch: KernelLaunch
    cost: KernelCost

    @property
    def seconds(self) -> float:
        return self.cost.seconds


#: ledger observer: called after each submission with the fresh record
#: and the instruction profile it was priced from
ExecutionObserver = Callable[[ExecutionRecord, InstructionProfile], None]


@dataclass
class DeviceExecutor:
    """Submits kernels to one virtual device and keeps a time ledger.

    Aggregates (total seconds, per-kernel seconds/calls, per-kernel
    record lists) are maintained incrementally on every submission, so
    the ledger queries are O(kernels), not O(records) — the
    :class:`~repro.observability.profiler.KernelProfiler` and the
    bracket timers read them on every launch.
    """

    device: DeviceSpec
    records: list[ExecutionRecord] = field(default_factory=list)

    def __post_init__(self):
        self.cost_model = CostModel(self.device)
        #: ledger observers (e.g. a KernelProfiler); see add_observer
        self.observers: list[ExecutionObserver] = []
        self._total_seconds = 0.0
        self._seconds_by_kernel: dict[str, float] = defaultdict(float)
        self._calls_by_kernel: dict[str, int] = defaultdict(int)
        self._records_by_kernel: dict[str, list[ExecutionRecord]] = defaultdict(list)
        for record in self.records:  # pre-seeded ledgers stay consistent
            self._ingest(record)

    def _ingest(self, record: ExecutionRecord) -> None:
        self._total_seconds += record.seconds
        self._seconds_by_kernel[record.kernel_name] += record.seconds
        self._calls_by_kernel[record.kernel_name] += 1
        self._records_by_kernel[record.kernel_name].append(record)

    def add_observer(self, observer: ExecutionObserver) -> None:
        """Subscribe to the ledger: ``observer(record, profile)`` fires
        after every submission (how the profiler sees launches)."""
        self.observers.append(observer)

    # ------------------------------------------------------------------
    def submit(
        self,
        name: str,
        profile: InstructionProfile,
        launch: KernelLaunch,
        body: Callable[[], Any] | None = None,
    ) -> Any:
        """Run ``body`` (if given) and record the simulated kernel time.

        Returns whatever ``body`` returns, so call sites read like a
        kernel launch followed by a result fetch.
        """
        result = body() if body is not None else None
        cost = self.cost_model.kernel_cost(profile, launch)
        record = ExecutionRecord(kernel_name=name, launch=launch, cost=cost)
        self.records.append(record)
        self._ingest(record)
        for observer in self.observers:
            observer(record, profile)
        return result

    # ------------------------------------------------------------------
    # ledger queries ("rocprof")
    # ------------------------------------------------------------------
    def total_seconds(self) -> float:
        """Total simulated time across all offloaded kernels."""
        return self._total_seconds

    def seconds_by_kernel(self) -> dict[str, float]:
        """Simulated seconds aggregated by kernel name."""
        return dict(self._seconds_by_kernel)

    def calls_by_kernel(self) -> dict[str, int]:
        """Invocation counts by kernel name."""
        return dict(self._calls_by_kernel)

    def records_for(self, kernel_name: str) -> list[ExecutionRecord]:
        """All execution records of one kernel, in submission order."""
        return list(self._records_by_kernel.get(kernel_name, ()))

    def reset(self) -> None:
        """Clear the ledger (e.g. between warm-up and timed steps)."""
        self.records.clear()
        self._total_seconds = 0.0
        self._seconds_by_kernel.clear()
        self._calls_by_kernel.clear()
        self._records_by_kernel.clear()
