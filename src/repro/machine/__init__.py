"""Virtual-GPU machine models.

This subpackage is the hardware substitute for the paper's three test
systems (Aurora / Polaris / Frontier).  It provides:

- :mod:`repro.machine.device` -- the :class:`DeviceSpec` description of a
  GPU (or of the slice of a GPU that one MPI rank drives),
- :mod:`repro.machine.registry` -- the concrete device definitions used
  throughout the reproduction (Table 1 of the paper),
- :mod:`repro.machine.occupancy` -- an occupancy calculator,
- :mod:`repro.machine.registers` -- a register-allocation / spill model,
- :mod:`repro.machine.memory` -- local/global memory cost models,
- :mod:`repro.machine.atomics` -- native vs emulated atomic costs,
- :mod:`repro.machine.shuffle` -- cross-lane communication cost models,
- :mod:`repro.machine.cost_model` -- the per-kernel cycle/cost accounting,
- :mod:`repro.machine.executor` -- functional execution + simulated timing.

The models are deliberately *relative*: they are calibrated so that the
ratios between kernel variants and devices reproduce the orderings and
rough factors reported in the paper, not absolute wall-clock numbers.
"""

from repro.machine.device import (
    DeviceSpec,
    GRFMode,
    RegisterAllocation,
    ShuffleImplementation,
    UnsupportedSubgroupSize,
    Vendor,
)
from repro.machine.atomics import AtomicOp, AtomicsModel
from repro.machine.memory import MemoryModel
from repro.machine.registers import RegisterAssignment, RegisterModel
from repro.machine.registry import (
    AURORA,
    FRONTIER,
    POLARIS,
    all_devices,
    device_by_name,
    platform_set,
)
from repro.machine.cost_model import (
    CostModel,
    InstructionProfile,
    KernelCost,
    KernelLaunch,
)
from repro.machine.occupancy import OccupancyCalculator, OccupancyResult
from repro.machine.executor import DeviceExecutor, ExecutionRecord

__all__ = [
    "DeviceSpec",
    "GRFMode",
    "RegisterAllocation",
    "ShuffleImplementation",
    "UnsupportedSubgroupSize",
    "Vendor",
    "AtomicOp",
    "AtomicsModel",
    "MemoryModel",
    "RegisterAssignment",
    "RegisterModel",
    "KernelLaunch",
    "AURORA",
    "POLARIS",
    "FRONTIER",
    "all_devices",
    "device_by_name",
    "platform_set",
    "CostModel",
    "InstructionProfile",
    "KernelCost",
    "OccupancyCalculator",
    "OccupancyResult",
    "DeviceExecutor",
    "ExecutionRecord",
]
