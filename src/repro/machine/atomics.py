"""Atomic operation cost model.

Section 5.1 of the paper: SYCL's ``atomic_ref`` exposes ``fetch_min`` /
``fetch_max`` on floating-point types everywhere, but NVIDIA GPUs lack
native float atomic min/max, so the operation is emulated with an
atomic compare-and-swap loop.  Atomic adds are native on all three
architectures.  The broadcast-restructured kernels generate fewer
atomics (Section 5.3.2), which is why atomic costs matter for variant
selection.
"""

from __future__ import annotations

import enum

from repro.machine.device import DeviceSpec


class AtomicOp(enum.Enum):
    """The atomic operations CRK-HACC's kernels use."""

    ADD = "add"
    MIN = "min"
    MAX = "max"


class AtomicsModel:
    """Per-device atomic cost helper."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def is_native(self, op: AtomicOp) -> bool:
        """Whether the device executes the float atomic natively."""
        if op is AtomicOp.ADD:
            return self.device.native_float_atomic_add
        return self.device.native_float_atomic_minmax

    def cycles(self, op: AtomicOp, count: float = 1.0) -> float:
        """Cycles for ``count`` float atomics of kind ``op``.

        Emulated operations pay the device's CAS-loop factor, which
        covers the load / compare / retry traffic of the emulation.
        """
        base = self.device.atomic_cycles
        if not self.is_native(op):
            base *= self.device.cas_emulation_factor
        return base * count
