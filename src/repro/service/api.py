"""The service front end: JSONL over a unix socket (plus a client).

Framing is one JSON object per line in both directions — the same
newline-delimited discipline as the telemetry event log, so the wire
is greppable and a request can be composed in a shell::

    printf '{"op": "jobs"}\n' | nc -U /tmp/repro.sock

Requests carry an ``op``:

- ``submit`` — admit a job; ``spec`` is the
  :meth:`~repro.service.jobs.JobSpec.as_dict` wire form.  With
  ``wait`` (default) the response arrives when the job completes;
  with ``stream`` each in-situ snapshot event is forwarded as an
  interim ``{"event": ...}`` line before the final result;
- ``jobs`` — lifecycle records of every admitted job;
- ``stats`` — queue depth, cache hit/miss accounting, counters;
- ``ping`` — liveness probe;
- ``shutdown`` — drain and stop the service.

Every response line carries ``ok``; failures are *typed*
(``{"ok": false, "error": {"type": "QuotaExceeded", ...}}``) so a
client can distinguish admission rejections from execution failures.

The synchronous client half (:func:`request`, :func:`submit_job`) is
what ``repro submit`` / ``repro jobs`` use — plain blocking sockets,
no asyncio required on the client side.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path
from typing import Any, Iterator

from repro.service.jobs import Job, ServiceError, SubmissionError
from repro.service.scheduler import QuotaExceeded
from repro.service.workers import SimulationService

#: protocol identifier returned by ping
API_VERSION = 1


def _error_payload(exc: Exception) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    if isinstance(exc, QuotaExceeded):
        payload["error"].update(
            tenant=exc.tenant, limit=exc.limit, active=exc.active
        )
    return payload


class ServiceAPI:
    """Asyncio unix-socket server wrapping one :class:`SimulationService`."""

    def __init__(self, service: SimulationService, socket_path: str | Path):
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: asyncio.AbstractServer | None = None
        #: set once a shutdown request drains the service
        self.shutdown_event = asyncio.Event()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            self.socket_path.unlink()
        await self.service.start()
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=str(self.socket_path)
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.socket_path.exists():
            self.socket_path.unlink()

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request arrives, then drain."""
        await self.shutdown_event.wait()
        await self.close()
        await self.service.shutdown()

    # -- request handling ----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError as exc:
                    await self._send(writer, _error_payload(exc))
                    continue
                try:
                    done = await self._dispatch(request, writer)
                except (ServiceError, ValueError) as exc:
                    await self._send(writer, _error_payload(exc))
                    continue
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-stream; the job keeps running
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        """Handle one request; True ends the connection."""
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "version": API_VERSION})
        elif op == "submit":
            await self._handle_submit(request, writer)
        elif op == "jobs":
            await self._send(
                writer,
                {
                    "ok": True,
                    "jobs": [j.describe() for j in self.service.scheduler.jobs],
                },
            )
        elif op == "stats":
            await self._send(writer, {"ok": True, "stats": self.service.stats()})
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "shutting_down": True})
            self.shutdown_event.set()
            return True
        else:
            raise SubmissionError(f"unknown op {op!r}")
        return False

    async def _handle_submit(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        spec = request.get("spec")
        if not isinstance(spec, dict):
            raise SubmissionError("submit needs a 'spec' object")
        job = await self.service.submit(
            spec,
            tenant=str(request.get("tenant", "default")),
            priority=int(request.get("priority", 1)),
            deadline_in=request.get("deadline_in"),
        )
        accepted = {
            "ok": True,
            "job_id": job.job_id,
            "spec_hash": job.spec_hash,
            "state": str(job.state),
        }
        if not request.get("wait", True):
            await self._send(writer, accepted)
            return
        if request.get("stream"):
            await self._send(writer, accepted)
            queue = job.subscribe()
            if job.future.done():
                job.close_stream()
            while True:
                event = await queue.get()
                if event is None:
                    break
                await self._send(writer, {"ok": True, "event": event})
        try:
            result = await job.future
        except Exception as exc:  # noqa: BLE001 — typed over the wire
            await self._send(
                writer, {**_error_payload(exc), "job_id": job.job_id}
            )
            return
        await self._send(
            writer,
            {
                "ok": True,
                "job_id": job.job_id,
                "state": str(job.state),
                "preemptions": job.preemptions,
                "result": result.as_dict(),
            },
        )

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        writer.write(json.dumps(payload, sort_keys=True).encode() + b"\n")
        await writer.drain()


# ----------------------------------------------------------------------
# synchronous client (the CLI side)


def _connect(socket_path: str | Path, timeout: float) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(timeout)
    sock.connect(str(socket_path))
    return sock


def _lines(sock: socket.socket) -> Iterator[dict[str, Any]]:
    buffer = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return
        buffer += chunk
        while b"\n" in buffer:
            line, buffer = buffer.split(b"\n", 1)
            if line.strip():
                yield json.loads(line)


def request(
    socket_path: str | Path, payload: dict[str, Any], *, timeout: float = 60.0
) -> dict[str, Any]:
    """One request, one response (ping/jobs/stats/shutdown/async submit)."""
    with _connect(socket_path, timeout) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        for response in _lines(sock):
            return response
    raise ServiceError("connection closed without a response")


def submit_job(
    socket_path: str | Path,
    spec: dict[str, Any],
    *,
    tenant: str = "default",
    priority: int = 1,
    deadline_in: float | None = None,
    stream: bool = False,
    timeout: float = 600.0,
) -> Iterator[dict[str, Any]]:
    """Submit and yield response lines (ack, events, final result)."""
    payload: dict[str, Any] = {
        "op": "submit",
        "spec": spec,
        "tenant": tenant,
        "priority": priority,
        "wait": True,
        "stream": stream,
    }
    if deadline_in is not None:
        payload["deadline_in"] = deadline_in
    with _connect(socket_path, timeout) as sock:
        sock.sendall(json.dumps(payload).encode() + b"\n")
        for line in _lines(sock):
            yield line
            # the stream ends at the final result or a typed error;
            # the connection itself stays usable for further requests
            if "result" in line or not line.get("ok", False):
                return
