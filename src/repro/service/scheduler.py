"""The asyncio job scheduler: quotas, fair share, coalescing, preemption.

Ordering
--------
The pending queue is a heap over ``(priority, share, deadline, seq)``:

- ``priority`` — the job's priority class (lower = more urgent);
- ``share`` — the submitting tenant's *backlog index* at enqueue time
  (how many of its jobs were already queued or running).  A tenant
  burst-submitting 50 jobs enqueues them at shares 0..49 while another
  tenant's late pair lands at shares 0..1, so grants interleave
  round-robin across tenants instead of draining the burst first —
  stride-style fair share without re-keying the heap;
- ``deadline`` — absolute event-loop time (``+inf`` when absent);
- ``seq`` — submission order, the final tiebreak (FIFO).

Quotas
------
Each tenant may hold at most ``TenantQuota.max_active`` jobs queued or
running; the next submit raises :class:`QuotaExceeded` (a *typed*
rejection the API maps to a structured error response, never a silent
drop).  Coalesced duplicates ride their leader and do not consume
quota.

Coalescing
----------
A submit whose spec hash matches an in-flight (queued/running/
preempted) job becomes a *follower*: it gets its own job id and
lifecycle record but shares the leader's future, so every duplicate
receives the shared result of the single execution.

Preemption
----------
Deadline-based: when every worker is busy and a queued job is strictly
more urgent (priority, then deadline) than the least-urgent running
job, the victim is asked to preempt.  The worker checkpoints the
victim via :class:`~repro.resilience.restart.CheckpointManager`,
requeues it (it keeps its original ordering key, so it resumes on the
next grant of its class), and takes the urgent job.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from dataclasses import dataclass
from typing import Iterable

from repro.service.jobs import Job, JobSpec, JobState, ServiceError

#: deadline used for ordering when a job has none
_NO_DEADLINE = float("inf")


class QuotaExceeded(ServiceError):
    """A tenant's submission exceeded its active-job quota."""

    def __init__(self, tenant: str, limit: int, active: int):
        super().__init__(
            f"tenant {tenant!r} has {active} active job(s), quota is {limit}"
        )
        self.tenant = tenant
        self.limit = limit
        self.active = active


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits."""

    #: max jobs a tenant may hold queued + running at once
    max_active: int = 64

    def __post_init__(self):
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")


class JobScheduler:
    """Priority queue + admission control for the worker pool.

    Single-event-loop discipline: every method is called from the
    service's loop (workers await :meth:`next_job` there too), so no
    lock is needed — asyncio's cooperative scheduling is the mutual
    exclusion.
    """

    def __init__(
        self,
        quota: TenantQuota | None = None,
        *,
        tracer=None,
        metrics=None,
    ):
        self.quota = quota or TenantQuota()
        self.tracer = tracer
        self.metrics = metrics
        self._seq = itertools.count()
        self._job_ids = itertools.count(1)
        #: heap of (priority, share, deadline, seq, job)
        self._pending: list[tuple] = []
        self._cond = asyncio.Condition()
        self._closed = False
        #: spec hash -> in-flight leader (queued, running, or preempted)
        self._inflight: dict[str, Job] = {}
        #: jobs currently executing, by id
        self._running: dict[int, Job] = {}
        #: tenant -> active (queued + running + preempted) job count
        self._active: dict[str, int] = {}
        #: workers currently parked in next_job
        self._idle_workers = 0
        #: every job ever admitted, in submission order (the jobs API)
        self.jobs: list[Job] = []

    # -- bookkeeping helpers -------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _update_depth(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("svc.queue.depth").set(len(self._pending))

    def _key(self, job: Job, share: int) -> tuple:
        deadline = job.deadline if job.deadline is not None else _NO_DEADLINE
        return (job.priority, share, deadline, next(self._seq))

    @staticmethod
    def _urgency(job: Job) -> tuple:
        deadline = job.deadline if job.deadline is not None else _NO_DEADLINE
        return (job.priority, deadline)

    # -- submission ----------------------------------------------------
    async def submit(
        self,
        spec: JobSpec,
        *,
        tenant: str = "default",
        priority: int = 1,
        deadline: float | None = None,
    ) -> Job:
        """Admit one request; returns its :class:`Job`.

        Raises :class:`~repro.service.jobs.SubmissionError` for a
        malformed spec and :class:`QuotaExceeded` when the tenant is
        over its active-job limit.  A duplicate of an in-flight spec
        coalesces (no quota charge, no queue slot).
        """
        if self._closed:
            raise ServiceError("scheduler is shut down")
        spec.validate()
        job = Job(
            spec,
            job_id=next(self._job_ids),
            tenant=tenant,
            priority=priority,
            deadline=deadline,
        )
        self._count("svc.jobs.submitted")

        leader = self._inflight.get(job.spec_hash)
        if leader is not None:
            # identical in-flight spec: share the leader's execution
            job.state = JobState.COALESCED
            job.leader = leader
            leader.future.add_done_callback(self._follower_callback(job))
            self.jobs.append(job)
            self._count("svc.jobs.coalesced")
            if self.tracer is not None:
                self.tracer.instant(
                    "job-coalesced",
                    category="service",
                    job=job.job_id,
                    leader=leader.job_id,
                    spec=job.spec_hash[:12],
                )
            return job

        active = self._active.get(tenant, 0)
        if active >= self.quota.max_active:
            self._count("svc.jobs.rejected")
            raise QuotaExceeded(tenant, self.quota.max_active, active)

        share = active  # the tenant's backlog index at enqueue time
        self._active[tenant] = active + 1
        self._inflight[job.spec_hash] = job
        self.jobs.append(job)
        job._enqueue_key = self._key(job, share)
        async with self._cond:
            heapq.heappush(self._pending, (*job._enqueue_key, job))
            self._cond.notify()
        self._update_depth()
        self._maybe_preempt()
        return job

    def _follower_callback(self, follower: Job):
        def _done(future: asyncio.Future) -> None:
            exc = future.exception()
            if exc is not None:
                follower.fail(exc)
            else:
                follower.finish(future.result())

        return _done

    # -- worker side ---------------------------------------------------
    async def next_job(self) -> Job | None:
        """The next grant, or None once the scheduler is closed."""
        async with self._cond:
            self._idle_workers += 1
            try:
                while not self._pending and not self._closed:
                    await self._cond.wait()
            finally:
                self._idle_workers -= 1
            if not self._pending:
                return None
            *_key, job = heapq.heappop(self._pending)
        self._update_depth()
        job.state = JobState.RUNNING
        job.preempt_requested = False
        self._running[job.job_id] = job
        return job

    def requeue(self, job: Job) -> None:
        """Return a preempted job to the queue under its original key
        (it resumes on the next grant of its priority class)."""
        self._running.pop(job.job_id, None)
        job.state = JobState.QUEUED
        job.preempt_requested = False
        job.preemptions += 1
        self._count("svc.jobs.preempted")
        if self.tracer is not None:
            self.tracer.instant(
                "job-preempted",
                category="service",
                job=job.job_id,
                step=job.steps_done,
                spec=job.spec_hash[:12],
            )

        def _push() -> None:
            heapq.heappush(self._pending, (*job._enqueue_key, job))
            self._update_depth()

        async def _notify() -> None:
            async with self._cond:
                _push()
                self._cond.notify()

        asyncio.get_running_loop().create_task(_notify())

    def task_done(self, job: Job) -> None:
        """Release the job's queue/quota accounting (terminal states)."""
        self._running.pop(job.job_id, None)
        if self._inflight.get(job.spec_hash) is job:
            del self._inflight[job.spec_hash]
        tenant = job.tenant
        remaining = self._active.get(tenant, 0) - 1
        if remaining > 0:
            self._active[tenant] = remaining
        else:
            self._active.pop(tenant, None)

    # -- preemption ----------------------------------------------------
    def _maybe_preempt(self) -> None:
        """Deadline-based preemption: ask the least-urgent running job
        to yield when a strictly more urgent job is stuck queued and
        no worker is idle to take it."""
        if self._idle_workers > 0 or not self._pending or not self._running:
            return
        best_pending = min(self._urgency(entry[-1]) for entry in self._pending)
        candidates = [
            job
            for job in self._running.values()
            if not job.preempt_requested and self._preemptible(job)
        ]
        if not candidates:
            return
        victim = max(candidates, key=self._urgency)
        if best_pending < self._urgency(victim):
            victim.request_preempt()

    @staticmethod
    def _preemptible(job: Job) -> bool:
        # faulted / multi-rank jobs run under the resilience runner in
        # one shot; only the step-wise plain driver path can checkpoint
        # cooperatively between steps
        return job.spec.ranks == 1 and not job.spec.faults

    def preempt(self, job: Job) -> bool:
        """Explicitly request preemption of a running job (the API's
        manual knob; also used by the deterministic tests)."""
        if job.job_id in self._running and self._preemptible(job):
            job.request_preempt()
            return True
        return False

    # -- introspection / shutdown --------------------------------------
    @property
    def depth(self) -> int:
        return len(self._pending)

    @property
    def running(self) -> list[Job]:
        return list(self._running.values())

    def active_jobs(self) -> Iterable[Job]:
        return (j for j in self.jobs if j.state in (
            JobState.QUEUED, JobState.RUNNING, JobState.PREEMPTED
        ))

    async def close(self) -> None:
        """Stop granting; parked workers wake up with None."""
        self._closed = True
        async with self._cond:
            self._cond.notify_all()
