"""Content-addressed result cache with size-bounded LRU eviction.

The service's traffic shape (the paper's own workflow: fleets of
repeated kernel-variant runs over near-identical configurations) is
exactly what content addressing exploits — the cache key is the
canonical :func:`~repro.core.confighash.config_hash` of whatever
produced the entry, so *any* two requests for the same computation hit
the same entry regardless of who asked or when.

Three entry classes share one store, namespaced by key prefix:

- ``result:<spec-hash>`` — finished :class:`~repro.service.jobs.JobResult`
  products (the big win: a duplicate request never re-simulates);
- ``ic:<ic-config-hash>`` — generated initial-condition particle
  loads, shared by every job at the same resolution/seed regardless
  of step count or products;
- ``tf:<cosmology-hash>`` — linear-theory P(k) tables (the transfer
  function evaluated on the measurement grid).

Eviction is LRU over a byte budget.  Entries self-report their size
(NumPy payloads via ``nbytes``); an entry larger than the whole
budget is refused rather than evicting everything else.  Hits, misses,
evictions, and resident bytes land on ``svc.cache.*`` metrics.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable


def payload_nbytes(value: Any) -> int:
    """Best-effort deep size of a cached payload in bytes."""
    if value is None:
        return 0
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, dict):
        return sum(payload_nbytes(v) for v in value.values()) + 64 * len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(v) for v in value) + 16 * len(value)
    if isinstance(value, (str, bytes)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    # dataclass-ish objects: walk their public attribute dict
    attrs = getattr(value, "__dict__", None)
    if attrs:
        return payload_nbytes(attrs)
    return 64


@dataclass
class CacheStats:
    """Point-in-time cache accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    refused: int = 0
    entries: int = 0
    bytes: int = 0
    capacity_bytes: int = 0
    by_namespace: dict[str, int] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "refused": self.refused,
            "entries": self.entries,
            "bytes": self.bytes,
            "capacity_bytes": self.capacity_bytes,
            "hit_rate": self.hit_rate,
            "by_namespace": dict(self.by_namespace),
        }


class ContentCache:
    """Thread-safe content-addressed LRU store.

    Workers call :meth:`get`/:meth:`put` from executor threads while
    the scheduler probes from the event loop, so every access is
    lock-guarded.  ``metrics`` (a
    :class:`~repro.observability.metrics.MetricsRegistry`) receives
    ``svc.cache.hits`` / ``svc.cache.misses`` / ``svc.cache.evictions``
    counters and the ``svc.cache.bytes`` gauge.
    """

    def __init__(self, capacity_bytes: int = 256 * 1024 * 1024, metrics=None):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self.metrics = metrics
        self._lock = threading.Lock()
        #: key -> (value, nbytes); order = LRU (last = most recent)
        self._entries: "OrderedDict[str, tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._refused = 0

    # -- core ----------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The cached value, refreshing recency; None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._count("svc.cache.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self._count("svc.cache.hits")
            return entry[0]

    def peek(self, key: str) -> Any | None:
        """Like :meth:`get` but without touching recency or metrics."""
        with self._lock:
            entry = self._entries.get(key)
            return entry[0] if entry else None

    def put(self, key: str, value: Any, nbytes: int | None = None) -> bool:
        """Insert (or refresh) an entry; returns False when refused.

        An entry bigger than the whole budget is refused — evicting
        the entire cache for one oversized tenant would turn every
        other tenant's next request into a miss.
        """
        size = payload_nbytes(value) if nbytes is None else int(nbytes)
        if size > self.capacity_bytes:
            with self._lock:
                self._refused += 1
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            while self._bytes > self.capacity_bytes and len(self._entries) > 1:
                _evicted_key, (_val, evicted_size) = self._entries.popitem(last=False)
                self._bytes -= evicted_size
                self._evictions += 1
                self._count("svc.cache.evictions")
            self._gauge("svc.cache.bytes", self._bytes)
        return True

    def get_or_create(self, key: str, factory: Callable[[], Any]) -> Any:
        """Cached value, or ``factory()`` stored under ``key``.

        The factory runs outside the lock (it may be an expensive IC
        generation); a racing duplicate insert is benign — last write
        wins and both callers hold equal content.
        """
        value = self.get(key)
        if value is not None:
            return value
        value = factory()
        self.put(key, value)
        return value

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- accounting ----------------------------------------------------
    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def stats(self) -> CacheStats:
        with self._lock:
            by_ns: dict[str, int] = {}
            for key in self._entries:
                ns = key.split(":", 1)[0] if ":" in key else "?"
                by_ns[ns] = by_ns.get(ns, 0) + 1
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                refused=self._refused,
                entries=len(self._entries),
                bytes=self._bytes,
                capacity_bytes=self.capacity_bytes,
                by_namespace=by_ns,
            )
