"""The worker pool: supervised, cacheable, observable job execution.

Each worker is an asyncio task that awaits grants from the
:class:`~repro.service.scheduler.JobScheduler` and runs the granted
job's simulation in an executor thread (``asyncio.to_thread``), so the
event loop — and with it submission, coalescing, and preemption —
stays responsive while NumPy crunches.

Two execution paths:

- **plain jobs** (``ranks == 1``, no fault plan) step the
  :class:`~repro.hacc.timestep.AdiabaticDriver` directly, checking the
  job's cooperative preemption flag between steps.  On preemption the
  worker checkpoints the driver through a
  :class:`~repro.resilience.restart.CheckpointManager` (the real
  atomic checksummed disk format), requeues the job, and the next
  grant restores the driver from that checkpoint — PR 1's bit-exact
  restart is what makes service-level preemption free;
- **supervised jobs** (a fault plan or ``ranks > 1``) run under
  :func:`~repro.resilience.runner.run_simulation`, so injected worker
  faults degrade along the PR 4 ladder (retry from checkpoint, shrink,
  buddy adoption) instead of failing the request.

Inputs are shared through the content-addressed cache: the Zel'dovich
particle load (``ic:``, keyed on the IC config hash) and the
sigma8-normalised linear power spectrum (``tf:``, keyed on the
cosmology hash — its normalisation integral is the expensive part) are
computed once and reused by every job that needs them.  Finished
products land under ``result:<spec-hash>``.

Every job's execution is a flame span (``category="job"``) on the
service's :class:`~repro.observability.tracing.TraceRecorder`, with
the driver's step/kernel spans nested inside it, and each completed
step is streamed to the job's subscribers and to the live event log.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.core.confighash import config_hash
from repro.hacc.analysis import measure_power_spectrum
from repro.hacc.cosmology import Cosmology
from repro.hacc.halo import fof
from repro.hacc.ic import zeldovich_ics
from repro.hacc.particles import ParticleData, Species
from repro.hacc.power import PowerSpectrum
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.observability.export import EVENT_LOG_VERSION
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceRecorder, maybe_span
from repro.resilience.restart import CheckpointManager, SimulationCheckpoint
from repro.service.cache import ContentCache
from repro.service.jobs import Job, JobResult, JobSpec, JobState, SubmissionError
from repro.service.scheduler import JobScheduler, TenantQuota

#: backends other than the reference mutate process-global dispatch
#: state (repro.xp), so their executions are serialised
_BACKEND_LOCK = threading.Lock()


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service instance."""

    #: concurrent worker tasks
    workers: int = 2
    #: result/IC/transfer-function cache budget in bytes
    cache_bytes: int = 256 * 1024 * 1024
    #: per-tenant active-job quota
    quota: TenantQuota = TenantQuota()
    #: directory for preemption checkpoints (a temp dir when None)
    checkpoint_dir: str | None = None
    #: live JSONL event log (the dashboard --follow feed), optional
    events_out: str | None = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("need at least one worker")


class ServiceEventLog:
    """Append-only JSONL event log a live dashboard can tail.

    Unlike :func:`~repro.observability.export.write_event_log` (which
    dumps a finished run once), this writer appends records *as they
    happen* and flushes each line, so ``repro dashboard --follow``
    watching the file sees the service live.  Record kinds reuse the
    event-log schema: ``header`` first, ``instant``/``counter`` while
    serving, one final ``metrics`` snapshot on close.
    """

    def __init__(self, path: str | Path, meta: dict[str, Any] | None = None):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w")
        self._lock = threading.Lock()
        self._start = time.perf_counter()
        header = {"kind": "header", "version": EVENT_LOG_VERSION}
        if meta:
            header["meta"] = dict(meta)
        self.emit(header)

    def emit(self, record: dict[str, Any]) -> None:
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()

    def instant(self, name: str, **args: Any) -> None:
        self.emit(
            {
                "kind": "instant",
                "name": name,
                "category": "service",
                "ts": (time.perf_counter() - self._start) * 1e6,
                "pid": 0,
                "args": args,
            }
        )

    def counter(self, name: str, value: float) -> None:
        self.emit(
            {
                "kind": "counter",
                "name": name,
                "ts": (time.perf_counter() - self._start) * 1e6,
                "pid": 0,
                "value": float(value),
            }
        )

    def close(self, metrics: MetricsRegistry | None = None) -> None:
        if metrics is not None:
            self.emit({"kind": "metrics", "snapshot": metrics.snapshot()})
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class SimulationService:
    """Scheduler + worker pool + cache behind one async facade.

    Lifecycle::

        service = SimulationService(ServiceConfig(workers=2))
        await service.start()
        job = await service.submit(JobSpec(n_per_side=6, n_steps=2))
        result = await job.future
        await service.shutdown()
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        tracer: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.config = config or ServiceConfig()
        self.tracer = tracer if tracer is not None else TraceRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.cache = ContentCache(self.config.cache_bytes, metrics=self.metrics)
        self.scheduler = JobScheduler(
            self.config.quota, tracer=self.tracer, metrics=self.metrics
        )
        self._checkpoint_root = Path(
            self.config.checkpoint_dir
            or tempfile.mkdtemp(prefix="repro-service-ckpt-")
        )
        self.events: ServiceEventLog | None = None
        if self.config.events_out:
            self.events = ServiceEventLog(
                self.config.events_out, meta={"title": "repro serve"}
            )
        self._workers: list[asyncio.Task] = []
        self._started = False

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._workers = [
            asyncio.create_task(self._worker_loop(wid), name=f"svc-worker-{wid}")
            for wid in range(self.config.workers)
        ]

    async def drain(self) -> None:
        """Wait until every admitted job reaches a terminal state."""
        futures = [job.future for job in self.scheduler.jobs]
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)

    async def shutdown(self, drain: bool = True) -> None:
        if drain:
            await self.drain()
        await self.scheduler.close()
        for task in self._workers:
            await task
        self._workers = []
        if self.events is not None:
            self.events.instant("service-shutdown", jobs=len(self.scheduler.jobs))
            self.events.close(self.metrics)

    # -- submission ----------------------------------------------------
    async def submit(
        self,
        spec: JobSpec | dict[str, Any],
        *,
        tenant: str = "default",
        priority: int = 1,
        deadline_in: float | None = None,
    ) -> Job:
        """Admit one request: cache-probe, then schedule (or coalesce).

        A spec whose products are already cached completes immediately
        (``result.from_cache``); otherwise the scheduler queues it —
        or attaches it to an identical in-flight execution.  Raises
        :class:`~repro.service.jobs.SubmissionError` /
        :class:`~repro.service.scheduler.QuotaExceeded` as typed
        rejections.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        spec.validate()
        self._validate_backend(spec)
        deadline = (
            asyncio.get_running_loop().time() + deadline_in
            if deadline_in is not None
            else None
        )

        cached = self.cache.get(f"result:{spec.content_hash()}")
        if cached is not None:
            job = Job(
                spec,
                job_id=next(self.scheduler._job_ids),
                tenant=tenant,
                priority=priority,
                deadline=deadline,
            )
            self.scheduler.jobs.append(job)
            self.metrics.counter("svc.jobs.submitted").inc()
            self.metrics.counter("svc.jobs.completed").inc()
            job.finish(dataclasses.replace(cached, from_cache=True))
            if self.events is not None:
                self.events.instant(
                    "job-cache-hit", job=job.job_id, spec=job.spec_hash[:12]
                )
            return job

        job = await self.scheduler.submit(
            spec, tenant=tenant, priority=priority, deadline=deadline
        )
        if self.events is not None:
            self.events.instant(
                "job-submitted",
                job=job.job_id,
                spec=job.spec_hash[:12],
                tenant=tenant,
                state=str(job.state),
            )
            self.events.counter("svc.queue.depth", self.scheduler.depth)
        return job

    @staticmethod
    def _validate_backend(spec: JobSpec) -> None:
        from repro import xp

        if spec.backend not in xp.registered_backends():
            raise SubmissionError(
                f"unknown backend {spec.backend!r} "
                f"(registered: {sorted(xp.registered_backends())})"
            )

    # -- worker loop ---------------------------------------------------
    async def _worker_loop(self, wid: int) -> None:
        while True:
            job = await self.scheduler.next_job()
            if job is None:
                return
            await self._run_granted(job, wid)

    async def _run_granted(self, job: Job, wid: int) -> None:
        self.metrics.gauge("svc.workers.busy").add(1)
        loop = asyncio.get_running_loop()

        def publish(event: dict[str, Any]) -> None:
            loop.call_soon_threadsafe(job.publish, event)

        try:
            # a duplicate that queued behind its leader's completion
            # window would re-execute; the grant-time peek (metrics-
            # silent) catches it without charging a hit or a miss
            cached = self.cache.peek(f"result:{job.spec_hash}")
            if cached is not None:
                self._complete(job, dataclasses.replace(cached, from_cache=True))
                return
            outcome = await asyncio.to_thread(self._execute_sync, job, wid, publish)
            if outcome == "preempted":
                self.scheduler.requeue(job)
                if self.events is not None:
                    self.events.instant(
                        "job-preempted", job=job.job_id, step=job.steps_done
                    )
                    self.events.counter("svc.queue.depth", self.scheduler.depth)
        except Exception as exc:  # noqa: BLE001 — a job must never kill its worker
            self.metrics.counter("svc.jobs.failed").inc()
            if self.events is not None:
                self.events.instant("job-failed", job=job.job_id, error=str(exc))
            job.fail(exc)
            self.scheduler.task_done(job)
        finally:
            self.metrics.gauge("svc.workers.busy").add(-1)

    def _complete(self, job: Job, result: JobResult) -> None:
        self.metrics.counter("svc.jobs.completed").inc()
        if self.events is not None:
            self.events.instant(
                "job-completed",
                job=job.job_id,
                spec=job.spec_hash[:12],
                steps=result.steps_completed,
                from_cache=result.from_cache,
            )
            self.events.counter(
                "svc.cache.hits", self.cache.stats().hits
            )
        job.finish(result)
        self.scheduler.task_done(job)

    # -- synchronous execution core (runs in an executor thread) -------
    def _execute_sync(
        self, job: Job, wid: int, publish: Callable[[dict[str, Any]], None]
    ) -> str:
        spec = job.spec
        with maybe_span(
            self.tracer,
            f"job {job.job_id}",
            category="job",
            spec=job.spec_hash[:12],
            tenant=job.tenant,
            worker=wid,
            resumed=job.checkpoint_path is not None,
        ):
            if spec.ranks > 1 or spec.faults:
                result = self._run_supervised(job, publish)
            else:
                outcome = self._run_preemptible(job, publish)
                if outcome == "preempted":
                    return "preempted"
                result = outcome
        self.cache.put(f"result:{job.spec_hash}", result)
        # completion bookkeeping runs on the loop thread for ordering
        # with the subscribers' event queues
        self._finish_from_thread(job, result)
        return "completed"

    def _finish_from_thread(self, job: Job, result: JobResult) -> None:
        loop = job.future.get_loop()
        loop.call_soon_threadsafe(self._complete, job, result)

    def _run_preemptible(
        self, job: Job, publish: Callable[[dict[str, Any]], None]
    ) -> "JobResult | str":
        """Step the plain driver, honouring the preemption flag."""
        spec = job.spec
        driver = self._build_driver(job)
        schedule = driver.schedule()
        with self._backend_scope(spec):
            while driver.step_index < driver.config.n_steps:
                if job.preempt_requested:
                    self._checkpoint(job, driver)
                    return "preempted"
                a0 = float(schedule[driver.step_index])
                a1 = float(schedule[driver.step_index + 1])
                diag = driver.step(a0, a1)
                job.steps_done = driver.step_index
                publish(
                    {
                        "job": job.job_id,
                        "step": driver.step_index - 1,
                        "a": diag.a,
                        "kinetic_energy": diag.kinetic_energy,
                        "thermal_energy": diag.thermal_energy,
                        "max_density_contrast": diag.max_density_contrast,
                    }
                )
        return JobResult(
            spec_hash=job.spec_hash,
            products=self._products(driver, spec),
            steps_completed=driver.step_index,
            attempts=1 + job.preemptions,
        )

    def _run_supervised(
        self, job: Job, publish: Callable[[dict[str, Any]], None]
    ) -> JobResult:
        """Run a faulted / multi-rank job under the resilience runner."""
        from repro.resilience import FaultPlan, run_simulation

        spec = job.spec
        config = self._sim_config(spec)
        fault_plan = (
            FaultPlan.parse(spec.faults, seed=spec.seed) if spec.faults else None
        )
        with self._backend_scope(spec):
            result = run_simulation(
                config,
                world_size=max(2, spec.ranks),
                fault_plan=fault_plan,
                checkpoint_dir=self._checkpoint_root / f"job-{job.job_id}",
                degrade_policy=spec.degrade_policy,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        job.steps_done = result.driver.step_index
        for diag in result.driver.diagnostics:
            publish(
                {
                    "job": job.job_id,
                    "a": diag.a,
                    "kinetic_energy": diag.kinetic_energy,
                    "thermal_energy": diag.thermal_energy,
                    "max_density_contrast": diag.max_density_contrast,
                }
            )
        return JobResult(
            spec_hash=job.spec_hash,
            products=self._products(result.driver, spec),
            steps_completed=result.driver.step_index,
            attempts=len(result.attempts),
            degraded=result.recovered or result.degraded,
        )

    # -- drivers, checkpoints, inputs ----------------------------------
    @staticmethod
    def _sim_config(spec: JobSpec) -> SimulationConfig:
        return SimulationConfig(
            n_per_side=spec.n_per_side,
            pm_mesh=max(8, spec.n_per_side),
            n_steps=spec.n_steps,
            seed=spec.seed,
        )

    def _build_driver(self, job: Job) -> AdiabaticDriver:
        if job.checkpoint_path is not None:
            checkpoint = SimulationCheckpoint.load(job.checkpoint_path)
            driver = checkpoint.restore_driver()
            self.metrics.counter("svc.jobs.resumed").inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "job-resumed",
                    category="service",
                    job=job.job_id,
                    step=checkpoint.step_index,
                )
        else:
            config = self._sim_config(job.spec)
            driver = AdiabaticDriver(config, particles=self._initial_load(config))
        driver.tracer = self.tracer
        driver.metrics = self.metrics
        return driver

    def _initial_load(self, config: SimulationConfig) -> ParticleData:
        """The IC particle load, shared through the content cache.

        The linear P(k) table (its sigma8 normalisation is a numeric
        integral) is cached per cosmology (``tf:``); the generated
        Zel'dovich load is cached per IC config (``ic:``) and deep-
        copied out, since every driver mutates its particles.
        """
        cosmology = Cosmology()
        power = self.cache.get_or_create(
            f"tf:{config_hash(cosmology)}", lambda: PowerSpectrum(cosmology)
        )
        ic_config = config.ic_config()
        arrays = self.cache.get_or_create(
            f"ic:{ic_config.content_hash()}",
            lambda: {
                name: arr.copy()
                for name, arr in zeldovich_ics(
                    ic_config, cosmology, power
                ).arrays.items()
            },
        )
        return ParticleData(
            box=ic_config.box,
            arrays={name: arr.copy() for name, arr in arrays.items()},
        )

    def _checkpoint(self, job: Job, driver: AdiabaticDriver) -> None:
        """Preemption = a real disk checkpoint through the manager."""
        manager = CheckpointManager(
            self._checkpoint_root / f"job-{job.job_id}", every=1, metrics=self.metrics
        )
        path = manager.save_now(driver)
        job.checkpoint_path = path
        job.state = JobState.PREEMPTED
        if self.tracer is not None:
            self.tracer.instant(
                "job-preempt-checkpoint",
                category="service",
                job=job.job_id,
                step=driver.step_index,
                path=str(path),
            )

    def _backend_scope(self, spec: JobSpec):
        """The requested array backend, serialised because dispatch is
        process-global; an unavailable optional backend degrades to
        the reference (same semantics as the CLI's ``--backend``)."""
        from contextlib import contextmanager

        from repro import xp

        @contextmanager
        def scope():
            if spec.backend == xp.DEFAULT_BACKEND:
                yield
                return
            with _BACKEND_LOCK:
                try:
                    ctx = xp.use_backend(spec.backend)
                    ctx.__enter__()
                except xp.BackendUnavailableError:
                    self.metrics.counter("svc.jobs.backend_fallback").inc()
                    yield
                    return
                try:
                    yield
                finally:
                    ctx.__exit__(None, None, None)

        return scope()

    # -- products ------------------------------------------------------
    def _products(self, driver: AdiabaticDriver, spec: JobSpec) -> dict[str, Any]:
        products: dict[str, Any] = {}
        p = driver.particles
        for name in spec.products:
            with maybe_span(self.tracer, f"product:{name}", category="analysis"):
                if name == "diagnostics":
                    diags = driver.diagnostics
                    products[name] = {
                        "a": np.array([d.a for d in diags]),
                        "kinetic_energy": np.array(
                            [d.kinetic_energy for d in diags]
                        ),
                        "thermal_energy": np.array(
                            [d.thermal_energy for d in diags]
                        ),
                        "total_momentum": np.array(
                            [d.total_momentum for d in diags]
                        ),
                        "max_density_contrast": np.array(
                            [d.max_density_contrast for d in diags]
                        ),
                    }
                elif name == "power_spectrum":
                    measurement = measure_power_spectrum(
                        p, n_mesh=max(8, spec.n_per_side)
                    )
                    products[name] = measurement.as_dict()
                elif name == "halo_catalog":
                    dm = p.select(p.species_mask(Species.DARK_MATTER))
                    linking = 0.2 * p.box / spec.n_per_side
                    catalog = fof(dm.positions, p.box, linking, min_members=8)
                    products[name] = {
                        "n_halos": catalog.n_halos,
                        "sizes": catalog.sizes,
                    }
                elif name == "trace":
                    by_kernel = driver.trace.by_kernel()
                    products[name] = {
                        "launches": len(driver.trace.invocations),
                        "calls_by_kernel": {
                            k: len(v) for k, v in sorted(by_kernel.items())
                        },
                        "total_interactions": driver.trace.total_interactions(),
                    }
        return products

    # -- introspection -------------------------------------------------
    def stats(self) -> dict[str, Any]:
        snapshot = self.metrics.snapshot()
        return {
            "jobs": [job.describe() for job in self.scheduler.jobs],
            "queue_depth": self.scheduler.depth,
            "running": len(self.scheduler.running),
            "cache": self.cache.stats().as_dict(),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
        }
