"""``repro.service`` — simulation-as-a-service.

The ROADMAP's production-traffic story: accept thousands of concurrent
simulation/analysis requests (cosmology params -> power spectrum, halo
catalog, workload trace) and turn them into supervised, cacheable,
observable jobs.

The pieces and the request lifecycle::

    submit ──> scheduler (quota / fair-share / coalesce)
                  │ grant                        ▲ requeue
                  ▼                              │ (preempt = checkpoint)
               worker ──(resilience runner)──> products
                  │                              │
                  ▼ stream                       ▼
              subscribers                  content-addressed cache

- :mod:`~repro.service.jobs` — the job spec (scenario + cosmology
  params + backend + requested products) with a canonical,
  deterministic content hash; the job record and its lifecycle states.
- :mod:`~repro.service.scheduler` — an asyncio priority queue with
  per-tenant quotas, fair-share ordering, deadline-based preemption
  (preempt = checkpoint via
  :class:`~repro.resilience.restart.CheckpointManager`, requeue,
  resume on the next grant), and request coalescing so identical
  in-flight specs share one execution.
- :mod:`~repro.service.cache` — content-addressed store for ICs,
  linear-theory tables, and result products keyed on the spec hash,
  with size-bounded LRU eviction and hit/miss metrics.
- :mod:`~repro.service.workers` — the worker pool: each job runs
  under the resilience runner (faults degrade per the PR 4 ladder
  instead of failing the request) and streams in-situ snapshot events
  to subscribers.
- :mod:`~repro.service.api` — the local front end (unix-socket JSONL
  framing or in-process) behind CLI ``repro serve`` / ``repro
  submit`` / ``repro jobs``.

`MetricsRegistry`/`TraceRecorder` are wired through the whole path
(``svc.queue.depth``, ``svc.cache.hits``, per-job flame spans), so the
PR 5 dashboard doubles as the service console — ``repro dashboard
--follow`` tails a live ``repro serve`` session's event log.
"""

from repro.service.api import ServiceAPI, request, submit_job
from repro.service.cache import CacheStats, ContentCache
from repro.service.jobs import (
    Job,
    JobResult,
    JobSpec,
    JobState,
    ServiceError,
    SubmissionError,
)
from repro.service.scheduler import JobScheduler, QuotaExceeded, TenantQuota
from repro.service.workers import ServiceConfig, SimulationService

__all__ = [
    "CacheStats",
    "ContentCache",
    "Job",
    "JobResult",
    "JobScheduler",
    "JobSpec",
    "JobState",
    "QuotaExceeded",
    "ServiceAPI",
    "ServiceConfig",
    "ServiceError",
    "SimulationService",
    "SubmissionError",
    "TenantQuota",
    "request",
    "submit_job",
]
