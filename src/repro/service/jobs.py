"""Job specs, job records, and their lifecycle.

A :class:`JobSpec` is the *content* of a request: which scenario to
run, at what resolution and seed, on which array backend, and which
products to return.  Two requests with equal specs are the same
computation — :meth:`JobSpec.content_hash` (the shared
:func:`~repro.core.confighash.config_hash` canonicalisation) is the
key under which the scheduler coalesces duplicate in-flight requests
and the cache stores finished products.

A :class:`Job` is one *request* for that content: it carries the
tenant, priority class, deadline, lifecycle state, the asyncio future
its submitter awaits, and the subscriber queues its in-situ snapshot
events stream to.  Many jobs (coalesced duplicates) can point at one
execution.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from repro.core.confighash import config_hash

#: products a job may request, in canonical order
PRODUCT_NAMES = ("diagnostics", "power_spectrum", "halo_catalog", "trace")


class ServiceError(RuntimeError):
    """Base class of every service-layer failure."""


class SubmissionError(ServiceError):
    """The request itself is malformed (unknown product, bad spec)."""


class JobState(str, Enum):
    """Lifecycle of a job.

    ``QUEUED -> RUNNING -> COMPLETED`` is the happy path; a preempted
    job bounces ``RUNNING -> PREEMPTED -> QUEUED`` (resuming from its
    checkpoint on the next grant); a coalesced duplicate goes straight
    to ``COALESCED`` and completes when its leader does.
    """

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    COALESCED = "coalesced"
    COMPLETED = "completed"
    FAILED = "failed"

    def __str__(self) -> str:  # argparse/log friendliness
        return self.value


@dataclass(frozen=True)
class JobSpec:
    """What to simulate and what to hand back.

    Only fields that change the *computation* belong here — tenant,
    priority, and deadline live on the :class:`Job` so that two
    tenants asking for the same run still share one execution.
    """

    #: scenario name (the adiabatic box is the only one registered today)
    scenario: str = "adiabatic"
    #: particles per side (2x n^3 total, the paper's two-species load)
    n_per_side: int = 6
    #: steps of the z_initial -> z_final schedule
    n_steps: int = 2
    #: IC realisation seed
    seed: int = 2023
    #: array backend for the hot path (``repro.xp`` name)
    backend: str = "numpy"
    #: products to compute and return, canonical order
    products: tuple[str, ...] = ("diagnostics",)
    #: optional fault plan (``repro.resilience.faults`` syntax); a
    #: faulted job runs under the full resilience runner
    faults: str = ""
    #: simulated ranks for the resilience runner (1 = plain driver)
    ranks: int = 1
    #: degradation ladder for faulted/multi-rank jobs
    degrade_policy: str = "restart"

    def __post_init__(self):
        object.__setattr__(
            self,
            "products",
            tuple(sorted(set(self.products), key=PRODUCT_NAMES.index))
            if all(p in PRODUCT_NAMES for p in self.products)
            else tuple(self.products),
        )

    def validate(self) -> None:
        """Raise :class:`SubmissionError` on a malformed spec."""
        if self.scenario != "adiabatic":
            raise SubmissionError(f"unknown scenario {self.scenario!r}")
        if not 2 <= self.n_per_side <= 64:
            raise SubmissionError(
                f"n_per_side must be in [2, 64], got {self.n_per_side}"
            )
        if not 1 <= self.n_steps <= 64:
            raise SubmissionError(f"n_steps must be in [1, 64], got {self.n_steps}")
        if self.ranks < 1:
            raise SubmissionError(f"ranks must be >= 1, got {self.ranks}")
        if not self.products:
            raise SubmissionError("a job must request at least one product")
        unknown = [p for p in self.products if p not in PRODUCT_NAMES]
        if unknown:
            raise SubmissionError(
                f"unknown product(s) {unknown} (known: {list(PRODUCT_NAMES)})"
            )
        if self.degrade_policy not in ("shrink", "restart", "abort"):
            raise SubmissionError(
                f"unknown degrade policy {self.degrade_policy!r}"
            )

    def content_hash(self) -> str:
        """The canonical content key of this computation."""
        return config_hash(self)

    def short_hash(self) -> str:
        return self.content_hash()[:12]

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        """Build a spec from a wire-format dict (unknown keys rejected)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise SubmissionError(f"unknown spec field(s): {sorted(unknown)}")
        if "products" in data:
            data = dict(data, products=tuple(data["products"]))
        try:
            return cls(**data)
        except TypeError as exc:
            raise SubmissionError(f"malformed spec: {exc}") from exc

    def as_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n_per_side": self.n_per_side,
            "n_steps": self.n_steps,
            "seed": self.seed,
            "backend": self.backend,
            "products": list(self.products),
            "faults": self.faults,
            "ranks": self.ranks,
            "degrade_policy": self.degrade_policy,
        }

    def with_products(self, products: tuple[str, ...]) -> "JobSpec":
        return replace(self, products=products)


@dataclass
class JobResult:
    """Finished products of one executed spec.

    ``products`` values keep their NumPy arrays in process (the
    bit-identity tests compare them exactly); :meth:`as_dict` converts
    to JSON-compatible types for the wire.
    """

    spec_hash: str
    products: dict[str, Any]
    steps_completed: int
    #: did the resilience runner degrade/recover during execution?
    attempts: int = 1
    degraded: bool = False
    from_cache: bool = False

    def as_dict(self) -> dict[str, Any]:
        def _plain(value: Any) -> Any:
            if hasattr(value, "tolist"):
                return value.tolist()
            if isinstance(value, dict):
                return {k: _plain(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [_plain(v) for v in value]
            return value

        return {
            "spec_hash": self.spec_hash,
            "products": _plain(self.products),
            "steps_completed": self.steps_completed,
            "attempts": self.attempts,
            "degraded": self.degraded,
            "from_cache": self.from_cache,
        }


class Job:
    """One request's lifecycle, future, and event stream."""

    def __init__(
        self,
        spec: JobSpec,
        *,
        job_id: int,
        tenant: str = "default",
        priority: int = 1,
        deadline: float | None = None,
    ):
        self.spec = spec
        self.spec_hash = spec.content_hash()
        self.job_id = job_id
        self.tenant = tenant
        self.priority = int(priority)
        #: absolute event-loop time by which the submitter wants the
        #: result; earlier deadlines sort (and preempt) ahead
        self.deadline = deadline
        self.state = JobState.QUEUED
        self.error: str | None = None
        #: steps completed so far (advanced by the worker; survives
        #: preemption via the checkpoint)
        self.steps_done = 0
        #: how many times this job was preempted and resumed
        self.preemptions = 0
        #: checkpoint file of the preempted state, if any
        self.checkpoint_path = None
        #: the leader job this (coalesced) job rides on, if any
        self.leader: "Job | None" = None
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._subscribers: list[asyncio.Queue] = []
        #: cooperative preemption flag, checked between steps by the
        #: worker thread (set from the event loop)
        self.preempt_requested = False

    # -- events --------------------------------------------------------
    def subscribe(self) -> asyncio.Queue:
        """A queue receiving this job's in-situ snapshot events; a
        ``None`` sentinel marks the end of the stream."""
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.append(queue)
        return queue

    def publish(self, event: dict[str, Any]) -> None:
        for queue in self._subscribers:
            queue.put_nowait(event)

    def close_stream(self) -> None:
        for queue in self._subscribers:
            queue.put_nowait(None)

    # -- lifecycle -----------------------------------------------------
    def request_preempt(self) -> None:
        self.preempt_requested = True

    def finish(self, result: JobResult) -> None:
        self.state = JobState.COMPLETED
        if not self.future.done():
            self.future.set_result(result)
        self.close_stream()

    def fail(self, error: Exception | str) -> None:
        self.state = JobState.FAILED
        self.error = str(error)
        if not self.future.done():
            exc = error if isinstance(error, Exception) else ServiceError(error)
            self.future.set_exception(exc)
        self.close_stream()

    def describe(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "tenant": self.tenant,
            "priority": self.priority,
            "state": str(self.state),
            "steps_done": self.steps_done,
            "preemptions": self.preemptions,
            "error": self.error,
            "coalesced_into": self.leader.job_id if self.leader else None,
        }

    def __repr__(self) -> str:
        return (
            f"Job(id={self.job_id}, {self.spec_hash[:8]}, "
            f"tenant={self.tenant!r}, state={self.state})"
        )
