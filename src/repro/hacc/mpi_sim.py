"""Simulated MPI: rank topology, decomposition, and overload exchange.

The paper's test problem runs 8 MPI ranks, one per accelerator slice
(Section 3.4.2).  Offline we cannot (and need not) run real MPI; this
module provides an mpi4py-compatible communicator façade whose ranks
run as threads inside one process, with collectives implemented as
true rendezvous operations.  Code written against :class:`SimComm`
ports to mpi4py by replacing the communicator object (the method names
follow the mpi4py convention).

It also provides HACC's 3-D block domain decomposition with "overload"
(ghost) particle exchange: each rank holds copies of neighbouring
particles within an overload shell of its boundary, which is what lets
the short-range solvers run without per-pair communication.

Self-healing collectives (mpi4py-compatibility notes)
-----------------------------------------------------
Production CRK-HACC campaigns survive node failures only because runs
fail loudly and restart from checkpoints; a collective that blocks
forever on a dead rank is the worst possible failure mode.  Every
:class:`SimComm` collective therefore accepts an optional ``timeout``
keyword (seconds) defaulting to the world-level
:attr:`SimWorld.timeout`.  When a peer rank dies, or the timeout
elapses before all ranks arrive, the survivors raise
:class:`RankFailure` instead of deadlocking, and the
:class:`SimWorld` supervisor records an obituary (which rank died,
and why) in :attr:`SimWorld.obituaries`.

The ``timeout`` keyword is an *extension* over mpi4py: real
``MPI.COMM_WORLD`` collectives have no timeout parameter, so code that
must stay drop-in portable should leave ``timeout`` unset (``None``
at the world level reproduces mpi4py's blocking behaviour exactly).
Under real MPI the equivalent protection comes from the ULFM
fault-tolerance extensions or from an external watchdog; the
:class:`RankFailure` exception maps onto ``MPI.ERR_PROC_FAILED``.

Shrinking-world recovery (ULFM ``MPI_Comm_shrink`` / ``MPI_Comm_agree``)
------------------------------------------------------------------------
Raising :class:`RankFailure` is only half of ULFM; the other half is
letting the survivors *continue without the dead*.  :meth:`SimComm.agree`
is the fault-tolerant agreement: it completes among the live members of
the communicator even while ranks are dying (a member that never shows
up within the timeout is *declared* dead, exactly a ULFM failure
detector), and every survivor receives the identical
:class:`AgreeOutcome` naming the same failed-rank set.
:meth:`SimComm.shrink` builds on it: agree on the failure set, then
return a new, smaller communicator over the sorted survivors with
locally renumbered ranks (``Get_rank``/``Get_size`` follow the new
group, mirroring ``MPI_Comm_shrink``).  Collectives on the shrunk
communicator rendezvous only among its members — dead ranks are
excluded from the meeting point, so the survivors' world keeps working
at its reduced size.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.hacc.particles import ParticleData
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceRecorder


class RankFailure(RuntimeError):
    """A collective could not complete because a peer rank died or the
    rendezvous timed out.

    Raised on every *surviving* rank (the failed rank raises its own
    original exception), mirroring ULFM's ``MPI.ERR_PROC_FAILED``.

    ``failed_ranks`` are ranks known dead when the collective failed;
    ``missing_ranks`` are live-but-absent ranks that never arrived
    before a timeout (a stalled peer the caller may choose to *declare*
    dead before shrinking, as a ULFM failure detector would).
    """

    def __init__(
        self,
        message: str,
        failed_ranks: Sequence[int] = (),
        missing_ranks: Sequence[int] = (),
    ):
        super().__init__(message)
        self.failed_ranks = tuple(failed_ranks)
        self.missing_ranks = tuple(missing_ranks)


@dataclass(frozen=True)
class AgreeOutcome:
    """The shared result of one fault-tolerant agreement.

    Every survivor of the same :meth:`SimComm.agree` call receives an
    outcome built from the identical rendezvous snapshot, so all
    survivors name the same ``failed_ranks`` — that is the agreement
    guarantee ULFM's ``MPI_Comm_agree`` provides.
    """

    group: tuple[int, ...]
    contributions: dict[int, Any]
    failed_ranks: frozenset[int]

    @property
    def survivors(self) -> tuple[int, ...]:
        return tuple(r for r in self.group if r not in self.failed_ranks)


@dataclass(frozen=True)
class RankObituary:
    """Supervisor record of one rank's death."""

    rank: int
    reason: str
    exception: BaseException


class _Rendezvous:
    """One collective-operation meeting point for a set of ranks.

    ``participants`` are the *global* ranks that meet here (an ``int``
    means ``range(n)``, the full world).  A **strict** rendezvous (the
    default, normal MPI semantics) completes only when every
    participant arrives and fails everyone as soon as any participant
    is known dead.  A **tolerant** rendezvous (ULFM agreement
    semantics) excludes dead participants from the meeting: it
    completes once every *live* participant has arrived, and a timeout
    does not fail the call — instead the absent live participants are
    *declared* dead and the generation completes among the arrived
    (:attr:`declared_dead` records who was declared so the caller can
    propagate the verdict to the world supervisor).
    """

    def __init__(
        self,
        participants: int | Sequence[int],
        dead: set[int] | None = None,
        tolerant: bool = False,
    ):
        if isinstance(participants, int):
            participants = range(participants)
        self.participants = frozenset(participants)
        self.size = len(self.participants)
        self.tolerant = tolerant
        self._cond = threading.Condition()
        self._values: dict[int, Any] = {}
        self._generation = 0
        # initialised eagerly: a wakeup before the first completed
        # generation must never read an undefined attribute
        self._result: dict[int, Any] | None = None
        self._dead: set[int] = set(dead or ()) & self.participants
        #: live participants declared dead by a tolerant timeout
        self.declared_dead: tuple[int, ...] = ()

    def mark_dead(self, rank: int) -> None:
        """Record a dead rank and wake every waiter so it can react."""
        with self._cond:
            if rank not in self.participants:
                return
            self._dead.add(rank)
            self._cond.notify_all()

    def _fail(self, timed_out: float | None = None) -> RankFailure:
        if self._dead:
            detail = f"rank(s) {sorted(self._dead)} died"
        else:
            detail = f"timed out after {timed_out:.1f}s"
        # missing_ranks only name live peers absent at a *timeout*: on
        # the known-death fast path nobody has had time to arrive, and
        # naming the still-live peers would invite a caller to declare
        # every survivor dead
        missing = (
            self.participants - set(self._values) - self._dead
            if timed_out is not None
            else set()
        )
        return RankFailure(
            f"collective aborted: {detail}",
            failed_ranks=sorted(self._dead),
            missing_ranks=sorted(missing),
        )

    def _locked_try_finalise(self) -> bool:
        """Complete the generation if its arrival condition holds.

        Must be called with the condition lock held.  Strict mode needs
        every participant; tolerant mode needs every *live* participant
        (and at least one).
        """
        arrived = set(self._values)
        if self.tolerant:
            live = self.participants - self._dead
            complete = bool(live) and live <= arrived
            if complete:
                self._result = {
                    r: v for r, v in self._values.items() if r not in self._dead
                }
        else:
            complete = arrived >= self.participants
            if complete:
                self._result = dict(self._values)
        if complete:
            self._generation += 1
            self._values = {}
            self._cond.notify_all()
        return complete

    def exchange(
        self, rank: int, value: Any, timeout: float | None = None
    ) -> dict[int, Any]:
        """Deposit ``value``; blocks until the meeting completes, then
        every rank receives the same ``{rank: value}`` mapping.

        Strict mode raises :class:`RankFailure` if a participant has
        been marked dead or the timeout elapses.  Tolerant mode raises
        only if the *caller* has been declared dead; peer deaths and
        timeouts complete the meeting among the live arrivals instead.
        """
        with self._cond:
            if rank not in self.participants:
                raise ValueError(f"rank {rank} is not a participant")
            generation = self._generation
            if self._dead and not self.tolerant:
                raise self._fail()
            if self.tolerant and rank in self._dead:
                raise self._fail()
            self._values[rank] = value
            if not self._locked_try_finalise():
                deadline = None if timeout is None else time.monotonic() + timeout
                # predicate guards against spurious wakeups: only a
                # completed generation (or a death/timeout) ends the wait
                while self._generation == generation:
                    if self._dead and not self.tolerant:
                        raise self._fail()
                    if self.tolerant and rank in self._dead:
                        raise self._fail()
                    if self._locked_try_finalise():
                        break
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            if not self.tolerant:
                                raise self._fail(timed_out=timeout)
                            # ULFM failure detector: declare the absent
                            # live participants dead and complete the
                            # agreement among the arrived survivors
                            missing = (
                                self.participants - set(self._values) - self._dead
                            )
                            self._dead |= missing
                            self.declared_dead = tuple(
                                sorted(set(self.declared_dead) | missing)
                            )
                            self._locked_try_finalise()
                            break
                    self._cond.wait(remaining)
            assert self._result is not None
            return dict(self._result)


class SimComm:
    """A thread-backed stand-in for ``mpi4py.MPI.COMM_WORLD``.

    All collectives take an optional ``timeout`` keyword (see module
    docstring) defaulting to the world-level setting.

    A communicator covers a *group* of global ranks (the full world by
    default).  ``Get_rank``/``Get_size`` follow the group, mirroring a
    shrunk ULFM communicator: after :meth:`shrink`, survivors are
    renumbered ``0..len(survivors)-1`` while :attr:`global_rank` keeps
    the world-level identity (used for fault plans and obituaries).
    """

    def __init__(
        self,
        world: "SimWorld",
        rank: int,
        group: Sequence[int] | None = None,
        comm_id: str = "world",
    ):
        self._world = world
        self._group = tuple(group) if group is not None else tuple(range(world.size))
        if rank not in self._group:
            raise ValueError(f"rank {rank} is not in communicator group {self._group}")
        self._grank = rank  # global (world) rank
        self._rank = self._group.index(rank)  # local rank within the group
        self._comm_id = comm_id

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return len(self._group)

    @property
    def group(self) -> tuple[int, ...]:
        """Global ranks that are members of this communicator."""
        return self._group

    @property
    def global_rank(self) -> int:
        """This member's rank in the original world."""
        return self._grank

    def _exchange(
        self,
        kind: str,
        value: Any,
        timeout: float | None,
        tolerant: bool = False,
    ) -> Any:
        """Run one rendezvous among the group.

        Strict mode (default) returns the values as a group-ordered
        list (``result[i]`` is local rank ``i``'s contribution).
        Tolerant mode returns the raw ``{global_rank: value}`` snapshot
        of the live arrivals and propagates any timeout-declared deaths
        to the world supervisor.
        """
        if timeout is None:
            timeout = self._world.timeout
        self._world.pre_collective(kind, self._grank)
        tracer = self._world.tracer
        metrics = self._world.metrics
        rv = self._world.rendezvous(
            f"{self._comm_id}:{kind}", self._group, tolerant=tolerant
        )
        begin = time.monotonic()
        try:
            snapshot = rv.exchange(self._grank, value, timeout)
        except RankFailure as exc:
            if tracer is not None:
                tracer.instant(
                    f"collective-failed:{kind}",
                    category="mpi",
                    rank=self._grank,
                    failed_ranks=list(exc.failed_ranks),
                )
            raise
        finally:
            elapsed = time.monotonic() - begin
            if metrics is not None:
                metrics.counter("mpi.collective.calls").inc()
                metrics.counter("mpi.collective.seconds").inc(elapsed)
            if tracer is not None:
                end = tracer.now()
                tracer.add_span(
                    kind,
                    begin=max(0.0, end - elapsed),
                    end=end,
                    category="mpi",
                    args={"rank": self._grank},
                )
        if tolerant:
            # a tolerant timeout is a failure-detector verdict: make it
            # world-official so stalled ranks fail out of their old
            # collectives and future meetings exclude them (idempotent)
            for dead in rv.declared_dead:
                self._world.mark_rank_dead(
                    dead,
                    RankFailure(
                        f"rank {dead} declared dead by agreement timeout",
                        failed_ranks=(dead,),
                    ),
                    reason="declared dead: absent from agreement within timeout",
                )
            return snapshot
        return [snapshot[g] for g in self._group]

    def bcast(self, obj: Any, root: int = 0, timeout: float | None = None) -> Any:
        return self._exchange("bcast", obj, timeout)[root]

    def gather(
        self, obj: Any, root: int = 0, timeout: float | None = None
    ) -> list[Any] | None:
        values = self._exchange("gather", obj, timeout)
        return values if self._rank == root else None

    def allgather(self, obj: Any, timeout: float | None = None) -> list[Any]:
        return self._exchange("allgather", obj, timeout)

    def allreduce(self, value: Any, op: str = "sum", timeout: float | None = None) -> Any:
        return _reduce(self._exchange("allreduce", value, timeout), op)

    def reduce(
        self, value: Any, op: str = "sum", root: int = 0, timeout: float | None = None
    ) -> Any | None:
        values = self._exchange("reduce", value, timeout)
        return _reduce(values, op) if self._rank == root else None

    def alltoall(self, sendbuf: list[Any], timeout: float | None = None) -> list[Any]:
        """Each rank sends ``sendbuf[r]`` to local rank r."""
        if len(sendbuf) != len(self._group):
            raise ValueError("alltoall send buffer must have one entry per rank")
        values = self._exchange("alltoall", sendbuf, timeout)
        return [values[src][self._rank] for src in range(len(self._group))]

    def barrier(self, timeout: float | None = None) -> None:
        self._exchange("barrier", None, timeout)

    # lowercase aliases (mpi4py exposes both spellings for some ops)
    Barrier = barrier

    # -- ULFM fault tolerance ------------------------------------------
    def agree(self, value: Any = None, timeout: float | None = None) -> AgreeOutcome:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``).

        Completes among the live members even while members are dying:
        a member absent past the timeout is declared dead rather than
        failing the call.  Every survivor receives an
        :class:`AgreeOutcome` built from the identical rendezvous
        snapshot, so all survivors agree on the failed-rank set and on
        each other's ``value`` contributions.

        Raises :class:`RankFailure` only if the *caller* has itself
        been declared dead.
        """
        snapshot = self._exchange("agree", value, timeout, tolerant=True)
        return AgreeOutcome(
            group=self._group,
            contributions=dict(snapshot),
            failed_ranks=frozenset(self._group) - frozenset(snapshot),
        )

    def shrunk(self, survivors: Sequence[int]) -> "SimComm":
        """A new communicator over ``survivors`` (global ranks), with
        members renumbered ``0..n-1`` in sorted global order.

        Every survivor must call this with the same survivor set
        (normally :attr:`AgreeOutcome.survivors`); the caller must be a
        member.  The lowest surviving rank emits the shrink metric and
        trace instant, once per shrink.
        """
        survivors = tuple(sorted(survivors))
        if not survivors:
            raise ValueError("cannot shrink to an empty communicator")
        if self._grank not in survivors:
            raise RankFailure(
                f"rank {self._grank} is not among the survivors {survivors}",
                failed_ranks=(self._grank,),
            )
        unknown = set(survivors) - set(self._group)
        if unknown:
            raise ValueError(f"survivors {sorted(unknown)} are not members")
        dead = sorted(set(self._group) - set(survivors))
        if self._grank == survivors[0]:
            if self._world.metrics is not None:
                self._world.metrics.counter("sim.resilience.shrinks").inc()
            if self._world.tracer is not None:
                self._world.tracer.instant(
                    "shrink",
                    category="resilience",
                    dead_ranks=dead,
                    survivors=list(survivors),
                )
        comm_id = f"{self._comm_id}|{'.'.join(str(r) for r in survivors)}"
        return SimComm(self._world, self._grank, group=survivors, comm_id=comm_id)

    def shrink(self, timeout: float | None = None) -> "SimComm":
        """Agree on the failure set, then return the shrunk
        communicator over the survivors (ULFM ``MPI_Comm_shrink``)."""
        return self.shrunk(self.agree(timeout=timeout).survivors)


def _reduce(values: list[Any], op: str) -> Any:
    if op == "sum":
        total = values[0]
        for v in values[1:]:
            total = total + v
        return total
    if op == "min":
        return min(values)
    if op == "max":
        return max(values)
    raise ValueError(f"unsupported reduction {op!r}")


class SimWorld:
    """A simulated MPI world of ``size`` ranks (threads).

    ``timeout`` is the default collective timeout in seconds (``None``
    keeps mpi4py's indefinitely-blocking behaviour).  The world acts as
    a supervisor: a rank thread that dies is recorded in
    :attr:`obituaries` and every in-flight or future collective on the
    surviving ranks raises :class:`RankFailure`.
    """

    def __init__(
        self,
        size: int,
        timeout: float | None = None,
        *,
        tracer: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if size < 1:
            raise ValueError("world size must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.size = size
        self.timeout = timeout
        self._lock = threading.Lock()
        self._rendezvous: dict[str, _Rendezvous] = {}
        self._sequence: dict[str, int] = {}
        self._obituaries: dict[int, RankObituary] = {}
        #: hook called before each collective (kind, rank); the fault
        #: injector uses it to stall a collective past its timeout
        self.pre_collective_hook: Callable[[str, int], None] | None = None
        #: observability sinks: when set, rank threads run on per-rank
        #: trace tracks (pid = rank), collectives become spans, and
        #: rank deaths become instant events — every rank's events
        #: merge into the one shared timeline
        self.tracer = tracer
        self.metrics = metrics

    # -- supervisor ----------------------------------------------------
    @property
    def obituaries(self) -> dict[int, RankObituary]:
        """Which ranks died, and why (rank -> obituary)."""
        with self._lock:
            return dict(self._obituaries)

    @property
    def dead_ranks(self) -> set[int]:
        with self._lock:
            return set(self._obituaries)

    def mark_rank_dead(self, rank: int, exc: BaseException, reason: str = "") -> None:
        """Record a rank's death and wake all blocked collectives."""
        with self._lock:
            if rank in self._obituaries:
                return
            self._obituaries[rank] = RankObituary(
                rank=rank, reason=reason or f"{type(exc).__name__}: {exc}", exception=exc
            )
            points = list(self._rendezvous.values())
        if self.tracer is not None:
            self.tracer.instant(
                "rank-death",
                category="resilience",
                pid=rank,
                rank=rank,
                reason=reason or f"{type(exc).__name__}: {exc}",
            )
        if self.metrics is not None:
            self.metrics.counter("resilience.rank_failures").inc()
        for rv in points:
            rv.mark_dead(rank)

    def pre_collective(self, kind: str, rank: int) -> None:
        hook = self.pre_collective_hook
        if hook is not None:
            hook(kind, rank)

    def rendezvous(
        self,
        key: str,
        participants: Sequence[int] | None = None,
        tolerant: bool = False,
    ) -> _Rendezvous:
        """The current meeting point for collective ``key``.

        A fresh rendezvous is created per collective *call site epoch*;
        ranks calling collectives in the same order (required by MPI
        semantics) always agree on the epoch.  New meeting points are
        born knowing which ranks have already died, so a survivor
        entering a later collective fails immediately instead of
        waiting out the timeout.  Keys are namespaced per communicator
        (``comm_id:kind``), so a shrunk communicator's collectives
        never collide with abandoned pre-shrink meeting points.
        """
        if participants is None:
            participants = range(self.size)
        with self._lock:
            rv = self._rendezvous.get(key)
            if rv is None or rv._generation > 0:
                rv = _Rendezvous(
                    participants, dead=set(self._obituaries), tolerant=tolerant
                )
                self._rendezvous[key] = rv
            return rv

    def run_outcomes(
        self, fn: Callable[[SimComm], Any]
    ) -> tuple[list[Any], list[BaseException | None]]:
        """Execute ``fn(comm)`` on every rank concurrently; never raises.

        Returns ``(results, errors)``, one slot per rank: a rank that
        returned has its value in ``results``, a rank that raised has
        the exception in ``errors`` (and an obituary in
        :attr:`obituaries`).  This is the degradation-aware entry
        point: a caller pursuing shrink-and-continue recovery needs the
        per-rank outcomes, not a single fail-fast exception.
        """
        results: list[Any] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size

        def runner(rank: int) -> None:
            try:
                if self.tracer is not None:
                    with self.tracer.track(rank, name=f"rank {rank}"):
                        results[rank] = fn(SimComm(self, rank))
                else:
                    results[rank] = fn(SimComm(self, rank))
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                errors[rank] = exc
                reason = (
                    "aborted after peer failure"
                    if isinstance(exc, RankFailure)
                    else f"{type(exc).__name__}: {exc}"
                )
                self.mark_rank_dead(rank, exc, reason=reason)

        # daemon threads: a KeyboardInterrupt in the joining caller
        # must be able to take the process down instead of hanging on
        # rank threads blocked in a collective
        threads = [
            threading.Thread(
                target=runner, args=(r,), name=f"simrank-{r}", daemon=True
            )
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return results, errors

    def run(self, fn: Callable[[SimComm], Any]) -> list[Any]:
        """Execute ``fn(comm)`` on every rank concurrently.

        Exceptions in any rank are re-raised in the caller (after all
        threads finish), matching the fail-fast behaviour of an MPI
        abort.  The *root-cause* exception is preferred: if one rank
        died of a real error and the others of the induced
        :class:`RankFailure`, the real error is what propagates.
        """
        results, errors = self.run_outcomes(fn)
        root_cause = next(
            (e for e in errors if e is not None and not isinstance(e, RankFailure)),
            None,
        )
        if root_cause is not None:
            raise root_cause
        for exc in errors:
            if exc is not None:
                raise exc
        return results


def run_simulation(*args: Any, **kwargs: Any):
    """Fault-tolerant multi-rank simulation entry point.

    Thin delegate to :func:`repro.resilience.runner.run_simulation`
    (imported lazily to avoid a circular import); see that module for
    the full recovery semantics.
    """
    from repro.resilience.runner import run_simulation as _run

    return _run(*args, **kwargs)


# ---------------------------------------------------------------------------
# Domain decomposition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DomainDecomposition:
    """3-D block decomposition of the periodic box.

    The paper's 8 ranks form a 2x2x2 grid.  Each rank owns the cuboid
    ``[lo, hi)``; :meth:`exchange_overload` adds ghost copies of
    neighbouring particles within ``overload`` of the boundary.
    """

    box: float
    ranks_per_dim: tuple[int, int, int]
    overload: float

    def __post_init__(self):
        if any(r < 1 for r in self.ranks_per_dim):
            raise ValueError("ranks per dimension must be >= 1")
        widths = [self.box / r for r in self.ranks_per_dim]
        if self.overload < 0 or self.overload >= min(widths) / 2:
            raise ValueError("overload width must be in [0, half the domain width)")

    @classmethod
    def cubic(cls, box: float, n_ranks: int, overload: float) -> "DomainDecomposition":
        """Cubic decomposition for a cubic rank count (8 -> 2x2x2)."""
        per_dim = round(n_ranks ** (1.0 / 3.0))
        if per_dim**3 != n_ranks:
            raise ValueError(f"{n_ranks} ranks do not form a cubic grid")
        return cls(box=box, ranks_per_dim=(per_dim,) * 3, overload=overload)

    @property
    def n_ranks(self) -> int:
        rx, ry, rz = self.ranks_per_dim
        return rx * ry * rz

    def rank_coords(self, rank: int) -> tuple[int, int, int]:
        rx, ry, rz = self.ranks_per_dim
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return (rank // (ry * rz), (rank // rz) % ry, rank % rz)

    def bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of the rank's owned cuboid."""
        coords = self.rank_coords(rank)
        widths = np.array([self.box / r for r in self.ranks_per_dim])
        lo = np.array(coords) * widths
        return lo, lo + widths

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank for each (n, 3) position."""
        pos = np.asarray(pos, dtype=np.float64) % self.box
        rx, ry, rz = self.ranks_per_dim
        ix = np.minimum((pos[:, 0] / self.box * rx).astype(np.int64), rx - 1)
        iy = np.minimum((pos[:, 1] / self.box * ry).astype(np.int64), ry - 1)
        iz = np.minimum((pos[:, 2] / self.box * rz).astype(np.int64), rz - 1)
        return ix * ry * rz + iy * rz + iz

    def split(self, particles: ParticleData) -> list[ParticleData]:
        """Partition a global particle set into per-rank owned sets."""
        owners = self.owner_of(particles.positions)
        return [particles.select(owners == r) for r in range(self.n_ranks)]

    def _in_overload_region(self, pos: np.ndarray, rank: int) -> np.ndarray:
        """Mask of positions within ``overload`` of rank's cuboid
        (periodic), excluding positions inside the cuboid itself."""
        lo, hi = self.bounds(rank)
        pos = np.asarray(pos) % self.box
        half = 0.5 * self.box
        inside = np.ones(len(pos), dtype=bool)
        near = np.ones(len(pos), dtype=bool)
        for axis in range(3):
            x = pos[:, axis]
            centre = 0.5 * (lo[axis] + hi[axis])
            d = (x - centre + half) % self.box - half
            half_width = 0.5 * (hi[axis] - lo[axis])
            inside &= np.abs(d) < half_width
            near &= np.abs(d) < half_width + self.overload
        return near & ~inside

    def exchange_overload(self, owned: Sequence[ParticleData]) -> list[ParticleData]:
        """Ghost exchange: each rank receives copies of neighbouring
        ranks' particles inside its overload shell.

        Returns, per rank, the owned particles concatenated with their
        ghosts (ghosts keep their original ``pid``).
        """
        if len(owned) != self.n_ranks:
            raise ValueError("owned list must have one entry per rank")
        results = []
        for r in range(self.n_ranks):
            merged = owned[r]
            for s in range(self.n_ranks):
                if s == r or len(owned[s]) == 0:
                    continue
                mask = self._in_overload_region(owned[s].positions, r)
                if mask.any():
                    merged = merged.concatenated_with(owned[s].select(mask))
            results.append(merged)
        return results
