"""Simulated MPI: rank topology, decomposition, and overload exchange.

The paper's test problem runs 8 MPI ranks, one per accelerator slice
(Section 3.4.2).  Offline we cannot (and need not) run real MPI; this
module provides an mpi4py-compatible communicator façade whose ranks
run as threads inside one process, with collectives implemented as
true rendezvous operations.  Code written against :class:`SimComm`
ports to mpi4py by replacing the communicator object (the method names
follow the mpi4py convention).

It also provides HACC's 3-D block domain decomposition with "overload"
(ghost) particle exchange: each rank holds copies of neighbouring
particles within an overload shell of its boundary, which is what lets
the short-range solvers run without per-pair communication.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.hacc.particles import ParticleData


class _Rendezvous:
    """One collective-operation meeting point for ``size`` ranks."""

    def __init__(self, size: int):
        self.size = size
        self._cond = threading.Condition()
        self._values: list[Any] = [None] * size
        self._arrived = 0
        self._generation = 0

    def exchange(self, rank: int, value: Any) -> list[Any]:
        """Deposit ``value``; blocks until all ranks arrive, then every
        rank receives the full value list."""
        with self._cond:
            generation = self._generation
            self._values[rank] = value
            self._arrived += 1
            if self._arrived == self.size:
                self._arrived = 0
                self._generation += 1
                self._result = list(self._values)
                self._cond.notify_all()
            else:
                while self._generation == generation:
                    self._cond.wait()
            return self._result


class SimComm:
    """A thread-backed stand-in for ``mpi4py.MPI.COMM_WORLD``."""

    def __init__(self, world: "SimWorld", rank: int):
        self._world = world
        self._rank = rank

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    def bcast(self, obj: Any, root: int = 0) -> Any:
        values = self._world.rendezvous("bcast").exchange(self._rank, obj)
        return values[root]

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        values = self._world.rendezvous("gather").exchange(self._rank, obj)
        return values if self._rank == root else None

    def allgather(self, obj: Any) -> list[Any]:
        return self._world.rendezvous("allgather").exchange(self._rank, obj)

    def allreduce(self, value: Any, op: str = "sum") -> Any:
        values = self._world.rendezvous("allreduce").exchange(self._rank, value)
        return _reduce(values, op)

    def reduce(self, value: Any, op: str = "sum", root: int = 0) -> Any | None:
        values = self._world.rendezvous("reduce").exchange(self._rank, value)
        return _reduce(values, op) if self._rank == root else None

    def alltoall(self, sendbuf: list[Any]) -> list[Any]:
        """Each rank sends ``sendbuf[r]`` to rank r."""
        if len(sendbuf) != self._world.size:
            raise ValueError("alltoall send buffer must have one entry per rank")
        values = self._world.rendezvous("alltoall").exchange(self._rank, sendbuf)
        return [values[src][self._rank] for src in range(self._world.size)]

    def barrier(self) -> None:
        self._world.rendezvous("barrier").exchange(self._rank, None)

    # lowercase aliases (mpi4py exposes both spellings for some ops)
    Barrier = barrier


def _reduce(values: list[Any], op: str) -> Any:
    if op == "sum":
        total = values[0]
        for v in values[1:]:
            total = total + v
        return total
    if op == "min":
        return min(values)
    if op == "max":
        return max(values)
    raise ValueError(f"unsupported reduction {op!r}")


class SimWorld:
    """A simulated MPI world of ``size`` ranks (threads)."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._lock = threading.Lock()
        self._rendezvous: dict[str, _Rendezvous] = {}
        self._sequence: dict[str, int] = {}

    def rendezvous(self, kind: str) -> _Rendezvous:
        """The current meeting point for collective ``kind``.

        A fresh rendezvous is created per collective *call site epoch*;
        ranks calling collectives in the same order (required by MPI
        semantics) always agree on the epoch.
        """
        with self._lock:
            rv = self._rendezvous.get(kind)
            if rv is None or rv._generation > 0:
                rv = _Rendezvous(self.size)
                self._rendezvous[kind] = rv
            return rv

    def run(self, fn: Callable[[SimComm], Any]) -> list[Any]:
        """Execute ``fn(comm)`` on every rank concurrently.

        Exceptions in any rank are re-raised in the caller (after all
        threads finish), matching the fail-fast behaviour of an MPI
        abort.
        """
        results: list[Any] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size

        def runner(rank: int) -> None:
            try:
                results[rank] = fn(SimComm(self, rank))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc

        threads = [
            threading.Thread(target=runner, args=(r,), name=f"simrank-{r}")
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for exc in errors:
            if exc is not None:
                raise exc
        return results


# ---------------------------------------------------------------------------
# Domain decomposition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DomainDecomposition:
    """3-D block decomposition of the periodic box.

    The paper's 8 ranks form a 2x2x2 grid.  Each rank owns the cuboid
    ``[lo, hi)``; :meth:`exchange_overload` adds ghost copies of
    neighbouring particles within ``overload`` of the boundary.
    """

    box: float
    ranks_per_dim: tuple[int, int, int]
    overload: float

    def __post_init__(self):
        if any(r < 1 for r in self.ranks_per_dim):
            raise ValueError("ranks per dimension must be >= 1")
        widths = [self.box / r for r in self.ranks_per_dim]
        if self.overload < 0 or self.overload >= min(widths) / 2:
            raise ValueError("overload width must be in [0, half the domain width)")

    @classmethod
    def cubic(cls, box: float, n_ranks: int, overload: float) -> "DomainDecomposition":
        """Cubic decomposition for a cubic rank count (8 -> 2x2x2)."""
        per_dim = round(n_ranks ** (1.0 / 3.0))
        if per_dim**3 != n_ranks:
            raise ValueError(f"{n_ranks} ranks do not form a cubic grid")
        return cls(box=box, ranks_per_dim=(per_dim,) * 3, overload=overload)

    @property
    def n_ranks(self) -> int:
        rx, ry, rz = self.ranks_per_dim
        return rx * ry * rz

    def rank_coords(self, rank: int) -> tuple[int, int, int]:
        rx, ry, rz = self.ranks_per_dim
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return (rank // (ry * rz), (rank // rz) % ry, rank % rz)

    def bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of the rank's owned cuboid."""
        coords = self.rank_coords(rank)
        widths = np.array([self.box / r for r in self.ranks_per_dim])
        lo = np.array(coords) * widths
        return lo, lo + widths

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank for each (n, 3) position."""
        pos = np.asarray(pos, dtype=np.float64) % self.box
        rx, ry, rz = self.ranks_per_dim
        ix = np.minimum((pos[:, 0] / self.box * rx).astype(np.int64), rx - 1)
        iy = np.minimum((pos[:, 1] / self.box * ry).astype(np.int64), ry - 1)
        iz = np.minimum((pos[:, 2] / self.box * rz).astype(np.int64), rz - 1)
        return ix * ry * rz + iy * rz + iz

    def split(self, particles: ParticleData) -> list[ParticleData]:
        """Partition a global particle set into per-rank owned sets."""
        owners = self.owner_of(particles.positions)
        return [particles.select(owners == r) for r in range(self.n_ranks)]

    def _in_overload_region(self, pos: np.ndarray, rank: int) -> np.ndarray:
        """Mask of positions within ``overload`` of rank's cuboid
        (periodic), excluding positions inside the cuboid itself."""
        lo, hi = self.bounds(rank)
        pos = np.asarray(pos) % self.box
        half = 0.5 * self.box
        inside = np.ones(len(pos), dtype=bool)
        near = np.ones(len(pos), dtype=bool)
        for axis in range(3):
            x = pos[:, axis]
            centre = 0.5 * (lo[axis] + hi[axis])
            d = (x - centre + half) % self.box - half
            half_width = 0.5 * (hi[axis] - lo[axis])
            inside &= np.abs(d) < half_width
            near &= np.abs(d) < half_width + self.overload
        return near & ~inside

    def exchange_overload(self, owned: Sequence[ParticleData]) -> list[ParticleData]:
        """Ghost exchange: each rank receives copies of neighbouring
        ranks' particles inside its overload shell.

        Returns, per rank, the owned particles concatenated with their
        ghosts (ghosts keep their original ``pid``).
        """
        if len(owned) != self.n_ranks:
            raise ValueError("owned list must have one entry per rank")
        results = []
        for r in range(self.n_ranks):
            merged = owned[r]
            for s in range(self.n_ranks):
                if s == r or len(owned[s]) == 0:
                    continue
                mask = self._in_overload_region(owned[s].positions, r)
                if mask.any():
                    merged = merged.concatenated_with(owned[s].select(mask))
            results.append(merged)
        return results
