"""Simulated MPI: rank topology, decomposition, and overload exchange.

The paper's test problem runs 8 MPI ranks, one per accelerator slice
(Section 3.4.2).  Offline we cannot (and need not) run real MPI; this
module provides an mpi4py-compatible communicator façade whose ranks
run as threads inside one process, with collectives implemented as
true rendezvous operations.  Code written against :class:`SimComm`
ports to mpi4py by replacing the communicator object (the method names
follow the mpi4py convention).

It also provides HACC's 3-D block domain decomposition with "overload"
(ghost) particle exchange: each rank holds copies of neighbouring
particles within an overload shell of its boundary, which is what lets
the short-range solvers run without per-pair communication.

Self-healing collectives (mpi4py-compatibility notes)
-----------------------------------------------------
Production CRK-HACC campaigns survive node failures only because runs
fail loudly and restart from checkpoints; a collective that blocks
forever on a dead rank is the worst possible failure mode.  Every
:class:`SimComm` collective therefore accepts an optional ``timeout``
keyword (seconds) defaulting to the world-level
:attr:`SimWorld.timeout`.  When a peer rank dies, or the timeout
elapses before all ranks arrive, the survivors raise
:class:`RankFailure` instead of deadlocking, and the
:class:`SimWorld` supervisor records an obituary (which rank died,
and why) in :attr:`SimWorld.obituaries`.

The ``timeout`` keyword is an *extension* over mpi4py: real
``MPI.COMM_WORLD`` collectives have no timeout parameter, so code that
must stay drop-in portable should leave ``timeout`` unset (``None``
at the world level reproduces mpi4py's blocking behaviour exactly).
Under real MPI the equivalent protection comes from the ULFM
fault-tolerance extensions or from an external watchdog; the
:class:`RankFailure` exception maps onto ``MPI.ERR_PROC_FAILED``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.hacc.particles import ParticleData
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceRecorder


class RankFailure(RuntimeError):
    """A collective could not complete because a peer rank died or the
    rendezvous timed out.

    Raised on every *surviving* rank (the failed rank raises its own
    original exception), mirroring ULFM's ``MPI.ERR_PROC_FAILED``.
    """

    def __init__(self, message: str, failed_ranks: Sequence[int] = ()):
        super().__init__(message)
        self.failed_ranks = tuple(failed_ranks)


@dataclass(frozen=True)
class RankObituary:
    """Supervisor record of one rank's death."""

    rank: int
    reason: str
    exception: BaseException


class _Rendezvous:
    """One collective-operation meeting point for ``size`` ranks."""

    def __init__(self, size: int, dead: set[int] | None = None):
        self.size = size
        self._cond = threading.Condition()
        self._values: list[Any] = [None] * size
        self._arrived = 0
        self._generation = 0
        # initialised eagerly: a wakeup before the first completed
        # generation must never read an undefined attribute
        self._result: list[Any] | None = None
        self._dead: set[int] = set(dead or ())

    def mark_dead(self, rank: int) -> None:
        """Record a dead rank and wake every waiter so it can fail."""
        with self._cond:
            self._dead.add(rank)
            self._cond.notify_all()

    def _fail(self, timed_out: float | None = None) -> RankFailure:
        if self._dead:
            detail = f"rank(s) {sorted(self._dead)} died"
        else:
            detail = f"timed out after {timed_out:.1f}s"
        return RankFailure(
            f"collective aborted: {detail}", failed_ranks=sorted(self._dead)
        )

    def exchange(self, rank: int, value: Any, timeout: float | None = None) -> list[Any]:
        """Deposit ``value``; blocks until all ranks arrive, then every
        rank receives the full value list.

        Raises :class:`RankFailure` if a participating rank has been
        marked dead, or if ``timeout`` (seconds) elapses first.
        """
        with self._cond:
            if self._dead:
                raise self._fail()
            generation = self._generation
            self._values[rank] = value
            self._arrived += 1
            if self._arrived == self.size:
                self._arrived = 0
                self._generation += 1
                self._result = list(self._values)
                self._cond.notify_all()
            else:
                deadline = None if timeout is None else time.monotonic() + timeout
                # predicate guards against spurious wakeups: only a
                # completed generation (or a death/timeout) ends the wait
                while self._generation == generation and not self._dead:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise self._fail(timed_out=timeout)
                    self._cond.wait(remaining)
                if self._generation == generation:
                    raise self._fail(timed_out=timeout)
            return self._result


class SimComm:
    """A thread-backed stand-in for ``mpi4py.MPI.COMM_WORLD``.

    All collectives take an optional ``timeout`` keyword (see module
    docstring) defaulting to the world-level setting.
    """

    def __init__(self, world: "SimWorld", rank: int):
        self._world = world
        self._rank = rank

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._world.size

    def _exchange(self, kind: str, value: Any, timeout: float | None) -> list[Any]:
        if timeout is None:
            timeout = self._world.timeout
        self._world.pre_collective(kind, self._rank)
        tracer = self._world.tracer
        metrics = self._world.metrics
        begin = time.monotonic()
        try:
            result = self._world.rendezvous(kind).exchange(
                self._rank, value, timeout
            )
        except RankFailure as exc:
            if tracer is not None:
                tracer.instant(
                    f"collective-failed:{kind}",
                    category="mpi",
                    rank=self._rank,
                    failed_ranks=list(exc.failed_ranks),
                )
            raise
        finally:
            elapsed = time.monotonic() - begin
            if metrics is not None:
                metrics.counter("mpi.collective.calls").inc()
                metrics.counter("mpi.collective.seconds").inc(elapsed)
            if tracer is not None:
                end = tracer.now()
                tracer.add_span(
                    kind,
                    begin=max(0.0, end - elapsed),
                    end=end,
                    category="mpi",
                    args={"rank": self._rank},
                )
        return result

    def bcast(self, obj: Any, root: int = 0, timeout: float | None = None) -> Any:
        return self._exchange("bcast", obj, timeout)[root]

    def gather(
        self, obj: Any, root: int = 0, timeout: float | None = None
    ) -> list[Any] | None:
        values = self._exchange("gather", obj, timeout)
        return values if self._rank == root else None

    def allgather(self, obj: Any, timeout: float | None = None) -> list[Any]:
        return self._exchange("allgather", obj, timeout)

    def allreduce(self, value: Any, op: str = "sum", timeout: float | None = None) -> Any:
        return _reduce(self._exchange("allreduce", value, timeout), op)

    def reduce(
        self, value: Any, op: str = "sum", root: int = 0, timeout: float | None = None
    ) -> Any | None:
        values = self._exchange("reduce", value, timeout)
        return _reduce(values, op) if self._rank == root else None

    def alltoall(self, sendbuf: list[Any], timeout: float | None = None) -> list[Any]:
        """Each rank sends ``sendbuf[r]`` to rank r."""
        if len(sendbuf) != self._world.size:
            raise ValueError("alltoall send buffer must have one entry per rank")
        values = self._exchange("alltoall", sendbuf, timeout)
        return [values[src][self._rank] for src in range(self._world.size)]

    def barrier(self, timeout: float | None = None) -> None:
        self._exchange("barrier", None, timeout)

    # lowercase aliases (mpi4py exposes both spellings for some ops)
    Barrier = barrier


def _reduce(values: list[Any], op: str) -> Any:
    if op == "sum":
        total = values[0]
        for v in values[1:]:
            total = total + v
        return total
    if op == "min":
        return min(values)
    if op == "max":
        return max(values)
    raise ValueError(f"unsupported reduction {op!r}")


class SimWorld:
    """A simulated MPI world of ``size`` ranks (threads).

    ``timeout`` is the default collective timeout in seconds (``None``
    keeps mpi4py's indefinitely-blocking behaviour).  The world acts as
    a supervisor: a rank thread that dies is recorded in
    :attr:`obituaries` and every in-flight or future collective on the
    surviving ranks raises :class:`RankFailure`.
    """

    def __init__(
        self,
        size: int,
        timeout: float | None = None,
        *,
        tracer: TraceRecorder | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        if size < 1:
            raise ValueError("world size must be >= 1")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.size = size
        self.timeout = timeout
        self._lock = threading.Lock()
        self._rendezvous: dict[str, _Rendezvous] = {}
        self._sequence: dict[str, int] = {}
        self._obituaries: dict[int, RankObituary] = {}
        #: hook called before each collective (kind, rank); the fault
        #: injector uses it to stall a collective past its timeout
        self.pre_collective_hook: Callable[[str, int], None] | None = None
        #: observability sinks: when set, rank threads run on per-rank
        #: trace tracks (pid = rank), collectives become spans, and
        #: rank deaths become instant events — every rank's events
        #: merge into the one shared timeline
        self.tracer = tracer
        self.metrics = metrics

    # -- supervisor ----------------------------------------------------
    @property
    def obituaries(self) -> dict[int, RankObituary]:
        """Which ranks died, and why (rank -> obituary)."""
        with self._lock:
            return dict(self._obituaries)

    @property
    def dead_ranks(self) -> set[int]:
        with self._lock:
            return set(self._obituaries)

    def mark_rank_dead(self, rank: int, exc: BaseException, reason: str = "") -> None:
        """Record a rank's death and wake all blocked collectives."""
        with self._lock:
            if rank in self._obituaries:
                return
            self._obituaries[rank] = RankObituary(
                rank=rank, reason=reason or f"{type(exc).__name__}: {exc}", exception=exc
            )
            points = list(self._rendezvous.values())
        if self.tracer is not None:
            self.tracer.instant(
                "rank-death",
                category="resilience",
                pid=rank,
                rank=rank,
                reason=reason or f"{type(exc).__name__}: {exc}",
            )
        if self.metrics is not None:
            self.metrics.counter("resilience.rank_failures").inc()
        for rv in points:
            rv.mark_dead(rank)

    def pre_collective(self, kind: str, rank: int) -> None:
        hook = self.pre_collective_hook
        if hook is not None:
            hook(kind, rank)

    def rendezvous(self, kind: str) -> _Rendezvous:
        """The current meeting point for collective ``kind``.

        A fresh rendezvous is created per collective *call site epoch*;
        ranks calling collectives in the same order (required by MPI
        semantics) always agree on the epoch.  New meeting points are
        born knowing which ranks have already died, so a survivor
        entering a later collective fails immediately instead of
        waiting out the timeout.
        """
        with self._lock:
            rv = self._rendezvous.get(kind)
            if rv is None or rv._generation > 0:
                rv = _Rendezvous(self.size, dead=set(self._obituaries))
                self._rendezvous[kind] = rv
            return rv

    def run(self, fn: Callable[[SimComm], Any]) -> list[Any]:
        """Execute ``fn(comm)`` on every rank concurrently.

        Exceptions in any rank are re-raised in the caller (after all
        threads finish), matching the fail-fast behaviour of an MPI
        abort.  The *root-cause* exception is preferred: if one rank
        died of a real error and the others of the induced
        :class:`RankFailure`, the real error is what propagates.
        """
        results: list[Any] = [None] * self.size
        errors: list[BaseException | None] = [None] * self.size

        def runner(rank: int) -> None:
            try:
                if self.tracer is not None:
                    with self.tracer.track(rank, name=f"rank {rank}"):
                        results[rank] = fn(SimComm(self, rank))
                else:
                    results[rank] = fn(SimComm(self, rank))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                errors[rank] = exc
                reason = (
                    "aborted after peer failure"
                    if isinstance(exc, RankFailure)
                    else f"{type(exc).__name__}: {exc}"
                )
                self.mark_rank_dead(rank, exc, reason=reason)

        # daemon threads: a KeyboardInterrupt in the joining caller
        # must be able to take the process down instead of hanging on
        # rank threads blocked in a collective
        threads = [
            threading.Thread(
                target=runner, args=(r,), name=f"simrank-{r}", daemon=True
            )
            for r in range(self.size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        root_cause = next(
            (e for e in errors if e is not None and not isinstance(e, RankFailure)),
            None,
        )
        if root_cause is not None:
            raise root_cause
        for exc in errors:
            if exc is not None:
                raise exc
        return results


def run_simulation(*args: Any, **kwargs: Any):
    """Fault-tolerant multi-rank simulation entry point.

    Thin delegate to :func:`repro.resilience.runner.run_simulation`
    (imported lazily to avoid a circular import); see that module for
    the full recovery semantics.
    """
    from repro.resilience.runner import run_simulation as _run

    return _run(*args, **kwargs)


# ---------------------------------------------------------------------------
# Domain decomposition
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DomainDecomposition:
    """3-D block decomposition of the periodic box.

    The paper's 8 ranks form a 2x2x2 grid.  Each rank owns the cuboid
    ``[lo, hi)``; :meth:`exchange_overload` adds ghost copies of
    neighbouring particles within ``overload`` of the boundary.
    """

    box: float
    ranks_per_dim: tuple[int, int, int]
    overload: float

    def __post_init__(self):
        if any(r < 1 for r in self.ranks_per_dim):
            raise ValueError("ranks per dimension must be >= 1")
        widths = [self.box / r for r in self.ranks_per_dim]
        if self.overload < 0 or self.overload >= min(widths) / 2:
            raise ValueError("overload width must be in [0, half the domain width)")

    @classmethod
    def cubic(cls, box: float, n_ranks: int, overload: float) -> "DomainDecomposition":
        """Cubic decomposition for a cubic rank count (8 -> 2x2x2)."""
        per_dim = round(n_ranks ** (1.0 / 3.0))
        if per_dim**3 != n_ranks:
            raise ValueError(f"{n_ranks} ranks do not form a cubic grid")
        return cls(box=box, ranks_per_dim=(per_dim,) * 3, overload=overload)

    @property
    def n_ranks(self) -> int:
        rx, ry, rz = self.ranks_per_dim
        return rx * ry * rz

    def rank_coords(self, rank: int) -> tuple[int, int, int]:
        rx, ry, rz = self.ranks_per_dim
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return (rank // (ry * rz), (rank // rz) % ry, rank % rz)

    def bounds(self, rank: int) -> tuple[np.ndarray, np.ndarray]:
        """(lo, hi) corners of the rank's owned cuboid."""
        coords = self.rank_coords(rank)
        widths = np.array([self.box / r for r in self.ranks_per_dim])
        lo = np.array(coords) * widths
        return lo, lo + widths

    def owner_of(self, pos: np.ndarray) -> np.ndarray:
        """Owning rank for each (n, 3) position."""
        pos = np.asarray(pos, dtype=np.float64) % self.box
        rx, ry, rz = self.ranks_per_dim
        ix = np.minimum((pos[:, 0] / self.box * rx).astype(np.int64), rx - 1)
        iy = np.minimum((pos[:, 1] / self.box * ry).astype(np.int64), ry - 1)
        iz = np.minimum((pos[:, 2] / self.box * rz).astype(np.int64), rz - 1)
        return ix * ry * rz + iy * rz + iz

    def split(self, particles: ParticleData) -> list[ParticleData]:
        """Partition a global particle set into per-rank owned sets."""
        owners = self.owner_of(particles.positions)
        return [particles.select(owners == r) for r in range(self.n_ranks)]

    def _in_overload_region(self, pos: np.ndarray, rank: int) -> np.ndarray:
        """Mask of positions within ``overload`` of rank's cuboid
        (periodic), excluding positions inside the cuboid itself."""
        lo, hi = self.bounds(rank)
        pos = np.asarray(pos) % self.box
        half = 0.5 * self.box
        inside = np.ones(len(pos), dtype=bool)
        near = np.ones(len(pos), dtype=bool)
        for axis in range(3):
            x = pos[:, axis]
            centre = 0.5 * (lo[axis] + hi[axis])
            d = (x - centre + half) % self.box - half
            half_width = 0.5 * (hi[axis] - lo[axis])
            inside &= np.abs(d) < half_width
            near &= np.abs(d) < half_width + self.overload
        return near & ~inside

    def exchange_overload(self, owned: Sequence[ParticleData]) -> list[ParticleData]:
        """Ghost exchange: each rank receives copies of neighbouring
        ranks' particles inside its overload shell.

        Returns, per rank, the owned particles concatenated with their
        ghosts (ghosts keep their original ``pid``).
        """
        if len(owned) != self.n_ranks:
            raise ValueError("owned list must have one entry per rank")
        results = []
        for r in range(self.n_ranks):
            merged = owned[r]
            for s in range(self.n_ranks):
                if s == r or len(owned[s]) == 0:
                    continue
                mask = self._in_overload_region(owned[s].positions, r)
                if mask.any():
                    merged = merged.concatenated_with(owned[s].select(mask))
            results.append(merged)
        return results
