"""Zel'dovich initial conditions.

HACC starts its simulations from first-order Lagrangian perturbation
theory (Zel'dovich) displacements of a regular grid.  We generate a
Gaussian random density field with the linear P(k) at the starting
redshift, convert it to a displacement field in Fourier space
(``psi_k = i k delta_k / k^2``), and displace two interleaved particle
grids: dark matter on cell centres and baryons offset by half a cell,
mirroring CRK-HACC's "2x" particle counts (Section 3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hacc.cosmology import Cosmology
from repro.hacc.mesh import fourier_grid
from repro.hacc.particles import ParticleData, Species
from repro.hacc.power import PowerSpectrum
from repro.hacc.units import GAMMA_ADIABATIC, SPH_ETA, particle_mass


@dataclass(frozen=True)
class ICConfig:
    """Initial-condition parameters for the mini-app test problem."""

    n_per_side: int = 16
    box: float = 177.0 * 16 / 512  # paper box scaled to grid (same mass res.)
    z_initial: float = 200.0
    seed: int = 2023
    #: initial baryon internal energy (code units); small and uniform,
    #: the adiabatic early universe is cold
    u_initial: float = 1.0e-4
    #: Lagrangian perturbation order: 1 = Zel'dovich, 2 = 2LPT.  The
    #: second-order displacement removes the transients Zel'dovich
    #: starts leave behind; at z = 200 it is a small correction, which
    #: the tests verify.
    lpt_order: int = 1

    def __post_init__(self):
        if self.n_per_side < 2:
            raise ValueError("need at least 2 particles per side")
        if self.box <= 0:
            raise ValueError("box must be positive")
        if self.lpt_order not in (1, 2):
            raise ValueError("lpt_order must be 1 or 2")

    def content_hash(self) -> str:
        """Canonical content key of the particle load this config
        generates (the service caches generated ICs under it)."""
        from repro.core.confighash import config_hash

        return config_hash(self)


def _zero_nyquist(field_k: np.ndarray, n: int) -> np.ndarray:
    """Zero the Nyquist planes of an rfft-layout field (in place).

    The Nyquist modes of a real FFT cannot represent the phase of
    ``i k X`` faithfully (they are constrained to be real), which would
    leave spurious curl in gradient fields; standard IC generators drop
    them.
    """
    if n % 2 == 0:
        half = n // 2
        field_k[half, :, :] = 0.0
        field_k[:, half, :] = 0.0
        field_k[:, :, -1] = 0.0
    return field_k


def displacement_field(
    config: ICConfig, cosmology: Cosmology, power: PowerSpectrum
) -> tuple[np.ndarray, np.ndarray]:
    """Zel'dovich displacement and velocity fields on the IC grid.

    Returns ``(psi, vel)`` with shape (n, n, n, 3): the comoving
    displacement and the comoving peculiar velocity fields at
    ``z_initial``.
    """
    n = config.n_per_side
    box = config.box
    rng = np.random.default_rng(config.seed)
    a = float(cosmology.a_of_z(config.z_initial))
    d = cosmology.growth_factor(a)
    f = cosmology.growth_rate(a)

    # White noise -> delta_k with the linear power at z_initial.
    noise = rng.standard_normal((n, n, n))
    delta_k = np.fft.rfftn(noise)
    kx, ky, kz, k2 = fourier_grid(n, box)
    k = np.sqrt(k2)
    pk = power(k.ravel()).reshape(k.shape) * d**2
    volume = box**3
    # Convention: <|delta_k|^2> = P(k) * N^2 / V for numpy's FFT scaling.
    amplitude = np.sqrt(pk * n**6 / volume) / n**1.5
    delta_k *= amplitude
    delta_k[0, 0, 0] = 0.0
    _zero_nyquist(delta_k, n)

    k2_safe = np.where(k2 == 0.0, 1.0, k2)
    psi = np.empty((n, n, n, 3))
    for axis, kcomp in enumerate((kx, ky, kz)):
        psi_k = 1j * kcomp / k2_safe * delta_k
        psi[..., axis] = np.fft.irfftn(psi_k, s=(n, n, n), axes=(0, 1, 2))

    # Zel'dovich velocities in the canonical-momentum convention the
    # KDK stepper integrates (p = a^2 dx/dt, the GADGET convention that
    # pairs with kick = int dt/a and drift = int dt/a^2):
    # dx/dt = H f psi  ->  p = a^2 H f psi.
    vel = psi * (a * a * f * cosmology.H(a))
    return psi, vel


def second_order_displacement(
    psi1: np.ndarray, box: float
) -> np.ndarray:
    """2LPT displacement from a first-order displacement field.

    With ``phi`` the first-order potential (``psi1 = -grad phi``), the
    second-order source is

        S = sum_{i<j} (phi_,ii phi_,jj - phi_,ij^2)

    and the displacement solves ``psi2 = (3/7) grad (laplace^-1 S)``
    for an Einstein-de Sitter background (the standard approximation;
    the 3/7 factor is folded in here so callers simply add
    ``psi1 + psi2``).  A single plane wave has S = 0 identically --
    the property the tests pin.
    """
    n = psi1.shape[0]
    if psi1.shape != (n, n, n, 3):
        raise ValueError("psi1 must be (n, n, n, 3)")
    kx, ky, kz, k2 = fourier_grid(n, box)
    k2_safe = np.where(k2 == 0.0, 1.0, k2)
    kvec = (kx, ky, kz)

    # phi_k from psi1: psi1_k = -i k phi_k  ->  phi_k = div(psi1)_k / k^2
    div_k = np.zeros(np.fft.rfftn(psi1[..., 0]).shape, dtype=complex)
    for axis in range(3):
        div_k += 1j * kvec[axis] * np.fft.rfftn(psi1[..., axis])
    phi_k = -div_k / k2_safe
    phi_k = np.where(k2 == 0.0, 0.0, phi_k)

    # second derivatives phi_,ij
    def phi_ij(i: int, j: int) -> np.ndarray:
        return np.fft.irfftn(
            -kvec[i] * kvec[j] * phi_k, s=(n, n, n), axes=(0, 1, 2)
        )

    source = np.zeros((n, n, n))
    for i in range(3):
        for j in range(i + 1, 3):
            source += phi_ij(i, i) * phi_ij(j, j) - phi_ij(i, j) ** 2

    source_k = np.fft.rfftn(source)
    _zero_nyquist(source_k, n)
    psi2 = np.empty_like(psi1)
    for axis in range(3):
        psi2_k = 1j * kvec[axis] / k2_safe * source_k
        psi2_k = np.where(k2 == 0.0, 0.0, psi2_k)
        psi2[..., axis] = (3.0 / 7.0) * np.fft.irfftn(
            psi2_k, s=(n, n, n), axes=(0, 1, 2)
        )
    return psi2


def _lattice(n: int, box: float, offset: float) -> np.ndarray:
    """Regular (n^3, 3) lattice with the given half-cell offset."""
    cell = box / n
    coords = (np.arange(n) + offset) * cell
    gx, gy, gz = np.meshgrid(coords, coords, coords, indexing="ij")
    return np.column_stack([gx.ravel(), gy.ravel(), gz.ravel()])


def zeldovich_ics(
    config: ICConfig | None = None,
    cosmology: Cosmology | None = None,
    power: PowerSpectrum | None = None,
) -> ParticleData:
    """Generate the 2x n^3 dark-matter + baryon particle load."""
    config = config or ICConfig()
    cosmology = cosmology or Cosmology()
    power = power or PowerSpectrum(cosmology)

    n = config.n_per_side
    box = config.box
    psi, vel = displacement_field(config, cosmology, power)
    if config.lpt_order == 2:
        a = float(cosmology.a_of_z(config.z_initial))
        f1 = cosmology.growth_rate(a)
        psi2 = second_order_displacement(psi, box)
        psi = psi + psi2
        # second-order velocities: f2 ~ 2 f1 in matter domination
        vel = vel + psi2 * (a * a * 2.0 * f1 * cosmology.H(a))
    psi_flat = psi.reshape(-1, 3)
    vel_flat = vel.reshape(-1, 3)

    n3 = n**3
    data = ParticleData.allocate(2 * n3, box)

    # Dark matter on cell centres, baryons offset by half a cell; both
    # sample the same displacement field (adequate at z=200, where the
    # species have not yet decoupled dynamically).
    dm_pos = _lattice(n, box, 0.25) + psi_flat
    ba_pos = _lattice(n, box, 0.75) + psi_flat

    pos = np.vstack([dm_pos, ba_pos]) % box
    velocity = np.vstack([vel_flat, vel_flat])
    data.set_positions(pos)
    data.set_velocities(velocity)

    data.arrays["species"][:n3] = int(Species.DARK_MATTER)
    data.arrays["species"][n3:] = int(Species.BARYON)
    data.arrays["mass"][:n3] = particle_mass(box, n, cosmology.omega_cdm)
    data.arrays["mass"][n3:] = particle_mass(box, n, cosmology.omega_b)

    # Baryon thermodynamic state: cold uniform gas.
    baryons = data.species_mask(Species.BARYON)
    cell = box / n
    mean_rho = data.arrays["mass"][n3] / cell**3
    data.arrays["u"][baryons] = config.u_initial
    data.arrays["rho"][baryons] = mean_rho
    data.arrays["volume"][baryons] = cell**3
    data.arrays["hsml"][baryons] = SPH_ETA * cell
    data.arrays["pressure"][baryons] = (
        (GAMMA_ADIABATIC - 1.0) * mean_rho * config.u_initial
    )
    data.arrays["cs"][baryons] = np.sqrt(
        GAMMA_ADIABATIC * (GAMMA_ADIABATIC - 1.0) * config.u_initial
    )
    data.validate()
    return data
