"""Neighbour finding on a periodic box.

The SPH kernels and the short-range gravity both need
"all pairs closer than a cutoff".  We use a uniform cell list sized to
the cutoff, fully vectorised: particles are binned, the 27 neighbouring
cells are scanned with array operations, and the result is either a
flat (i, j) pair list or a CSR neighbour structure.

This plays the role of CRK-HACC's interaction-list construction; the
pair counts it produces also feed the instruction profiles of the GPU
kernel cost model (interactions per work-item).

The decomposition itself is reusable: a :class:`CellList` owns the
bin-and-sort of one position set and can answer many queries (different
cutoffs, different i-sides, subsets), and a :class:`CellListCache`
keeps one alive across kernel calls with a Verlet-skin rebuild
criterion -- the binning stays valid while no particle has moved more
than half the skin since it was built, exactly CRK-HACC's
build-once-per-step interaction-list reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro import xp


@dataclass(frozen=True)
class NeighborList:
    """CSR neighbour structure: ``indices[start[i]:start[i+1]]`` are the
    neighbours of particle ``i`` (self excluded)."""

    start: np.ndarray
    indices: np.ndarray

    @property
    def n_particles(self) -> int:
        return len(self.start) - 1

    @property
    def n_pairs(self) -> int:
        """Directed neighbour count (each undirected pair counted twice)."""
        return len(self.indices)

    def counts(self) -> np.ndarray:
        return np.diff(self.start)

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.indices[self.start[i] : self.start[i + 1]]


def _cell_index(pos: np.ndarray, box: float, n_cells: int) -> np.ndarray:
    cell = xp.floor((pos % box) / (box / n_cells)).astype(np.int64)
    return xp.clip(cell, 0, n_cells - 1)


@lru_cache(maxsize=None)
def _stencil(reach: int, half: bool) -> np.ndarray:
    """The ``(2*reach + 1)**3`` cell stencil, in fixed offset-major
    order (dx outermost, dz innermost).

    ``reach`` > 1 lets a finely-binned cell list answer a cutoff larger
    than one cell edge, so one decomposition serves queries at several
    scales.  With ``half`` the self cell comes first followed by the
    lexicographically-positive offsets only: on a *fresh* binning each
    unordered pair of distinct cells is then scanned exactly once (the
    self cell is deduplicated by the i < j filter), halving candidate
    work.  The half stencil is unsafe on a stale Verlet-skin binning,
    where drift across cell boundaries can push both query directions
    into the negative half.
    """
    axis = range(-reach, reach + 1)
    if half:
        offsets = [(0, 0, 0)] + [
            (dx, dy, dz)
            for dx in axis
            for dy in axis
            for dz in axis
            if (dx, dy, dz) > (0, 0, 0)
        ]
    else:
        offsets = [(dx, dy, dz) for dx in axis for dy in axis for dz in axis]
    return np.array(offsets, dtype=np.int64)


@dataclass
class CellList:
    """Reusable uniform cell decomposition of one position set.

    The bin + stable sort is done once at :meth:`build`; every query
    (:meth:`pairs_within`, :meth:`cross_pairs`) is then a pure gather
    over the sorted structure with no Python-level per-particle loops.

    ``ref_pos`` is the snapshot the binning was computed from;
    ``pos`` are the *current* positions of the same particles (distances
    are always evaluated against ``pos``).  The binning stays a valid
    superset search structure for a query cutoff ``c`` as long as
    ``c + skin <= cell_size`` and no particle has drifted more than
    ``skin / 2`` from its reference position -- the classic Verlet-skin
    argument.
    """

    box: float
    cutoff: float  # cutoff the list was built for
    skin: float
    n_cells: int
    cell_size: float
    ref_pos: np.ndarray
    pos: np.ndarray
    order: np.ndarray | None = field(default=None, repr=False)
    boundaries: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def build(
        cls, pos: np.ndarray, box: float, cutoff: float, *, skin: float = 0.0
    ) -> "CellList":
        pos = np.asarray(pos, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if skin < 0:
            raise ValueError("skin must be non-negative")
        n_cells = max(1, int(np.floor(box / (cutoff + skin))))
        cell_size = box / n_cells
        order = boundaries = None
        # with fewer than 3 cells per side the 27-stencil would double
        # count periodic images; queries fall back to brute force
        if n_cells >= 3 and len(pos):
            cells = _cell_index(pos, box, n_cells)
            flat = (cells[:, 0] * n_cells + cells[:, 1]) * n_cells + cells[:, 2]
            order = xp.argsort(flat)
            boundaries = xp.searchsorted(flat[order], xp.arange(n_cells**3 + 1))
        return cls(
            box=box,
            cutoff=float(cutoff),
            skin=float(skin),
            n_cells=n_cells,
            cell_size=cell_size,
            ref_pos=pos,
            pos=pos,
            order=order,
            boundaries=boundaries,
        )

    # ------------------------------------------------------------------
    @property
    def n_particles(self) -> int:
        return len(self.ref_pos)

    @property
    def use_cells(self) -> bool:
        """Whether the stencil search is active (vs brute force)."""
        return self.order is not None

    def reach(self, cutoff: float) -> int:
        """Stencil half-width (in cells) covering ``cutoff`` plus drift.

        A pair within ``cutoff`` whose endpoints have each drifted at
        most ``skin / 2`` was separated by less than ``cutoff + skin``
        at build time, so its cells differ by at most
        ``ceil((cutoff + skin) / cell_size)`` per axis.
        """
        ratio = (cutoff + self.skin) / self.cell_size
        return max(1, int(np.ceil(ratio * (1.0 - 1e-12))))

    def supports(self, cutoff: float) -> bool:
        """Whether a query with this cutoff is exact on this binning.

        Cutoffs larger than one cell edge are answered with a wider
        ``(2k + 1)**3`` stencil; the binning supports the query as long
        as that stencil's cells are distinct under the periodic wrap
        (``2k + 1 <= n_cells``).  In the brute-force regime there is no
        binning to invalidate.
        """
        if not self.use_cells:
            return True
        return 2 * self.reach(cutoff) + 1 <= self.n_cells

    def update_positions(self, pos: np.ndarray) -> None:
        """Point the list at the particles' current positions.

        The binning is *not* recomputed; callers pair this with
        :meth:`is_current` (or a :class:`CellListCache`) to decide when
        a rebuild is due.
        """
        pos = np.asarray(pos, dtype=np.float64)
        if pos.shape != self.ref_pos.shape:
            raise ValueError(
                f"position set shape {pos.shape} does not match the "
                f"cell list's {self.ref_pos.shape}"
            )
        self.pos = pos

    def max_displacement(self) -> float:
        """Largest minimum-image drift of ``pos`` from ``ref_pos``."""
        if self.pos is self.ref_pos or not len(self.ref_pos):
            return 0.0
        half = 0.5 * self.box
        d = (self.pos - self.ref_pos + half) % self.box - half
        return float(np.sqrt(xp.max(xp.rowwise_dot(d, d))))

    def is_current(self) -> bool:
        """Verlet-skin criterion: binning still covers every true pair."""
        if not self.use_cells:
            return True  # brute force never consults the binning
        return self.max_displacement() <= 0.5 * self.skin

    # ------------------------------------------------------------------
    def _stencil_candidates(
        self, pos_query: np.ndarray, stencil: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """(query index, member index, count from the stencil's first
        offset) candidate pairs, fully vectorised (cumsum-based ragged
        gather, no Python-level per-particle loops)."""
        n_q = len(pos_query)
        empty = np.array([], dtype=np.int64)
        if n_q == 0:
            return empty, empty, 0
        cells_q = _cell_index(pos_query, self.box, self.n_cells)
        ncell = (cells_q[None, :, :] + stencil[:, None, :]) % self.n_cells
        nflat = (
            (ncell[..., 0] * self.n_cells + ncell[..., 1]) * self.n_cells
            + ncell[..., 2]
        ).ravel()
        starts = self.boundaries[nflat]
        counts = self.boundaries[nflat + 1] - starts
        total = int(xp.sum(counts))
        n_first = int(xp.sum(counts[:n_q]))
        if total == 0:
            return empty, empty, 0
        rep = xp.repeat(xp.tile(xp.arange(n_q), len(stencil)), counts)
        # ragged ranges 0..counts[k] for every bucket, without a Python
        # loop: a global arange minus each element's bucket offset
        shifts = xp.cumsum(counts) - counts
        within = xp.arange(total, dtype=np.int64) - xp.repeat(shifts, counts)
        cand = self.order[xp.repeat(starts, counts) + within]
        return rep, cand, n_first

    def pairs_within(
        self, cutoff: float, *, subset: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All directed pairs (i, j), i != j, within ``cutoff`` among the
        member particles (or among ``subset`` of them, with indices
        local to the subset).

        The cutoff decision is made once per unordered pair in the
        canonical direction and mirrored, so the directed list is
        exactly symmetric (see :func:`find_pairs`).
        """
        empty = np.array([], dtype=np.int64)
        if subset is not None:
            subset = np.asarray(subset, dtype=np.int64)
        if not self.use_cells:
            p = self.pos if subset is None else self.pos[subset]
            return _find_pairs_bruteforce(p, p, self.box, cutoff, True)
        pos_q = self.pos if subset is None else self.pos[subset]
        # a fresh binning admits the half stencil (each unordered pair
        # of cells scanned once); a stale Verlet-skin binning needs the
        # full stencil plus the i < j dedup
        fresh = self.pos is self.ref_pos
        stencil = _stencil(self.reach(cutoff), fresh)
        rep, cand, n_self = self._stencil_candidates(pos_q, stencil)
        if len(rep) == 0:
            return empty, empty
        if subset is None:
            gi, gj = rep, cand
            local_j = cand
        else:
            local = xp.full(self.n_particles, -1, dtype=np.int64)
            local[subset] = xp.arange(len(subset))
            keep = local[cand] >= 0
            if fresh:
                n_self = int(xp.count_nonzero(keep[:n_self]))
            rep, cand = rep[keep], cand[keep]
            gi = subset[rep]
            gj = cand
            local_j = local[cand]
        half = 0.5 * self.box
        d = self.pos[gi] - self.pos[gj]
        d = (d + half) % self.box - half
        r2 = xp.rowwise_dot(d, d)
        mask = r2 < cutoff * cutoff
        if fresh:
            # cross-cell candidates already appear once per unordered
            # pair; only the self cell (first stencil offset) needs the
            # index dedup
            mask[:n_self] &= gi[:n_self] < gj[:n_self]
        else:
            mask &= gi < gj
        i_loc = rep[mask]
        j_loc = local_j[mask]
        return (
            xp.concatenate([i_loc, j_loc]),
            xp.concatenate([j_loc, i_loc]),
        )

    def cross_pairs(
        self, pos_query: np.ndarray, cutoff: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Directed cross pairs from ``pos_query`` (i) to the member set
        (j) within ``cutoff``, excluding exact coincidences (r = 0): a
        query particle coinciding with a member (e.g. a particle and
        its own ghost copy) would otherwise divide by zero in every
        gather-style kernel downstream.
        """
        pos_query = np.asarray(pos_query, dtype=np.float64)
        if not self.use_cells:
            return _find_pairs_bruteforce(
                pos_query, self.pos, self.box, cutoff, False
            )
        rep, cand, _n_self = self._stencil_candidates(
            pos_query, _stencil(self.reach(cutoff), False)
        )
        if len(rep) == 0:
            return rep, cand
        half = 0.5 * self.box
        d = pos_query[rep] - self.pos[cand]
        d = (d + half) % self.box - half
        r2 = xp.rowwise_dot(d, d)
        mask = (r2 < cutoff * cutoff) & (r2 > 0.0)
        return rep[mask], cand[mask]


class CellListCache:
    """Step-level :class:`CellList` cache with Verlet-skin reuse.

    ``get(pos, cutoff)`` returns a cell list valid for the query: a
    cached one (positions updated in place) while it still covers the
    cutoff and no particle has drifted more than half the skin since
    the binning was built; a fresh build otherwise.  A binning answers
    cutoffs larger than its cell edge through wider stencils
    (:meth:`CellList.reach`), so the SPH and short-range gravity
    queries of one step normally share one decomposition.  When the
    box is too small for one binning to serve both scales well, the
    cache keeps up to two resolution tiers instead of thrashing.

    ``builds`` / ``hits`` count rebuilds and reuses; when ``metrics``
    is set they are mirrored to the ``sim.pairs.cell_list.builds`` /
    ``sim.pairs.cell_list.hits`` counters.
    """

    #: resolution tiers kept alive at once
    MAX_LISTS = 2
    #: reuse a binning only while its cells are within this factor of
    #: the query's optimal cell size (candidate volume grows cubically)
    MAX_COARSENESS = 2.0
    #: ... and while the stencil stays this narrow: a much finer
    #: binning covers a large cutoff only through a huge bucket count
    MAX_REACH = 3

    def __init__(
        self,
        box: float,
        *,
        skin_fraction: float = 0.1,
        metrics=None,
        enabled: bool = True,
    ):
        if skin_fraction < 0:
            raise ValueError("skin fraction must be non-negative")
        self.box = box
        self.skin_fraction = skin_fraction
        self.metrics = metrics
        self.enabled = enabled
        self.builds = 0
        self.hits = 0
        self._lists: list[CellList] = []

    def _suitable(self, cached: CellList, cutoff: float, n: int) -> bool:
        if cached.n_particles != n or not cached.supports(cutoff):
            return False
        target = cutoff * (1.0 + self.skin_fraction)
        can_bin = int(np.floor(self.box / target)) >= 3
        if not cached.use_cells:
            # a brute-force list only stands in when brute force is the
            # best this cutoff could get anyway
            return not can_bin
        well_matched = (
            cached.cell_size <= self.MAX_COARSENESS * target
            and cached.reach(cutoff) <= self.MAX_REACH
        )
        return well_matched or not can_bin

    @staticmethod
    def _same_tier(a: CellList, b: CellList) -> bool:
        if not a.use_cells or not b.use_cells:
            return a.use_cells == b.use_cells
        ratio = a.cell_size / b.cell_size
        return 0.75 <= ratio <= 4.0 / 3.0

    def get(self, pos: np.ndarray, cutoff: float) -> CellList:
        pos = np.asarray(pos, dtype=np.float64)
        if self.enabled:
            for k, cached in enumerate(self._lists):
                if not self._suitable(cached, cutoff, len(pos)):
                    continue
                cached.update_positions(pos)
                if not cached.is_current():
                    continue
                self.hits += 1
                if self.metrics is not None:
                    self.metrics.counter("sim.pairs.cell_list.hits").inc()
                # most-recently-used first
                self._lists.insert(0, self._lists.pop(k))
                return cached
        cell_list = CellList.build(
            pos, self.box, cutoff, skin=self.skin_fraction * cutoff
        )
        self.builds += 1
        if self.metrics is not None:
            self.metrics.counter("sim.pairs.cell_list.builds").inc()
        if self.enabled:
            keep = [c for c in self._lists if not self._same_tier(c, cell_list)]
            self._lists = ([cell_list] + keep)[: self.MAX_LISTS]
        return cell_list

    def invalidate(self) -> None:
        self._lists = []


def find_pairs(
    pos: np.ndarray,
    box: float,
    cutoff: float,
    *,
    pos_other: np.ndarray | None = None,
    cell_list: CellList | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All directed pairs (i, j), i != j, with |x_i - x_j| < cutoff.

    With ``pos_other`` given, finds cross pairs from ``pos`` (i) to
    ``pos_other`` (j) instead, used for gather-style kernels where the
    j-side includes ghost particles; exact coincidences (r = 0, a
    particle meeting its own ghost) are excluded there.
    Periodic minimum-image convention throughout.

    ``cell_list``, when given, must be a :class:`CellList` built over
    the j-side set (``pos`` itself in symmetric mode); it is reused
    instead of re-binning, which is the hot-loop path (see
    :class:`CellListCache`).
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if cutoff * 2.0 > box:
        raise ValueError(
            f"cutoff {cutoff} too large for box {box} under minimum image"
        )
    symmetric = pos_other is None
    other = pos if symmetric else np.asarray(pos_other, dtype=np.float64)

    if cell_list is None:
        cell_list = CellList.build(other, box, cutoff)
    else:
        if cell_list.box != box:
            raise ValueError(
                f"cell list box {cell_list.box} does not match query box {box}"
            )
        if not cell_list.supports(cutoff):
            raise ValueError(
                f"cell list (cell size {cell_list.cell_size:.6g}, skin "
                f"{cell_list.skin:.6g}) cannot answer cutoff {cutoff:.6g}"
            )
        cell_list.update_positions(other)

    if symmetric:
        return cell_list.pairs_within(cutoff)
    return cell_list.cross_pairs(pos, cutoff)


def _find_pairs_bruteforce(pos, other, box, cutoff, symmetric):
    """O(n^2) fallback for small particle counts / large cutoffs."""
    half = 0.5 * box
    d = pos[:, None, :] - other[None, :, :]
    d = (d + half) % box - half
    r2 = np.einsum("abi,abi->ab", d, d)
    mask = r2 < cutoff * cutoff
    if symmetric:
        # decide the cutoff once per unordered pair (see find_pairs)
        mask = np.triu(mask, k=1)
        i, j = np.nonzero(mask)
        return (
            np.concatenate([i, j]).astype(np.int64),
            np.concatenate([j, i]).astype(np.int64),
        )
    # cross mode: drop exact coincidences (see CellList.cross_pairs)
    mask &= r2 > 0.0
    i, j = np.nonzero(mask)
    return i.astype(np.int64), j.astype(np.int64)


def build_neighbor_list(
    pos: np.ndarray,
    box: float,
    cutoff: float,
    *,
    pos_other: np.ndarray | None = None,
    cell_list: CellList | None = None,
) -> NeighborList:
    """CSR neighbour list from :func:`find_pairs`."""
    i, j = find_pairs(pos, box, cutoff, pos_other=pos_other, cell_list=cell_list)
    order = xp.argsort(i)
    i = i[order]
    j = j[order]
    n = len(pos)
    counts = xp.bincount(i, minlength=n)
    start = xp.zeros(n + 1, dtype=np.int64)
    start[1:] = xp.cumsum(counts)
    return NeighborList(start=start, indices=j)


def pair_statistics(nlist: NeighborList) -> dict:
    """Interaction statistics used to size the GPU cost model."""
    counts = nlist.counts()
    return {
        "n_particles": nlist.n_particles,
        "n_pairs": int(nlist.n_pairs),
        "mean_neighbors": float(counts.mean()) if len(counts) else 0.0,
        "max_neighbors": int(counts.max()) if len(counts) else 0,
        "min_neighbors": int(counts.min()) if len(counts) else 0,
    }
