"""Neighbour finding on a periodic box.

The SPH kernels and the short-range gravity both need
"all pairs closer than a cutoff".  We use a uniform cell list sized to
the cutoff, fully vectorised: particles are binned, the 27 neighbouring
cells are scanned with array operations, and the result is either a
flat (i, j) pair list or a CSR neighbour structure.

This plays the role of CRK-HACC's interaction-list construction; the
pair counts it produces also feed the instruction profiles of the GPU
kernel cost model (interactions per work-item).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NeighborList:
    """CSR neighbour structure: ``indices[start[i]:start[i+1]]`` are the
    neighbours of particle ``i`` (self excluded)."""

    start: np.ndarray
    indices: np.ndarray

    @property
    def n_particles(self) -> int:
        return len(self.start) - 1

    @property
    def n_pairs(self) -> int:
        """Directed neighbour count (each undirected pair counted twice)."""
        return len(self.indices)

    def counts(self) -> np.ndarray:
        return np.diff(self.start)

    def neighbors_of(self, i: int) -> np.ndarray:
        return self.indices[self.start[i] : self.start[i + 1]]


def _cell_index(pos: np.ndarray, box: float, n_cells: int) -> np.ndarray:
    cell = np.floor((pos % box) / (box / n_cells)).astype(np.int64)
    np.clip(cell, 0, n_cells - 1, out=cell)
    return cell


def find_pairs(
    pos: np.ndarray,
    box: float,
    cutoff: float,
    *,
    pos_other: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All directed pairs (i, j), i != j, with |x_i - x_j| < cutoff.

    With ``pos_other`` given, finds cross pairs from ``pos`` (i) to
    ``pos_other`` (j) instead, used for gather-style kernels where the
    j-side includes ghost particles.
    Periodic minimum-image convention throughout.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if cutoff * 2.0 > box:
        raise ValueError(
            f"cutoff {cutoff} too large for box {box} under minimum image"
        )
    symmetric = pos_other is None
    other = pos if symmetric else np.asarray(pos_other, dtype=np.float64)

    n_cells = max(1, int(np.floor(box / cutoff)))
    # Guard against degenerate binning; with fewer than 3 cells per side
    # the 27-stencil would double count periodic images.
    use_cells = n_cells >= 3

    if not use_cells:
        return _find_pairs_bruteforce(pos, other, box, cutoff, symmetric)

    cells_i = _cell_index(pos, box, n_cells)
    cells_j = _cell_index(other, box, n_cells)
    flat_j = (
        cells_j[:, 0] * n_cells * n_cells + cells_j[:, 1] * n_cells + cells_j[:, 2]
    )
    order = np.argsort(flat_j, kind="stable")
    sorted_flat = flat_j[order]
    # bucket boundaries per cell id
    boundaries = np.searchsorted(sorted_flat, np.arange(n_cells**3 + 1))

    half = 0.5 * box
    out_i: list[np.ndarray] = []
    out_j: list[np.ndarray] = []
    offsets = np.array(
        [(dx, dy, dz) for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)]
    )
    for off in offsets:
        ncell = (cells_i + off) % n_cells
        nflat = ncell[:, 0] * n_cells * n_cells + ncell[:, 1] * n_cells + ncell[:, 2]
        starts = boundaries[nflat]
        ends = boundaries[nflat + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            continue
        rep_i = np.repeat(np.arange(len(pos)), counts)
        # candidate j indices: for each i, the slice starts[i]:ends[i]
        within = np.concatenate([np.arange(c) for c in counts]) if total else np.array([], dtype=np.int64)
        cand = order[np.repeat(starts, counts) + within]
        d = pos[rep_i] - other[cand]
        d = (d + half) % box - half
        r2 = np.einsum("ij,ij->i", d, d)
        mask = r2 < cutoff * cutoff
        if symmetric:
            # keep the canonical direction only: the periodic wrap is
            # not bitwise symmetric under i<->j, so deciding the cutoff
            # once per unordered pair (and mirroring below) guarantees
            # the directed list is exactly symmetric
            mask &= rep_i < cand
        out_i.append(rep_i[mask])
        out_j.append(cand[mask])

    if not out_i:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    i_all = np.concatenate(out_i)
    j_all = np.concatenate(out_j)
    if symmetric:
        return np.concatenate([i_all, j_all]), np.concatenate([j_all, i_all])
    return i_all, j_all


def _find_pairs_bruteforce(pos, other, box, cutoff, symmetric):
    """O(n^2) fallback for small particle counts / large cutoffs."""
    half = 0.5 * box
    d = pos[:, None, :] - other[None, :, :]
    d = (d + half) % box - half
    r2 = np.einsum("abi,abi->ab", d, d)
    mask = r2 < cutoff * cutoff
    if symmetric:
        # decide the cutoff once per unordered pair (see find_pairs)
        mask = np.triu(mask, k=1)
        i, j = np.nonzero(mask)
        return (
            np.concatenate([i, j]).astype(np.int64),
            np.concatenate([j, i]).astype(np.int64),
        )
    i, j = np.nonzero(mask)
    return i.astype(np.int64), j.astype(np.int64)


def build_neighbor_list(
    pos: np.ndarray,
    box: float,
    cutoff: float,
    *,
    pos_other: np.ndarray | None = None,
) -> NeighborList:
    """CSR neighbour list from :func:`find_pairs`."""
    i, j = find_pairs(pos, box, cutoff, pos_other=pos_other)
    order = np.argsort(i, kind="stable")
    i = i[order]
    j = j[order]
    n = len(pos)
    counts = np.bincount(i, minlength=n)
    start = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=start[1:])
    return NeighborList(start=start, indices=j)


def pair_statistics(nlist: NeighborList) -> dict:
    """Interaction statistics used to size the GPU cost model."""
    counts = nlist.counts()
    return {
        "n_particles": nlist.n_particles,
        "n_pairs": int(nlist.n_pairs),
        "mean_neighbors": float(counts.mean()) if len(counts) else 0.0,
        "max_neighbors": int(counts.max()) if len(counts) else 0,
        "min_neighbors": int(counts.min()) if len(counts) else 0,
    }
