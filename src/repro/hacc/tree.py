"""Recursive Coordinate Bisection (RCB) tree.

HACC's CPU branch used RCB trees to reduce particle comparisons
(Section 3.1); the GPU branch keeps direct particle-particle
comparisons but organises particles into *leaves* that the half-warp
algorithm pairs up (lanes [0..S/2) process particles of leaf A, lanes
[S/2..S) particles of leaf B -- Figure 3).  The tree here provides both:
a balanced spatial bisection and the leaf-pair interaction lists the
GPU kernels consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class RCBNode:
    """One node of the RCB tree (leaf when ``left is None``)."""

    lo: np.ndarray
    hi: np.ndarray
    indices: np.ndarray
    depth: int
    left: "RCBNode | None" = None
    right: "RCBNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def count(self) -> int:
        return len(self.indices)


@dataclass
class RCBTree:
    """RCB tree over a particle set.

    ``leaf_size`` defaults to 16 -- the half-warp leaf capacity for a
    sub-group of 32 (each half-warp holds one leaf's particles).
    """

    root: RCBNode
    leaves: list[RCBNode] = field(default_factory=list)

    @classmethod
    def build(cls, pos: np.ndarray, *, leaf_size: int = 16) -> "RCBTree":
        pos = np.asarray(pos, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        indices = np.arange(len(pos), dtype=np.int64)
        lo = pos.min(axis=0) if len(pos) else np.zeros(3)
        hi = pos.max(axis=0) if len(pos) else np.zeros(3)
        root = RCBNode(lo=lo, hi=hi, indices=indices, depth=0)
        tree = cls(root=root)
        tree._split(root, pos, leaf_size)
        return tree

    def _split(self, node: RCBNode, pos: np.ndarray, leaf_size: int) -> None:
        if node.count <= leaf_size:
            self.leaves.append(node)
            return
        extent = node.hi - node.lo
        axis = int(np.argmax(extent))
        coords = pos[node.indices, axis]
        order = np.argsort(coords, kind="stable")
        half = node.count // 2
        left_idx = node.indices[order[:half]]
        right_idx = node.indices[order[half:]]
        cut = coords[order[half]] if node.count else node.lo[axis]

        lo_l, hi_l = node.lo.copy(), node.hi.copy()
        hi_l[axis] = cut
        lo_r, hi_r = node.lo.copy(), node.hi.copy()
        lo_r[axis] = cut

        node.left = RCBNode(lo=lo_l, hi=hi_l, indices=left_idx, depth=node.depth + 1)
        node.right = RCBNode(lo=lo_r, hi=hi_r, indices=right_idx, depth=node.depth + 1)
        self._split(node.left, pos, leaf_size)
        self._split(node.right, pos, leaf_size)

    # ------------------------------------------------------------------
    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def leaf_of_particle(self) -> np.ndarray:
        """Array mapping particle index -> leaf index."""
        total = sum(leaf.count for leaf in self.leaves)
        out = np.full(total, -1, dtype=np.int64)
        for li, leaf in enumerate(self.leaves):
            out[leaf.indices] = li
        return out

    def leaf_pairs(self, cutoff: float, box: float | None = None) -> list[tuple[int, int]]:
        """Leaf pairs (a, b), a <= b, whose bounding boxes are within
        ``cutoff`` (periodic minimum image when ``box`` is given).

        These are the interaction instances of the half-warp algorithm:
        each pair generates ``|Leaf_A| x |Leaf_B| / warp_size`` warp
        iterations (Figure 4's caption).
        """
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        pairs: list[tuple[int, int]] = []
        n = self.n_leaves
        los = np.array([leaf.lo for leaf in self.leaves])
        his = np.array([leaf.hi for leaf in self.leaves])
        for a in range(n):
            # componentwise box-to-box gap
            gap_lo = los[a][None, :] - his[a:]
            gap_hi = los[a:] - his[a][None, :]
            gap = np.maximum(np.maximum(gap_lo, gap_hi), 0.0)
            if box is not None:
                half = 0.5 * box
                wrapped = box - np.maximum(
                    np.abs(los[a][None, :] - his[a:]), np.abs(los[a:] - his[a][None, :])
                )
                gap = np.minimum(gap, np.maximum(wrapped, 0.0) * (gap > half))
            dist2 = np.einsum("ij,ij->i", gap, gap)
            hits = np.nonzero(dist2 < cutoff * cutoff)[0]
            pairs.extend((a, a + int(h)) for h in hits)
        return pairs

    def interaction_instances(
        self, cutoff: float, subgroup_size: int, box: float | None = None
    ) -> int:
        """Total half-warp instances (Figure 4) for the current tree."""
        half = max(1, subgroup_size // 2)
        total = 0
        for a, b in self.leaf_pairs(cutoff, box):
            ca = self.leaves[a].count
            cb = self.leaves[b].count
            total += max(1, (ca * cb) // (half * half))
        return total
