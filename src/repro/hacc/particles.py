"""Structure-of-arrays particle storage.

CRK-HACC models two species (Section 3.1): dark matter, which responds
only to gravity, and baryons, which additionally carry the CRK-SPH
state.  The GPU code is SoA throughout, and this container mirrors
that: one NumPy array per field, with species selected by mask.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class Species(enum.IntEnum):
    """Particle species identifiers."""

    DARK_MATTER = 0
    BARYON = 1


#: fields every particle carries
_BASE_FIELDS = ("x", "y", "z", "vx", "vy", "vz", "mass")
#: additional CRK-SPH state carried by baryons (allocated for all
#: particles to keep the SoA layout uniform, as the GPU code does)
_HYDRO_FIELDS = (
    "u",       # specific internal energy
    "rho",     # mass density
    "volume",  # CRK volume V_i
    "hsml",    # smoothing length
    "pressure",
    "cs",      # sound speed
)


@dataclass
class ParticleData:
    """SoA particle container for one MPI rank's domain.

    All positions are comoving Mpc/h in ``[0, box)``; velocities are
    comoving peculiar velocities.
    """

    box: float
    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def allocate(cls, n: int, box: float) -> "ParticleData":
        """Zero-initialised storage for ``n`` particles."""
        if n < 0:
            raise ValueError("particle count must be non-negative")
        if box <= 0:
            raise ValueError("box size must be positive")
        data = cls(box=box)
        for name in _BASE_FIELDS + _HYDRO_FIELDS:
            data.arrays[name] = np.zeros(n, dtype=np.float64)
        data.arrays["species"] = np.zeros(n, dtype=np.int8)
        data.arrays["pid"] = np.arange(n, dtype=np.int64)
        return data

    # -- convenience accessors -----------------------------------------
    def __len__(self) -> int:
        return len(self.arrays["x"])

    def __getattr__(self, name: str) -> np.ndarray:
        arrays = object.__getattribute__(self, "__dict__").get("arrays")
        if arrays is not None and name in arrays:
            return arrays[name]
        raise AttributeError(name)

    @property
    def positions(self) -> np.ndarray:
        """(n, 3) position view (copies into a contiguous array)."""
        return np.column_stack([self.arrays["x"], self.arrays["y"], self.arrays["z"]])

    @property
    def velocities(self) -> np.ndarray:
        """(n, 3) velocity array."""
        return np.column_stack(
            [self.arrays["vx"], self.arrays["vy"], self.arrays["vz"]]
        )

    def set_positions(self, pos: np.ndarray) -> None:
        pos = np.asarray(pos, dtype=np.float64)
        if pos.shape != (len(self), 3):
            raise ValueError(f"expected {(len(self), 3)}, got {pos.shape}")
        self.arrays["x"][:] = pos[:, 0]
        self.arrays["y"][:] = pos[:, 1]
        self.arrays["z"][:] = pos[:, 2]

    def set_velocities(self, vel: np.ndarray) -> None:
        vel = np.asarray(vel, dtype=np.float64)
        if vel.shape != (len(self), 3):
            raise ValueError(f"expected {(len(self), 3)}, got {vel.shape}")
        self.arrays["vx"][:] = vel[:, 0]
        self.arrays["vy"][:] = vel[:, 1]
        self.arrays["vz"][:] = vel[:, 2]

    # -- species handling ------------------------------------------------
    def species_mask(self, species: Species) -> np.ndarray:
        return self.arrays["species"] == int(species)

    def count(self, species: Species | None = None) -> int:
        if species is None:
            return len(self)
        return int(self.species_mask(species).sum())

    def select(self, mask: np.ndarray) -> "ParticleData":
        """A copy restricted to ``mask`` (used for ghost exchange)."""
        out = ParticleData(box=self.box)
        for name, arr in self.arrays.items():
            out.arrays[name] = arr[mask].copy()
        return out

    def concatenated_with(self, other: "ParticleData") -> "ParticleData":
        """This rank's particles followed by ``other`` (ghosts)."""
        if other.box != self.box:
            raise ValueError("cannot merge particle sets from different boxes")
        out = ParticleData(box=self.box)
        for name, arr in self.arrays.items():
            out.arrays[name] = np.concatenate([arr, other.arrays[name]])
        return out

    # -- geometry helpers -----------------------------------------------------
    def wrap(self) -> None:
        """Apply periodic wrapping to positions (in place)."""
        for axis in ("x", "y", "z"):
            np.mod(self.arrays[axis], self.box, out=self.arrays[axis])

    def minimum_image(self, dx: np.ndarray) -> np.ndarray:
        """Minimum-image convention for displacement components."""
        half = 0.5 * self.box
        return (dx + half) % self.box - half

    # -- diagnostics --------------------------------------------------------
    def total_momentum(self) -> np.ndarray:
        """Total momentum vector (mass-weighted velocity sum)."""
        m = self.arrays["mass"]
        return np.array(
            [
                float(np.sum(m * self.arrays["vx"])),
                float(np.sum(m * self.arrays["vy"])),
                float(np.sum(m * self.arrays["vz"])),
            ]
        )

    def total_mass(self) -> float:
        return float(np.sum(self.arrays["mass"]))

    def kinetic_energy(self) -> float:
        m = self.arrays["mass"]
        v2 = self.arrays["vx"] ** 2 + self.arrays["vy"] ** 2 + self.arrays["vz"] ** 2
        return float(0.5 * np.sum(m * v2))

    def thermal_energy(self) -> float:
        mask = self.species_mask(Species.BARYON)
        return float(np.sum(self.arrays["mass"][mask] * self.arrays["u"][mask]))

    def validate(self) -> None:
        """Internal-consistency checks (uniform lengths, finite data)."""
        n = len(self)
        for name, arr in self.arrays.items():
            if len(arr) != n:
                raise ValueError(f"field {name!r} has length {len(arr)} != {n}")
        for name in _BASE_FIELDS:
            if not np.all(np.isfinite(self.arrays[name])):
                raise ValueError(f"non-finite values in field {name!r}")
