"""Mesh operations: Cloud-In-Cell deposit and interpolation.

HACC's long-range gravity is a particle-mesh method (Section 3.1); the
deposit/interpolation pair here is the standard second-order CIC
scheme on a periodic cubic mesh, fully vectorised over particles (the
eight corner updates use ``np.add.at`` scatter-adds, the NumPy
equivalent of the GPU's atomic adds).
"""

from __future__ import annotations

import numpy as np


def _cic_weights(pos: np.ndarray, n_mesh: int, box: float):
    """Base cell indices and fractional offsets for CIC.

    Returns ``(i0, frac)`` where ``i0`` is the (n, 3) lower corner index
    and ``frac`` the (n, 3) fractional distance into the cell.
    """
    pos = np.asarray(pos, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    cell = box / n_mesh
    grid_pos = (pos % box) / cell
    i0 = np.floor(grid_pos).astype(np.int64)
    frac = grid_pos - i0
    i0 %= n_mesh
    return i0, frac


def cic_deposit(
    pos: np.ndarray, weights: np.ndarray, n_mesh: int, box: float
) -> np.ndarray:
    """Deposit particle ``weights`` onto an ``n_mesh^3`` periodic mesh."""
    weights = np.asarray(weights, dtype=np.float64)
    i0, frac = _cic_weights(pos, n_mesh, box)
    i1 = (i0 + 1) % n_mesh
    mesh = np.zeros((n_mesh, n_mesh, n_mesh), dtype=np.float64)
    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0], i1[:, 0])
    iy = (i0[:, 1], i1[:, 1])
    iz = (i0[:, 2], i1[:, 2])
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                w = weights * wx[dx] * wy[dy] * wz[dz]
                np.add.at(mesh, (ix[dx], iy[dy], iz[dz]), w)
    return mesh


def cic_interpolate(mesh: np.ndarray, pos: np.ndarray, box: float) -> np.ndarray:
    """Interpolate a mesh field to particle positions (CIC gather)."""
    mesh = np.asarray(mesh)
    n_mesh = mesh.shape[0]
    if mesh.shape != (n_mesh, n_mesh, n_mesh):
        raise ValueError("mesh must be cubic")
    i0, frac = _cic_weights(pos, n_mesh, box)
    i1 = (i0 + 1) % n_mesh
    wx = (1.0 - frac[:, 0], frac[:, 0])
    wy = (1.0 - frac[:, 1], frac[:, 1])
    wz = (1.0 - frac[:, 2], frac[:, 2])
    ix = (i0[:, 0], i1[:, 0])
    iy = (i0[:, 1], i1[:, 1])
    iz = (i0[:, 2], i1[:, 2])
    out = np.zeros(len(pos), dtype=np.float64)
    for dx in (0, 1):
        for dy in (0, 1):
            for dz in (0, 1):
                out += mesh[ix[dx], iy[dy], iz[dz]] * wx[dx] * wy[dy] * wz[dz]
    return out


def fourier_grid(n_mesh: int, box: float):
    """Angular wavenumber components (kx, ky, kz) and |k|^2 for an
    rfft-layout mesh; units h/Mpc."""
    k1 = 2.0 * np.pi * np.fft.fftfreq(n_mesh, d=box / n_mesh)
    kz = 2.0 * np.pi * np.fft.rfftfreq(n_mesh, d=box / n_mesh)
    kx = k1[:, None, None]
    ky = k1[None, :, None]
    kzg = kz[None, None, :]
    k2 = kx**2 + ky**2 + kzg**2
    return kx, ky, kzg, k2
