"""The CRK-HACC mini-app: CRK-SPH cosmological hydrodynamics + gravity.

This subpackage is the reproduction's stand-in for CRK-HACC itself
(whose source is restricted).  It implements the physics pipeline the
paper studies, at laptop scale:

- FLRW background cosmology and comoving kick-drift-kick stepping
  (:mod:`~repro.hacc.cosmology`, :mod:`~repro.hacc.timestep`),
- Zel'dovich initial conditions for dark-matter + baryon particles
  (:mod:`~repro.hacc.power`, :mod:`~repro.hacc.ic`),
- the long-range particle-mesh gravity solver (FFT Poisson,
  :mod:`~repro.hacc.pm`) and the short-range particle-particle solver
  with HACC's 5th-order polynomial force kernel
  (:mod:`~repro.hacc.short_range`),
- the Recursive Coordinate Bisection tree and leaf pairing used by the
  GPU kernels (:mod:`~repro.hacc.tree`, :mod:`~repro.hacc.neighbors`),
- the five hot CRK-SPH kernels of Section 5 -- Geometry, Corrections,
  Extras, Acceleration, Energy (:mod:`~repro.hacc.sph`),
- a simulated 8-rank MPI decomposition (:mod:`~repro.hacc.mpi_sim`),
- an FOF/DBSCAN halo finder standing in for the ArborX integration
  (:mod:`~repro.hacc.halo`), and
- checkpoint files for standalone kernel experiments
  (:mod:`~repro.hacc.checkpoint`, Section 7.2).
"""

from repro.hacc.cosmology import Cosmology
from repro.hacc.particles import ParticleData, Species
from repro.hacc.ic import zeldovich_ics
from repro.hacc.timestep import AdiabaticDriver, SimulationConfig
from repro.hacc.validation import validate_run

__all__ = [
    "validate_run",
    "Cosmology",
    "ParticleData",
    "Species",
    "zeldovich_ics",
    "AdiabaticDriver",
    "SimulationConfig",
]
