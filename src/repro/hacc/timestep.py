"""The adiabatic time stepper: CRK-HACC's dynamical loop.

The driver advances the two-species system with a comoving
kick-drift-kick leapfrog over the paper's schedule (five steps from
z = 200 to z = 50, Section 3.4.3) and calls the hot kernels in the
pattern that produces the paper's seven GPU timers:

    upGeo -> upCor -> upBarEx -> upBarAc -> upBarDu
        (kick, drift)
    upBarAcF -> upBarDuF
        (final half kick)

Physics and performance are decoupled: the driver *computes* with the
vectorised NumPy kernels and *records* a :class:`WorkloadTrace` of
kernel invocations (work-items and interactions per work-item).  The
trace is replayed on the virtual GPUs by
:mod:`repro.kernels.adiabatic`, which is how one physics run prices
every device x variant combination of the paper's study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.hacc import eos
from repro.hacc.cosmology import Cosmology
from repro.hacc.ic import ICConfig, zeldovich_ics
from repro.hacc.neighbors import CellListCache
from repro.hacc.particles import ParticleData, Species
from repro.hacc.pm import PMConfig, PMSolver
from repro.hacc.short_range import ShortRangeSolver
from repro.hacc.sph.acceleration import compute_acceleration
from repro.hacc.sph.corrections import compute_corrections
from repro.hacc.sph.energy import compute_energy_rate
from repro.hacc.sph.extras import compute_extras
from repro.hacc.sph.geometry import compute_geometry
from repro.hacc.sph.pairs import PairContext, sph_cutoff
from repro.observability.metrics import INTERACTIONS_BUCKETS, MetricsRegistry
from repro.observability.tracing import TraceRecorder, maybe_span

#: paper timer names, in call order within one step
TIMER_NAMES = (
    "upGeo",
    "upCor",
    "upBarEx",
    "upBarAc",
    "upBarDu",
    "upBarAcF",
    "upBarDuF",
)
#: the short-range gravity kernel (part of "all GPU kernels" but not of
#: the five hydro hotspots)
GRAVITY_KERNEL = "upGravSR"


@dataclass(frozen=True)
class KernelInvocation:
    """Workload of one GPU kernel launch."""

    name: str
    n_workitems: int
    interactions_per_item: float


@dataclass
class WorkloadTrace:
    """Record of every offloaded kernel launch in a run."""

    invocations: list[KernelInvocation] = field(default_factory=list)

    def record(self, name: str, n_workitems: int, interactions_per_item: float) -> None:
        if n_workitems <= 0:
            return
        self.invocations.append(
            KernelInvocation(name, int(n_workitems), float(interactions_per_item))
        )

    def by_kernel(self) -> dict[str, list[KernelInvocation]]:
        out: dict[str, list[KernelInvocation]] = {}
        for inv in self.invocations:
            out.setdefault(inv.name, []).append(inv)
        return out

    def total_interactions(self) -> float:
        return sum(i.n_workitems * i.interactions_per_item for i in self.invocations)


@dataclass(frozen=True)
class SimulationConfig:
    """The scaled-down analogue of the paper's test problem.

    The paper runs 2x 512^3 particles over 8 ranks in a 177 Mpc/h box;
    we default to 2x 16^3 in a box scaled to preserve the mass
    resolution (box = 177 * n/512), exactly the paper's scaling rule
    (Section 3.4.2).
    """

    n_per_side: int = 16
    z_initial: float = 200.0
    z_final: float = 50.0
    n_steps: int = 5
    seed: int = 2023
    pm_mesh: int = 16
    leaf_size: int = 16
    #: subcycle the hydro forces inside each gravity step when the CFL
    #: condition demands it (HACC's stepping structure; off by default
    #: to match the paper's five-step adiabatic run)
    subcycling: bool = False
    #: CFL number for the hydro time-step criterion
    cfl_number: float = 0.25
    #: cap on hydro substeps per gravity step
    max_subcycles: int = 8

    @property
    def box(self) -> float:
        return 177.0 * self.n_per_side / 512.0

    def ic_config(self) -> ICConfig:
        return ICConfig(
            n_per_side=self.n_per_side,
            box=self.box,
            z_initial=self.z_initial,
            seed=self.seed,
        )


@dataclass
class StepDiagnostics:
    """Per-step conservation and state diagnostics."""

    a: float
    kinetic_energy: float
    thermal_energy: float
    total_momentum: np.ndarray
    max_density_contrast: float


class AdiabaticDriver:
    """Runs the adiabatic mini-app and records the workload trace.

    Resilience hooks: :attr:`kernel_hook`, when set, is called as
    ``hook(name, step_index, outputs)`` immediately after each hot
    kernel completes and *before* its outputs are consumed downstream.
    ``outputs`` maps output names to the live arrays, so the hook can
    both screen them (in-flight NaN/Inf guards) and mutate them in
    place (deterministic fault injection).  :attr:`step_index` counts
    completed steps and, together with :meth:`restore`, supports
    restarting a run mid-schedule from a
    :class:`~repro.resilience.restart.SimulationCheckpoint`.
    """

    def __init__(
        self,
        config: SimulationConfig | None = None,
        cosmology: Cosmology | None = None,
        particles: ParticleData | None = None,
    ):
        self.config = config or SimulationConfig()
        self.cosmology = cosmology or Cosmology()
        if particles is None:
            particles = zeldovich_ics(self.config.ic_config(), self.cosmology)
        self.particles = particles
        self.pm = PMSolver(self.config.box, PMConfig(n_mesh=self.config.pm_mesh))
        # the minimum-image pair search requires cutoff < box/2; tiny
        # test boxes clamp the short-range cutoff accordingly
        sr_cutoff = min(self.pm.cutoff, 0.45 * self.config.box)
        self.short_range = ShortRangeSolver(
            self.config.box, self.pm.split_scale, sr_cutoff
        )
        #: one spatial decomposition per step, shared by the SPH pair
        #: context and the short-range gravity (Verlet-skin reuse)
        self.pair_cache = CellListCache(self.config.box)
        self.trace = WorkloadTrace()
        self.diagnostics: list[StepDiagnostics] = []
        #: completed steps of the configured schedule
        self.step_index = 0
        #: the run's stochastic stream (seeded; captured by checkpoints)
        self.rng = np.random.default_rng(self.config.seed)
        #: resilience hook: hook(kernel_name, step_index, {name: array})
        self.kernel_hook: Callable[[str, int, dict[str, np.ndarray]], None] | None = None
        #: observability sinks: when set, the driver opens a span per
        #: step and per hot-kernel call, and counts launches and
        #: interactions (see repro.observability)
        self.tracer: TraceRecorder | None = None
        self.metrics: MetricsRegistry | None = None
        #: health monitor: when set, its ``observe_step(driver, diag,
        #: wall_seconds)`` runs after every completed step (duck-typed;
        #: see repro.observability.health.HealthMonitor)
        self.health: Any | None = None
        #: hydro subcycles taken by the most recent step (the
        #: timestep-collapse health series)
        self.last_subcycles = 1

    def restore(
        self,
        *,
        particles: ParticleData,
        step_index: int,
        trace: WorkloadTrace | None = None,
        diagnostics: list[StepDiagnostics] | None = None,
        rng_state: dict[str, Any] | None = None,
    ) -> None:
        """Reset the driver to a checkpointed mid-run state."""
        if not 0 <= step_index <= self.config.n_steps:
            raise ValueError(
                f"step index {step_index} outside the "
                f"{self.config.n_steps}-step schedule"
            )
        self.particles = particles
        self.pair_cache.invalidate()
        self.step_index = int(step_index)
        if trace is not None:
            self.trace = trace
        if diagnostics is not None:
            self.diagnostics = diagnostics
        if rng_state is not None:
            self.rng.bit_generator.state = rng_state

    def _record_kernel(
        self,
        name: str,
        n_workitems: int,
        per_item: float,
        outputs: dict[str, np.ndarray],
    ) -> None:
        """Record one kernel launch and run the resilience hook on its
        freshly produced outputs (before anything consumes them)."""
        self.trace.record(name, n_workitems, per_item)
        if self.metrics is not None and n_workitems > 0:
            self.metrics.counter("sim.kernel.launches").inc()
            self.metrics.counter("sim.kernel.interactions").inc(
                n_workitems * per_item
            )
            self.metrics.histogram(
                "sim.kernel.interactions_per_item", INTERACTIONS_BUCKETS
            ).observe(per_item)
        if self.kernel_hook is not None:
            self.kernel_hook(name, self.step_index, outputs)

    def _kernel_span(self, name: str):
        """Wall-clock span around one hot-kernel evaluation."""
        return maybe_span(self.tracer, name, category="kernel", step=self.step_index)

    # Velocity variable convention: the particle "velocities" are the
    # canonical momenta p = a^2 dx/dt (GADGET convention), which pairs
    # with the comoving potential without explicit a factors, the kick
    # integral int dt/a, and the drift integral int dt/a^2.
    # ------------------------------------------------------------------
    def _gravity(self) -> np.ndarray:
        """Total gravitational acceleration; records the GPU kernel."""
        with self._kernel_span(GRAVITY_KERNEL):
            acc = self.pm.accelerations(self.particles)  # host-side FFT
            cl = self.pair_cache.get(self.particles.positions, self.short_range.cutoff)
            acc += self.short_range.accelerations(self.particles, cell_list=cl)
            n = len(self.particles)
            # reuses the memoised pair list the accelerations just built
            pair_count = self.short_range.interaction_count(self.particles)
            self._record_kernel(GRAVITY_KERNEL, n, pair_count / max(1, n), {"acc": acc})
        return acc

    def _gas_view(self):
        """Gas arrays + pair context for the hydro kernels.

        The pair context rides the step's shared cell list (binned over
        the full two-species set), restricted to the gas subset."""
        p = self.particles
        mask = p.species_mask(Species.BARYON)
        idx = np.nonzero(mask)[0]
        pos_all = p.positions
        pos = pos_all[idx]
        h = p.hsml[idx]
        if len(idx) == 0:
            return mask, idx, PairContext.build(pos, h, p.box)
        _requested, cutoff = sph_cutoff(h, p.box)
        cl = self.pair_cache.get(pos_all, cutoff)
        ctx = PairContext.build(
            pos, h, p.box, cell_list=cl, subset=idx, metrics=self.metrics
        )
        return mask, idx, ctx

    def _hydro_rates(self, label_suffix: str = "") -> tuple[np.ndarray, np.ndarray, float]:
        """One pass of the five-kernel hydro pipeline.

        Returns per-gas-particle (dv_dt, du_dt, max_signal_speed) and
        records the kernel invocations (with the F suffix for the
        post-drift pass, reproducing the paper's doubled timers).
        """
        p = self.particles
        mask, idx, ctx = self._gas_view()
        n_gas = len(idx)
        per_item = ctx.mean_neighbors()

        h = p.hsml[idx]
        mass = p.mass[idx]
        u = p.u[idx]
        vel = p.velocities[idx]

        if not label_suffix:
            with self._kernel_span("upGeo"):
                geo = compute_geometry(ctx, h)
                self._record_kernel(
                    "upGeo", n_gas, per_item, {"volume": geo.volume, "h_new": geo.h_new}
                )
            p.volume[idx] = geo.volume
            p.hsml[idx] = geo.h_new
            h = geo.h_new

            with self._kernel_span("upCor"):
                corr = compute_corrections(ctx, h, geo.volume)
                self._record_kernel("upCor", n_gas, per_item, {"a": corr.a, "b": corr.b})
            self._corr = corr

            with self._kernel_span("upBarEx"):
                extras = compute_extras(
                    ctx, h, geo.volume, mass, vel, p.pressure[idx], corr
                )
                self._record_kernel(
                    "upBarEx",
                    n_gas,
                    per_item,
                    {
                        "rho": extras.rho,
                        "grad_rho": extras.grad_rho,
                        "div_v": extras.div_v,
                        "grad_p": extras.grad_p,
                    },
                )
            p.rho[idx] = extras.rho
            eos.update_thermodynamics(p)
        else:
            # post-drift pass reuses geometry/corrections (CRK-HACC's
            # final kick re-evaluates only the force kernels)
            corr = self._corr

        volume = p.volume[idx]
        rho = p.rho[idx]
        pressure = p.pressure[idx]
        cs = p.cs[idx]
        with self._kernel_span("upBarAc" + label_suffix):
            accel = compute_acceleration(
                ctx, h, volume, mass, rho, pressure, cs, vel, corr
            )
            self._record_kernel(
                "upBarAc" + label_suffix, n_gas, per_item, {"dv_dt": accel.dv_dt}
            )

        with self._kernel_span("upBarDu" + label_suffix):
            energy = compute_energy_rate(ctx, volume, mass, pressure, vel, accel)
            self._record_kernel(
                "upBarDu" + label_suffix, n_gas, per_item, {"du_dt": energy.du_dt}
            )

        dv_full = np.zeros((len(p), 3))
        du_full = np.zeros(len(p))
        dv_full[idx] = accel.dv_dt
        du_full[idx] = energy.du_dt
        self._gas_idx = idx
        return dv_full, du_full, accel.max_signal_speed

    # ------------------------------------------------------------------
    def cfl_subcycles(self, max_signal_speed: float, drift: float) -> int:
        """Hydro substeps required by the CFL condition.

        The sound/viscous signal must not cross more than ``cfl_number``
        of a smoothing length per hydro substep.  Clamped to
        ``max_subcycles`` (HACC caps the subcycle depth too).
        """
        p = self.particles
        gas = p.species_mask(Species.BARYON)
        if not gas.any() or max_signal_speed <= 0:
            return 1
        h_min = float(p.hsml[gas].min())
        if h_min <= 0:
            return 1
        allowed = self.config.cfl_number * h_min / max_signal_speed
        needed = int(np.ceil(drift / max(allowed, 1e-300)))
        return int(np.clip(needed, 1, self.config.max_subcycles))

    def step(self, a0: float, a1: float) -> StepDiagnostics:
        """One KDK step from scale factor a0 to a1.

        With ``config.subcycling`` enabled, the hydro forces are
        re-evaluated on CFL-sized substeps inside the gravity step --
        the mechanism by which tighter time-step criteria "lead to many
        more calls to the adiabatic kernels" (Section 3.1).
        """
        # mirror cache hit/rebuild counts into whatever registry the
        # caller attached after construction
        self.pair_cache.metrics = self.metrics
        wall_start = time.perf_counter()
        self.last_subcycles = 1
        with maybe_span(
            self.tracer,
            f"step {self.step_index}",
            category="step",
            a0=a0,
            a1=a1,
        ):
            if self.config.subcycling:
                diag = self._step_subcycled(a0, a1)
            else:
                diag = self._step_plain(a0, a1)
        if self.metrics is not None:
            self.metrics.counter("sim.steps").inc()
        if self.health is not None:
            # observe *before* the index bump so alert steps match the
            # step that produced the state
            self.health.observe_step(
                self, diag, wall_seconds=time.perf_counter() - wall_start
            )
        self.step_index += 1
        return diag

    def _step_plain(self, a0: float, a1: float) -> StepDiagnostics:
        p = self.particles
        cosmo = self.cosmology
        kick_half = cosmo.kick_factor(a0, a1) * 0.5
        drift = cosmo.drift_factor(a0, a1)

        grav = self._gravity()
        dv_h, du_h, _sig = self._hydro_rates("")

        # first half kick
        vel = p.velocities + (grav + dv_h) * kick_half
        p.set_velocities(vel)
        p.u[:] = np.maximum(p.u + du_h * kick_half, 0.0)

        # drift
        pos = p.positions + p.velocities * drift
        p.set_positions(pos % p.box)

        # force re-evaluation at the new positions (the "F" kernels)
        grav = self._gravity()
        dv_h, du_h, _sig = self._hydro_rates("F")

        # second half kick
        vel = p.velocities + (grav + dv_h) * kick_half
        p.set_velocities(vel)
        p.u[:] = np.maximum(p.u + du_h * kick_half, 0.0)

        # adiabatic expansion cooling: u ~ a^-2 for a monatomic gas
        p.u[:] *= (a0 / a1) ** 2
        eos.update_thermodynamics(p)

        diag = self._diagnose(a1)
        self.diagnostics.append(diag)
        return diag

    def _step_subcycled(self, a0: float, a1: float) -> StepDiagnostics:
        """KDK step with CFL-driven hydro subcycling."""
        p = self.particles
        cosmo = self.cosmology
        kick_half = cosmo.kick_factor(a0, a1) * 0.5
        drift_total = cosmo.drift_factor(a0, a1)

        # gravity half kick (gravity stays on the outer step)
        grav = self._gravity()
        dv_h, du_h, sig = self._hydro_rates("")
        n_sub = self.cfl_subcycles(sig, drift_total)
        self.last_subcycles = n_sub

        vel = p.velocities + grav * kick_half + dv_h * (kick_half / n_sub)
        p.set_velocities(vel)
        p.u[:] = np.maximum(p.u + du_h * (kick_half / n_sub), 0.0)

        # hydro subcycles: drift + force re-evaluation ("F" timers)
        for sub in range(n_sub):
            pos = p.positions + p.velocities * (drift_total / n_sub)
            p.set_positions(pos % p.box)
            dv_h, du_h, _sig = self._hydro_rates("F")
            # inner kicks use the substep share of the kick integral;
            # the final share is applied together with gravity below
            share = kick_half / n_sub if sub < n_sub - 1 else kick_half / n_sub
            vel = p.velocities + dv_h * share
            p.set_velocities(vel)
            p.u[:] = np.maximum(p.u + du_h * share, 0.0)

        # gravity second half kick at the new positions
        grav = self._gravity()
        p.set_velocities(p.velocities + grav * kick_half)

        p.u[:] *= (a0 / a1) ** 2
        eos.update_thermodynamics(p)
        diag = self._diagnose(a1)
        self.diagnostics.append(diag)
        return diag

    def schedule(self) -> np.ndarray:
        """Scale-factor edges of the configured schedule."""
        return self.cosmology.step_schedule(
            self.config.z_initial, self.config.z_final, self.config.n_steps
        )

    def run(
        self,
        on_step: Callable[["AdiabaticDriver", StepDiagnostics], None] | None = None,
    ) -> list[StepDiagnostics]:
        """Run (or, after :meth:`restore`, resume) the configured
        schedule; returns per-step diagnostics.

        ``on_step(driver, diag)`` fires after each completed step —
        the periodic-checkpoint hook point.
        """
        schedule = self.schedule()
        while self.step_index < self.config.n_steps:
            a0 = float(schedule[self.step_index])
            a1 = float(schedule[self.step_index + 1])
            diag = self.step(a0, a1)
            if on_step is not None:
                on_step(self, diag)
        return self.diagnostics

    # ------------------------------------------------------------------
    def _diagnose(self, a: float) -> StepDiagnostics:
        p = self.particles
        gas = p.species_mask(Species.BARYON)
        rho = p.rho[gas]
        rho_bar = rho.mean() if rho.size else 1.0
        return StepDiagnostics(
            a=a,
            kinetic_energy=p.kinetic_energy(),
            thermal_energy=p.thermal_energy(),
            total_momentum=p.total_momentum(),
            max_density_contrast=float(rho.max() / rho_bar - 1.0) if rho.size else 0.0,
        )
