"""Linear matter power spectrum.

A BBKS-style transfer function is plenty for the mini-app: the paper's
experiments run in the near-linear regime (z = 200 to 50), where only
the broad shape of P(k) matters for generating a representative
particle distribution.  The normalisation is fixed through sigma8 by
the standard top-hat variance integral.
"""

from __future__ import annotations

import numpy as np
from scipy import integrate

from repro.hacc.cosmology import Cosmology


def bbks_transfer(k: np.ndarray, cosmology: Cosmology) -> np.ndarray:
    """BBKS (1986) CDM transfer function with the Sugiyama (1995)
    baryon-corrected shape parameter.

    ``k`` is in h/Mpc.
    """
    k = np.asarray(k, dtype=float)
    gamma = cosmology.omega_m * cosmology.h * np.exp(
        -cosmology.omega_b * (1.0 + np.sqrt(2.0 * cosmology.h) / cosmology.omega_m)
    )
    q = k / gamma * cosmology.h  # BBKS q uses k in Mpc^-1 / (Gamma h)
    q = np.where(q == 0.0, 1e-30, q)
    t = (
        np.log(1.0 + 2.34 * q)
        / (2.34 * q)
        * (1.0 + 3.89 * q + (16.1 * q) ** 2 + (5.46 * q) ** 3 + (6.71 * q) ** 4)
        ** -0.25
    )
    return np.where(np.asarray(k) == 0.0, 1.0, t)


def eisenstein_hu_transfer(k: np.ndarray, cosmology: Cosmology) -> np.ndarray:
    """Eisenstein & Hu (1998) zero-baryon ("no-wiggle") transfer function.

    More accurate than BBKS around the baryon-suppression scale; the
    production HACC campaigns use CAMB-class inputs, and this fit is
    the standard offline stand-in.  ``k`` in h/Mpc.
    """
    k = np.asarray(k, dtype=float)
    h = cosmology.h
    om = cosmology.omega_m
    ob = cosmology.omega_b
    theta = 2.728 / 2.7  # CMB temperature in units of 2.7 K

    omh2 = om * h * h
    obh2 = ob * h * h
    fb = ob / om

    # sound horizon (EH98 eq. 26) and the alpha_Gamma shape correction
    s = 44.5 * np.log(9.83 / omh2) / np.sqrt(1.0 + 10.0 * obh2**0.75)
    alpha = 1.0 - 0.328 * np.log(431.0 * omh2) * fb + 0.38 * np.log(
        22.3 * omh2
    ) * fb**2

    k_mpc = k * h  # EH98 works in Mpc^-1
    gamma_eff = om * h * (
        alpha + (1.0 - alpha) / (1.0 + (0.43 * k_mpc * s) ** 4)
    )
    q = k_mpc * theta**2 / np.maximum(gamma_eff * h, 1e-30)
    L = np.log(2.0 * np.e + 1.8 * q)
    C = 14.2 + 731.0 / (1.0 + 62.5 * q)
    t = L / (L + C * q * q)
    return np.where(k == 0.0, 1.0, t)


#: available transfer-function fits
TRANSFER_FUNCTIONS = {
    "bbks": bbks_transfer,
    "eisenstein-hu": eisenstein_hu_transfer,
}


class PowerSpectrum:
    """Linear matter P(k) at z = 0, normalised to sigma8.

    ``transfer`` selects the fitting formula: ``"bbks"`` (default, the
    classic CDM shape) or ``"eisenstein-hu"`` (the 1998 no-wiggle fit
    with the baryon-suppression scale).
    """

    def __init__(
        self, cosmology: Cosmology | None = None, *, transfer: str = "bbks"
    ):
        self.cosmology = cosmology or Cosmology()
        if transfer not in TRANSFER_FUNCTIONS:
            raise ValueError(
                f"unknown transfer {transfer!r}; "
                f"choose from {sorted(TRANSFER_FUNCTIONS)}"
            )
        self.transfer_name = transfer
        self._transfer = TRANSFER_FUNCTIONS[transfer]
        self._amplitude = 1.0
        self._amplitude = self._normalise()

    def _unnormalised(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=float)
        t = self._transfer(k, self.cosmology)
        return np.where(k > 0.0, k**self.cosmology.n_s * t**2, 0.0)

    def _normalise(self) -> float:
        """Fix the amplitude so sigma(8 Mpc/h) = sigma8."""

        def integrand(lnk: float) -> float:
            k = np.exp(lnk)
            x = 8.0 * k
            w = 3.0 * (np.sin(x) - x * np.cos(x)) / x**3
            return float(self._unnormalised(np.array(k)) * w**2 * k**3)

        var, _err = integrate.quad(integrand, np.log(1e-5), np.log(50.0), limit=400)
        var /= 2.0 * np.pi**2
        if var <= 0:
            raise RuntimeError("power-spectrum normalisation failed")
        return self.cosmology.sigma8**2 / var

    def __call__(self, k: np.ndarray, z: float = 0.0) -> np.ndarray:
        """P(k) in (Mpc/h)^3 at redshift ``z``."""
        pk = self._amplitude * self._unnormalised(k)
        if z != 0.0:
            a = self.cosmology.a_of_z(z)
            pk = pk * self.cosmology.growth_factor(float(a)) ** 2
        return pk

    def sigma_r(self, r: float, z: float = 0.0) -> float:
        """RMS top-hat density fluctuation at radius ``r`` (Mpc/h)."""
        if r <= 0:
            raise ValueError("radius must be positive")

        def integrand(lnk: float) -> float:
            k = np.exp(lnk)
            x = r * k
            w = 3.0 * (np.sin(x) - x * np.cos(x)) / x**3
            return float(self(np.array(k), z) * w**2 * k**3)

        var, _err = integrate.quad(integrand, np.log(1e-5), np.log(50.0), limit=400)
        return float(np.sqrt(var / (2.0 * np.pi**2)))
