"""FLRW background cosmology.

Provides the scale-factor dynamics the time stepper needs: H(a), the
linear growth factor D(a) for the Zel'dovich initial conditions, and
the kick/drift integrals of the comoving KDK leapfrog.  The paper's
test problem steps from z_i = 200 to z_f = 50 in five steps
(Section 3.4.3); :meth:`Cosmology.step_schedule` produces exactly that
schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import integrate

from repro.hacc.units import H0_HUNITS


@dataclass(frozen=True)
class Cosmology:
    """A flat LambdaCDM background.

    Defaults approximate the WMAP-7/Planck-like parameters used across
    the HACC simulation campaigns.
    """

    omega_m: float = 0.31
    omega_b: float = 0.049
    h: float = 0.68
    sigma8: float = 0.81
    n_s: float = 0.96

    def __post_init__(self):
        if not 0.0 < self.omega_m <= 1.0:
            raise ValueError("omega_m must be in (0, 1]")
        if not 0.0 <= self.omega_b < self.omega_m:
            raise ValueError("omega_b must be in [0, omega_m)")

    @property
    def omega_l(self) -> float:
        """Dark-energy density of the flat model."""
        return 1.0 - self.omega_m

    @property
    def omega_cdm(self) -> float:
        """Cold-dark-matter density (total matter minus baryons)."""
        return self.omega_m - self.omega_b

    # -- background ------------------------------------------------------
    @staticmethod
    def a_of_z(z: float | np.ndarray) -> float | np.ndarray:
        """Scale factor at redshift ``z``."""
        return 1.0 / (1.0 + np.asarray(z, dtype=float))

    @staticmethod
    def z_of_a(a: float | np.ndarray) -> float | np.ndarray:
        """Redshift at scale factor ``a``."""
        a = np.asarray(a, dtype=float)
        if np.any(a <= 0):
            raise ValueError("scale factor must be positive")
        return 1.0 / a - 1.0

    def E(self, a: float | np.ndarray) -> float | np.ndarray:
        """Dimensionless Hubble rate H(a)/H0 for the flat model."""
        a = np.asarray(a, dtype=float)
        return np.sqrt(self.omega_m / a**3 + self.omega_l)

    def H(self, a: float | np.ndarray) -> float | np.ndarray:
        """Hubble rate in h km/s/Mpc."""
        return H0_HUNITS * self.E(a)

    # -- linear growth -------------------------------------------------
    def growth_factor(self, a: float) -> float:
        """Linear growth factor D(a), normalised so D(1) = 1.

        Uses the standard integral form
        ``D(a) propto H(a) * integral_0^a da' / (a' H(a'))^3``.
        """
        return self._growth_unnormalised(a) / self._growth_unnormalised(1.0)

    def _growth_unnormalised(self, a: float) -> float:
        if a <= 0:
            raise ValueError("scale factor must be positive")

        def integrand(ap: float) -> float:
            return 1.0 / (ap * self.E(ap)) ** 3

        value, _err = integrate.quad(integrand, 0.0, a, limit=200)
        return 2.5 * self.omega_m * self.E(a) * value

    def growth_rate(self, a: float) -> float:
        """Logarithmic growth rate f = dlnD/dlna (finite difference)."""
        eps = 1e-5 * a
        d_hi = self._growth_unnormalised(a + eps)
        d_lo = self._growth_unnormalised(a - eps)
        return a * (d_hi - d_lo) / (2.0 * eps) / self._growth_unnormalised(a)

    # -- leapfrog integrals ------------------------------------------------
    def drift_factor(self, a0: float, a1: float) -> float:
        """Comoving drift integral: int dt/a^2 = int da / (a^3 H)."""
        return self._leapfrog_integral(a0, a1, power=3)

    def kick_factor(self, a0: float, a1: float) -> float:
        """Comoving kick integral: int dt/a = int da / (a^2 H)."""
        return self._leapfrog_integral(a0, a1, power=2)

    def _leapfrog_integral(self, a0: float, a1: float, *, power: int) -> float:
        if a0 <= 0 or a1 <= 0:
            raise ValueError("scale factors must be positive")
        if a1 < a0:
            raise ValueError("integration requires a1 >= a0")

        def integrand(a: float) -> float:
            return 1.0 / (a**power * self.H(a))

        value, _err = integrate.quad(integrand, a0, a1, limit=200)
        return value

    # -- the paper's stepping schedule --------------------------------------
    def step_schedule(
        self, z_initial: float = 200.0, z_final: float = 50.0, n_steps: int = 5
    ) -> np.ndarray:
        """Scale-factor edges of an n-step run, linear in ``a``.

        HACC's outer time stepper is uniform in the scale factor; the
        default arguments give the paper's five steps from z=200 to
        z=50 (Section 3.4.3).
        """
        if z_final >= z_initial:
            raise ValueError("z_final must be below z_initial")
        if n_steps < 1:
            raise ValueError("need at least one step")
        a0 = float(self.a_of_z(z_initial))
        a1 = float(self.a_of_z(z_final))
        return np.linspace(a0, a1, n_steps + 1)
