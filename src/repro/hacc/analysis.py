"""In-situ analysis tooling.

The paper disabled all in-situ analysis for its timing study
(Section 3.4.4), but the analyses are part of what HACC *is* -- every
production run measures power spectra, mass functions and profiles on
the fly.  This module provides the reproduction's equivalents:

- :func:`measure_power_spectrum` -- the matter P(k) of a particle
  distribution (CIC deposit -> FFT -> shell average, with CIC window
  deconvolution).  Cross-validates the Zel'dovich IC generator: the
  measured spectrum of a fresh IC must match the input linear P(k).
- :func:`halo_mass_function` -- cumulative halo abundance from an FOF
  catalogue.
- :func:`radial_profile` -- spherically averaged density profile
  around a centre.
- :func:`density_pdf` -- one-point density PDF of the gas (the
  clustering diagnostic the step diagnostics summarise).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hacc.halo import HaloCatalog
from repro.hacc.mesh import cic_deposit, fourier_grid
from repro.hacc.particles import ParticleData


@dataclass(frozen=True)
class PowerSpectrumMeasurement:
    """Shell-averaged P(k) measurement."""

    k: np.ndarray        # bin centres, h/Mpc
    power: np.ndarray    # (Mpc/h)^3
    n_modes: np.ndarray  # modes per bin

    def __len__(self) -> int:
        return len(self.k)

    def as_dict(self) -> dict[str, np.ndarray]:
        """The measurement as a plain mapping (service product form)."""
        return {"k": self.k, "power": self.power, "n_modes": self.n_modes}


def measure_power_spectrum(
    particles: ParticleData,
    n_mesh: int = 32,
    *,
    n_bins: int | None = None,
    deconvolve_cic: bool = True,
    subtract_shot_noise: bool = False,
) -> PowerSpectrumMeasurement:
    """Measure the matter power spectrum of a particle set.

    Uses the standard estimator: CIC mass deposit, FFT, |delta_k|^2
    shell average, with optional CIC window deconvolution.  Conventions
    match the IC generator's, so a fresh Zel'dovich realisation
    measures back its input spectrum (property-tested).

    ``subtract_shot_noise`` defaults to off: grid-based (Zel'dovich)
    initial conditions are *not* Poisson samples and carry essentially
    no shot noise below the particle-lattice Nyquist frequency; enable
    it only for genuinely Poissonian distributions.
    """
    box = particles.box
    n_bins = n_bins if n_bins is not None else n_mesh // 2

    mesh = cic_deposit(particles.positions, particles.mass, n_mesh, box)
    mean = mesh.mean()
    if mean <= 0:
        raise ValueError("cannot measure the spectrum of a massless set")
    delta = mesh / mean - 1.0
    delta_k = np.fft.rfftn(delta)

    kx, ky, kz, k2 = fourier_grid(n_mesh, box)
    k = np.sqrt(k2)

    if deconvolve_cic:
        # CIC window: prod_i sinc^2(k_i dx / 2)
        dx = box / n_mesh
        with np.errstate(invalid="ignore"):
            wx = np.sinc(kx * dx / (2 * np.pi))
            wy = np.sinc(ky * dx / (2 * np.pi))
            wz = np.sinc(kz * dx / (2 * np.pi))
        window = (wx * wy * wz) ** 2
        window = np.where(window == 0.0, 1.0, window)
        delta_k = delta_k / window

    volume = box**3
    # numpy FFT scaling: P(k) = |delta_k|^2 * V / N^2
    power_3d = np.abs(delta_k) ** 2 * volume / n_mesh**6

    # rfft layout: the kz > 0 plane represents two modes (+-kz)
    weights = np.full(delta_k.shape, 2.0)
    weights[:, :, 0] = 1.0
    if n_mesh % 2 == 0:
        weights[:, :, -1] = 1.0

    k_min = 2 * np.pi / box
    k_max = k.max()
    edges = np.linspace(k_min * 0.999, k_max, n_bins + 1)
    which = np.digitize(k.ravel(), edges) - 1
    valid = (which >= 0) & (which < n_bins) & (k.ravel() > 0)

    w = weights.ravel()[valid]
    p = power_3d.ravel()[valid]
    kk = k.ravel()[valid]
    b = which[valid]

    sum_w = np.bincount(b, weights=w, minlength=n_bins)
    sum_p = np.bincount(b, weights=w * p, minlength=n_bins)
    sum_k = np.bincount(b, weights=w * kk, minlength=n_bins)
    occupied = sum_w > 0
    power = np.where(occupied, sum_p / np.maximum(sum_w, 1), 0.0)
    k_mean = np.where(occupied, sum_k / np.maximum(sum_w, 1), 0.0)

    if subtract_shot_noise:
        # equal-weight shot noise; for multi-mass sets use the
        # mass-weighted effective particle count
        m = particles.mass
        n_eff = float(m.sum() ** 2 / np.sum(m**2))
        power = power - volume / n_eff

    return PowerSpectrumMeasurement(
        k=k_mean[occupied], power=power[occupied], n_modes=sum_w[occupied]
    )


# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MassFunction:
    """Cumulative halo mass function N(>M)."""

    mass: np.ndarray      # bin thresholds, Msun/h
    cumulative: np.ndarray  # halos above each threshold
    volume: float         # (Mpc/h)^3

    @property
    def number_density(self) -> np.ndarray:
        """n(>M) in (Mpc/h)^-3."""
        return self.cumulative / self.volume


def halo_mass_function(
    catalog: HaloCatalog,
    particle_mass: float,
    box: float,
    *,
    n_bins: int = 8,
) -> MassFunction:
    """Cumulative mass function from an FOF catalogue."""
    if particle_mass <= 0 or box <= 0:
        raise ValueError("particle mass and box must be positive")
    if catalog.n_halos == 0:
        return MassFunction(
            mass=np.array([]), cumulative=np.array([]), volume=box**3
        )
    masses = catalog.sizes * particle_mass
    thresholds = np.logspace(
        np.log10(masses.min() * 0.999), np.log10(masses.max()), n_bins
    )
    cumulative = np.array([(masses >= t).sum() for t in thresholds])
    return MassFunction(mass=thresholds, cumulative=cumulative, volume=box**3)


# ---------------------------------------------------------------------------
def radial_profile(
    particles: ParticleData,
    centre: np.ndarray,
    r_max: float,
    *,
    n_bins: int = 16,
) -> tuple[np.ndarray, np.ndarray]:
    """Spherically averaged mass-density profile around ``centre``.

    Returns (bin centres, density) with periodic minimum-image
    distances; empty shells report zero density.
    """
    centre = np.asarray(centre, dtype=np.float64)
    if centre.shape != (3,):
        raise ValueError("centre must be a 3-vector")
    if r_max <= 0 or r_max > particles.box / 2:
        raise ValueError("r_max must be in (0, box/2]")
    d = particles.minimum_image(particles.positions - centre)
    r = np.linalg.norm(d, axis=1)
    edges = np.linspace(0.0, r_max, n_bins + 1)
    which = np.digitize(r, edges) - 1
    valid = (which >= 0) & (which < n_bins)
    mass = np.bincount(
        which[valid], weights=particles.mass[valid], minlength=n_bins
    )
    shell_volumes = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    centres = 0.5 * (edges[1:] + edges[:-1])
    return centres, mass / shell_volumes


# ---------------------------------------------------------------------------
def density_pdf(
    particles: ParticleData, n_mesh: int = 16, *, n_bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """One-point PDF of the CIC density contrast (1 + delta).

    Returns (bin centres, probability density); the distribution's
    spread is the clustering diagnostic that grows as structure forms.
    """
    mesh = cic_deposit(
        particles.positions, particles.mass, n_mesh, particles.box
    )
    mean = mesh.mean()
    if mean <= 0:
        raise ValueError("cannot form a density PDF for a massless set")
    one_plus_delta = (mesh / mean).ravel()
    hist, edges = np.histogram(
        one_plus_delta, bins=n_bins, range=(0.0, max(2.0, one_plus_delta.max())),
        density=True,
    )
    centres = 0.5 * (edges[1:] + edges[:-1])
    return centres, hist
