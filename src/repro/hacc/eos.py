"""Ideal-gas equation of state for the adiabatic mode.

CRK-HACC's adiabatic runs evolve a non-radiative ideal gas:
``P = (gamma - 1) rho u`` with ``gamma = 5/3``.
"""

from __future__ import annotations

import numpy as np

from repro.hacc.units import GAMMA_ADIABATIC


def pressure(rho: np.ndarray, u: np.ndarray, gamma: float = GAMMA_ADIABATIC) -> np.ndarray:
    """Gas pressure from density and specific internal energy."""
    rho = np.asarray(rho, dtype=np.float64)
    u = np.asarray(u, dtype=np.float64)
    return (gamma - 1.0) * rho * np.maximum(u, 0.0)


def sound_speed(rho: np.ndarray, u: np.ndarray, gamma: float = GAMMA_ADIABATIC) -> np.ndarray:
    """Adiabatic sound speed c_s = sqrt(gamma P / rho)."""
    p = pressure(rho, u, gamma)
    rho = np.asarray(rho, dtype=np.float64)
    safe_rho = np.where(rho > 0, rho, 1.0)
    cs = np.sqrt(gamma * p / safe_rho)
    return np.where(rho > 0, cs, 0.0)


def update_thermodynamics(particles, gamma: float = GAMMA_ADIABATIC) -> None:
    """Refresh pressure and sound speed of the baryon particles in place."""
    from repro.hacc.particles import Species

    mask = particles.species_mask(Species.BARYON)
    rho = particles.rho[mask]
    u = particles.u[mask]
    particles.pressure[mask] = pressure(rho, u, gamma)
    particles.cs[mask] = sound_speed(rho, u, gamma)
