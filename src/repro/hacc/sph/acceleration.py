"""The **Acceleration** kernel (paper timers ``upBarAc``/``upBarAcF``).

"Acceleration, which calculates the momentum derivative" (Section 5).
The CRK momentum equation uses the *antisymmetrised* corrected kernel
gradient so the pair force is equal and opposite:

    dv_i/dt = - (1/m_i) sum_j V_i V_j (P_i + P_j + Pi_ij) / 2
                          * (grad_i W^R_ij - grad_j W^R_ji)

with the Monaghan artificial-viscosity pressure Pi_ij active on
approaching pairs.  Exact momentum conservation under this pairing is a
test-suite invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.sph.corrections import CorrectionResult, corrected_kernel_gradients
from repro.hacc.sph.pairs import PairContext

#: Monaghan viscosity parameters (standard SPH values)
VISC_ALPHA = 1.0
VISC_BETA = 2.0
VISC_EPS = 0.01


@dataclass(frozen=True)
class AccelerationResult:
    """Momentum derivative and the pair viscosity (reused by Energy)."""

    dv_dt: np.ndarray        # (n, 3)
    visc_pi: np.ndarray      # (m,) per-pair viscous pressure
    #: per-pair antisymmetrised gradient (reused by the Energy kernel,
    #: which must see the identical pairing for exact conservation)
    delta_gw: np.ndarray     # (m, 3)
    max_signal_speed: float  # CFL input


def pair_viscosity(
    ctx: PairContext,
    h: np.ndarray,
    rho: np.ndarray,
    cs: np.ndarray,
    velocity: np.ndarray,
    *,
    alpha: float = VISC_ALPHA,
    beta: float = VISC_BETA,
) -> np.ndarray:
    """Monaghan viscous pressure Pi_ij >= 0 on approaching pairs."""
    dv = velocity[ctx.i] - velocity[ctx.j]
    vdotx = xp.rowwise_dot(dv, ctx.dx)
    h_ij = 0.5 * (h[ctx.i] + h[ctx.j])
    r2 = ctx.r**2
    mu = h_ij * vdotx / (r2 + VISC_EPS * h_ij**2)
    mu = xp.where(vdotx < 0.0, mu, 0.0)  # only approaching pairs
    cs_ij = 0.5 * (cs[ctx.i] + cs[ctx.j])
    rho_ij = 0.5 * (rho[ctx.i] + rho[ctx.j])
    return rho_ij * (-alpha * cs_ij * mu + beta * mu**2)


def antisymmetric_gradients(
    ctx: PairContext, h: np.ndarray, corr: CorrectionResult
) -> np.ndarray:
    """(grad_i W^R_ij - grad_j W^R_ji) / 2 on the directed pair list.

    The j-side gradient is evaluated with j's coefficients on the
    reversed displacement; rather than search for each directed pair's
    reverse, both orientations are computed from the cached geometry.
    The antisymmetrised pairing is what gives the momentum equation its
    exact conservation property.
    """
    from repro.hacc.sph.corrections import _gradient_for_side

    gw_i = _gradient_for_side(ctx, h, corr, side="i")
    gw_j = _gradient_for_side(ctx, h, corr, side="j")
    return 0.5 * (gw_i - gw_j)


def compute_acceleration(
    ctx: PairContext,
    h: np.ndarray,
    volume: np.ndarray,
    mass: np.ndarray,
    rho: np.ndarray,
    pressure: np.ndarray,
    cs: np.ndarray,
    velocity: np.ndarray,
    corr: CorrectionResult,
) -> AccelerationResult:
    """The Acceleration kernel."""
    for name, arr in (
        ("volume", volume),
        ("mass", mass),
        ("rho", rho),
        ("pressure", pressure),
        ("cs", cs),
    ):
        if len(np.asarray(arr)) != ctx.n:
            raise ValueError(f"{name} array does not match the pair context")
    if np.asarray(velocity).shape != (ctx.n, 3):
        raise ValueError("velocity must be (n, 3)")

    visc = pair_viscosity(ctx, h, rho, cs, velocity)
    delta_gw = antisymmetric_gradients(ctx, h, corr)

    vi = volume[ctx.i]
    vj = volume[ctx.j]
    p_sum = pressure[ctx.i] + pressure[ctx.j] + visc
    scale = -vi * vj * 0.5 * p_sum / mass[ctx.i]
    dv_dt = ctx.scatter_sum(scale[:, None] * delta_gw)

    # signal speed for the CFL criterion: sound crossing + viscous signal
    if ctx.n_pairs:
        dv = velocity[ctx.i] - velocity[ctx.j]
        vdotx = xp.rowwise_dot(dv, ctx.dx)
        r_safe = xp.where(ctx.r > 0, ctx.r, 1.0)
        approach = xp.where(vdotx < 0, -vdotx / r_safe, 0.0)
        sig = cs[ctx.i] + cs[ctx.j] + 3.0 * approach
        max_signal = float(xp.max(sig))
    else:
        max_signal = float(2.0 * xp.max(cs)) if ctx.n else 0.0

    return AccelerationResult(
        dv_dt=dv_dt,
        visc_pi=visc,
        delta_gw=delta_gw,
        max_signal_speed=max_signal,
    )
