"""The **Extras** kernel (paper timer ``upBarEx``).

"Extras, which evaluates the density and state gradients" (Section 5).
With the corrected kernel gradient, any field F has the consistent
difference-form gradient estimate

    grad F_i = sum_j V_j (F_j - F_i) grad_i W^R_ij

which is exact for linear fields when the CRK reproducing conditions
hold.  The kernel evaluates the density, the velocity gradient tensor
(whose trace, the velocity divergence, feeds the artificial-viscosity
limiter and the CFL criterion), and the pressure gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.sph.corrections import CorrectionResult, corrected_kernel_gradients
from repro.hacc.sph.pairs import PairContext


@dataclass(frozen=True)
class ExtrasResult:
    """Density and state gradients."""

    rho: np.ndarray        # (n,)
    grad_rho: np.ndarray   # (n, 3)
    grad_v: np.ndarray     # (n, 3, 3); grad_v[p, a, b] = d v_a / d x_b
    div_v: np.ndarray      # (n,)
    grad_p: np.ndarray     # (n, 3)


def compute_extras(
    ctx: PairContext,
    h: np.ndarray,
    volume: np.ndarray,
    mass: np.ndarray,
    velocity: np.ndarray,
    pressure: np.ndarray,
    corr: CorrectionResult,
) -> ExtrasResult:
    """The Extras kernel on the gas particle set."""
    volume = xp.ensure_float(volume)
    mass = xp.ensure_float(mass)
    velocity = xp.ensure_float(velocity)
    pressure = xp.ensure_float(pressure)
    for name, arr in (("volume", volume), ("mass", mass), ("pressure", pressure)):
        if len(arr) != ctx.n:
            raise ValueError(f"{name} array does not match the pair context")
    if velocity.shape != (ctx.n, 3):
        raise ValueError("velocity must be (n, 3)")

    # CRK density: the volume already encodes the local number density,
    # so the consistent mass density is m_i / V_i.
    if xp.any(volume <= 0):
        raise FloatingPointError("non-positive volumes")
    rho = mass / volume

    gw = corrected_kernel_gradients(ctx, h, corr)
    vj = volume[ctx.j]

    def gradient_of(field: np.ndarray) -> np.ndarray:
        diff = field[ctx.j] - field[ctx.i]
        if diff.ndim == 1:
            return ctx.scatter_sum((vj * diff)[:, None] * gw)
        # vector field: outer product (F_j - F_i)_a * gw_b
        contrib = vj[:, None, None] * diff[:, :, None] * gw[:, None, :]
        return ctx.scatter_sum(contrib)

    grad_rho = gradient_of(rho)
    grad_v = gradient_of(velocity)
    grad_p = gradient_of(pressure)
    div_v = xp.trace(grad_v)
    return ExtrasResult(
        rho=rho, grad_rho=grad_rho, grad_v=grad_v, div_v=div_v, grad_p=grad_p
    )
