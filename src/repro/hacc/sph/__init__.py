"""CRK-SPH: the five hot kernels of the paper's Section 5.

The Conservative Reproducing Kernel SPH scheme (Frontiere, Raskin &
Owen 2017) corrects the standard SPH kernel so that linear fields are
reproduced exactly.  Its per-step pipeline -- and the paper's five
hotspots -- is:

1. **Geometry** (:mod:`~repro.hacc.sph.geometry`): per-particle volumes
   from inverse number density, plus the smoothing-length update.
2. **Corrections** (:mod:`~repro.hacc.sph.corrections`): the linear
   reproducing-kernel coefficients A_i, B_i from the moment sums.
3. **Extras** (:mod:`~repro.hacc.sph.extras`): density and state
   gradients with the corrected kernel.
4. **Acceleration** (:mod:`~repro.hacc.sph.acceleration`): the momentum
   derivative with the symmetrised corrected kernel + viscosity.
5. **Energy** (:mod:`~repro.hacc.sph.energy`): the internal-energy
   derivative, pair-symmetric with the momentum update.

Each module exposes a vectorised pair-list implementation used by the
time stepper; the lane-structured GPU-variant implementations live in
:mod:`repro.kernels` and are cross-validated against these in the test
suite.
"""

from repro.hacc.sph.kernels_math import cubic_spline, cubic_spline_gradient
from repro.hacc.sph.geometry import compute_geometry
from repro.hacc.sph.corrections import compute_corrections
from repro.hacc.sph.extras import compute_extras
from repro.hacc.sph.acceleration import compute_acceleration
from repro.hacc.sph.energy import compute_energy_rate

__all__ = [
    "cubic_spline",
    "cubic_spline_gradient",
    "compute_geometry",
    "compute_corrections",
    "compute_extras",
    "compute_acceleration",
    "compute_energy_rate",
]
