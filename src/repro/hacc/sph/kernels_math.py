"""Smoothing-kernel mathematics.

The cubic B-spline kernel in 3-D with compact support ``2h``:

    W(r, h) = (1 / pi h^3) * { 1 - 1.5 q^2 + 0.75 q^3        0 <= q < 1
                               0.25 (2 - q)^3                1 <= q < 2
                               0                             q >= 2 }

with ``q = r/h``.  Both W and its gradient are vectorised over pair
arrays; per-interaction flop counts used by the GPU cost model are
derived from these expressions and pinned by tests
(:data:`W_FLOPS_PER_PAIR`, :data:`GRADW_FLOPS_PER_PAIR`).
"""

from __future__ import annotations

import numpy as np

from repro import xp

#: kernel support radius in units of h
SUPPORT = 2.0

_NORM_3D = 1.0 / np.pi

#: floating-point operations per W(r, h) evaluation (polynomial branch,
#: counting the q = r/h division and normalisation; used for costing)
W_FLOPS_PER_PAIR = 12
#: flops per gradient evaluation (dW/dq, the 1/(r h) factors, 3 components)
GRADW_FLOPS_PER_PAIR = 18


def cubic_spline(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Kernel value W(r, h); supports broadcasting of r against h.

    Dtype-preserving: float32 inputs produce a float32 kernel value
    (mixed-precision backends rely on this).
    """
    r = xp.ensure_float(r)
    h = xp.ensure_float(h)
    if xp.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    w = xp.where(
        q < 1.0,
        1.0 - 1.5 * q**2 + 0.75 * q**3,
        xp.where(q < SUPPORT, 0.25 * (2.0 - q) ** 3, 0.0),
    )
    return _NORM_3D * w / h**3


def cubic_spline_derivative(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """dW/dr at separation r."""
    r = xp.ensure_float(r)
    h = xp.ensure_float(h)
    if xp.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    dwdq = xp.where(
        q < 1.0,
        -3.0 * q + 2.25 * q**2,
        xp.where(q < SUPPORT, -0.75 * (2.0 - q) ** 2, 0.0),
    )
    return _NORM_3D * dwdq / h**4


def cubic_spline_gradient(dx: np.ndarray, r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Gradient of W with respect to x_i: (dW/dr) * dx / r.

    ``dx`` is the (n, 3) displacement ``x_i - x_j``; the r = 0 case is
    returned as a zero vector (the kernel is smooth at the origin).
    """
    dx = xp.ensure_float(dx)
    r = xp.ensure_float(r)
    dwdr = cubic_spline_derivative(r, h)
    safe_r = xp.where(r > 0, r, 1.0)
    scale = xp.where(r > 0, dwdr / safe_r, 0.0)
    return scale[:, None] * dx


def kernel_self_value(h: np.ndarray) -> np.ndarray:
    """W(0, h) -- the self contribution of each particle."""
    h = xp.ensure_float(h)
    return _NORM_3D / h**3


def wendland_c2(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Wendland C2 kernel in 3-D with support 2h.

    Production CRKSPH codes favour Wendland kernels for their stability
    against the pairing instability at high neighbour counts; provided
    as an alternative to the cubic spline.  Normalised so the 3-D
    integral over the support is 1.

        W(q) = (21 / 16 pi h^3) (1 - q/2)^4 (2 q + 1),  q = r/h < 2.
    """
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    base = np.maximum(1.0 - 0.5 * q, 0.0)
    w = base**4 * (2.0 * q + 1.0)
    return (21.0 / (16.0 * np.pi)) * w / h**3


def wendland_c2_derivative(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """dW/dr of the Wendland C2 kernel."""
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing lengths must be positive")
    q = r / h
    base = np.maximum(1.0 - 0.5 * q, 0.0)
    # d/dq [ (1-q/2)^4 (2q+1) ] = -5 q (1-q/2)^3
    dwdq = -5.0 * q * base**3
    return (21.0 / (16.0 * np.pi)) * dwdq / h**4


#: kernel families available to the SPH pipeline
KERNELS = {
    "cubic-spline": (cubic_spline, cubic_spline_derivative),
    "wendland-c2": (wendland_c2, wendland_c2_derivative),
}


def verify_normalisation(h: float = 1.0, n_samples: int = 200) -> float:
    """Numerical check that the kernel integrates to 1 over its support.

    Returns the quadrature value (tests assert it is ~1); exposed as a
    library function so examples can demonstrate kernel correctness.
    """
    r = np.linspace(0.0, SUPPORT * h, n_samples)
    w = cubic_spline(r, np.full_like(r, h))
    return float(np.trapezoid(4.0 * np.pi * r**2 * w, r))


def verify_kernel_normalisation(kernel: str, h: float = 1.0, n_samples: int = 400) -> float:
    """Quadrature of any registered kernel over its support."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose from {sorted(KERNELS)}")
    w_fn, _dw = KERNELS[kernel]
    r = np.linspace(0.0, SUPPORT * h, n_samples)
    w = w_fn(r, np.full_like(r, h))
    return float(np.trapezoid(4.0 * np.pi * r**2 * w, r))
