"""The **Corrections** kernel (paper timer ``upCor``).

"Corrections, which computes the reproducing kernel coefficients of the
higher order SPH solver" (Section 5).  The linear-order CRK correction
replaces W_ij with

    W^R_ij = A_i * (1 + B_i . (x_i - x_j)) * W_ij

where A_i (scalar) and B_i (vector) are chosen so the corrected kernel
*reproduces* constant and linear fields exactly:

    sum_j V_j W^R_ij = 1       and       sum_j V_j (x_j - x_i) W^R_ij = 0.

Writing the geometric moments

    m0_i = sum_j V_j W_ij            (including the self term)
    m1_i = sum_j V_j (x_j - x_i) W_ij
    m2_i = sum_j V_j (x_j - x_i)(x_j - x_i)^T W_ij

the solution is ``B_i = m2_i^{-1} m1_i`` and
``A_i = 1 / (m0_i - m1_i . B_i)``.  The reproducing conditions are the
kernel's correctness contract and are property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.sph.kernels_math import kernel_self_value
from repro.hacc.sph.pairs import PairContext

#: Tikhonov regularisation of m2 relative to its trace; keeps the 3x3
#: solves stable for particles with thin/degenerate neighbourhoods
M2_REGULARISATION = 1.0e-8


@dataclass(frozen=True)
class CorrectionResult:
    """CRK coefficients, their spatial gradients, and the raw moments.

    The coefficient *gradients* (grad_a, grad_b) are what make the
    corrected kernel's difference-form gradient estimates exact for
    linear fields; computing them is the bulk of the Corrections
    kernel's arithmetic (the "higher order SPH solver" coefficients of
    Section 5).
    """

    a: np.ndarray        # (n,)
    b: np.ndarray        # (n, 3)
    m0: np.ndarray       # (n,)
    m1: np.ndarray       # (n, 3)
    m2: np.ndarray       # (n, 3, 3)
    #: dA/dx_gamma, shape (n, 3)
    grad_a: np.ndarray
    #: dB_alpha/dx_gamma, shape (n, 3, 3) indexed [particle, alpha, gamma]
    grad_b: np.ndarray


def compute_moments(
    ctx: PairContext, h: np.ndarray, volume: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Geometric moments m0, m1, m2 (self term included in m0)."""
    w = ctx.kernel_values(h)
    vj = volume[ctx.j]
    vw = vj * w
    m0 = ctx.scatter_sum(vw) + volume * kernel_self_value(h)
    # x_j - x_i = -dx  (ctx.dx stores x_i - x_j)
    dji = -ctx.dx
    m1 = ctx.scatter_sum(vw[:, None] * dji)
    outer = dji[:, :, None] * dji[:, None, :]
    m2 = ctx.scatter_sum(vw[:, None, None] * outer)
    return m0, m1, m2


def solve_coefficients(
    m0: np.ndarray, m1: np.ndarray, m2: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Solve for (A, B) from the moments, with regularised 3x3 solves.

    Falls back to the zeroth-order correction (B = 0, A = 1/m0) for
    particles whose m2 is numerically singular, which reproduces
    constants but not linear fields -- the same graceful degradation
    production CRK codes use near pathological geometries.
    """
    n = len(m0)
    trace = xp.trace(m2)
    reg = M2_REGULARISATION * xp.maximum(trace, 1e-300)
    m2_reg = m2 + reg[:, None, None] * xp.eye(3, dtype=m2.dtype)[None, :, :]
    b = xp.zeros((n, 3), dtype=m1.dtype)
    try:
        b = xp.solve(m2_reg, m1[..., None])[..., 0]
    except np.linalg.LinAlgError:
        # per-particle fallback
        for k in range(n):
            try:
                b[k] = np.linalg.solve(m2_reg[k], m1[k])
            except np.linalg.LinAlgError:
                b[k] = 0.0
    denom = m0 - xp.rowwise_dot(m1, b)
    bad = ~xp.isfinite(denom) | (xp.abs(denom) < 1e-12 * xp.abs(m0))
    if xp.any(bad):
        b[bad] = 0.0
        denom = xp.where(bad, m0, denom)
    a = 1.0 / denom
    return a, b


def compute_moment_gradients(
    ctx: PairContext, h: np.ndarray, volume: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Spatial gradients of the moments with respect to x_i.

    With ``dji = x_j - x_i`` (so ``d dji / d x_i = -I``):

        dm0[p, g]       = sum_j V_j dW_g
        dm1[p, a, g]    = sum_j V_j (dji_a dW_g - delta_ag W)
        dm2[p, a, b, g] = sum_j V_j (dji_a dji_b dW_g
                                      - (delta_ag dji_b + delta_bg dji_a) W)

    where ``dW`` is the gradient of the uncorrected kernel with respect
    to x_i.  The self term's kernel gradient vanishes at r = 0.
    """
    w = ctx.kernel_values(h)
    gw = ctx.kernel_gradients(h)
    vj = volume[ctx.j]
    dji = -ctx.dx
    eye = xp.eye(3, dtype=w.dtype)

    dm0 = ctx.scatter_sum(vj[:, None] * gw)
    vw = vj * w
    # the self particle contributes -I V_i W(0, h_i) to dm1 (its dji is
    # zero, but the -delta W term survives); its dm0/dm2 terms vanish
    self_w = volume * kernel_self_value(h)
    dm1 = (
        ctx.scatter_sum(vj[:, None, None] * dji[:, :, None] * gw[:, None, :])
        - eye[None, :, :] * (ctx.scatter_sum(vw) + self_w)[:, None, None]
    )

    outer = dji[:, :, None] * dji[:, None, :]
    term1 = vj[:, None, None, None] * outer[:, :, :, None] * gw[:, None, None, :]
    # -(delta_ag dji_b + delta_bg dji_a) W
    term2 = -(
        eye[None, :, None, :] * dji[:, None, :, None]
        + eye[None, None, :, :] * dji[:, :, None, None]
    ) * vw[:, None, None, None]
    dm2 = ctx.scatter_sum(term1 + term2)
    return dm0, dm1, dm2


def solve_coefficient_gradients(
    m0: np.ndarray,
    m1: np.ndarray,
    m2: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    dm0: np.ndarray,
    dm1: np.ndarray,
    dm2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Gradients of (A, B) by implicit differentiation of the solves.

    From ``m2 B = m1``:  ``dB = m2^-1 (dm1 - dm2 . B)``.
    From ``A (m0 - B . m1) = 1``:
        ``dA = -A^2 (dm0 - dB . m1 - B . dm1)``.
    """
    trace = xp.trace(m2)
    reg = M2_REGULARISATION * xp.maximum(trace, 1e-300)
    m2_reg = m2 + reg[:, None, None] * xp.eye(3, dtype=m2.dtype)[None, :, :]

    # rhs[p, a, g] = dm1[p, a, g] - sum_b dm2[p, a, b, g] B[p, b]
    rhs = dm1 - xp.einsum("pabg,pb->pag", dm2, b)
    try:
        grad_b = xp.solve(m2_reg, rhs)
    except np.linalg.LinAlgError:
        grad_b = xp.zeros_like(rhs)

    # dD[p, g] = dm0 - sum_a (grad_b[a, g] m1_a + B_a dm1[a, g])
    d_denom = (
        dm0
        - xp.einsum("pag,pa->pg", grad_b, m1)
        - xp.einsum("pa,pag->pg", b, dm1)
    )
    grad_a = -(a**2)[:, None] * d_denom
    return grad_a, grad_b


def compute_corrections(
    ctx: PairContext, h: np.ndarray, volume: np.ndarray
) -> CorrectionResult:
    """The Corrections kernel: moments, coefficients, and their
    gradients."""
    volume = xp.ensure_float(volume)
    if len(volume) != ctx.n:
        raise ValueError("volume array does not match the pair context")
    m0, m1, m2 = compute_moments(ctx, h, volume)
    a, b = solve_coefficients(m0, m1, m2)
    dm0, dm1, dm2 = compute_moment_gradients(ctx, h, volume)
    grad_a, grad_b = solve_coefficient_gradients(m0, m1, m2, a, b, dm0, dm1, dm2)
    return CorrectionResult(
        a=a, b=b, m0=m0, m1=m1, m2=m2, grad_a=grad_a, grad_b=grad_b
    )


def corrected_kernel_values(
    ctx: PairContext, h: np.ndarray, corr: CorrectionResult
) -> np.ndarray:
    """W^R_ij = A_i (1 + B_i . (x_i - x_j)) W_ij on all pairs."""
    w = ctx.kernel_values(h)
    lin = 1.0 + xp.rowwise_dot(corr.b[ctx.i], ctx.dx)
    return corr.a[ctx.i] * lin * w


def corrected_kernel_gradients(
    ctx: PairContext, h: np.ndarray, corr: CorrectionResult
) -> np.ndarray:
    """The full gradient grad_i W^R_ij, including the grad-A / grad-B
    terms.

    With ``d = x_i - x_j`` and ``lin = 1 + B_i . d``:

        grad_g W^R = (dA_g lin + A ((dB . d)_g + B_g)) W + A lin grad_g W

    Carrying the coefficient gradients is what makes the corrected
    difference-form gradient estimates *exact* for affine fields -- the
    property the test suite pins and the reason the Corrections kernel
    is one of the paper's five arithmetic hotspots.
    """
    return _gradient_for_side(ctx, h, corr, side="i")


def _gradient_for_side(
    ctx: PairContext, h: np.ndarray, corr: CorrectionResult, *, side: str
) -> np.ndarray:
    """grad W^R for either orientation of the directed pair list.

    ``side="i"`` gives grad_i W^R_ij (coefficients of i, displacement
    x_i - x_j); ``side="j"`` gives grad_j W^R_ji (coefficients of j,
    displacement x_j - x_i), which the Acceleration kernel needs for
    its antisymmetrised pairing.
    """
    if side == "i":
        idx, d = ctx.i, ctx.dx
    elif side == "j":
        idx, d = ctx.j, -ctx.dx
    else:
        raise ValueError(f"side must be 'i' or 'j', got {side!r}")
    from repro.hacc.sph.kernels_math import cubic_spline, cubic_spline_gradient

    h = xp.ensure_float(h)
    h_side = h[idx] if h.ndim else h
    w = cubic_spline(ctx.r, h_side)
    gw = cubic_spline_gradient(d, ctx.r, h_side)
    a = corr.a[idx]
    b = corr.b[idx]
    grad_a = corr.grad_a[idx]
    grad_b = corr.grad_b[idx]
    lin = 1.0 + xp.rowwise_dot(b, d)
    db_dot_d = xp.einsum("pag,pa->pg", grad_b, d)
    coeff_term = grad_a * lin[:, None] + a[:, None] * (db_dot_d + b)
    return coeff_term * w[:, None] + (a * lin)[:, None] * gw
