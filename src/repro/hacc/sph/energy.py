"""The **Energy** kernel (paper timers ``upBarDu``/``upBarDuF``).

"Energy, which solves the derivative of the internal energy"
(Section 5).  The compatible form pairs exactly with the momentum
equation of :mod:`repro.hacc.sph.acceleration`:

    du_i/dt = (1/m_i) sum_j V_i V_j (P_i + Pi_ij/2) / 2
                        * (v_i - v_j) . (grad_i W^R_ij - grad_j W^R_ji)

With this pairing the pair's thermal-energy gain equals the pair's
kinetic-energy loss *identically*, so total energy is conserved to
round-off -- the strongest invariant the test suite checks on the hydro
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.sph.acceleration import AccelerationResult
from repro.hacc.sph.pairs import PairContext


@dataclass(frozen=True)
class EnergyResult:
    """Internal-energy derivative."""

    du_dt: np.ndarray  # (n,)


def compute_energy_rate(
    ctx: PairContext,
    volume: np.ndarray,
    mass: np.ndarray,
    pressure: np.ndarray,
    velocity: np.ndarray,
    accel: AccelerationResult,
) -> EnergyResult:
    """The Energy kernel, reusing the Acceleration kernel's pairing.

    ``accel`` must come from :func:`compute_acceleration` on the *same*
    pair context: the antisymmetrised gradients and pair viscosities
    are shared state, exactly as in CRK-HACC where the two kernels read
    the same interaction lists.
    """
    volume = xp.ensure_float(volume)
    mass = xp.ensure_float(mass)
    pressure = xp.ensure_float(pressure)
    velocity = xp.ensure_float(velocity)
    if accel.delta_gw.shape != (ctx.n_pairs, 3):
        raise ValueError("acceleration result does not match the pair context")

    dv = velocity[ctx.i] - velocity[ctx.j]
    work = xp.rowwise_dot(dv, accel.delta_gw)
    vi = volume[ctx.i]
    vj = volume[ctx.j]
    p_eff = pressure[ctx.i] + 0.5 * accel.visc_pi
    contrib = vi * vj * 0.5 * p_eff * work / mass[ctx.i]
    du_dt = ctx.scatter_sum(contrib)
    return EnergyResult(du_dt=du_dt)


def pairwise_energy_balance(
    ctx: PairContext,
    volume: np.ndarray,
    mass: np.ndarray,
    pressure: np.ndarray,
    velocity: np.ndarray,
    accel: AccelerationResult,
) -> float:
    """Residual of the total-energy balance (diagnostic).

    Computes d/dt (kinetic + thermal) from the two kernels' outputs;
    the compatible discretisation makes this zero to round-off.
    """
    energy = compute_energy_rate(ctx, volume, mass, pressure, velocity, accel)
    thermal_rate = float(np.sum(mass * energy.du_dt))
    kinetic_rate = float(np.sum(mass[:, None] * velocity * accel.dv_dt))
    return thermal_rate + kinetic_rate
