"""The **Geometry** kernel (paper timer ``upGeo``).

"Geometry, which measures the volumes of gas particles" (Section 5).
The CRK volume is the inverse number density,

    V_i = 1 / ( W(0, h_i) + sum_j W(r_ij, h_i) ),

and the smoothing length is relaxed toward ``eta * V_i^(1/3)`` so each
particle keeps a roughly constant neighbour count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.sph.kernels_math import kernel_self_value
from repro.hacc.sph.pairs import PairContext
from repro.hacc.units import SPH_ETA

#: under-relaxation factor of the smoothing-length update; a full
#: Newton update can oscillate for irregular particle distributions
H_RELAXATION = 0.5


@dataclass(frozen=True)
class GeometryResult:
    """Output of the Geometry kernel."""

    volume: np.ndarray
    number_density: np.ndarray
    h_new: np.ndarray


def compute_geometry(
    ctx: PairContext,
    h: np.ndarray,
    *,
    eta: float = SPH_ETA,
    relax: float = H_RELAXATION,
) -> GeometryResult:
    """Per-particle volumes and smoothing-length update.

    ``ctx`` must be built over the gas particles only (dark matter does
    not participate in hydrodynamics).
    """
    h = xp.ensure_float(h)
    if len(h) != ctx.n:
        raise ValueError("h array does not match the pair context")
    number_density = ctx.scatter_sum(ctx.kernel_values(h))
    number_density += kernel_self_value(h)
    if xp.any(number_density <= 0):
        raise FloatingPointError("non-positive number density")
    volume = 1.0 / number_density
    h_target = eta * xp.cbrt(volume)
    h_new = h + relax * (h_target - h)
    return GeometryResult(volume=volume, number_density=number_density, h_new=h_new)
