"""Shared pair-interaction context for the SPH kernels.

All five hot kernels iterate the same neighbour structure; CRK-HACC
builds interaction lists once per step and reuses them.  The
:class:`PairContext` caches the directed pair list, displacements and
separations so the kernel modules stay focused on their physics, and
can ride a shared :class:`~repro.hacc.neighbors.CellList` (possibly
binned over a superset of the SPH particles) so one spatial
decomposition serves the whole step.

Scatter reductions use a sorted-segment ``np.add.reduceat`` over the
pair list's CSR structure instead of ``np.add.at``: the pair list is
sorted by i once, then every reduction is a contiguous segmented sum.
Summation order within a particle's segment differs from the raw pair
order ``np.add.at`` used, so results agree with the scatter formulation
to floating-point round-off (last-ulp), not bitwise.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.neighbors import CellList, find_pairs
from repro.hacc.sph.kernels_math import SUPPORT, cubic_spline, cubic_spline_gradient

#: largest cutoff the minimum-image pair search admits, as a fraction
#: of the box (strictly below box/2 to keep the image unique)
MINIMUM_IMAGE_FRACTION = 0.499


class CutoffTruncationWarning(RuntimeWarning):
    """The SPH kernel support exceeded the minimum-image bound and the
    pair search cutoff was clamped: neighbours beyond the bound are
    silently missing from every kernel sum."""


def sph_cutoff(h: np.ndarray, box: float) -> tuple[float, float]:
    """(requested, clamped) pair-search cutoff for smoothing lengths ``h``.

    The request is the full kernel support ``SUPPORT * max(h)``; the
    clamp is the minimum-image bound ``MINIMUM_IMAGE_FRACTION * box``.

    ``box`` must be a positive scalar.  An array here almost always
    means the ``(h, box)`` arguments were swapped, which used to
    surface as an inscrutable ``ValueError: The truth value of an
    array...`` out of ``min()``; it is rejected up front instead.
    """
    if np.ndim(box) != 0:
        raise TypeError(
            f"box must be a scalar, got an array of shape "
            f"{np.shape(box)}; did you swap the (h, box) arguments of "
            "sph_cutoff?"
        )
    box = float(box)
    if box <= 0:
        raise ValueError(f"box must be positive, got {box}")
    requested = float(SUPPORT * np.max(h))
    return requested, min(requested, MINIMUM_IMAGE_FRACTION * box)


@dataclass
class PairContext:
    """Directed SPH pair list with cached geometry.

    ``i``/``j`` index into the position array; pairs are directed
    (both (i, j) and (j, i) present), which matches the scatter-free
    gather formulation of the vectorised kernels.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray  # x_i - x_j, minimum image, shape (m, 3)
    r: np.ndarray   # |dx|
    n: int          # number of particles

    @classmethod
    def build(
        cls,
        pos: np.ndarray,
        h: np.ndarray,
        box: float,
        *,
        cell_list: CellList | None = None,
        subset: np.ndarray | None = None,
        metrics=None,
    ) -> "PairContext":
        """Pairs within the kernel support ``SUPPORT * max(h)``.

        ``cell_list``, when given, is reused instead of re-binning; with
        ``subset`` it may be binned over a superset of ``pos`` (e.g. the
        full two-species particle set), ``subset`` giving the rows of
        the cell list's set that ``pos``/``h`` correspond to.

        A support radius beyond the minimum-image bound cannot be
        searched; the cutoff is clamped, a
        :class:`CutoffTruncationWarning` is emitted, and the
        ``sim.pairs.cutoff_truncated`` counter is incremented on
        ``metrics`` so the truncation is observable instead of silent.
        """
        pos = xp.ensure_float(pos)
        h = xp.ensure_float(h)
        if len(pos) == 0:
            empty = np.array([], dtype=np.int64)
            return cls(
                i=empty,
                j=empty,
                dx=xp.zeros((0, 3), dtype=pos.dtype),
                r=xp.zeros(0, dtype=pos.dtype),
                n=0,
            )
        if xp.any(h <= 0):
            raise ValueError("smoothing lengths must be positive")
        requested, cutoff = sph_cutoff(h, box)
        if cutoff < requested:
            warnings.warn(
                f"SPH kernel support {requested:.6g} exceeds the "
                f"minimum-image bound {cutoff:.6g} of box {box:.6g}; "
                "the pair search is truncated and kernel sums are "
                "missing far neighbours",
                CutoffTruncationWarning,
                stacklevel=2,
            )
            if metrics is not None:
                metrics.counter("sim.pairs.cutoff_truncated").inc()
        if cell_list is not None and subset is not None:
            subset = np.asarray(subset, dtype=np.int64)
            if len(subset) != len(pos):
                raise ValueError(
                    f"subset of {len(subset)} rows does not match "
                    f"{len(pos)} positions"
                )
            idx_i, idx_j = cell_list.pairs_within(cutoff, subset=subset)
        else:
            idx_i, idx_j = find_pairs(pos, box, cutoff, cell_list=cell_list)
        d = pos[idx_i] - pos[idx_j]
        half = 0.5 * box
        d = (d + half) % box - half
        r = xp.sqrt(xp.rowwise_dot(d, d))
        return cls(i=idx_i, j=idx_j, dx=d, r=r, n=len(pos))

    @property
    def n_pairs(self) -> int:
        return len(self.i)

    def _h_i(self, h) -> np.ndarray:
        """Per-pair i-side smoothing lengths, broadcasting a scalar
        ``h`` like the rest of the SPH API does (a scalar used to crash
        with ``TypeError: 'float' object is not subscriptable``)."""
        h = xp.ensure_float(h)
        if h.ndim == 0:
            return h
        return h[self.i]

    def kernel_values(self, h: np.ndarray) -> np.ndarray:
        """W(r_ij, h_i) on all pairs; ``h`` may be (n,) or scalar."""
        return cubic_spline(self.r, self._h_i(h))

    def kernel_gradients(self, h: np.ndarray) -> np.ndarray:
        """grad_i W(r_ij, h_i) on all pairs, shape (m, 3); ``h`` may be
        (n,) or scalar."""
        return cubic_spline_gradient(self.dx, self.r, self._h_i(h))

    def _segments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(sort order, segment starts, segment particle ids) of the
        pair list grouped by i; computed once and cached, since every
        kernel's scatter reuses it."""
        cached = getattr(self, "_segment_cache", None)
        if cached is None:
            order = xp.argsort(self.i)
            i_sorted = self.i[order]
            starts = xp.flatnonzero(
                np.r_[True, i_sorted[1:] != i_sorted[:-1]]
            )
            cached = (order, starts, i_sorted[starts])
            self._segment_cache = cached
        return cached

    def scatter_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum pair values into per-particle accumulators over i.

        ``values`` may be (m,) or (m, k); returns (n,) or (n, k) in the
        *input dtype* (float32 pair values accumulate as float32
        instead of silently upcasting to float64).  This is the
        vectorised analogue of the GPU kernels' atomic adds: a
        sorted-segment reduction (sort by i once, then one contiguous
        ``xp.segment_sum`` pass per call -- ``np.add.reduceat`` on the
        reference backend).
        """
        values = xp.asarray(values)
        out = xp.zeros((self.n,) + values.shape[1:], dtype=values.dtype)
        if self.n_pairs == 0:
            return out
        order, starts, ids = self._segments()
        out[ids] = xp.segment_sum(values[order], starts)
        return out

    def mean_neighbors(self) -> float:
        """Mean directed neighbour count (cost-model input)."""
        if self.n == 0:
            return 0.0
        return self.n_pairs / self.n
