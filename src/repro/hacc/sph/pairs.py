"""Shared pair-interaction context for the SPH kernels.

All five hot kernels iterate the same neighbour structure; CRK-HACC
builds interaction lists once per step and reuses them.  The
:class:`PairContext` caches the directed pair list, displacements and
separations so the kernel modules stay focused on their physics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hacc.neighbors import find_pairs
from repro.hacc.sph.kernels_math import SUPPORT, cubic_spline, cubic_spline_gradient


@dataclass
class PairContext:
    """Directed SPH pair list with cached geometry.

    ``i``/``j`` index into the position array; pairs are directed
    (both (i, j) and (j, i) present), which matches the scatter-free
    gather formulation of the vectorised kernels.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray  # x_i - x_j, minimum image, shape (m, 3)
    r: np.ndarray   # |dx|
    n: int          # number of particles

    @classmethod
    def build(cls, pos: np.ndarray, h: np.ndarray, box: float) -> "PairContext":
        """Pairs within the kernel support ``SUPPORT * max(h)``."""
        pos = np.asarray(pos, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        if len(pos) == 0:
            empty = np.array([], dtype=np.int64)
            return cls(i=empty, j=empty, dx=np.zeros((0, 3)), r=np.zeros(0), n=0)
        if np.any(h <= 0):
            raise ValueError("smoothing lengths must be positive")
        cutoff = float(SUPPORT * h.max())
        cutoff = min(cutoff, 0.499 * box)
        idx_i, idx_j = find_pairs(pos, box, cutoff)
        d = pos[idx_i] - pos[idx_j]
        half = 0.5 * box
        d = (d + half) % box - half
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        return cls(i=idx_i, j=idx_j, dx=d, r=r, n=len(pos))

    @property
    def n_pairs(self) -> int:
        return len(self.i)

    def kernel_values(self, h: np.ndarray) -> np.ndarray:
        """W(r_ij, h_i) on all pairs."""
        return cubic_spline(self.r, h[self.i])

    def kernel_gradients(self, h: np.ndarray) -> np.ndarray:
        """grad_i W(r_ij, h_i) on all pairs, shape (m, 3)."""
        return cubic_spline_gradient(self.dx, self.r, h[self.i])

    def scatter_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum pair values into per-particle accumulators over i.

        ``values`` may be (m,) or (m, k); returns (n,) or (n, k).  This
        is the vectorised analogue of the GPU kernels' atomic adds.
        """
        values = np.asarray(values)
        if values.ndim == 1:
            out = np.zeros(self.n)
            np.add.at(out, self.i, values)
            return out
        out = np.zeros((self.n,) + values.shape[1:])
        np.add.at(out, self.i, values)
        return out

    def mean_neighbors(self) -> float:
        """Mean directed neighbour count (cost-model input)."""
        if self.n == 0:
            return 0.0
        return self.n_pairs / self.n
