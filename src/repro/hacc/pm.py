"""Long-range particle-mesh gravity: the FFT Poisson solver.

HACC splits gravity into a long-range particle-mesh component solved
with a distributed FFT and a short-range particle-particle component
(Section 3.1).  The split is realised with a Gaussian filter: the mesh
force carries ``exp(-k^2 r_s^2)`` of the total, and the short-range
kernel (:mod:`repro.hacc.short_range`) supplies the complement inside a
cutoff of a few ``r_s``.

Everything here is host-side physics in the paper's accounting
("only a small fraction of time goes to host-side operations like the
3D distributed-memory FFTs", Section 3.4.4), so it does not pass
through the virtual-GPU executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import xp
from repro.hacc.mesh import cic_deposit, cic_interpolate, fourier_grid
from repro.hacc.particles import ParticleData
from repro.hacc.units import G_NEWTON


@dataclass(frozen=True)
class PMConfig:
    """Particle-mesh solver parameters."""

    n_mesh: int = 32
    #: force-splitting scale in mesh cells (HACC uses ~1-2 cells)
    split_cells: float = 1.25

    def __post_init__(self):
        if self.n_mesh < 4:
            raise ValueError("mesh too small")
        if self.split_cells <= 0:
            raise ValueError("split scale must be positive")


class PMSolver:
    """FFT-based long-range Poisson solver on a periodic box."""

    def __init__(self, box: float, config: PMConfig | None = None):
        if box <= 0:
            raise ValueError("box must be positive")
        self.box = box
        self.config = config or PMConfig()
        self._k = fourier_grid(self.config.n_mesh, box)

    @property
    def split_scale(self) -> float:
        """Force-splitting scale r_s in Mpc/h."""
        return self.config.split_cells * self.box / self.config.n_mesh

    @property
    def cutoff(self) -> float:
        """Short-range cutoff: 4.5 r_s.

        The Gaussian-filtered complement decays as exp(-r^2 / 4 r_s^2);
        at 4.5 r_s the truncated force fraction is below 2%.
        """
        return 4.5 * self.split_scale

    # ------------------------------------------------------------------
    def density_contrast(self, particles: ParticleData) -> np.ndarray:
        """CIC mass deposit converted to density contrast delta."""
        n_mesh = self.config.n_mesh
        mesh = cic_deposit(
            particles.positions, particles.mass, n_mesh, self.box
        )
        cell_volume = (self.box / n_mesh) ** 3
        rho = mesh / cell_volume
        rho_bar = particles.total_mass() / self.box**3
        if rho_bar <= 0:
            raise ValueError("cannot form density contrast with zero mass")
        return rho / rho_bar - 1.0

    def potential_k(self, delta_k: np.ndarray, rho_bar: float) -> np.ndarray:
        """Filtered potential in k-space: -4 pi G rho_bar delta_k / k^2
        with the long-range Gaussian filter applied."""
        _kx, _ky, _kz, k2 = self._k
        rs = self.split_scale
        k2_safe = xp.where(k2 == 0.0, 1.0, k2)
        phi_k = -4.0 * np.pi * G_NEWTON * rho_bar * delta_k / k2_safe
        phi_k *= xp.exp(-k2 * rs**2)
        phi_k = xp.where(k2 == 0.0, 0.0, phi_k)
        return phi_k

    def accelerations(self, particles: ParticleData) -> np.ndarray:
        """(n, 3) long-range comoving accelerations at particle positions."""
        n_mesh = self.config.n_mesh
        delta = self.density_contrast(particles)
        delta_k = xp.rfftn(delta)
        rho_bar = particles.total_mass() / self.box**3
        phi_k = self.potential_k(delta_k, rho_bar)

        kx, ky, kz, _k2 = self._k
        acc = xp.empty((len(particles), 3))
        pos = particles.positions
        for axis, kcomp in enumerate((kx, ky, kz)):
            # force = -grad phi -> -i k phi in k-space
            force_mesh = xp.irfftn(-1j * kcomp * phi_k, s=(n_mesh,) * 3, axes=(0, 1, 2))
            acc[:, axis] = cic_interpolate(force_mesh, pos, self.box)
        return acc

    def potential_energy(self, particles: ParticleData) -> float:
        """Long-range potential energy (diagnostic): 0.5 sum m phi."""
        n_mesh = self.config.n_mesh
        delta = self.density_contrast(particles)
        delta_k = xp.rfftn(delta)
        rho_bar = particles.total_mass() / self.box**3
        phi_k = self.potential_k(delta_k, rho_bar)
        phi_mesh = xp.irfftn(phi_k, s=(n_mesh,) * 3, axes=(0, 1, 2))
        phi = cic_interpolate(phi_mesh, particles.positions, self.box)
        return float(0.5 * np.sum(particles.mass * phi))
