"""Friends-of-Friends and DBSCAN halo finding.

Section 3.1: modelling AGN feedback requires frequently identifying
massive dark-matter halos; HACC's host-side FOF finder was too slow, so
the team worked with the ArborX developers on a GPU DBSCAN that
executes the FOF algorithm.  This module is the substrate substitute:
a union-find FOF finder and a DBSCAN variant that, for
``min_points <= 2``, provably reduces to FOF (a property the test
suite exercises -- it is exactly the equivalence the ArborX
collaboration relied on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hacc.neighbors import CellList, find_pairs


class UnionFind:
    """Path-compressing union-find over ``n`` elements."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("size must be non-negative")
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        root = x
        parent = self.parent
        while parent[root] != root:
            root = parent[root]
        # path compression
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[max(ra, rb)] = min(ra, rb)

    def labels(self) -> np.ndarray:
        """Canonical root label for every element."""
        return np.array([self.find(i) for i in range(len(self.parent))])


@dataclass(frozen=True)
class HaloCatalog:
    """Result of a halo-finding pass."""

    #: per-particle group label (-1 for unclustered / noise)
    labels: np.ndarray
    #: number of groups with at least ``min_members`` particles
    n_halos: int
    #: sizes of those groups, descending
    sizes: np.ndarray

    def members(self, halo: int) -> np.ndarray:
        """Particle indices of the ``halo``-th largest group."""
        if not 0 <= halo < self.n_halos:
            raise IndexError(f"halo {halo} out of range")
        unique, counts = np.unique(self.labels[self.labels >= 0], return_counts=True)
        order = np.argsort(counts)[::-1]
        target = unique[order[halo]]
        return np.nonzero(self.labels == target)[0]


def fof(
    pos: np.ndarray,
    box: float,
    linking_length: float,
    *,
    min_members: int = 10,
    cell_list: CellList | None = None,
) -> HaloCatalog:
    """Friends-of-Friends halo finding.

    Particles closer than ``linking_length`` are friends; the
    transitive closure of friendship defines the groups.  Groups below
    ``min_members`` are labelled -1 (HACC's convention for field
    particles).  ``cell_list`` reuses an existing spatial decomposition
    of ``pos`` (e.g. shared with a DBSCAN pass at the same scale).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    uf = UnionFind(n)
    i, j = find_pairs(pos, box, linking_length, cell_list=cell_list)
    for a, b in zip(i.tolist(), j.tolist()):
        if a < b:
            uf.union(a, b)
    raw = uf.labels()
    return _catalog_from_labels(raw, min_members, noise=np.zeros(n, dtype=bool))


def dbscan(
    pos: np.ndarray,
    box: float,
    eps: float,
    min_points: int,
    *,
    min_members: int = 10,
    cell_list: CellList | None = None,
) -> HaloCatalog:
    """DBSCAN clustering as used for the FOF workload.

    A particle with at least ``min_points`` neighbours within ``eps``
    (counting itself) is a *core* point.  Core points closer than
    ``eps`` are connected; border points join any neighbouring core's
    cluster; everything else is noise.  With ``min_points <= 2`` every
    particle in a pair is core and DBSCAN reduces exactly to FOF with
    ``linking_length = eps``.  ``cell_list`` reuses an existing spatial
    decomposition of ``pos`` (e.g. shared with the FOF pass).
    """
    pos = np.asarray(pos, dtype=np.float64)
    n = len(pos)
    i, j = find_pairs(pos, box, eps, cell_list=cell_list)
    degree = np.bincount(i, minlength=n) + 1  # + itself
    core = degree >= min_points

    uf = UnionFind(n)
    for a, b in zip(i.tolist(), j.tolist()):
        if a < b and core[a] and core[b]:
            uf.union(a, b)
    raw = uf.labels()

    # border points: non-core with a core neighbour join that cluster
    noise = ~core
    border_mask = (~core[i]) & core[j]
    for a, b in zip(i[border_mask].tolist(), j[border_mask].tolist()):
        raw[a] = uf.find(b)
        noise[a] = False
    # isolated core points keep their own label; non-core, no core
    # neighbour -> noise
    return _catalog_from_labels(raw, min_members, noise=noise)


def _catalog_from_labels(
    raw: np.ndarray, min_members: int, noise: np.ndarray
) -> HaloCatalog:
    labels = raw.copy()
    labels[noise] = -1
    valid = labels >= 0
    unique, counts = np.unique(labels[valid], return_counts=True)
    keep = counts >= min_members
    kept = set(unique[keep].tolist())
    labels = np.where(
        np.isin(labels, list(kept)) if kept else np.zeros(len(labels), bool),
        labels,
        -1,
    )
    sizes = np.sort(counts[keep])[::-1]
    return HaloCatalog(labels=labels, n_halos=int(keep.sum()), sizes=sizes)
