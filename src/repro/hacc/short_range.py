"""Short-range particle-particle gravity.

The complement of the PM force inside the cutoff.  With a Gaussian
long-range filter ``exp(-k^2 r_s^2)``, the short-range pair force
kernel is

    f(r) = 1/r^3 * [ erfc(r / 2 r_s) + (r / (sqrt(pi) r_s)) exp(-r^2 / 4 r_s^2) ]

HACC does not evaluate erfc in the inner loop: it uses a fitted
polynomial of the scaled separation (the ``HACC_CUDA_POLY_ORDER=5``
build flag in the paper's Appendix A).  We reproduce both: the exact
kernel, and a degree-5 polynomial fit in r^2 used by the GPU-style
path, with tests pinning the fit error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import special

from repro import xp
from repro.hacc.neighbors import CellList, find_pairs
from repro.hacc.particles import ParticleData
from repro.hacc.units import G_NEWTON

#: polynomial order of the fitted force kernel (Appendix A)
POLY_ORDER = 5


def exact_short_range_factor(r: np.ndarray, r_s: float) -> np.ndarray:
    """The dimensionless short-range factor S(r) with F = G m1 m2 S(r) r_hat / r^2.

    S(r) -> 1 as r -> 0 (full Newtonian force) and -> 0 beyond a few
    r_s (the mesh carries it).
    """
    r = np.asarray(r, dtype=np.float64)
    x = r / (2.0 * r_s)
    return special.erfc(x) + (r / (np.sqrt(np.pi) * r_s)) * np.exp(-(x**2))


@dataclass(frozen=True)
class PolynomialForceKernel:
    """Degree-5 polynomial fit of S(r)/r^3 * r^3 = S(r) in u = (r/cutoff)^2.

    Fitting in r^2 avoids a square root in the inner loop, exactly the
    trick the production CUDA kernel uses.
    """

    coefficients: np.ndarray
    cutoff: float
    r_s: float

    @classmethod
    def fit(cls, r_s: float, cutoff: float, order: int = POLY_ORDER) -> "PolynomialForceKernel":
        if r_s <= 0 or cutoff <= 0:
            raise ValueError("scales must be positive")
        # Sample away from r=0 (softened region handled separately).
        r = np.linspace(1e-3 * cutoff, cutoff, 512)
        u = (r / cutoff) ** 2
        target = exact_short_range_factor(r, r_s)
        coeffs = np.polynomial.polynomial.polyfit(u, target, order)
        return cls(coefficients=coeffs, cutoff=cutoff, r_s=r_s)

    def __call__(self, r: np.ndarray) -> np.ndarray:
        """Evaluate the fitted S(r); zero beyond the cutoff."""
        r = np.asarray(r, dtype=np.float64)
        u = (r / self.cutoff) ** 2
        s = np.polynomial.polynomial.polyval(u, self.coefficients)
        return np.where(r < self.cutoff, s, 0.0)

    def max_fit_error(self) -> float:
        """Max absolute error of the fit strictly inside the cutoff.

        The truncation error *at* the cutoff (where the kernel is
        clamped to zero) is a property of the force split, not of the
        polynomial fit, and is excluded here.
        """
        r = np.linspace(1e-3 * self.cutoff, 0.999 * self.cutoff, 2048)
        return float(np.max(np.abs(self(r) - exact_short_range_factor(r, self.r_s))))


class ShortRangeSolver:
    """Direct particle-particle short-range gravity inside the cutoff."""

    def __init__(self, box: float, r_s: float, cutoff: float, softening: float | None = None):
        self.box = box
        self.r_s = r_s
        self.cutoff = cutoff
        #: Plummer softening; defaults to a small fraction of r_s
        self.softening = softening if softening is not None else 0.02 * r_s
        self.kernel = PolynomialForceKernel.fit(r_s, cutoff)
        #: memoised (positions, i, j) of the last pair search, so the
        #: cost model (:meth:`interaction_count`) and the force
        #: evaluation (:meth:`accelerations`) build the list exactly
        #: once per particle state
        self._pair_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def pair_list(
        self, particles: ParticleData, *, cell_list: CellList | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Directed pair list inside the cutoff, memoised per state.

        Repeated calls at identical positions (the accelerations /
        interaction-count pattern of one force evaluation) reuse the
        stored list; ``cell_list`` additionally reuses a shared spatial
        decomposition (see :class:`~repro.hacc.neighbors.CellListCache`).
        """
        pos = particles.positions
        cached = self._pair_cache
        if (
            cached is not None
            and cached[0].shape == pos.shape
            and np.array_equal(cached[0], pos)
        ):
            return cached[1], cached[2]
        i, j = find_pairs(pos, self.box, self.cutoff, cell_list=cell_list)
        self._pair_cache = (pos, i, j)
        return i, j

    def accelerations(
        self,
        particles: ParticleData,
        *,
        use_polynomial: bool = True,
        cell_list: CellList | None = None,
    ) -> np.ndarray:
        """(n, 3) short-range comoving accelerations."""
        pos = particles.positions
        mass = particles.mass
        n = len(particles)
        i, j = self.pair_list(particles, cell_list=cell_list)
        acc = np.zeros((n, 3), dtype=np.asarray(pos).dtype)
        if len(i) == 0:
            return acc
        d = pos[i] - pos[j]
        d = particles.minimum_image(d)
        r2 = xp.rowwise_dot(d, d) + self.softening**2
        r = xp.sqrt(r2)
        factor = self.kernel(r) if use_polynomial else exact_short_range_factor(r, self.r_s)
        # attraction of i toward j
        f = -G_NEWTON * mass[j] * factor / (r2 * r)
        contrib = f[:, None] * d
        # per-axis bincount scatter: one contiguous C pass per axis,
        # replacing the much slower np.add.at (same sums to round-off)
        for axis in range(3):
            acc[:, axis] = xp.bincount(i, weights=contrib[:, axis], minlength=n)
        return acc

    def interaction_count(
        self, particles: ParticleData, *, cell_list: CellList | None = None
    ) -> int:
        """Number of directed pair interactions (feeds the cost model)."""
        i, _j = self.pair_list(particles, cell_list=cell_list)
        return len(i)
